//! Cross-crate integration tests: the full R2D2 pipeline against the
//! brute-force ground truth on generated corpora — the properties behind
//! Tables 1 and 2 of the paper (full recall at every stage, monotonically
//! shrinking incorrect-edge counts) and Table 3 (operation savings).

use r2d2_baselines::ground_truth::{content_ground_truth, content_ground_truth_op_estimate};
use r2d2_bench::experiments::{enterprise_corpora, synthetic_corpora, Scale};
use r2d2_core::{ClpSampling, PipelineConfig, R2d2Pipeline, Stage};
use r2d2_graph::diff::diff;
use r2d2_lake::Meter;

#[test]
fn enterprise_corpora_full_recall_and_shrinking_incorrect_edges() {
    for corpus in enterprise_corpora(Scale::Smoke) {
        let gt = content_ground_truth(&corpus.lake, &Meter::new()).unwrap();
        let report = R2d2Pipeline::with_defaults().run(&corpus.lake).unwrap();

        let stages = [
            ("SGB", &report.after_sgb),
            ("MMP", &report.after_mmp),
            ("CLP", &report.after_clp),
        ];
        let mut last_incorrect = usize::MAX;
        for (name, graph) in stages {
            let d = diff(graph, &gt.containment_graph);
            assert_eq!(
                d.not_detected, 0,
                "{}: stage {name} must not lose a correct edge",
                corpus.name
            );
            assert!(
                d.incorrect <= last_incorrect,
                "{}: stage {name} must not add incorrect edges",
                corpus.name
            );
            last_incorrect = d.incorrect;
        }

        // The construction-implied edges are a subset of the ground truth,
        // and the pipeline must find all of them.
        let implied = diff(&corpus.expected, &gt.containment_graph);
        assert_eq!(implied.incorrect, 0, "{}: corpus invariant", corpus.name);
        let found = diff(&report.after_clp, &corpus.expected);
        assert_eq!(
            found.not_detected, 0,
            "{}: every constructed containment must be detected",
            corpus.name
        );
    }
}

#[test]
fn synthetic_corpora_full_recall() {
    for corpus in synthetic_corpora(Scale::Smoke) {
        let gt = content_ground_truth(&corpus.lake, &Meter::new()).unwrap();
        let report = R2d2Pipeline::with_defaults().run(&corpus.lake).unwrap();
        let d = diff(&report.after_clp, &gt.containment_graph);
        assert_eq!(d.not_detected, 0, "{}: recall must be 1.0", corpus.name);
        let sgb = diff(&report.after_sgb, &gt.containment_graph);
        assert!(
            d.incorrect <= sgb.incorrect,
            "{}: CLP must not be worse than SGB",
            corpus.name
        );
    }
}

#[test]
fn pipeline_row_ops_are_orders_of_magnitude_below_brute_force() {
    let corpus = &enterprise_corpora(Scale::Smoke)[0];
    let gt = content_ground_truth(&corpus.lake, &Meter::new()).unwrap();
    let brute_force_ops = content_ground_truth_op_estimate(&corpus.lake, &gt.schema_graph).unwrap();
    let report = R2d2Pipeline::with_defaults().run(&corpus.lake).unwrap();
    let pipeline_ops: u128 = report
        .stages
        .iter()
        .map(|s| s.ops.row_level_ops() as u128)
        .sum();
    assert!(
        brute_force_ops >= pipeline_ops * 10,
        "pipeline must do at least 10x less row-level work (brute force {brute_force_ops}, pipeline {pipeline_ops})"
    );
}

#[test]
fn mmp_stage_is_metadata_only_end_to_end() {
    let corpus = &enterprise_corpora(Scale::Smoke)[1];
    let report = R2d2Pipeline::with_defaults().run(&corpus.lake).unwrap();
    let mmp = report.stage(Stage::Mmp).unwrap();
    assert_eq!(mmp.ops.rows_scanned, 0);
    assert!(mmp.ops.metadata_lookups > 0);
}

#[test]
fn all_sampling_strategies_preserve_recall() {
    let corpus = &enterprise_corpora(Scale::Smoke)[2];
    let gt = content_ground_truth(&corpus.lake, &Meter::new()).unwrap();
    for sampling in [
        ClpSampling::PredicateFilter,
        ClpSampling::RandomRows,
        ClpSampling::BothSides,
    ] {
        let config = PipelineConfig::default().with_sampling(sampling);
        let report = R2d2Pipeline::new(config).run(&corpus.lake).unwrap();
        let d = diff(&report.after_clp, &gt.containment_graph);
        assert_eq!(
            d.not_detected, 0,
            "sampling strategy {sampling:?} lost a correct edge"
        );
    }
}

#[test]
fn pipeline_is_deterministic_for_a_fixed_seed() {
    let corpus = &enterprise_corpora(Scale::Smoke)[0];
    let config = PipelineConfig::default().with_seed(1234);
    let a = R2d2Pipeline::new(config.clone()).run(&corpus.lake).unwrap();
    let b = R2d2Pipeline::new(config).run(&corpus.lake).unwrap();
    let mut ea = a.after_clp.edges();
    let mut eb = b.after_clp.edges();
    ea.sort_unstable();
    eb.sort_unstable();
    assert_eq!(ea, eb);
}
