//! Integration tests of the concurrent serve layer: **snapshot isolation
//! as bit-identical replay**. N reader threads race one group-committing
//! writer over random update streams, and every epoch any reader ever
//! observes must be *exactly* the state of a fresh single-threaded session
//! replayed through the committed transcript up to that epoch's generation
//! — graph, advisor advice, meter totals, update counts. No torn reads, no
//! lost updates, no reader-induced writer nondeterminism.

use r2d2_core::{PipelineConfig, R2d2Session};
use r2d2_lake::{
    AccessProfile, Column, DataLake, DataType, DatasetId, LakeError, LakeUpdate, OpCounts,
    PartitionSpec, PartitionedTable, Predicate, Schema, Table, Value,
};
use r2d2_opt::advisor::AdvisorConfig;
use r2d2_opt::preprocess::TransformKnowledge;
use r2d2_opt::CostModel;
use r2d2_serve::{Epoch, R2d2Server, ServeConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn config() -> PipelineConfig {
    PipelineConfig::default().with_seed(7).with_threads(1)
}

fn advisor_config() -> AdvisorConfig {
    AdvisorConfig::default().with_knowledge(TransformKnowledge::AssumeKnown)
}

/// Same recipe as the dynamic-updates oracle: one shared schema, every
/// column a function of the id, so id-range subsets are true row subsets.
fn table(ids: std::ops::Range<i64>) -> Table {
    let schema = Schema::flat(&[
        ("id", DataType::Int),
        ("grp", DataType::Utf8),
        ("v", DataType::Float),
    ])
    .unwrap();
    Table::new(
        schema,
        vec![
            Column::from_ints(ids.clone()),
            Column::from_strs(ids.clone().map(|i| format!("g{}", i % 3))),
            Column::from_floats(ids.map(|i| i as f64 * 0.5)),
        ],
    )
    .unwrap()
}

fn part(t: Table) -> PartitionedTable {
    PartitionedTable::from_table(
        t,
        PartitionSpec::ByRowCount {
            rows_per_partition: 16,
        },
    )
    .unwrap()
}

fn base_lake() -> DataLake {
    let mut lake = DataLake::new();
    let add = |lake: &mut DataLake, name: &str, t: Table| {
        lake.add_dataset(name, part(t), AccessProfile::default(), None)
            .unwrap()
    };
    add(&mut lake, "root", table(0..60));
    add(&mut lake, "mid", table(10..40));
    add(&mut lake, "other", table(100..140));
    add(&mut lake, "slice", table(30..80));
    lake
}

fn boot_session() -> R2d2Session {
    let mut session = R2d2Session::bootstrap(base_lake(), config()).unwrap();
    session
        .enable_advisor(CostModel::default(), advisor_config())
        .unwrap();
    session
}

/// Random replayable update batches (ids tracked like the catalog assigns
/// them; only live datasets are targeted, so every batch applies cleanly).
fn gen_batches(seed: u64, count: usize) -> Vec<Vec<LakeUpdate>> {
    let mut rng =
        SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(count as u64));
    let mut live: Vec<u64> = vec![0, 1, 2, 3];
    let mut next_id = 4u64;
    let mut batches = Vec::with_capacity(count);
    for k in 0..count {
        let len = rng.gen_range(1usize..4);
        let mut batch = Vec::with_capacity(len);
        for j in 0..len {
            let choice = if live.is_empty() {
                0
            } else {
                rng.gen_range(0u8..10)
            };
            match choice {
                0..=2 => {
                    let start = rng.gen_range(0i64..80);
                    let n = rng.gen_range(1i64..40);
                    batch.push(LakeUpdate::AddDataset {
                        name: format!("gen_{seed}_{k}_{j}"),
                        data: part(table(start..start + n)),
                        access: AccessProfile::default(),
                        lineage: None,
                    });
                    live.push(next_id);
                    next_id += 1;
                }
                3..=5 => {
                    let id = live[rng.gen_range(0..live.len())];
                    let start = rng.gen_range(0i64..80);
                    let n = rng.gen_range(0i64..20);
                    batch.push(LakeUpdate::AppendRows {
                        id: DatasetId(id),
                        rows: table(start..start + n),
                    });
                }
                6..=7 => {
                    let id = live[rng.gen_range(0..live.len())];
                    let lo = rng.gen_range(0i64..80);
                    let hi = lo + rng.gen_range(0i64..40);
                    batch.push(LakeUpdate::DeleteRows {
                        id: DatasetId(id),
                        predicate: Predicate::between("id", Value::Int(lo), Value::Int(hi)),
                    });
                }
                _ => {
                    let idx = rng.gen_range(0..live.len());
                    batch.push(LakeUpdate::DropDataset {
                        id: DatasetId(live.remove(idx)),
                    });
                }
            }
        }
        batches.push(batch);
    }
    batches
}

fn sorted_edges(graph: &r2d2_graph::ContainmentGraph) -> Vec<(u64, u64)> {
    let mut edges = graph.edges();
    edges.sort_unstable();
    edges
}

/// Page counters depend on what happens to be decoded in memory, never on
/// the logical update stream; everything else must be bit-identical.
fn masked(ops: OpCounts) -> OpCounts {
    ops.without_page_counters()
}

/// Replay the committed transcript's first `generation` entries through a
/// fresh single-threaded session — the ground truth for that epoch.
fn replay_to(transcript: &[Vec<LakeUpdate>], generation: u64) -> R2d2Session {
    let mut session = boot_session();
    for commit in &transcript[..generation as usize] {
        // Commits that originally failed mid-way fail identically here.
        let _ = session.apply_batch(commit);
    }
    session
}

/// Assert one observed epoch is exactly the replayed session's state.
fn assert_epoch_matches_replay(epoch: &Epoch, transcript: &[Vec<LakeUpdate>]) {
    let mut replayed = replay_to(transcript, epoch.generation());
    assert_eq!(
        sorted_edges(epoch.graph()),
        sorted_edges(replayed.graph()),
        "epoch {} graph != replayed graph",
        epoch.generation()
    );
    assert_eq!(
        masked(epoch.ops()),
        masked(replayed.ops()),
        "epoch {} writer meter != replayed meter",
        epoch.generation()
    );
    assert_eq!(epoch.updates_applied(), replayed.report().updates_applied);
    assert_eq!(epoch.batches_applied(), replayed.update_log().len());
    assert_eq!(epoch.datasets(), replayed.lake().len());
    let advice = epoch.advice().expect("advisor enabled").clone();
    assert_eq!(
        advice,
        replayed.advise().unwrap(),
        "epoch {} advice != replayed advice",
        epoch.generation()
    );
}

/// One full oracle run: `reader_threads` readers continuously observe (and
/// query through) epochs while the main thread streams `batches` at the
/// server; afterwards every distinct observed epoch is checked against the
/// replayed transcript.
fn run_oracle(batches: &[Vec<LakeUpdate>], reader_threads: usize) {
    let server = R2d2Server::start(
        boot_session(),
        ServeConfig::default()
            .with_queue_capacity(4)
            .with_group_commit_max(4)
            .with_record_commits(true),
    );
    let done = AtomicBool::new(false);
    let mut observed: Vec<Vec<Arc<Epoch>>> = Vec::new();

    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..reader_threads {
            let handle = server.handle();
            let done = &done;
            readers.push(scope.spawn(move || {
                let mut seen: Vec<Arc<Epoch>> = Vec::new();
                loop {
                    let epoch = handle.epoch();
                    if seen
                        .last()
                        .map(|e| e.generation() != epoch.generation())
                        .unwrap_or(true)
                    {
                        // Serve a query through the snapshot: meters into
                        // the epoch's detached meter, tallies on the shared
                        // access log — and must not perturb the writer.
                        if let Some(id) = epoch.lake().ids().first().copied() {
                            let _ = epoch.query_dataset(id, &Predicate::True, Some(4));
                        }
                        seen.push(epoch);
                    }
                    if done.load(Ordering::Acquire) {
                        return seen;
                    }
                    std::thread::yield_now();
                }
            }));
        }

        // Submit everything before waiting, so the writer actually finds
        // multi-batch groups to coalesce (the bounded queue backpressures
        // the submission loop once 4 batches are pending).
        let tickets: Vec<_> = batches
            .iter()
            .map(|batch| server.submit(batch.clone()))
            .collect();
        for ticket in tickets {
            ticket.wait().expect("generated batches apply cleanly");
        }
        done.store(true, Ordering::Release);
        for reader in readers {
            observed.push(reader.join().expect("reader panicked"));
        }
    });

    let transcript = server.commit_log();
    let final_epoch = server.handle().epoch();
    let stats = server.stats();
    let session = server.shutdown();

    assert_eq!(stats.batches_committed, batches.len() as u64);
    assert_eq!(stats.batches_failed, 0);
    assert_eq!(final_epoch.generation(), transcript.len() as u64);
    assert!(
        stats.commits <= stats.batches_committed,
        "group commit must never execute more commits than batches"
    );

    // The final epoch is the shut-down session, and both match full replay.
    assert_eq!(
        sorted_edges(final_epoch.graph()),
        sorted_edges(session.graph())
    );
    assert_epoch_matches_replay(&final_epoch, &transcript);

    // Every epoch every reader observed is a committed prefix's exact state.
    let mut checked = std::collections::BTreeSet::new();
    checked.insert(final_epoch.generation());
    for seen in &observed {
        for (i, epoch) in seen.iter().enumerate() {
            if i > 0 {
                assert!(
                    seen[i - 1].generation() < epoch.generation(),
                    "a reader saw generations go backwards"
                );
            }
            if checked.insert(epoch.generation()) {
                assert_epoch_matches_replay(epoch, &transcript);
            }
        }
    }
}

proptest::proptest! {
    /// The snapshot-isolation oracle, at 1 and 4 reader threads: every
    /// observed epoch — under concurrent reads racing the group-committing
    /// writer — is bit-identical to a fresh session replayed through the
    /// committed transcript to that generation.
    #[test]
    fn observed_epochs_replay_bit_identically(
        seed in 0u64..1_000_000,
        count in 1usize..5,
    ) {
        let batches = gen_batches(seed, count);
        run_oracle(&batches, 1);
        run_oracle(&batches, 4);
    }
}

#[test]
fn failing_batches_do_not_poison_concurrent_submitters() {
    let server = R2d2Server::start(
        boot_session(),
        ServeConfig::default().with_record_commits(true),
    );
    // Interleave good and bad batches; the bad ones must fail alone.
    let tickets: Vec<_> = (0..6)
        .map(|i| {
            if i % 2 == 1 {
                server.submit(vec![LakeUpdate::DropDataset {
                    id: DatasetId(1000 + i),
                }])
            } else {
                server.submit(vec![LakeUpdate::AppendRows {
                    id: DatasetId(1),
                    rows: table(40 + i as i64 * 5..45 + i as i64 * 5),
                }])
            }
        })
        .collect();
    for (i, ticket) in tickets.into_iter().enumerate() {
        let result = ticket.wait();
        if i % 2 == 1 {
            assert!(
                matches!(result, Err(LakeError::DatasetNotFound(_))),
                "bad batch {i} must fail with its own error"
            );
        } else {
            result.unwrap_or_else(|e| panic!("good batch {i} failed: {e}"));
        }
    }
    let stats = server.stats();
    assert_eq!(stats.batches_committed, 3);
    assert_eq!(stats.batches_failed, 3);

    // Readers only ever saw committed prefixes, and the transcript —
    // including the failing commits — replays to the served state.
    let transcript = server.commit_log();
    let epoch = server.handle().epoch();
    let session = server.shutdown();
    assert_eq!(epoch.lake().dataset(DatasetId(1)).unwrap().num_rows(), 45);
    assert_eq!(sorted_edges(epoch.graph()), sorted_edges(session.graph()));
    let mut replayed = boot_session();
    for commit in &transcript {
        let _ = replayed.apply_batch(commit);
    }
    assert_eq!(sorted_edges(replayed.graph()), sorted_edges(epoch.graph()));
    assert_eq!(masked(replayed.ops()), masked(epoch.ops()));
}

#[test]
fn reader_traffic_feeds_access_profiles_without_perturbing_the_writer() {
    let server = R2d2Server::start(boot_session(), ServeConfig::default());
    let handle = server.handle();
    let epoch = handle.epoch();
    let writer_ops = epoch.ops();

    // Hammer one dataset through pinned epochs from several threads.
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let epoch = handle.epoch();
            scope.spawn(move || {
                for _ in 0..25 {
                    epoch
                        .query_dataset(DatasetId(1), &Predicate::True, Some(4))
                        .unwrap();
                }
            });
        }
    });

    // The writer's meter never moved...
    assert_eq!(handle.epoch().ops(), writer_ops);
    // ...but the access log saw every one of the 100 queries: folding it
    // into the profiles sees the reader traffic.
    let mut session = server.shutdown();
    assert_eq!(session.refresh_access_profiles().unwrap(), 1);
    assert_eq!(
        session
            .lake()
            .dataset(DatasetId(1))
            .unwrap()
            .access
            .accesses_per_period,
        100.0
    );
}
