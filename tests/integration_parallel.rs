//! Determinism of the parallel containment pipeline.
//!
//! `PipelineConfig::threads` may change *how fast* the pipeline runs, never
//! *what it computes*: for any thread count the three stage graphs, the
//! per-stage operation counts and the lake meter totals must be bit-for-bit
//! identical to a sequential run. These tests pin that guarantee on full
//! synthetic corpora.

use r2d2_bench::experiments::{enterprise_corpora, synthetic_corpora, Scale};
use r2d2_core::{ClpSampling, PipelineConfig, R2d2Pipeline};
use r2d2_lake::OpCounts;
use r2d2_synth::corpus::{generate, CorpusSpec};

/// Run the full pipeline on a freshly generated copy of `spec` and return
/// everything observable: the report plus the lake meter totals.
fn run_with_threads(
    spec: &CorpusSpec,
    config: PipelineConfig,
) -> (r2d2_core::PipelineReport, OpCounts) {
    let corpus = generate(spec).unwrap();
    corpus.lake.meter().reset();
    let report = R2d2Pipeline::new(config).run(&corpus.lake).unwrap();
    (report, corpus.lake.meter().snapshot())
}

fn assert_identical(spec: &CorpusSpec, base: PipelineConfig) {
    let (seq, seq_ops) = run_with_threads(spec, base.clone().with_threads(1));
    for threads in [0usize, 3] {
        let (par, par_ops) = run_with_threads(spec, base.clone().with_threads(threads));
        assert_eq!(
            seq.after_sgb, par.after_sgb,
            "{}: SGB graph must not depend on threads={threads}",
            spec.name
        );
        assert_eq!(
            seq.after_mmp, par.after_mmp,
            "{}: MMP graph must not depend on threads={threads}",
            spec.name
        );
        assert_eq!(
            seq.after_clp, par.after_clp,
            "{}: CLP graph must not depend on threads={threads}",
            spec.name
        );
        assert_eq!(
            seq.sgb_clusters, par.sgb_clusters,
            "{}: cluster count must not depend on threads",
            spec.name
        );
        for (s, p) in seq.stages.iter().zip(&par.stages) {
            assert_eq!(s.stage, p.stage);
            assert_eq!(
                s.ops, p.ops,
                "{}: stage {} op counts must not depend on threads={threads}",
                spec.name, s.stage
            );
            assert_eq!(s.edges_after, p.edges_after);
        }
        assert_eq!(
            seq_ops, par_ops,
            "{}: lake meter totals must not depend on threads={threads}",
            spec.name
        );
    }
}

#[test]
fn parallel_pipeline_is_deterministic_on_enterprise_corpus() {
    assert_identical(
        &CorpusSpec::enterprise_like(0, 96),
        PipelineConfig::default(),
    );
}

#[test]
fn parallel_pipeline_is_deterministic_across_sampling_strategies() {
    let spec = CorpusSpec::enterprise_like(1, 80);
    for sampling in [
        ClpSampling::PredicateFilter,
        ClpSampling::RandomRows,
        ClpSampling::BothSides,
    ] {
        assert_identical(&spec, PipelineConfig::default().with_sampling(sampling));
    }
}

#[test]
fn parallel_pipeline_is_deterministic_on_synthetic_corpora() {
    assert_identical(
        &CorpusSpec::table_union_like(8, 48),
        PipelineConfig::default(),
    );
    assert_identical(&CorpusSpec::kaggle_like(4, 60), PipelineConfig::default());
}

#[test]
fn parallel_pipeline_keeps_full_recall() {
    // Recall (no ground-truth edge lost) must survive parallel execution on
    // the stock corpora used by the sequential integration tests.
    use r2d2_baselines::ground_truth::content_ground_truth;
    use r2d2_graph::diff::diff;
    use r2d2_lake::Meter;
    let mut corpora = enterprise_corpora(Scale::Smoke);
    corpora.extend(synthetic_corpora(Scale::Smoke));
    for corpus in corpora {
        let gt = content_ground_truth(&corpus.lake, &Meter::new()).unwrap();
        let report = R2d2Pipeline::new(PipelineConfig::default().with_threads(0))
            .run(&corpus.lake)
            .unwrap();
        let d = diff(&report.after_clp, &gt.containment_graph);
        assert_eq!(
            d.not_detected, 0,
            "{}: parallel run must keep recall 1.0",
            corpus.name
        );
    }
}
