//! Lazy-vs-eager oracle: a lake whose tables came back from `R2D2LAKE` v4
//! bytes (footer-backed lazy columns, pages decoded on first touch) must be
//! observationally identical to the same lake held eagerly in memory —
//! every query result, every containment graph, every logical meter total,
//! at threads 1 and 4, live or restored after a kill. Only the process-local
//! page counters (`pages_decoded` / `pages_skipped`) may differ; they are
//! laziness telemetry, not logical work.

use r2d2_bench::experiments::sorted_edges;
use r2d2_core::{PersistenceConfig, PipelineConfig, R2d2Pipeline, R2d2Session};
use r2d2_lake::query::{random_rows, scan};
use r2d2_lake::{
    AccessProfile, Column, DataLake, DataType, LakeUpdate, Meter, PartitionSpec, PartitionedTable,
    Predicate, Schema, Table, Value,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn table(ids: std::ops::Range<i64>) -> Table {
    let schema = Schema::flat(&[
        ("id", DataType::Int),
        ("grp", DataType::Utf8),
        ("v", DataType::Float),
    ])
    .unwrap();
    Table::new(
        schema,
        vec![
            Column::from_ints(ids.clone()),
            Column::from_strs(ids.clone().map(|i| format!("g{}", i % 3))),
            Column::from_floats(ids.map(|i| i as f64 * 0.5)),
        ],
    )
    .unwrap()
}

fn part(t: Table) -> PartitionedTable {
    PartitionedTable::from_table(
        t,
        PartitionSpec::ByRowCount {
            rows_per_partition: 16,
        },
    )
    .unwrap()
}

fn random_lake(seed: u64) -> DataLake {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0xC3C3_3C3C).wrapping_add(3));
    let mut lake = DataLake::new();
    lake.add_dataset("root", part(table(0..60)), AccessProfile::default(), None)
        .unwrap();
    let n = rng.gen_range(2usize..5);
    for k in 0..n {
        let start = rng.gen_range(0i64..40);
        let len = rng.gen_range(1i64..30);
        lake.add_dataset(
            format!("d{k}"),
            part(table(start..start + len)),
            AccessProfile::default(),
            None,
        )
        .unwrap();
    }
    lake
}

/// Round-trip every dataset through the snapshot codec (v4 bytes plus the
/// partition policy frame) so the copy's columns are footer-backed lazy
/// pages while mutations re-partition exactly like the original. Decode
/// charges a scratch meter, so the copy's lake meter starts as clean as the
/// original's.
fn lazy_copy(lake: &DataLake) -> DataLake {
    let mut out = DataLake::new();
    for entry in lake.iter() {
        let mut buf = bytes::BytesMut::new();
        r2d2_lake::snapshot::put_partitioned(&mut buf, &entry.data);
        let mut cursor = buf.freeze();
        let decoded = r2d2_lake::snapshot::get_partitioned(&mut cursor).unwrap();
        assert!(
            !decoded.partitions().is_empty()
                && !decoded.partitions()[0].columns()[0].is_materialized(),
            "test premise: the copy must hold lazy columns"
        );
        out.add_dataset(entry.name.clone(), decoded, AccessProfile::default(), None)
            .unwrap();
    }
    out
}

fn config(threads: usize) -> PipelineConfig {
    PipelineConfig::default()
        .with_seed(29)
        .with_threads(threads)
}

proptest::proptest! {
    /// Scan, point-sample and catalogued-query results over the lazy copy
    /// are bit-identical to the eager lake's, and so are the logical meter
    /// totals the queries charge.
    #[test]
    fn queries_on_lazy_tables_match_eager(seed in 0u64..100_000) {
        let eager = random_lake(seed);
        let lazy = lazy_copy(&eager);
        let mut rng = SmallRng::seed_from_u64(seed);
        let lo = rng.gen_range(0i64..40);
        let hi = lo + rng.gen_range(0i64..25);
        let predicate = Predicate::between("id", Value::Int(lo), Value::Int(hi));
        for entry in eager.iter() {
            let lazy_entry = lazy.dataset(entry.id).unwrap();
            // Raw scan with a limit.
            let a = scan(&entry.data, &predicate, Some(7), &Meter::new()).unwrap();
            let b = scan(&lazy_entry.data, &predicate, Some(7), &Meter::new()).unwrap();
            proptest::prop_assert_eq!(a, b, "scan diverged on {}", entry.name.clone());
            // Point samples from the same RNG stream.
            let mut r1 = SmallRng::seed_from_u64(seed ^ entry.id.0);
            let mut r2 = SmallRng::seed_from_u64(seed ^ entry.id.0);
            let a = random_rows(&entry.data, 9, &mut r1, &Meter::new()).unwrap();
            let b = random_rows(&lazy_entry.data, 9, &mut r2, &Meter::new()).unwrap();
            proptest::prop_assert_eq!(a, b, "random_rows diverged on {}", entry.name.clone());
            // The catalogued entry point, charging each lake's own meter.
            let a = eager.query_dataset(entry.id, &predicate, None).unwrap();
            let b = lazy.query_dataset(entry.id, &predicate, None).unwrap();
            proptest::prop_assert_eq!(a, b, "query_dataset diverged on {}", entry.name.clone());
        }
        proptest::prop_assert_eq!(
            eager.meter().snapshot().without_page_counters(),
            lazy.meter().snapshot().without_page_counters(),
            "logical meter totals diverged"
        );
    }

    /// The pipeline graph, the incremental session graph, the masked meter
    /// totals and a kill-anywhere restore are all identical over lazy and
    /// eager lakes, at threads 1 and 4.
    #[test]
    fn pipeline_and_session_are_lazy_blind(
        seed in 0u64..100_000,
        kill_after in 0usize..4,
    ) {
        let eager = random_lake(seed);
        let lazy = lazy_copy(&eager);
        let updates: Vec<LakeUpdate> = (0..3)
            .map(|k| {
                let start = (seed as i64 + k * 7) % 40;
                LakeUpdate::AppendRows {
                    id: r2d2_lake::DatasetId(k as u64 % eager.len() as u64),
                    rows: table(start..start + 5),
                }
            })
            .collect();
        for threads in [1usize, 4] {
            let e = R2d2Pipeline::new(config(threads)).run(&eager).unwrap();
            let l = R2d2Pipeline::new(config(threads)).run(&lazy).unwrap();
            proptest::prop_assert_eq!(
                sorted_edges(e.final_graph()),
                sorted_edges(l.final_graph()),
                "batch graph diverged at threads={}", threads
            );

            let mut es = R2d2Session::bootstrap(eager.clone(), config(threads)).unwrap();
            let dir = std::env::temp_dir().join(format!(
                "r2d2_integration_lazy_{seed}_{threads}_{kill_after}"
            ));
            std::fs::remove_dir_all(&dir).ok();
            let mut ls = R2d2Session::bootstrap(lazy.clone(), config(threads)).unwrap();
            ls.enable_persistence(PersistenceConfig::new(&dir)).unwrap();
            for (i, u) in updates.iter().enumerate() {
                es.apply(u.clone()).unwrap();
                ls.apply(u.clone()).unwrap();
                if i + 1 == kill_after {
                    // Kill here: a restored session must agree with the live
                    // one on everything but the page telemetry.
                    let restored = R2d2Session::restore(&dir).unwrap();
                    proptest::prop_assert_eq!(restored.graph(), ls.graph());
                    proptest::prop_assert_eq!(
                        restored.ops().without_page_counters(),
                        ls.ops().without_page_counters()
                    );
                }
            }
            proptest::prop_assert_eq!(
                sorted_edges(es.graph()),
                sorted_edges(ls.graph()),
                "session graph diverged at threads={}", threads
            );
            proptest::prop_assert_eq!(
                es.ops().without_page_counters(),
                ls.ops().without_page_counters(),
                "session meter totals diverged at threads={}", threads
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
