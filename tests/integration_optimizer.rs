//! Integration tests of the optimization layer: end-to-end from generated
//! corpus through pipeline, safe-deletion preprocessing and Opt-Ret, plus
//! cross-validation of the three solvers (exact, greedy, Dyn-Lin) and the
//! savings accounting of Table 7 / Figure 5.

use r2d2_bench::experiments::{enterprise_corpora, Scale};
use r2d2_core::R2d2Pipeline;
use r2d2_graph::random::{erdos_renyi_dag, line_forest, line_graph};
use r2d2_lake::DatasetId;
use r2d2_opt::costmodel::CostModel;
use r2d2_opt::dynlin::solve_line;
use r2d2_opt::preprocess::{preprocess_for_safe_deletion, TransformKnowledge};
use r2d2_opt::savings::{gdpr_savings, horizon_projection, HorizonScenario};
use r2d2_opt::{solve, solve_exact, solve_greedy, OptRetProblem};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn end_to_end_optimization_on_generated_corpus() {
    let corpus = &enterprise_corpora(Scale::Smoke)[0];
    let report = R2d2Pipeline::with_defaults().run(&corpus.lake).unwrap();
    let mut graph = report.after_clp;
    let model = CostModel::default();
    let pre = preprocess_for_safe_deletion(
        &mut graph,
        &corpus.lake,
        &model,
        TransformKnowledge::Required,
    )
    .unwrap();
    assert_eq!(
        pre.kept + pre.pruned_unknown_transform + pre.pruned_latency,
        pre.edges_examined
    );

    // Every surviving edge must be annotated.
    for (p, c) in graph.edges() {
        let edge = graph.edge(p, c).unwrap();
        assert!(edge.reconstruction_cost.is_some());
        assert!(edge.reconstruction_latency.is_some());
        assert!(edge.transform.is_some());
    }

    let problem = OptRetProblem::from_graph(&graph, &corpus.lake, &model).unwrap();
    let solution = solve(&problem);
    assert!(solution.is_feasible(&problem));
    assert!(solution.total_cost <= problem.retain_all_cost() + 1e-9);

    // Deleted datasets must actually exist in the lake and must have a
    // retained reconstruction parent with a containment edge.
    for d in &solution.deleted {
        assert!(corpus.lake.contains(DatasetId(*d)));
        let parent = solution.reconstruction_parent[d];
        assert!(solution.retained.contains(&parent));
        assert!(graph.has_edge(parent, *d));
    }

    let savings = gdpr_savings(&solution, &corpus.lake, 1.0).unwrap();
    assert_eq!(savings.datasets_deleted, solution.deleted.len());
}

#[test]
fn exact_and_greedy_and_dynlin_agree_where_applicable() {
    let model = CostModel::default();

    // Line graphs: all three solvers must agree on the optimum.
    for n in [4usize, 8, 13] {
        let graph = line_graph(n);
        let problem = OptRetProblem::synthetic(
            &graph,
            &model,
            |d| ((d % 5) + 1) << 30,
            |d| (d % 3) as f64 * 0.2,
        );
        let exact = solve_exact(&problem);
        let dp = solve_line(&problem).unwrap();
        assert!((exact.total_cost - dp.total_cost).abs() < 1e-6, "n={n}");
        let auto = solve(&problem);
        assert!((auto.total_cost - exact.total_cost).abs() < 1e-6, "n={n}");
    }

    // Random DAGs: greedy is feasible and never better than exact.
    let mut rng = SmallRng::seed_from_u64(77);
    for n in [8usize, 12] {
        let graph = erdos_renyi_dag(n, 0.3, &mut rng);
        let problem =
            OptRetProblem::synthetic(&graph, &model, |d| ((d % 5) + 1) << 29, |d| (d % 4) as f64);
        let exact = solve_exact(&problem);
        let greedy = solve_greedy(&problem);
        assert!(exact.is_feasible(&problem));
        assert!(greedy.is_feasible(&problem));
        assert!(exact.total_cost <= greedy.total_cost + 1e-9);
    }
}

#[test]
fn latency_threshold_controls_how_much_can_be_deleted() {
    let corpus = &enterprise_corpora(Scale::Smoke)[0];
    let report = R2d2Pipeline::with_defaults().run(&corpus.lake).unwrap();

    let solve_with_model = |model: CostModel| {
        let mut graph = report.after_clp.clone();
        preprocess_for_safe_deletion(
            &mut graph,
            &corpus.lake,
            &model,
            TransformKnowledge::AssumeKnown,
        )
        .unwrap();
        let problem = OptRetProblem::from_graph(&graph, &corpus.lake, &model).unwrap();
        (graph.edge_count(), solve(&problem))
    };

    let (edges_loose, sol_loose) = solve_with_model(CostModel::default());
    let (edges_tight, sol_tight) =
        solve_with_model(CostModel::default().with_latency_threshold(1e-12));
    assert_eq!(edges_tight, 0, "a zero latency budget prunes every edge");
    assert!(edges_loose >= edges_tight);
    assert!(sol_tight.deleted.is_empty());
    assert!(sol_loose.deleted.len() >= sol_tight.deleted.len());
}

/// Random problem over an arbitrary graph: sizes and access rates drawn from
/// the seed so ties and degenerate costs show up over the case budget.
fn random_problem(graph: &r2d2_graph::ContainmentGraph, seed: u64) -> OptRetProblem {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = graph.datasets().len().max(1) as u64;
    let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..60u64) << 26).collect();
    let accesses: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..8.0)).collect();
    OptRetProblem::synthetic(
        graph,
        &CostModel::default(),
        |d| sizes[(d % n) as usize],
        |d| accesses[(d % n) as usize],
    )
}

proptest::proptest! {
    /// Solver cross-validation oracle on random DAGs: every solver is
    /// feasible, exact ≤ greedy, greedy ≤ retain-all (the fixed greedy can
    /// never lose money), and the dispatching `solve` matches the exact
    /// optimum at these component sizes.
    #[test]
    fn solvers_cross_validate_on_random_dags(
        seed in 0u64..1_000_000,
        n in 4usize..11,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let p_edge = rng.gen_range(0.1..0.5);
        let graph = erdos_renyi_dag(n, p_edge, &mut rng);
        let problem = random_problem(&graph, seed ^ 0xABCD);

        let exact = solve_exact(&problem);
        let greedy = solve_greedy(&problem);
        let auto = solve(&problem);
        let retain_all = problem.retain_all_cost();

        proptest::prop_assert!(exact.is_feasible(&problem));
        proptest::prop_assert!(greedy.is_feasible(&problem));
        proptest::prop_assert!(auto.is_feasible(&problem));
        proptest::prop_assert!(
            exact.total_cost <= greedy.total_cost + 1e-9,
            "exact {} > greedy {}", exact.total_cost, greedy.total_cost
        );
        proptest::prop_assert!(
            greedy.total_cost <= retain_all + 1e-9,
            "greedy {} lost money vs retain-all {}", greedy.total_cost, retain_all
        );
        proptest::prop_assert!(
            (auto.total_cost - exact.total_cost).abs() < 1e-6,
            "solve() {} != exact {} below the component limit",
            auto.total_cost, exact.total_cost
        );
    }

    /// Dyn-Lin oracle on random line forests: the dynamic program is
    /// feasible and matches the exact branch & bound on every chain, and the
    /// dispatching `solve` (which routes chains through Dyn-Lin) agrees.
    #[test]
    fn dynlin_cross_validates_on_random_line_forests(
        seed in 0u64..1_000_000,
        chains in proptest::collection::vec(1usize..7, 1..4),
    ) {
        let graph = line_forest(&chains);
        let problem = random_problem(&graph, seed ^ 0x1234);

        let dp = solve_line(&problem).expect("line forest");
        let exact = solve_exact(&problem);
        let auto = solve(&problem);

        proptest::prop_assert!(dp.is_feasible(&problem));
        proptest::prop_assert!(
            (dp.total_cost - exact.total_cost).abs() < 1e-6,
            "dp {} != exact {} on a line forest", dp.total_cost, exact.total_cost
        );
        proptest::prop_assert!(dp.total_cost <= problem.retain_all_cost() + 1e-9);
        proptest::prop_assert_eq!(&auto, &dp, "solve() must take the Dyn-Lin fast path");
    }
}

#[test]
fn horizon_projection_matches_paper_shape() {
    // Fig. 5: savings grow with the contained fraction; the 5-access curve
    // lies above the 1-access curve; both are positive for any non-zero
    // contained fraction.
    let model = CostModel::default();
    let mut previous = f64::MIN;
    for fraction in [0.05, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let one = horizon_projection(&HorizonScenario::figure5(fraction, 1.0), &model);
        let five = horizon_projection(&HorizonScenario::figure5(fraction, 5.0), &model);
        assert!(one.net() > 0.0);
        assert!(five.net() > one.net());
        assert!(one.net() > previous);
        previous = one.net();
    }
}
