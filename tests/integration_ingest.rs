//! End-to-end ingest integration: the CSV dialect round-trips arbitrary
//! tables (quotes, empty cells, unicode, mixed Int/Float columns), the
//! quarantine absorbs structural damage without touching surviving rows,
//! and a hostile synthetic corpus ingested from disk produces a graph
//! bit-identical to a fresh batch run at threads 1 and 4 — surviving a
//! mid-stream kill and WAL-tail restore along the way.

use r2d2_core::{IngestOptions, PersistenceConfig, PipelineConfig, R2d2Session};
use r2d2_lake::csv::{read_csv, to_csv, CsvOptions, IngestError};
use r2d2_lake::{Column, DataLake, DataType, Field, Schema, Table, Value};
use r2d2_synth::corpus::{generate, CorpusSpec};
use r2d2_synth::emit::write_lake_csv;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::PathBuf;

/// Strings that exercise every quoting rule of the dialect: unicode
/// (including combining marks and emoji), embedded delimiters and quotes,
/// empty and whitespace-padded cells, and number/bool look-alikes that must
/// come back as text. No newlines — multi-line quoted fields are
/// documented as unsupported.
const STRINGS: &[&str] = &[
    "alpha",
    "héllo wörld",
    "🦀 crab",
    "comma,inside",
    "\"quoted\"",
    "",
    "  padded  ",
    "tab\there",
    "βeta Ω",
    "3.14",
    "true",
    "-42",
];

/// A random table under `seed`: 1–4 columns over Int / Float / Utf8 / Bool
/// (no Timestamp — its `ts()` rendering is documented as non-round-trip),
/// with ~15% nulls. Row 0 is always non-null and, in a Float column, a
/// genuine fractional value, so no column can collapse to all-null or
/// all-integral and re-infer a different type.
fn random_table(seed: u64) -> Table {
    let mut rng = SmallRng::seed_from_u64(seed);
    let cols = rng.gen_range(1..5usize);
    let rows = rng.gen_range(1..20usize);
    let mut fields = Vec::new();
    let mut columns = Vec::new();
    for c in 0..cols {
        let dt = match rng.gen_range(0..4u32) {
            0 => DataType::Int,
            1 => DataType::Float,
            2 => DataType::Utf8,
            _ => DataType::Bool,
        };
        fields.push(Field::new(format!("col_{c}"), dt));
        let mut values = Vec::with_capacity(rows);
        for r in 0..rows {
            // No nulls in single-column tables: a fully-null row renders as
            // a blank line, which the reader skips by design.
            let value = if cols > 1 && r != 0 && rng.gen_bool(0.15) {
                Value::Null
            } else {
                match dt {
                    DataType::Int => Value::Int(rng.gen_range(-1000..1000i64)),
                    // Mixed Int variants inside a Float column are the
                    // tagged-page shape the widening rules must preserve;
                    // row 0 stays fractional so the column re-infers Float.
                    DataType::Float if r != 0 && rng.gen_bool(0.3) => {
                        Value::Int(rng.gen_range(-50..50i64))
                    }
                    DataType::Float => {
                        Value::Float(rng.gen_range(-8000..8000i64) as f64 / 8.0 + 0.125)
                    }
                    DataType::Utf8 => {
                        Value::Str(STRINGS[rng.gen_range(0..STRINGS.len())].to_string())
                    }
                    _ => Value::Bool(rng.gen_bool(0.5)),
                }
            };
            values.push(value);
        }
        columns.push(Column::new(dt, values).expect("column"));
    }
    Table::new(Schema::new(fields).expect("schema"), columns).expect("table")
}

proptest::proptest! {
    /// Emit → parse round trip: schema (names and types) and every value
    /// survive, nothing is quarantined.
    #[test]
    fn csv_round_trips_schema_and_values(seed in 0u64..500_000) {
        let table = random_table(seed);
        let text = to_csv(&table);
        let read = read_csv(&text, &CsvOptions::default()).expect("clean parse");
        proptest::prop_assert_eq!(read.quarantined.len(), 0, "nothing to quarantine");
        proptest::prop_assert_eq!(read.table.schema(), table.schema(), "schema diverged");
        proptest::prop_assert_eq!(&read.table, &table, "values diverged");
    }

    /// Structural sabotage (ragged rows, dangling quotes) appended to a
    /// clean rendering is quarantined with typed errors while every
    /// surviving row is untouched.
    #[test]
    fn sabotaged_rows_quarantine_without_touching_survivors(seed in 0u64..500_000) {
        let table = random_table(seed);
        let mut text = to_csv(&table);
        let cols = table.num_columns();
        // A too-long row, then a dangling quote.
        let long: Vec<String> = (0..cols + 2).map(|i| format!("junk{i}")).collect();
        text.push_str(&long.join(","));
        text.push('\n');
        text.push_str("\"never closed\n");
        let read = read_csv(&text, &CsvOptions::default()).expect("tolerant parse");
        proptest::prop_assert_eq!(read.quarantined.len(), 2);
        proptest::prop_assert!(matches!(
            read.quarantined[0].error,
            IngestError::ArityMismatch { .. }
        ));
        proptest::prop_assert!(matches!(
            read.quarantined[1].error,
            IngestError::UnterminatedQuote { .. }
        ));
        proptest::prop_assert_eq!(&read.table, &table, "survivors were altered");
    }
}

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("r2d2_integration_ingest_{name}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Hostile corpus → sabotaged CSV files → `ingest_dir`: the graph is
/// bit-identical across thread counts and to a fresh batch bootstrap over
/// the ingested lake, and a mid-stream kill restores bit-identically from
/// snapshot + WAL tail before the ingest resumes to the same graph.
#[test]
fn hostile_corpus_ingest_is_parity_clean_and_kill_safe() {
    let corpus = generate(&CorpusSpec::hostile(2, 32)).expect("hostile corpus");
    let dir = temp_dir("hostile");
    let csv_dir = dir.join("csv");
    std::fs::create_dir_all(&csv_dir).unwrap();
    let files = write_lake_csv(&corpus.lake, &csv_dir, Some(99)).expect("emit");
    assert_eq!(files, corpus.lake.len());

    let config = PipelineConfig::default().with_seed(5);
    let options = IngestOptions::default();

    let mut one = R2d2Session::bootstrap(DataLake::new(), config.clone()).unwrap();
    let report = one.ingest_dir(&csv_dir, &options).unwrap();
    assert_eq!(report.files_failed(), 0);
    assert_eq!(report.datasets_added(), files);
    assert!(
        report.rows_quarantined() >= 2 * files,
        "sabotage must quarantine"
    );
    assert_eq!(report.rows_ingested(), corpus.lake.total_rows());

    // Thread parity.
    let mut four = R2d2Session::bootstrap(DataLake::new(), config.clone().with_threads(4)).unwrap();
    four.ingest_dir(&csv_dir, &options).unwrap();
    assert_eq!(four.graph(), one.graph(), "threads=4 diverged");

    // Batch parity over the ingested lake.
    let batch = R2d2Session::bootstrap(one.lake().clone(), config.clone()).unwrap();
    assert_eq!(batch.graph(), one.graph(), "batch bootstrap diverged");

    // Mid-stream kill: ingest under persistence, drop without checkpoint,
    // restore (snapshot + WAL-tail replay), compare bit for bit, and
    // re-running the ingest only records duplicate-name rejections.
    let persist_dir = dir.join("wal");
    let mut killed = R2d2Session::bootstrap(DataLake::new(), config.clone()).unwrap();
    killed
        .enable_persistence(PersistenceConfig::new(&persist_dir).with_snapshot_every(0))
        .unwrap();
    killed.ingest_dir(&csv_dir, &options).unwrap();
    assert!(
        killed.wal_tail_updates().unwrap_or(0) > 0,
        "kill must leave a WAL tail"
    );
    drop(killed);

    let mut restored = R2d2Session::restore(&persist_dir).expect("restore");
    assert_eq!(restored.graph(), one.graph(), "restore diverged");
    let resumed = restored.ingest_dir(&csv_dir, &options).unwrap();
    assert_eq!(resumed.datasets_added(), 0);
    assert!(resumed
        .files
        .iter()
        .all(|f| matches!(f.error, Some(IngestError::Dataset(_)))));
    assert_eq!(restored.graph(), one.graph(), "resume must be idempotent");

    std::fs::remove_dir_all(&dir).ok();
}
