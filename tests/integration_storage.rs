//! Integration tests of the storage layer with the rest of the system: a
//! corpus written to the binary columnar format and read back must produce
//! the same containment graph, and the footer-only path must expose the same
//! min/max metadata MMP relies on.

use r2d2_bench::experiments::{enterprise_corpora, Scale};
use r2d2_core::R2d2Pipeline;
use r2d2_lake::{storage, AccessProfile, DataLake, Meter};

#[test]
fn corpus_round_trips_through_storage_with_identical_containment_graph() {
    let corpus = &enterprise_corpora(Scale::Smoke)[2];
    let dir = std::env::temp_dir().join("r2d2_integration_storage");
    std::fs::create_dir_all(&dir).unwrap();

    // Write every dataset to disk and read it back into a fresh lake.
    let mut restored = DataLake::new();
    for entry in corpus.lake.iter() {
        let path = dir.join(format!("{}.r2d2", entry.id.0));
        storage::write_file(&entry.data, &path).unwrap();
        let read_back = storage::read_file(&path, &Meter::new()).unwrap();
        assert_eq!(read_back.num_rows(), entry.data.num_rows());
        assert_eq!(read_back.schema(), entry.data.schema());
        restored
            .add_dataset(
                entry.name.clone(),
                read_back,
                AccessProfile::default(),
                None,
            )
            .unwrap();
        std::fs::remove_file(&path).ok();
    }

    let original = R2d2Pipeline::with_defaults().run(&corpus.lake).unwrap();
    let roundtrip = R2d2Pipeline::with_defaults().run(&restored).unwrap();

    // Dataset ids are re-assigned in insertion order, which matches the
    // original iteration order, so the edge sets must be identical.
    let mut a = original.after_clp.edges();
    let mut b = roundtrip.after_clp.edges();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "containment graph must survive a storage round trip");
}

#[test]
fn footer_metadata_matches_in_memory_statistics() {
    let corpus = &enterprise_corpora(Scale::Smoke)[0];
    for entry in corpus.lake.iter().take(5) {
        let bytes = storage::encode(&entry.data);
        let meter = Meter::new();
        let footer = storage::read_footer(&bytes, &meter).unwrap();
        assert_eq!(
            meter.snapshot().rows_scanned,
            0,
            "footer read is metadata-only"
        );

        let from_footer = footer.table_level();
        for (name, stats) in entry.data.table_stats() {
            let f = &from_footer[name];
            assert_eq!(f.min, stats.min, "min mismatch for {name}");
            assert_eq!(f.max, stats.max, "max mismatch for {name}");
            assert_eq!(f.null_count, stats.null_count, "nulls mismatch for {name}");
        }
        assert_eq!(
            footer.row_counts.iter().sum::<u64>() as usize,
            entry.data.num_rows()
        );
    }
}

#[test]
fn encoded_size_tracks_logical_size() {
    let corpus = &enterprise_corpora(Scale::Smoke)[0];
    let mut entries = corpus.lake.iter();
    let small = entries.next().unwrap();
    let encoded = storage::encode(&small.data);
    // The binary format should be within a small constant factor of the
    // logical byte size (no blow-up, no impossible compression since values
    // are stored verbatim).
    let logical = small.data.byte_size() as f64;
    let physical = encoded.len() as f64;
    assert!(
        physical > logical * 0.5,
        "physical {physical} vs logical {logical}"
    );
    assert!(
        physical < logical * 3.0,
        "physical {physical} vs logical {logical}"
    );
}
