//! Integration tests of the storage layer with the rest of the system: a
//! corpus written to the binary columnar format and read back must produce
//! the same containment graph, and the footer-only path must expose the same
//! min/max metadata MMP relies on.

use r2d2_bench::experiments::{enterprise_corpora, Scale};
use r2d2_core::R2d2Pipeline;
use r2d2_lake::{storage, AccessProfile, DataLake, Meter};

#[test]
fn corpus_round_trips_through_storage_with_identical_containment_graph() {
    let corpus = &enterprise_corpora(Scale::Smoke)[2];
    let dir = std::env::temp_dir().join("r2d2_integration_storage");
    std::fs::create_dir_all(&dir).unwrap();

    // Write every dataset to disk and read it back into a fresh lake.
    let mut restored = DataLake::new();
    for entry in corpus.lake.iter() {
        let path = dir.join(format!("{}.r2d2", entry.id.0));
        storage::write_file(&entry.data, &path).unwrap();
        let read_back = storage::read_file(&path, &Meter::new()).unwrap();
        assert_eq!(read_back.num_rows(), entry.data.num_rows());
        assert_eq!(read_back.schema(), entry.data.schema());
        restored
            .add_dataset(
                entry.name.clone(),
                read_back,
                AccessProfile::default(),
                None,
            )
            .unwrap();
        std::fs::remove_file(&path).ok();
    }

    let original = R2d2Pipeline::with_defaults().run(&corpus.lake).unwrap();
    let roundtrip = R2d2Pipeline::with_defaults().run(&restored).unwrap();

    // Dataset ids are re-assigned in insertion order, which matches the
    // original iteration order, so the edge sets must be identical.
    let mut a = original.after_clp.edges();
    let mut b = roundtrip.after_clp.edges();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "containment graph must survive a storage round trip");
}

#[test]
fn footer_metadata_matches_in_memory_statistics() {
    let corpus = &enterprise_corpora(Scale::Smoke)[0];
    for entry in corpus.lake.iter().take(5) {
        let bytes = storage::encode(&entry.data);
        let meter = Meter::new();
        let footer = storage::read_footer(&bytes, &meter).unwrap();
        assert_eq!(
            meter.snapshot().rows_scanned,
            0,
            "footer read is metadata-only"
        );

        let from_footer = footer.table_level();
        for (name, stats) in entry.data.table_stats() {
            let f = &from_footer[name];
            assert_eq!(f.min, stats.min, "min mismatch for {name}");
            assert_eq!(f.max, stats.max, "max mismatch for {name}");
            assert_eq!(f.null_count, stats.null_count, "nulls mismatch for {name}");
        }
        assert_eq!(
            footer.row_counts.iter().sum::<u64>() as usize,
            entry.data.num_rows()
        );
    }
}

#[test]
fn encoded_size_tracks_logical_size() {
    let corpus = &enterprise_corpora(Scale::Smoke)[0];
    let mut entries = corpus.lake.iter();
    let small = entries.next().unwrap();
    let encoded = storage::encode(&small.data);
    // The binary format should be within a small constant factor of the
    // logical byte size (no blow-up, no impossible compression since values
    // are stored verbatim) — after setting aside the footer's fixed
    // per-column metadata (min/max, the 256-byte bloom sketch and the
    // 520-byte MinHash signature, once per row group and once at table
    // level), which dominates only for tiny tables like this one.
    let columns = small.data.schema().fields().len();
    let sections = small.data.num_partitions() + 1;
    let footer_allowance = (1024 * columns * sections) as f64;
    let logical = small.data.byte_size() as f64;
    let physical = encoded.len() as f64;
    assert!(
        physical > logical * 0.5,
        "physical {physical} vs logical {logical}"
    );
    assert!(
        physical < logical * 3.0 + footer_allowance,
        "physical {physical} vs logical {logical} (+{footer_allowance} footer allowance)"
    );
}

// ---------------------------------------------------------------------------
// Fuzz-style hardening of the v4 dictionary page decoder: every corruption
// must surface as an `Err` at materialization time — never a panic, never an
// out-of-bounds read. The single-column layout below makes the byte offsets
// deterministic so each test can aim at one specific field.
// ---------------------------------------------------------------------------

use r2d2_lake::{Column, DataType, PartitionedTable, Schema, Table};

/// 64 rows over 4 distinct strings — small enough that every offset is easy
/// to audit, repetitive enough that the encoder provably picks LAYOUT_DICT.
fn dict_table() -> PartitionedTable {
    let schema = Schema::flat(&[("s", DataType::Utf8)]).unwrap();
    let t = Table::new(
        schema,
        vec![Column::from_strs(
            (0..64).map(|i| format!("service-{}", i % 4)),
        )],
    )
    .unwrap();
    PartitionedTable::single(t)
}

/// Byte offset of the first (only) page frame: magic(8) + version(4) +
/// field_count(4) + [name_len(4) + "s"(1) + type(1)] + group_count(4) +
/// row_count(8).
const PAGE_FRAME: usize = 8 + 4 + 4 + (4 + 1 + 1) + 4 + 8;

/// Decode a corrupted file and force materialization of the one column;
/// returns the error message (panics the test if decoding *succeeds*).
fn materialize_err(bytes: Vec<u8>) -> String {
    match storage::decode(&bytes::Bytes::from(bytes), &Meter::new()) {
        // Header/footer-level corruption is caught eagerly by the decoder.
        Err(e) => e.to_string(),
        Ok(pt) => pt.partitions()[0].columns()[0]
            .try_values()
            .expect_err("corrupt dict page must fail to materialize")
            .to_string(),
    }
}

#[test]
fn dict_page_corruptions_error_instead_of_panicking() {
    let pt = dict_table();
    let encoded = storage::encode(&pt);
    let page_len =
        u32::from_le_bytes(encoded[PAGE_FRAME..PAGE_FRAME + 4].try_into().unwrap()) as usize;
    let page = PAGE_FRAME + 4;
    assert_eq!(encoded[page], 2, "test premise: encoder chose LAYOUT_DICT");
    // Page layout: tag(1) + bitmap(8) + dict_count(4) + 4×[len(4)+8 bytes] +
    // 64×code(4).
    let dict_count_at = page + 1 + 8;
    let first_len_at = dict_count_at + 4;
    let codes_at = first_len_at + 4 * (4 + "service-0".len());
    assert_eq!(page + page_len, codes_at + 64 * 4, "offset audit");

    // (a) Truncated dictionary: claim more entries than the page holds.
    let mut truncated = encoded.to_vec();
    truncated[dict_count_at..dict_count_at + 4].copy_from_slice(&1_000_000u32.to_le_bytes());
    let msg = materialize_err(truncated);
    assert!(msg.contains("truncated"), "unexpected error: {msg}");

    // (b) Out-of-range code: point a code past the 4-entry dictionary.
    let mut bad_code = encoded.to_vec();
    bad_code[codes_at..codes_at + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let msg = materialize_err(bad_code);
    assert!(msg.contains("out of range"), "unexpected error: {msg}");

    // (c) Bad length framing: one dictionary entry claims a huge payload.
    let mut bad_len = encoded.to_vec();
    bad_len[first_len_at..first_len_at + 4].copy_from_slice(&0xFFFF_FF00u32.to_le_bytes());
    let msg = materialize_err(bad_len);
    assert!(
        msg.contains("truncated") || msg.contains("length"),
        "unexpected error: {msg}"
    );
}

#[test]
fn every_single_byte_flip_in_the_dict_page_is_handled_gracefully() {
    let pt = dict_table();
    let encoded = storage::encode(&pt);
    let page_len =
        u32::from_le_bytes(encoded[PAGE_FRAME..PAGE_FRAME + 4].try_into().unwrap()) as usize;
    let page = PAGE_FRAME + 4;
    for i in page..page + page_len {
        let mut flipped = encoded.to_vec();
        flipped[i] ^= 0xFF;
        // Either the decoder rejects the file outright, or the lazy column
        // materializes to an Err, or the flip happened to produce another
        // well-formed page (e.g. a code remapped inside the dictionary) —
        // all acceptable; a panic or abort is not.
        if let Ok(decoded) = storage::decode(&bytes::Bytes::from(flipped), &Meter::new()) {
            let _ = decoded.partitions()[0].columns()[0].try_values();
        }
    }
}
