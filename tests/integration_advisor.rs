//! Integration tests of the live storage advisor: after ANY sequence of
//! [`LakeUpdate`]s applied through [`R2d2Session`], the incrementally
//! maintained Opt-Ret solution must be **identical** — same retained and
//! deleted sets, same reconstruction parents, same total cost — to a
//! from-scratch §5.1 preprocess + solve over the mutated lake
//! ([`r2d2_opt::advisor::from_scratch`] over a fresh batch pipeline run),
//! at any thread count. Mirrors the graph-equivalence oracle of
//! `tests/integration_dynamic.rs` one layer up the stack.

use r2d2_core::{AdvisorConfig, PipelineConfig, R2d2Pipeline, R2d2Session};
use r2d2_lake::{
    AccessProfile, Column, DataLake, DataType, DatasetId, LakeUpdate, Lineage, PartitionSpec,
    PartitionedTable, Predicate, Schema, Table, Value,
};
use r2d2_opt::advisor::from_scratch;
use r2d2_opt::preprocess::TransformKnowledge;
use r2d2_opt::{CostModel, Solution};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn config(threads: usize) -> PipelineConfig {
    PipelineConfig::default().with_seed(7).with_threads(threads)
}

fn advisor_config() -> AdvisorConfig {
    // AssumeKnown admits every containment edge as a reconstruction option,
    // so the random lakes below yield non-trivial Opt-Ret instances.
    AdvisorConfig::default().with_knowledge(TransformKnowledge::AssumeKnown)
}

/// Shared schema; every column is a function of the id so id-range subsets
/// are true row-tuple subsets.
fn table(ids: std::ops::Range<i64>) -> Table {
    let schema = Schema::flat(&[("id", DataType::Int), ("v", DataType::Float)]).unwrap();
    Table::new(
        schema,
        vec![
            Column::from_ints(ids.clone()),
            Column::from_floats(ids.map(|i| i as f64 * 0.5)),
        ],
    )
    .unwrap()
}

fn part(t: Table) -> PartitionedTable {
    PartitionedTable::from_table(
        t,
        PartitionSpec::ByRowCount {
            rows_per_partition: 16,
        },
    )
    .unwrap()
}

/// Deterministic starting lake (ids 0..4): one root, one subset, one
/// disjoint table, one overlapping slice — with a non-zero access profile so
/// reconstruction costs matter.
fn base_lake() -> DataLake {
    let access = AccessProfile {
        accesses_per_period: 0.5,
        maintenance_per_period: 4.0,
    };
    let mut lake = DataLake::new();
    let add = |lake: &mut DataLake, name: &str, t: Table| {
        lake.add_dataset(name, part(t), access, None).unwrap()
    };
    add(&mut lake, "root", table(0..60));
    add(&mut lake, "mid", table(10..40));
    add(&mut lake, "other", table(100..140));
    add(&mut lake, "slice", table(30..80));
    lake
}

/// Random but replayable update sequence over the base lake (same id
/// tracking as `tests/integration_dynamic.rs`, plus occasional lineage on
/// added datasets so the `Required` knowledge policy also sees edges).
fn gen_updates(seed: u64, count: usize) -> Vec<LakeUpdate> {
    let mut rng =
        SmallRng::seed_from_u64(seed.wrapping_mul(0x517C_C1B7).wrapping_add(count as u64));
    let mut live: Vec<u64> = vec![0, 1, 2, 3];
    let mut next_id = 4u64;
    let mut updates = Vec::with_capacity(count);
    for k in 0..count {
        let choice = if live.is_empty() {
            0
        } else {
            rng.gen_range(0u8..10)
        };
        match choice {
            0..=2 => {
                let start = rng.gen_range(0i64..80);
                let len = rng.gen_range(1i64..40);
                let lineage = if rng.gen_range(0u8..2) == 0 && !live.is_empty() {
                    Some(Lineage {
                        parent: DatasetId(live[rng.gen_range(0..live.len())]),
                        transform: format!("WHERE id BETWEEN {start} AND {}", start + len),
                    })
                } else {
                    None
                };
                updates.push(LakeUpdate::AddDataset {
                    name: format!("adv_{seed}_{k}"),
                    data: part(table(start..start + len)),
                    access: AccessProfile {
                        accesses_per_period: rng.gen_range(0.0..3.0),
                        maintenance_per_period: 4.0,
                    },
                    lineage,
                });
                live.push(next_id);
                next_id += 1;
            }
            3..=5 => {
                let id = live[rng.gen_range(0..live.len())];
                let start = rng.gen_range(0i64..80);
                let len = rng.gen_range(0i64..20);
                updates.push(LakeUpdate::AppendRows {
                    id: DatasetId(id),
                    rows: table(start..start + len),
                });
            }
            6..=7 => {
                let id = live[rng.gen_range(0..live.len())];
                let lo = rng.gen_range(0i64..80);
                let hi = lo + rng.gen_range(0i64..40);
                updates.push(LakeUpdate::DeleteRows {
                    id: DatasetId(id),
                    predicate: Predicate::between("id", Value::Int(lo), Value::Int(hi)),
                });
            }
            _ => {
                let idx = rng.gen_range(0..live.len());
                updates.push(LakeUpdate::DropDataset {
                    id: DatasetId(live.remove(idx)),
                });
            }
        }
    }
    updates
}

/// The from-scratch oracle: replay the updates on a fresh copy of the base
/// lake, run the full batch pipeline, preprocess + solve.
fn from_scratch_solution(updates: &[LakeUpdate]) -> Solution {
    let mut lake = base_lake();
    for update in updates {
        lake.apply_update(update).unwrap();
    }
    let graph = R2d2Pipeline::new(config(1)).run(&lake).unwrap().after_clp;
    from_scratch(&lake, &graph, &CostModel::default(), &advisor_config()).unwrap()
}

/// Run the session with the advisor attached; `advise_each` exercises the
/// dirty-component bookkeeping after every single update rather than once at
/// the end.
fn session_advice(updates: &[LakeUpdate], threads: usize, advise_each: bool) -> Solution {
    let mut session = R2d2Session::bootstrap(base_lake(), config(threads)).unwrap();
    session
        .enable_advisor(CostModel::default(), advisor_config())
        .unwrap();
    for update in updates {
        session.apply(update.clone()).unwrap();
        if advise_each {
            session.advise().unwrap();
        }
    }
    session.advise().unwrap()
}

proptest::proptest! {
    /// The incremental-advisor oracle: for ANY random update sequence the
    /// session's advice equals the from-scratch preprocess + solve over the
    /// mutated lake — same retained/deleted sets, reconstruction parents and
    /// total cost — at threads 1 and 4, whether the advisor re-solves after
    /// every update or once at the end.
    #[test]
    fn random_update_sequences_keep_advice_equal_to_from_scratch(
        seed in 0u64..1_000_000,
        count in 1usize..6,
    ) {
        let updates = gen_updates(seed, count);
        let expected = from_scratch_solution(&updates);

        let once1 = session_advice(&updates, 1, false);
        proptest::prop_assert_eq!(&once1, &expected, "threads=1, advise once");
        let each1 = session_advice(&updates, 1, true);
        proptest::prop_assert_eq!(&each1, &expected, "threads=1, advise per update");
        let each4 = session_advice(&updates, 4, true);
        proptest::prop_assert_eq!(&each4, &expected, "threads=4, advise per update");
    }
}

#[test]
fn advisor_matches_from_scratch_on_required_knowledge_with_lineage() {
    // Under the paper's Required policy only lineage-backed edges are
    // admissible; the oracle must hold there too.
    let access = AccessProfile {
        accesses_per_period: 0.1,
        maintenance_per_period: 4.0,
    };
    let mut lake = DataLake::new();
    let root = lake
        .add_dataset("root", part(table(0..60)), access, None)
        .unwrap();
    lake.add_dataset(
        "derived",
        part(table(5..35)),
        access,
        Some(Lineage {
            parent: root,
            transform: "WHERE id BETWEEN 5 AND 34".into(),
        }),
    )
    .unwrap();
    let mut session = R2d2Session::bootstrap(lake, config(1)).unwrap();
    session
        .enable_advisor(CostModel::default(), AdvisorConfig::default())
        .unwrap();
    let initial = session.advise().unwrap();
    assert!(
        initial.deleted.contains(&1),
        "the rarely-accessed lineage-backed subset should be deletable"
    );

    // Mutate the child, then the parent; the advice keeps matching.
    for update in [
        LakeUpdate::AppendRows {
            id: DatasetId(1),
            rows: table(35..45),
        },
        LakeUpdate::DeleteRows {
            id: DatasetId(0),
            predicate: Predicate::between("id", Value::Int(50), Value::Int(59)),
        },
    ] {
        session.apply(update).unwrap();
        let incremental = session.advise().unwrap();
        let fresh = from_scratch(
            session.lake(),
            session.graph(),
            &CostModel::default(),
            &AdvisorConfig::default(),
        )
        .unwrap();
        assert_eq!(incremental, fresh);
    }
}

#[test]
fn advisor_solution_is_feasible_and_actionable_on_a_corpus() {
    use r2d2_bench::experiments::{enterprise_corpora, Scale};

    let corpus = enterprise_corpora(Scale::Smoke)[0].clone();
    let mut session = R2d2Session::with_defaults(corpus.lake).unwrap();
    session
        .enable_advisor(CostModel::default(), AdvisorConfig::default())
        .unwrap();
    let report = session.advisor_report().unwrap();
    let problem = session.advisor_problem().unwrap();
    assert!(report.solution.is_feasible(&problem));
    assert!(report.total_cost <= report.retain_all_cost + 1e-9);
    // Every recommended deletion exists in the lake and has a retained
    // reconstruction parent with a live containment edge.
    for d in &report.solution.deleted {
        assert!(session.lake().contains(DatasetId(*d)));
        let parent = report.solution.reconstruction_parent[d];
        assert!(report.solution.retained.contains(&parent));
        assert!(session.graph().has_edge(parent, *d));
    }
}
