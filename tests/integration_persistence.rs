//! Integration tests of durable sessions: snapshot + write-ahead-log warm
//! restart must be **bit-identical** to never restarting at all.
//!
//! The property-based oracle below drives a random `LakeUpdate` stream into
//! a persisted session, kills it at a random point (dropping the process
//! state, keeping the files), restores, and compares graph, meter totals,
//! update log, caches and advisor advice against an uninterrupted in-memory
//! session — at threads 1 and 4, both right after the restore and after
//! feeding the remaining updates to both sessions. The remaining tests pin
//! the WAL edge cases: torn final record, checksum-corrupt record mid-log,
//! snapshot-only restore, and restoring a snapshot written at a different
//! `threads` setting.

use r2d2_core::{
    ApproxCandidates, ApproxConfig, CandidateSource, Failpoints, PersistenceConfig, PipelineConfig,
    R2d2Session, SessionSnapshot, UpdateReport,
};
use r2d2_lake::{
    AccessProfile, Column, DataLake, DataType, DatasetId, LakeUpdate, Meter, OpCounts,
    PartitionSpec, PartitionedTable, Predicate, Schema, Table, Value,
};
use r2d2_opt::advisor::AdvisorConfig;
use r2d2_opt::preprocess::TransformKnowledge;
use r2d2_opt::CostModel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn config(threads: usize) -> PipelineConfig {
    PipelineConfig::default().with_seed(7).with_threads(threads)
}

fn advisor_config() -> AdvisorConfig {
    AdvisorConfig::default().with_knowledge(TransformKnowledge::AssumeKnown)
}

/// Fresh scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("r2d2_integration_persistence")
        .join(tag);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// All oracle tables share one schema; every column is a function of the id,
/// so id-range subsets are true row-tuple subsets (same recipe as the
/// dynamic-updates oracle).
fn table(ids: std::ops::Range<i64>) -> Table {
    let schema = Schema::flat(&[
        ("id", DataType::Int),
        ("grp", DataType::Utf8),
        ("v", DataType::Float),
    ])
    .unwrap();
    Table::new(
        schema,
        vec![
            Column::from_ints(ids.clone()),
            Column::from_strs(ids.clone().map(|i| format!("g{}", i % 3))),
            Column::from_floats(ids.map(|i| i as f64 * 0.5)),
        ],
    )
    .unwrap()
}

fn part(t: Table) -> PartitionedTable {
    PartitionedTable::from_table(
        t,
        PartitionSpec::ByRowCount {
            rows_per_partition: 16,
        },
    )
    .unwrap()
}

fn base_lake() -> DataLake {
    let mut lake = DataLake::new();
    let add = |lake: &mut DataLake, name: &str, t: Table| {
        lake.add_dataset(name, part(t), AccessProfile::default(), None)
            .unwrap()
    };
    add(&mut lake, "root", table(0..60));
    add(&mut lake, "mid", table(10..40));
    add(&mut lake, "other", table(100..140));
    add(&mut lake, "slice", table(30..80));
    lake
}

/// Random but replayable update sequence over the base lake (ids tracked the
/// way the catalog assigns them).
fn gen_updates(seed: u64, count: usize) -> Vec<LakeUpdate> {
    let mut rng =
        SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(count as u64));
    let mut live: Vec<u64> = vec![0, 1, 2, 3];
    let mut next_id = 4u64;
    let mut updates = Vec::with_capacity(count);
    for k in 0..count {
        let choice = if live.is_empty() {
            0
        } else {
            rng.gen_range(0u8..10)
        };
        match choice {
            0..=2 => {
                let start = rng.gen_range(0i64..80);
                let len = rng.gen_range(1i64..40);
                updates.push(LakeUpdate::AddDataset {
                    name: format!("gen_{seed}_{k}"),
                    data: part(table(start..start + len)),
                    access: AccessProfile::default(),
                    lineage: None,
                });
                live.push(next_id);
                next_id += 1;
            }
            3..=5 => {
                let id = live[rng.gen_range(0..live.len())];
                let start = rng.gen_range(0i64..80);
                let len = rng.gen_range(0i64..20);
                updates.push(LakeUpdate::AppendRows {
                    id: DatasetId(id),
                    rows: table(start..start + len),
                });
            }
            6..=7 => {
                let id = live[rng.gen_range(0..live.len())];
                let lo = rng.gen_range(0i64..80);
                let hi = lo + rng.gen_range(0i64..40);
                updates.push(LakeUpdate::DeleteRows {
                    id: DatasetId(id),
                    predicate: Predicate::between("id", Value::Int(lo), Value::Int(hi)),
                });
            }
            _ => {
                let idx = rng.gen_range(0..live.len());
                updates.push(LakeUpdate::DropDataset {
                    id: DatasetId(live.remove(idx)),
                });
            }
        }
    }
    updates
}

/// The deterministic slice of an `UpdateReport` (everything except wall
/// clock — replayed batches re-measure their own durations).
#[derive(Debug, Clone, PartialEq)]
struct ComparableReport {
    updates_applied: usize,
    applied: Vec<r2d2_lake::AppliedUpdate>,
    datasets_changed: usize,
    candidates_checked: usize,
    rows_sampled: usize,
    delta: r2d2_graph::diff::EdgeDelta,
    ops: OpCounts,
}

fn comparable(report: &UpdateReport) -> ComparableReport {
    ComparableReport {
        updates_applied: report.updates_applied,
        applied: report.applied.clone(),
        datasets_changed: report.datasets_changed,
        candidates_checked: report.candidates_checked,
        rows_sampled: report.rows_sampled,
        delta: report.delta.clone(),
        // Page counters are process-local laziness telemetry: a restored
        // session re-skips pages the live one decoded eagerly, so they are
        // excluded from the bit-identity oracle (everything else is exact).
        ops: report.ops.without_page_counters(),
    }
}

/// Assert two sessions are observably identical (graph with node ids, meter
/// totals, update log minus durations, catalog contents, cache population,
/// and — when advisors are attached — advice and pruned problem).
fn assert_sessions_identical(a: &mut R2d2Session, b: &mut R2d2Session, context: &str) {
    assert_eq!(a.graph(), b.graph(), "{context}: graph diverged");
    assert_eq!(
        a.ops().without_page_counters(),
        b.ops().without_page_counters(),
        "{context}: meter totals diverged"
    );
    assert_eq!(
        a.update_log().iter().map(comparable).collect::<Vec<_>>(),
        b.update_log().iter().map(comparable).collect::<Vec<_>>(),
        "{context}: update log diverged"
    );
    let (ra, rb) = (a.report(), b.report());
    assert_eq!(ra.datasets, rb.datasets, "{context}: dataset count");
    assert_eq!(ra.updates_applied, rb.updates_applied, "{context}: updates");
    assert_eq!(ra.batches_applied, rb.batches_applied, "{context}: batches");
    assert_eq!(
        a.cached_build_sides(),
        b.cached_build_sides(),
        "{context}: hash-join cache population diverged"
    );
    assert_eq!(a.config(), b.config(), "{context}: config diverged");
    assert_eq!(a.lake().len(), b.lake().len(), "{context}: catalog size");
    for (ea, eb) in a.lake().iter().zip(b.lake().iter()) {
        assert_eq!(ea.id, eb.id, "{context}: dataset ids");
        assert_eq!(ea.name, eb.name, "{context}: dataset names");
        assert_eq!(*ea.data, *eb.data, "{context}: dataset {} data", ea.name);
        assert_eq!(ea.access, eb.access, "{context}: access profile");
        assert_eq!(ea.lineage, eb.lineage, "{context}: lineage");
    }
    assert_eq!(
        a.advisor_enabled(),
        b.advisor_enabled(),
        "{context}: advisor attachment"
    );
    if a.advisor_enabled() {
        assert_eq!(
            a.advisor_problem().unwrap(),
            b.advisor_problem().unwrap(),
            "{context}: advisor problem diverged"
        );
        assert_eq!(
            a.advise().unwrap(),
            b.advise().unwrap(),
            "{context}: advice diverged"
        );
    }
}

/// Bootstrap a session with an attached advisor over the base lake.
fn advised_session_with(cfg: PipelineConfig) -> R2d2Session {
    let mut session = R2d2Session::bootstrap(base_lake(), cfg).unwrap();
    session
        .enable_advisor(CostModel::default(), advisor_config())
        .unwrap();
    session
}

/// Bootstrap a session with an attached advisor over the base lake.
fn advised_session(threads: usize) -> R2d2Session {
    advised_session_with(config(threads))
}

proptest::proptest! {
    /// The crash-restore oracle: persist a session, kill it after a random
    /// prefix of a random update stream, restore from disk, and the result
    /// is bit-identical to the uninterrupted in-memory session — and stays
    /// identical while both keep applying the remaining updates, at
    /// threads 1 and 4. `snapshot_every_n_updates = 2` forces mid-stream
    /// compactions, so restores exercise snapshot + WAL-tail replay in all
    /// phases.
    #[test]
    fn killed_and_restored_session_matches_uninterrupted_run(
        seed in 0u64..1_000_000,
        count in 1usize..5,
        kill in 0usize..5,
        approx in 0u8..2,
        segment_budget in 0u8..3,
    ) {
        let updates = gen_updates(seed, count);
        let kill = kill % (updates.len() + 1);
        for threads in [1usize, 4] {
            let dir = scratch_dir(&format!("oracle_{seed}_{count}_{kill}_{threads}_{approx}"));
            let cfg = if approx == 1 {
                config(threads).with_approx(ApproxConfig::default())
            } else {
                config(threads)
            };

            // The durable session: advisor + persistence, killed after
            // `kill` updates (drop = crash; state survives only on disk).
            // The default rebase cadence makes generations 2+ delta chains;
            // a non-zero segment budget forces mid-generation WAL segment
            // rotations, so restores replay multi-segment logs too.
            let mut durable = advised_session_with(cfg.clone());
            durable
                .enable_persistence(
                    PersistenceConfig::new(&dir)
                        .with_snapshot_every(2)
                        .with_wal_segment_max_bytes([0, 200, 4096][segment_budget as usize]),
                )
                .unwrap();
            for update in &updates[..kill] {
                durable.apply(update.clone()).unwrap();
            }
            drop(durable);

            // The uninterrupted session: same stream, never persisted.
            let mut uninterrupted = advised_session_with(cfg);
            for update in &updates[..kill] {
                uninterrupted.apply(update.clone()).unwrap();
            }

            let mut restored = R2d2Session::restore(&dir).unwrap();
            proptest::prop_assert!(restored.persistence_enabled());
            assert_sessions_identical(
                &mut restored,
                &mut uninterrupted,
                &format!("threads={threads} after restore"),
            );

            // Keep going on both sides: the restored session must stay
            // bit-identical, not just match at the restore point.
            for update in &updates[kill..] {
                restored.apply(update.clone()).unwrap();
                uninterrupted.apply(update.clone()).unwrap();
            }
            assert_sessions_identical(
                &mut restored,
                &mut uninterrupted,
                &format!("threads={threads} after continuing"),
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Find generation files in a persistence dir.
fn wal_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "r2d2wal"))
        .collect();
    files.sort();
    files
}

#[test]
fn truncated_final_wal_record_restores_to_the_previous_batch() {
    let dir = scratch_dir("truncated_tail");
    let updates = gen_updates(11, 3);

    let mut durable = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
    durable
        .enable_persistence(PersistenceConfig::new(&dir).with_snapshot_every(0))
        .unwrap();
    for update in &updates {
        durable.apply(update.clone()).unwrap();
    }
    drop(durable);

    // Crash mid-append: chop bytes off the live WAL's final record.
    let wal = wal_files(&dir).pop().unwrap();
    let raw = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &raw[..raw.len() - 3]).unwrap();

    // Expected state: every batch before the torn one.
    let mut expected = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
    for update in &updates[..2] {
        expected.apply(update.clone()).unwrap();
    }

    let mut restored = R2d2Session::restore(&dir).unwrap();
    assert_sessions_identical(&mut restored, &mut expected, "torn final record");
    // The torn log was retired: restore rotated to a fresh generation so
    // new appends are reachable.
    assert_eq!(restored.persistence_generation(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_mid_log_record_drops_it_and_everything_behind_it() {
    let dir = scratch_dir("corrupt_mid");
    let updates = gen_updates(23, 3);

    let mut durable = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
    durable
        .enable_persistence(PersistenceConfig::new(&dir).with_snapshot_every(0))
        .unwrap();
    for update in &updates {
        durable.apply(update.clone()).unwrap();
    }
    drop(durable);

    // Flip one byte inside the SECOND record's payload: records 2 and 3 are
    // both unrecoverable (nothing after a corrupt record can be trusted),
    // record 1 survives. The segment header is 24 bytes (magic, version,
    // generation, segment index); each record adds 12 bytes of framing.
    let wal = wal_files(&dir).pop().unwrap();
    let mut raw = std::fs::read(&wal).unwrap();
    let len1 = u32::from_le_bytes(raw[24..28].try_into().unwrap()) as usize;
    let second_payload = 24 + (12 + len1) + 12;
    raw[second_payload] ^= 0xFF;
    std::fs::write(&wal, &raw).unwrap();

    let mut expected = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
    expected.apply(updates[0].clone()).unwrap();

    let mut restored = R2d2Session::restore(&dir).unwrap();
    assert_sessions_identical(&mut restored, &mut expected, "corrupt mid-log record");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_only_restore_without_wal_records() {
    let dir = scratch_dir("snapshot_only");
    let mut durable = advised_session(1);
    durable.advise().unwrap();
    durable
        .enable_persistence(PersistenceConfig::new(&dir))
        .unwrap();
    drop(durable);

    // Empty WAL (header only): restore is pure snapshot decode.
    let mut expected = advised_session(1);
    expected.advise().unwrap();
    let mut restored = R2d2Session::restore(&dir).unwrap();
    assert_sessions_identical(&mut restored, &mut expected, "empty WAL");

    // Even with the WAL file deleted outright, the snapshot alone restores.
    let wal = wal_files(&dir).pop().unwrap();
    std::fs::remove_file(&wal).unwrap();
    let mut restored = R2d2Session::restore(&dir).unwrap();
    assert_sessions_identical(&mut restored, &mut expected, "missing WAL");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_written_at_four_threads_restores_against_single_threaded_run() {
    let dir = scratch_dir("cross_threads");
    let updates = gen_updates(5, 4);

    // Persisted session runs at threads = 4...
    let mut durable = advised_session(4);
    durable
        .enable_persistence(PersistenceConfig::new(&dir).with_snapshot_every(2))
        .unwrap();
    for update in &updates {
        durable.apply(update.clone()).unwrap();
    }
    drop(durable);

    // ...the reference runs single-threaded and never persists. Thread
    // count must change nothing observable, so the restored 4-thread
    // session matches it bit-for-bit (configs differ by `threads` only).
    let mut single = advised_session(1);
    for update in &updates {
        single.apply(update.clone()).unwrap();
    }

    let mut restored = R2d2Session::restore(&dir).unwrap();
    assert_eq!(restored.config().threads, 4, "threads setting round-trips");
    assert_eq!(restored.config(), &config(4));
    assert_eq!(restored.graph(), single.graph());
    assert_eq!(
        restored.ops().without_page_counters(),
        single.ops().without_page_counters()
    );
    assert_eq!(
        restored
            .update_log()
            .iter()
            .map(comparable)
            .collect::<Vec<_>>(),
        single
            .update_log()
            .iter()
            .map(comparable)
            .collect::<Vec<_>>()
    );
    assert_eq!(restored.advise().unwrap(), single.advise().unwrap());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compaction_rotates_generations_and_prunes_old_files() {
    let dir = scratch_dir("compaction");
    let updates = gen_updates(31, 4);

    let mut durable = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
    durable
        .enable_persistence(
            PersistenceConfig::new(&dir)
                .with_snapshot_every(1)
                .with_rebase_every(2),
        )
        .unwrap();
    assert_eq!(durable.persistence_generation(), Some(1));
    for update in &updates {
        durable.apply(update.clone()).unwrap();
    }
    // Every applied update crossed the threshold → one rotation per batch:
    // generation 1 is the full snapshot `enable_persistence` wrote, 2 and 3
    // are deltas chained onto it, 4 rebases (two deltas hit the quota) and
    // 5 is a delta on the new full base.
    assert_eq!(durable.persistence_generation(), Some(5));
    assert_eq!(durable.wal_tail_updates(), Some(0));

    // Only the generations a restore chain can reach remain: the current
    // chain (5 → 4) and its fallback (4). The old full at 1 outlived its
    // own rotation — generations 2 and 3 chained onto it — and was pruned,
    // with its dependents and their WAL segments, only once the rebase at 4
    // cut the last chain through it.
    let mut snapshots: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".r2d2snap"))
        .collect();
    snapshots.sort();
    assert_eq!(
        snapshots,
        vec![
            "snapshot-000004.r2d2snap".to_string(),
            "snapshot-000005.r2d2snap".to_string()
        ]
    );
    let stats = durable.wal_stats().unwrap();
    assert_eq!(
        stats.segments_compacted, 3,
        "generations 1-3 each gave up one WAL segment to compaction"
    );
    // The delta generation undercuts the full snapshot it chains onto.
    let full = std::fs::metadata(dir.join("snapshot-000004.r2d2snap"))
        .unwrap()
        .len();
    let delta = std::fs::metadata(dir.join("snapshot-000005.r2d2snap"))
        .unwrap()
        .len();
    assert!(
        delta < full,
        "delta generation ({delta} B) must undercut its full base ({full} B)"
    );

    let mut expected = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
    for update in &updates {
        expected.apply(update.clone()).unwrap();
    }
    let mut restored = R2d2Session::restore(&dir).unwrap();
    assert_sessions_identical(&mut restored, &mut expected, "after compaction");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_snapshot_falls_back_to_previous_generation() {
    let dir = scratch_dir("fallback");
    let updates = gen_updates(47, 3);

    let mut durable = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
    durable
        .enable_persistence(PersistenceConfig::new(&dir).with_snapshot_every(0))
        .unwrap();
    for update in &updates[..2] {
        durable.apply(update.clone()).unwrap();
    }
    durable.checkpoint().unwrap();
    durable.apply(updates[2].clone()).unwrap();
    drop(durable);

    // Destroy the newest snapshot (generation 2). Restore must fall back
    // to generation 1 and replay its WAL (updates 1 and 2 — which lands
    // exactly on the state snapshot 2 captured), then continue through
    // generation 2's intact WAL (update 3). Nothing acknowledged is lost.
    let snap2 = dir.join("snapshot-000002.r2d2snap");
    let mut raw = std::fs::read(&snap2).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0xFF;
    std::fs::write(&snap2, &raw).unwrap();

    let mut expected = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
    for update in &updates {
        expected.apply(update.clone()).unwrap();
    }
    let mut restored = R2d2Session::restore(&dir).unwrap();
    assert_sessions_identical(&mut restored, &mut expected, "generation fallback");
    // The degraded directory was rotated to a coherent fresh generation.
    assert_eq!(restored.persistence_generation(), Some(3));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metered_traffic_and_refresh_survive_the_crash() {
    let dir = scratch_dir("access_refresh");
    let mut durable = advised_session(1);
    durable.advise().unwrap();
    durable
        .enable_persistence(PersistenceConfig::new(&dir).with_snapshot_every(0))
        .unwrap();

    // Serve read traffic through the metered entry point, fold it into the
    // profiles, and crash WITHOUT a checkpoint. Refreshes are the sync
    // points for read-side telemetry: the WAL record carries the drained
    // tallies and the meter totals at the drain, so everything up to the
    // refresh survives the crash even though no snapshot followed it.
    for _ in 0..5 {
        durable
            .lake()
            .query_dataset(DatasetId(1), &Predicate::True, Some(4))
            .unwrap();
    }
    assert_eq!(durable.refresh_access_profiles().unwrap(), 1);
    durable
        .apply(LakeUpdate::AppendRows {
            id: DatasetId(1),
            rows: table(40..45),
        })
        .unwrap();
    drop(durable);

    let mut expected = advised_session(1);
    expected.advise().unwrap();
    for _ in 0..5 {
        expected
            .lake()
            .query_dataset(DatasetId(1), &Predicate::True, Some(4))
            .unwrap();
    }
    assert_eq!(expected.refresh_access_profiles().unwrap(), 1);
    expected
        .apply(LakeUpdate::AppendRows {
            id: DatasetId(1),
            rows: table(40..45),
        })
        .unwrap();

    let mut restored = R2d2Session::restore(&dir).unwrap();
    assert_sessions_identical(&mut restored, &mut expected, "metered traffic");

    // Post-restore, identical traffic keeps identical outcomes: the hot
    // profile cools back down on both sides and the advice agrees.
    for session in [&mut restored, &mut expected] {
        session
            .lake()
            .query_dataset(DatasetId(0), &Predicate::True, Some(2))
            .unwrap();
    }
    assert_eq!(
        restored.refresh_access_profiles().unwrap(),
        expected.refresh_access_profiles().unwrap()
    );
    assert_sessions_identical(&mut restored, &mut expected, "post-restore traffic");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn approx_session_restores_with_identical_signatures_and_gating() {
    let dir = scratch_dir("approx_restore");
    let updates = gen_updates(61, 4);
    let approx_cfg = || config(1).with_approx(ApproxConfig::default());

    let mut durable = R2d2Session::bootstrap(base_lake(), approx_cfg()).unwrap();
    durable
        .enable_persistence(PersistenceConfig::new(&dir).with_snapshot_every(2))
        .unwrap();
    for update in &updates[..2] {
        durable.apply(update.clone()).unwrap();
    }
    drop(durable);

    let mut uninterrupted = R2d2Session::bootstrap(base_lake(), approx_cfg()).unwrap();
    for update in &updates[..2] {
        uninterrupted.apply(update.clone()).unwrap();
    }

    let mut restored = R2d2Session::restore(&dir).unwrap();
    assert_eq!(
        restored.config().approx,
        Some(ApproxConfig::default()),
        "approx config round-trips through the snapshot"
    );
    assert_sessions_identical(&mut restored, &mut uninterrupted, "approx restore");

    // The candidate tier reattaches bit-for-bit from the persisted footer
    // signatures: per-dataset signatures, every pairwise gating decision,
    // and the probe/prune counters the gate meters all agree — no row was
    // re-hashed to get there.
    let approx = restored.config().approx.unwrap();
    let (restored_meter, live_meter) = (Meter::new(), Meter::new());
    let restored_source = ApproxCandidates::build(restored.lake(), &approx, &restored_meter);
    let live_source = ApproxCandidates::build(uninterrupted.lake(), &approx, &live_meter);
    assert_eq!(restored_source.len(), live_source.len());
    let ids: Vec<u64> = restored.lake().iter().map(|e| e.id.0).collect();
    for &id in &ids {
        let a = restored_source.signature(id).expect("signature present");
        let b = live_source.signature(id).expect("signature present");
        assert_eq!(a.mins(), b.mins(), "signature minima diverged for ds{id}");
        assert_eq!(
            a.cardinality, b.cardinality,
            "cardinality diverged for ds{id}"
        );
    }
    for &p in &ids {
        for &c in &ids {
            if p != c {
                assert_eq!(
                    restored_source.admit(p, c),
                    live_source.admit(p, c),
                    "gating decision diverged for ({p}, {c})"
                );
            }
        }
    }
    assert_eq!(
        restored_meter.snapshot(),
        live_meter.snapshot(),
        "gate metering diverged"
    );

    // And the restored session keeps gating identically under further
    // updates.
    for update in &updates[2..] {
        restored.apply(update.clone()).unwrap();
        uninterrupted.apply(update.clone()).unwrap();
    }
    assert_sessions_identical(&mut restored, &mut uninterrupted, "approx continue");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn old_snapshot_versions_fail_with_an_explicit_error() {
    let session = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
    let snapshot = session.snapshot();
    let mut raw = snapshot.as_bytes().to_vec();
    // Patch only the version field (bytes 8..12, after the magic): the
    // reader must refuse v1–v4 by version, before it even reaches the
    // checksum, rather than misparse the old layout (v4 in particular had
    // no kind byte — a v5 reader treating it as current would misparse the
    // body as a kind tag).
    for old in [1u32, 2, 3, 4] {
        raw[8..12].copy_from_slice(&old.to_le_bytes());
        let err = SessionSnapshot::from_bytes(raw.clone())
            .restore()
            .unwrap_err();
        assert!(
            err.to_string()
                .contains(&format!("unsupported snapshot version {old}")),
            "wrong error for snapshot v{old}: {err}"
        );
    }
}

#[test]
fn in_memory_snapshot_round_trips_without_disk() {
    let mut session = advised_session(1);
    session.advise().unwrap();
    let snapshot = session.snapshot();
    let mut restored = snapshot.restore().unwrap();
    assert!(!restored.persistence_enabled());
    // The image is canonical: capturing the restored session (before any
    // further state-moving calls) reproduces the exact same bytes.
    assert_eq!(restored.snapshot().as_bytes(), snapshot.as_bytes());
    assert_sessions_identical(&mut restored, &mut session, "in-memory snapshot");
}

#[test]
fn restore_of_an_empty_directory_is_a_clean_error() {
    let dir = scratch_dir("empty_dir");
    assert!(R2d2Session::restore(&dir).is_err());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn old_wal_versions_fail_with_an_explicit_error() {
    let dir = scratch_dir("wal_versions");
    let mut durable = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
    durable
        .enable_persistence(PersistenceConfig::new(&dir).with_snapshot_every(0))
        .unwrap();
    durable.apply(gen_updates(3, 1)[0].clone()).unwrap();
    drop(durable);

    // Patch only the version field (bytes 8..12, after the magic): a v5
    // reader must refuse v1–v4 segments by version — v4 and older had no
    // generation/segment fields, so parsing one as current would misread
    // record framing as header bytes.
    let wal = wal_files(&dir).pop().unwrap();
    let pristine = std::fs::read(&wal).unwrap();
    for old in [1u32, 2, 3, 4] {
        let mut raw = pristine.clone();
        raw[8..12].copy_from_slice(&old.to_le_bytes());
        std::fs::write(&wal, &raw).unwrap();
        let err = r2d2_lake::wal::read_records(&wal).unwrap_err();
        assert!(
            err.to_string()
                .contains(&format!("unsupported WAL version {old}")),
            "wrong error for WAL v{old}: {err}"
        );
    }

    // A session-level restore treats the unreadable segment as a torn tail:
    // the snapshot's state survives and the directory rotates to a coherent
    // fresh generation instead of panicking.
    let restored = R2d2Session::restore(&dir).unwrap();
    assert_eq!(restored.persistence_generation(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

/// One run of the crash-point matrix: arm `site`, drive updates until the
/// injected crash fires, kill the session (drop — state survives only on
/// disk), and the restored session must be bit-for-bit identical to an
/// uninterrupted session over the applied update prefix — then both sides
/// continue through the rest of the stream and must stay identical.
fn run_crash_point(
    site: &str,
    threads: usize,
    configure: impl FnOnce(PersistenceConfig) -> PersistenceConfig,
) {
    let updates = gen_updates(97, 6);
    let dir = scratch_dir(&format!("faults_{}_{threads}", site.replace(':', "_")));

    let mut durable = R2d2Session::bootstrap(base_lake(), config(threads)).unwrap();
    durable
        .enable_persistence(configure(PersistenceConfig::new(&dir)))
        .unwrap();
    // Arm the crash point only after generation 1 is live, so the kill
    // lands mid-stream rather than inside `enable_persistence`.
    let fired = Arc::new(AtomicBool::new(false));
    let hook_fired = Arc::clone(&fired);
    let target = site.to_string();
    durable.set_failpoints(Failpoints::new(move |s| {
        s == target && !hook_fired.swap(true, Ordering::SeqCst)
    }));

    // Drive updates until the crash fires. Checkpoint-site crashes surface
    // as an error from `apply` (the update itself is already durable in the
    // WAL); prune-site crashes are swallowed (pruning is best-effort) — the
    // hook flag is the kill signal either way.
    let mut killed = false;
    for update in &updates {
        let result = durable.apply(update.clone());
        if fired.load(Ordering::SeqCst) {
            if let Err(e) = result {
                assert!(
                    e.to_string().contains("injected crash"),
                    "{site}: unexpected error {e}"
                );
            }
            killed = true;
            break;
        }
        result.unwrap_or_else(|e| panic!("{site}: clean apply failed: {e}"));
    }
    assert!(killed, "crash site {site} never fired");
    let applied = durable.report().updates_applied;
    drop(durable);

    // The uninterrupted reference: exactly the applied prefix, never
    // persisted.
    let mut reference = R2d2Session::bootstrap(base_lake(), config(threads)).unwrap();
    for update in &updates[..applied] {
        reference.apply(update.clone()).unwrap();
    }
    let mut restored =
        R2d2Session::restore(&dir).unwrap_or_else(|e| panic!("{site}: restore failed: {e}"));
    assert!(restored.persistence_enabled());
    assert_sessions_identical(
        &mut restored,
        &mut reference,
        &format!("{site} threads={threads} after restore"),
    );

    // Both sides keep applying; the restored one keeps persisting.
    for update in &updates[applied..] {
        restored.apply(update.clone()).unwrap();
        reference.apply(update.clone()).unwrap();
    }
    assert_sessions_identical(
        &mut restored,
        &mut reference,
        &format!("{site} threads={threads} after continuing"),
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The crash-point fault-injection matrix: kill the session at every named
/// persistence write site — mid-delta checkpoint, mid-rebase checkpoint,
/// between the checkpoint's WAL/tmp/rename steps, mid-segment-rotation and
/// mid-prune — at threads 1 and 4. Restored state must equal the
/// uninterrupted run over the acknowledged prefix at every point.
#[test]
fn crash_point_matrix_restores_the_applied_prefix_at_every_site() {
    // `snapshot_every(1)` checkpoints after every update;
    // `rebase_every(2)` makes the stream hit both checkpoint kinds:
    // generations 2–3 are deltas, 4 is a rebase. The first prune with
    // victims runs at generation 5 (the rebase cut the chain through 1–3).
    let checkpoint_sites = [
        "delta:encoded",
        "delta:wal-created",
        "delta:tmp-written",
        "delta:renamed",
        "rebase:encoded",
        "rebase:wal-created",
        "rebase:tmp-written",
        "rebase:renamed",
        "prune:begin",
        "prune:mid",
    ];
    for threads in [1usize, 4] {
        for site in checkpoint_sites {
            run_crash_point(site, threads, |c| {
                c.with_snapshot_every(1).with_rebase_every(2)
            });
        }
        // Segment rotation only happens while one generation's WAL keeps
        // growing: checkpoints off, one-byte segment budget.
        run_crash_point("rotate:created", threads, |c| {
            c.with_snapshot_every(0).with_wal_segment_max_bytes(1)
        });
    }
}

/// Chain corruption: flip one byte in each link of a three-generation delta
/// chain (full base, middle delta, newest delta) and in the newest WAL
/// segment. Restore must fall back to the newest intact prefix-chain — with
/// WAL replay recovering every acknowledged update — or, when the chain's
/// full base itself is gone, fail cleanly. Never a panic.
#[test]
fn chain_corruption_falls_back_to_the_newest_intact_prefix() {
    let updates = gen_updates(71, 3);
    let build = |dir: &Path| {
        let mut durable = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
        durable
            .enable_persistence(PersistenceConfig::new(dir).with_snapshot_every(0))
            .unwrap();
        durable.apply(updates[0].clone()).unwrap();
        durable.checkpoint().unwrap(); // generation 2: delta on 1
        durable.apply(updates[1].clone()).unwrap();
        durable.checkpoint().unwrap(); // generation 3: delta on 2
        durable.apply(updates[2].clone()).unwrap(); // WAL tail of generation 3
        drop(durable);
    };
    let expected_through = |n: usize| {
        let mut session = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
        for update in &updates[..n] {
            session.apply(update.clone()).unwrap();
        }
        session
    };

    // Chain-aware pruning kept every link: the newest delta still has its
    // base delta and the chain's full bottom on disk.
    let dir = scratch_dir("chain_intact");
    build(&dir);
    for seq in 1..=3u64 {
        assert!(
            dir.join(format!("snapshot-{seq:06}.r2d2snap")).exists(),
            "chain link {seq} was pruned while a dependent delta survived"
        );
    }
    std::fs::remove_dir_all(&dir).ok();

    for victim in [1u64, 2, 3] {
        let dir = scratch_dir(&format!("chain_victim_{victim}"));
        build(&dir);
        let path = dir.join(format!("snapshot-{victim:06}.r2d2snap"));
        let mut raw = std::fs::read(&path).unwrap();
        let mid = raw.len() / 2;
        raw[mid] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        if victim == 1 {
            // The full base sits below every chain: no intact chain
            // remains, and restore reports that cleanly.
            R2d2Session::restore(&dir).unwrap_err();
        } else {
            // A broken middle or top link falls the walk back to the
            // newest intact chain; replaying the newer generations' WAL
            // segments on top recovers every acknowledged update.
            let mut restored = R2d2Session::restore(&dir).unwrap();
            let mut expected = expected_through(3);
            assert_sessions_identical(
                &mut restored,
                &mut expected,
                &format!("chain victim {victim}"),
            );
            assert_eq!(
                restored.persistence_generation(),
                Some(4),
                "degraded directory rotates to a fresh full generation"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    // Flip a byte in the newest WAL segment instead: the torn tail drops
    // only the unacknowledged record behind it — everything the chain
    // captured survives.
    let dir = scratch_dir("chain_victim_wal");
    build(&dir);
    let wal3 = dir.join("wal-000003-000.r2d2wal");
    let mut raw = std::fs::read(&wal3).unwrap();
    let first_payload = 24 + 12; // segment header + record framing
    raw[first_payload] ^= 0xFF;
    std::fs::write(&wal3, &raw).unwrap();
    let mut restored = R2d2Session::restore(&dir).unwrap();
    let mut expected = expected_through(2);
    assert_sessions_identical(&mut restored, &mut expected, "corrupt newest WAL segment");
    std::fs::remove_dir_all(&dir).ok();
}
