//! Integration tests of durable sessions: snapshot + write-ahead-log warm
//! restart must be **bit-identical** to never restarting at all.
//!
//! The property-based oracle below drives a random `LakeUpdate` stream into
//! a persisted session, kills it at a random point (dropping the process
//! state, keeping the files), restores, and compares graph, meter totals,
//! update log, caches and advisor advice against an uninterrupted in-memory
//! session — at threads 1 and 4, both right after the restore and after
//! feeding the remaining updates to both sessions. The remaining tests pin
//! the WAL edge cases: torn final record, checksum-corrupt record mid-log,
//! snapshot-only restore, and restoring a snapshot written at a different
//! `threads` setting.

use r2d2_core::{
    ApproxCandidates, ApproxConfig, CandidateSource, PersistenceConfig, PipelineConfig,
    R2d2Session, SessionSnapshot, UpdateReport,
};
use r2d2_lake::{
    AccessProfile, Column, DataLake, DataType, DatasetId, LakeUpdate, Meter, OpCounts,
    PartitionSpec, PartitionedTable, Predicate, Schema, Table, Value,
};
use r2d2_opt::advisor::AdvisorConfig;
use r2d2_opt::preprocess::TransformKnowledge;
use r2d2_opt::CostModel;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};

fn config(threads: usize) -> PipelineConfig {
    PipelineConfig::default().with_seed(7).with_threads(threads)
}

fn advisor_config() -> AdvisorConfig {
    AdvisorConfig::default().with_knowledge(TransformKnowledge::AssumeKnown)
}

/// Fresh scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("r2d2_integration_persistence")
        .join(tag);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// All oracle tables share one schema; every column is a function of the id,
/// so id-range subsets are true row-tuple subsets (same recipe as the
/// dynamic-updates oracle).
fn table(ids: std::ops::Range<i64>) -> Table {
    let schema = Schema::flat(&[
        ("id", DataType::Int),
        ("grp", DataType::Utf8),
        ("v", DataType::Float),
    ])
    .unwrap();
    Table::new(
        schema,
        vec![
            Column::from_ints(ids.clone()),
            Column::from_strs(ids.clone().map(|i| format!("g{}", i % 3))),
            Column::from_floats(ids.map(|i| i as f64 * 0.5)),
        ],
    )
    .unwrap()
}

fn part(t: Table) -> PartitionedTable {
    PartitionedTable::from_table(
        t,
        PartitionSpec::ByRowCount {
            rows_per_partition: 16,
        },
    )
    .unwrap()
}

fn base_lake() -> DataLake {
    let mut lake = DataLake::new();
    let add = |lake: &mut DataLake, name: &str, t: Table| {
        lake.add_dataset(name, part(t), AccessProfile::default(), None)
            .unwrap()
    };
    add(&mut lake, "root", table(0..60));
    add(&mut lake, "mid", table(10..40));
    add(&mut lake, "other", table(100..140));
    add(&mut lake, "slice", table(30..80));
    lake
}

/// Random but replayable update sequence over the base lake (ids tracked the
/// way the catalog assigns them).
fn gen_updates(seed: u64, count: usize) -> Vec<LakeUpdate> {
    let mut rng =
        SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(count as u64));
    let mut live: Vec<u64> = vec![0, 1, 2, 3];
    let mut next_id = 4u64;
    let mut updates = Vec::with_capacity(count);
    for k in 0..count {
        let choice = if live.is_empty() {
            0
        } else {
            rng.gen_range(0u8..10)
        };
        match choice {
            0..=2 => {
                let start = rng.gen_range(0i64..80);
                let len = rng.gen_range(1i64..40);
                updates.push(LakeUpdate::AddDataset {
                    name: format!("gen_{seed}_{k}"),
                    data: part(table(start..start + len)),
                    access: AccessProfile::default(),
                    lineage: None,
                });
                live.push(next_id);
                next_id += 1;
            }
            3..=5 => {
                let id = live[rng.gen_range(0..live.len())];
                let start = rng.gen_range(0i64..80);
                let len = rng.gen_range(0i64..20);
                updates.push(LakeUpdate::AppendRows {
                    id: DatasetId(id),
                    rows: table(start..start + len),
                });
            }
            6..=7 => {
                let id = live[rng.gen_range(0..live.len())];
                let lo = rng.gen_range(0i64..80);
                let hi = lo + rng.gen_range(0i64..40);
                updates.push(LakeUpdate::DeleteRows {
                    id: DatasetId(id),
                    predicate: Predicate::between("id", Value::Int(lo), Value::Int(hi)),
                });
            }
            _ => {
                let idx = rng.gen_range(0..live.len());
                updates.push(LakeUpdate::DropDataset {
                    id: DatasetId(live.remove(idx)),
                });
            }
        }
    }
    updates
}

/// The deterministic slice of an `UpdateReport` (everything except wall
/// clock — replayed batches re-measure their own durations).
#[derive(Debug, Clone, PartialEq)]
struct ComparableReport {
    updates_applied: usize,
    applied: Vec<r2d2_lake::AppliedUpdate>,
    datasets_changed: usize,
    candidates_checked: usize,
    rows_sampled: usize,
    delta: r2d2_graph::diff::EdgeDelta,
    ops: OpCounts,
}

fn comparable(report: &UpdateReport) -> ComparableReport {
    ComparableReport {
        updates_applied: report.updates_applied,
        applied: report.applied.clone(),
        datasets_changed: report.datasets_changed,
        candidates_checked: report.candidates_checked,
        rows_sampled: report.rows_sampled,
        delta: report.delta.clone(),
        // Page counters are process-local laziness telemetry: a restored
        // session re-skips pages the live one decoded eagerly, so they are
        // excluded from the bit-identity oracle (everything else is exact).
        ops: report.ops.without_page_counters(),
    }
}

/// Assert two sessions are observably identical (graph with node ids, meter
/// totals, update log minus durations, catalog contents, cache population,
/// and — when advisors are attached — advice and pruned problem).
fn assert_sessions_identical(a: &mut R2d2Session, b: &mut R2d2Session, context: &str) {
    assert_eq!(a.graph(), b.graph(), "{context}: graph diverged");
    assert_eq!(
        a.ops().without_page_counters(),
        b.ops().without_page_counters(),
        "{context}: meter totals diverged"
    );
    assert_eq!(
        a.update_log().iter().map(comparable).collect::<Vec<_>>(),
        b.update_log().iter().map(comparable).collect::<Vec<_>>(),
        "{context}: update log diverged"
    );
    let (ra, rb) = (a.report(), b.report());
    assert_eq!(ra.datasets, rb.datasets, "{context}: dataset count");
    assert_eq!(ra.updates_applied, rb.updates_applied, "{context}: updates");
    assert_eq!(ra.batches_applied, rb.batches_applied, "{context}: batches");
    assert_eq!(
        a.cached_build_sides(),
        b.cached_build_sides(),
        "{context}: hash-join cache population diverged"
    );
    assert_eq!(a.config(), b.config(), "{context}: config diverged");
    assert_eq!(a.lake().len(), b.lake().len(), "{context}: catalog size");
    for (ea, eb) in a.lake().iter().zip(b.lake().iter()) {
        assert_eq!(ea.id, eb.id, "{context}: dataset ids");
        assert_eq!(ea.name, eb.name, "{context}: dataset names");
        assert_eq!(*ea.data, *eb.data, "{context}: dataset {} data", ea.name);
        assert_eq!(ea.access, eb.access, "{context}: access profile");
        assert_eq!(ea.lineage, eb.lineage, "{context}: lineage");
    }
    assert_eq!(
        a.advisor_enabled(),
        b.advisor_enabled(),
        "{context}: advisor attachment"
    );
    if a.advisor_enabled() {
        assert_eq!(
            a.advisor_problem().unwrap(),
            b.advisor_problem().unwrap(),
            "{context}: advisor problem diverged"
        );
        assert_eq!(
            a.advise().unwrap(),
            b.advise().unwrap(),
            "{context}: advice diverged"
        );
    }
}

/// Bootstrap a session with an attached advisor over the base lake.
fn advised_session_with(cfg: PipelineConfig) -> R2d2Session {
    let mut session = R2d2Session::bootstrap(base_lake(), cfg).unwrap();
    session
        .enable_advisor(CostModel::default(), advisor_config())
        .unwrap();
    session
}

/// Bootstrap a session with an attached advisor over the base lake.
fn advised_session(threads: usize) -> R2d2Session {
    advised_session_with(config(threads))
}

proptest::proptest! {
    /// The crash-restore oracle: persist a session, kill it after a random
    /// prefix of a random update stream, restore from disk, and the result
    /// is bit-identical to the uninterrupted in-memory session — and stays
    /// identical while both keep applying the remaining updates, at
    /// threads 1 and 4. `snapshot_every_n_updates = 2` forces mid-stream
    /// compactions, so restores exercise snapshot + WAL-tail replay in all
    /// phases.
    #[test]
    fn killed_and_restored_session_matches_uninterrupted_run(
        seed in 0u64..1_000_000,
        count in 1usize..5,
        kill in 0usize..5,
        approx in 0u8..2,
    ) {
        let updates = gen_updates(seed, count);
        let kill = kill % (updates.len() + 1);
        for threads in [1usize, 4] {
            let dir = scratch_dir(&format!("oracle_{seed}_{count}_{kill}_{threads}_{approx}"));
            let cfg = if approx == 1 {
                config(threads).with_approx(ApproxConfig::default())
            } else {
                config(threads)
            };

            // The durable session: advisor + persistence, killed after
            // `kill` updates (drop = crash; state survives only on disk).
            let mut durable = advised_session_with(cfg.clone());
            durable
                .enable_persistence(
                    PersistenceConfig::new(&dir).with_snapshot_every(2),
                )
                .unwrap();
            for update in &updates[..kill] {
                durable.apply(update.clone()).unwrap();
            }
            drop(durable);

            // The uninterrupted session: same stream, never persisted.
            let mut uninterrupted = advised_session_with(cfg);
            for update in &updates[..kill] {
                uninterrupted.apply(update.clone()).unwrap();
            }

            let mut restored = R2d2Session::restore(&dir).unwrap();
            proptest::prop_assert!(restored.persistence_enabled());
            assert_sessions_identical(
                &mut restored,
                &mut uninterrupted,
                &format!("threads={threads} after restore"),
            );

            // Keep going on both sides: the restored session must stay
            // bit-identical, not just match at the restore point.
            for update in &updates[kill..] {
                restored.apply(update.clone()).unwrap();
                uninterrupted.apply(update.clone()).unwrap();
            }
            assert_sessions_identical(
                &mut restored,
                &mut uninterrupted,
                &format!("threads={threads} after continuing"),
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

/// Find generation files in a persistence dir.
fn wal_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "r2d2wal"))
        .collect();
    files.sort();
    files
}

#[test]
fn truncated_final_wal_record_restores_to_the_previous_batch() {
    let dir = scratch_dir("truncated_tail");
    let updates = gen_updates(11, 3);

    let mut durable = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
    durable
        .enable_persistence(PersistenceConfig::new(&dir).with_snapshot_every(0))
        .unwrap();
    for update in &updates {
        durable.apply(update.clone()).unwrap();
    }
    drop(durable);

    // Crash mid-append: chop bytes off the live WAL's final record.
    let wal = wal_files(&dir).pop().unwrap();
    let raw = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &raw[..raw.len() - 3]).unwrap();

    // Expected state: every batch before the torn one.
    let mut expected = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
    for update in &updates[..2] {
        expected.apply(update.clone()).unwrap();
    }

    let mut restored = R2d2Session::restore(&dir).unwrap();
    assert_sessions_identical(&mut restored, &mut expected, "torn final record");
    // The torn log was retired: restore rotated to a fresh generation so
    // new appends are reachable.
    assert_eq!(restored.persistence_generation(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_mid_log_record_drops_it_and_everything_behind_it() {
    let dir = scratch_dir("corrupt_mid");
    let updates = gen_updates(23, 3);

    let mut durable = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
    durable
        .enable_persistence(PersistenceConfig::new(&dir).with_snapshot_every(0))
        .unwrap();
    for update in &updates {
        durable.apply(update.clone()).unwrap();
    }
    drop(durable);

    // Flip one byte inside the SECOND record's payload: records 2 and 3 are
    // both unrecoverable (nothing after a corrupt record can be trusted),
    // record 1 survives.
    let wal = wal_files(&dir).pop().unwrap();
    let mut raw = std::fs::read(&wal).unwrap();
    let len1 = u32::from_le_bytes(raw[12..16].try_into().unwrap()) as usize;
    let second_payload = 12 + (12 + len1) + 12;
    raw[second_payload] ^= 0xFF;
    std::fs::write(&wal, &raw).unwrap();

    let mut expected = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
    expected.apply(updates[0].clone()).unwrap();

    let mut restored = R2d2Session::restore(&dir).unwrap();
    assert_sessions_identical(&mut restored, &mut expected, "corrupt mid-log record");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_only_restore_without_wal_records() {
    let dir = scratch_dir("snapshot_only");
    let mut durable = advised_session(1);
    durable.advise().unwrap();
    durable
        .enable_persistence(PersistenceConfig::new(&dir))
        .unwrap();
    drop(durable);

    // Empty WAL (header only): restore is pure snapshot decode.
    let mut expected = advised_session(1);
    expected.advise().unwrap();
    let mut restored = R2d2Session::restore(&dir).unwrap();
    assert_sessions_identical(&mut restored, &mut expected, "empty WAL");

    // Even with the WAL file deleted outright, the snapshot alone restores.
    let wal = wal_files(&dir).pop().unwrap();
    std::fs::remove_file(&wal).unwrap();
    let mut restored = R2d2Session::restore(&dir).unwrap();
    assert_sessions_identical(&mut restored, &mut expected, "missing WAL");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_written_at_four_threads_restores_against_single_threaded_run() {
    let dir = scratch_dir("cross_threads");
    let updates = gen_updates(5, 4);

    // Persisted session runs at threads = 4...
    let mut durable = advised_session(4);
    durable
        .enable_persistence(PersistenceConfig::new(&dir).with_snapshot_every(2))
        .unwrap();
    for update in &updates {
        durable.apply(update.clone()).unwrap();
    }
    drop(durable);

    // ...the reference runs single-threaded and never persists. Thread
    // count must change nothing observable, so the restored 4-thread
    // session matches it bit-for-bit (configs differ by `threads` only).
    let mut single = advised_session(1);
    for update in &updates {
        single.apply(update.clone()).unwrap();
    }

    let mut restored = R2d2Session::restore(&dir).unwrap();
    assert_eq!(restored.config().threads, 4, "threads setting round-trips");
    assert_eq!(restored.config(), &config(4));
    assert_eq!(restored.graph(), single.graph());
    assert_eq!(
        restored.ops().without_page_counters(),
        single.ops().without_page_counters()
    );
    assert_eq!(
        restored
            .update_log()
            .iter()
            .map(comparable)
            .collect::<Vec<_>>(),
        single
            .update_log()
            .iter()
            .map(comparable)
            .collect::<Vec<_>>()
    );
    assert_eq!(restored.advise().unwrap(), single.advise().unwrap());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compaction_rotates_generations_and_prunes_old_files() {
    let dir = scratch_dir("compaction");
    let updates = gen_updates(31, 4);

    let mut durable = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
    durable
        .enable_persistence(PersistenceConfig::new(&dir).with_snapshot_every(1))
        .unwrap();
    assert_eq!(durable.persistence_generation(), Some(1));
    for update in &updates {
        durable.apply(update.clone()).unwrap();
    }
    // Every applied update crossed the threshold → one rotation per batch.
    assert_eq!(durable.persistence_generation(), Some(5));
    assert_eq!(durable.wal_tail_updates(), Some(0));

    // Only the current and previous generations remain on disk.
    let mut snapshots: Vec<String> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .filter(|n| n.ends_with(".r2d2snap"))
        .collect();
    snapshots.sort();
    assert_eq!(
        snapshots,
        vec![
            "snapshot-000004.r2d2snap".to_string(),
            "snapshot-000005.r2d2snap".to_string()
        ]
    );

    let mut expected = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
    for update in &updates {
        expected.apply(update.clone()).unwrap();
    }
    let mut restored = R2d2Session::restore(&dir).unwrap();
    assert_sessions_identical(&mut restored, &mut expected, "after compaction");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_snapshot_falls_back_to_previous_generation() {
    let dir = scratch_dir("fallback");
    let updates = gen_updates(47, 3);

    let mut durable = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
    durable
        .enable_persistence(PersistenceConfig::new(&dir).with_snapshot_every(0))
        .unwrap();
    for update in &updates[..2] {
        durable.apply(update.clone()).unwrap();
    }
    durable.checkpoint().unwrap();
    durable.apply(updates[2].clone()).unwrap();
    drop(durable);

    // Destroy the newest snapshot (generation 2). Restore must fall back
    // to generation 1 and replay its WAL (updates 1 and 2 — which lands
    // exactly on the state snapshot 2 captured), then continue through
    // generation 2's intact WAL (update 3). Nothing acknowledged is lost.
    let snap2 = dir.join("snapshot-000002.r2d2snap");
    let mut raw = std::fs::read(&snap2).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0xFF;
    std::fs::write(&snap2, &raw).unwrap();

    let mut expected = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
    for update in &updates {
        expected.apply(update.clone()).unwrap();
    }
    let mut restored = R2d2Session::restore(&dir).unwrap();
    assert_sessions_identical(&mut restored, &mut expected, "generation fallback");
    // The degraded directory was rotated to a coherent fresh generation.
    assert_eq!(restored.persistence_generation(), Some(3));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metered_traffic_and_refresh_survive_the_crash() {
    let dir = scratch_dir("access_refresh");
    let mut durable = advised_session(1);
    durable.advise().unwrap();
    durable
        .enable_persistence(PersistenceConfig::new(&dir).with_snapshot_every(0))
        .unwrap();

    // Serve read traffic through the metered entry point, fold it into the
    // profiles, and crash WITHOUT a checkpoint. Refreshes are the sync
    // points for read-side telemetry: the WAL record carries the drained
    // tallies and the meter totals at the drain, so everything up to the
    // refresh survives the crash even though no snapshot followed it.
    for _ in 0..5 {
        durable
            .lake()
            .query_dataset(DatasetId(1), &Predicate::True, Some(4))
            .unwrap();
    }
    assert_eq!(durable.refresh_access_profiles().unwrap(), 1);
    durable
        .apply(LakeUpdate::AppendRows {
            id: DatasetId(1),
            rows: table(40..45),
        })
        .unwrap();
    drop(durable);

    let mut expected = advised_session(1);
    expected.advise().unwrap();
    for _ in 0..5 {
        expected
            .lake()
            .query_dataset(DatasetId(1), &Predicate::True, Some(4))
            .unwrap();
    }
    assert_eq!(expected.refresh_access_profiles().unwrap(), 1);
    expected
        .apply(LakeUpdate::AppendRows {
            id: DatasetId(1),
            rows: table(40..45),
        })
        .unwrap();

    let mut restored = R2d2Session::restore(&dir).unwrap();
    assert_sessions_identical(&mut restored, &mut expected, "metered traffic");

    // Post-restore, identical traffic keeps identical outcomes: the hot
    // profile cools back down on both sides and the advice agrees.
    for session in [&mut restored, &mut expected] {
        session
            .lake()
            .query_dataset(DatasetId(0), &Predicate::True, Some(2))
            .unwrap();
    }
    assert_eq!(
        restored.refresh_access_profiles().unwrap(),
        expected.refresh_access_profiles().unwrap()
    );
    assert_sessions_identical(&mut restored, &mut expected, "post-restore traffic");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn approx_session_restores_with_identical_signatures_and_gating() {
    let dir = scratch_dir("approx_restore");
    let updates = gen_updates(61, 4);
    let approx_cfg = || config(1).with_approx(ApproxConfig::default());

    let mut durable = R2d2Session::bootstrap(base_lake(), approx_cfg()).unwrap();
    durable
        .enable_persistence(PersistenceConfig::new(&dir).with_snapshot_every(2))
        .unwrap();
    for update in &updates[..2] {
        durable.apply(update.clone()).unwrap();
    }
    drop(durable);

    let mut uninterrupted = R2d2Session::bootstrap(base_lake(), approx_cfg()).unwrap();
    for update in &updates[..2] {
        uninterrupted.apply(update.clone()).unwrap();
    }

    let mut restored = R2d2Session::restore(&dir).unwrap();
    assert_eq!(
        restored.config().approx,
        Some(ApproxConfig::default()),
        "approx config round-trips through the snapshot"
    );
    assert_sessions_identical(&mut restored, &mut uninterrupted, "approx restore");

    // The candidate tier reattaches bit-for-bit from the persisted footer
    // signatures: per-dataset signatures, every pairwise gating decision,
    // and the probe/prune counters the gate meters all agree — no row was
    // re-hashed to get there.
    let approx = restored.config().approx.unwrap();
    let (restored_meter, live_meter) = (Meter::new(), Meter::new());
    let restored_source = ApproxCandidates::build(restored.lake(), &approx, &restored_meter);
    let live_source = ApproxCandidates::build(uninterrupted.lake(), &approx, &live_meter);
    assert_eq!(restored_source.len(), live_source.len());
    let ids: Vec<u64> = restored.lake().iter().map(|e| e.id.0).collect();
    for &id in &ids {
        let a = restored_source.signature(id).expect("signature present");
        let b = live_source.signature(id).expect("signature present");
        assert_eq!(a.mins(), b.mins(), "signature minima diverged for ds{id}");
        assert_eq!(
            a.cardinality, b.cardinality,
            "cardinality diverged for ds{id}"
        );
    }
    for &p in &ids {
        for &c in &ids {
            if p != c {
                assert_eq!(
                    restored_source.admit(p, c),
                    live_source.admit(p, c),
                    "gating decision diverged for ({p}, {c})"
                );
            }
        }
    }
    assert_eq!(
        restored_meter.snapshot(),
        live_meter.snapshot(),
        "gate metering diverged"
    );

    // And the restored session keeps gating identically under further
    // updates.
    for update in &updates[2..] {
        restored.apply(update.clone()).unwrap();
        uninterrupted.apply(update.clone()).unwrap();
    }
    assert_sessions_identical(&mut restored, &mut uninterrupted, "approx continue");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn old_snapshot_versions_fail_with_an_explicit_error() {
    let session = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
    let snapshot = session.snapshot();
    let mut raw = snapshot.as_bytes().to_vec();
    // Patch only the version field (bytes 8..12, after the magic): the
    // reader must refuse v1–v3 by version, before it even reaches the
    // checksum, rather than misparse the old layout.
    for old in [1u32, 2, 3] {
        raw[8..12].copy_from_slice(&old.to_le_bytes());
        let err = SessionSnapshot::from_bytes(raw.clone())
            .restore()
            .unwrap_err();
        assert!(
            err.to_string()
                .contains(&format!("unsupported snapshot version {old}")),
            "wrong error for snapshot v{old}: {err}"
        );
    }
}

#[test]
fn in_memory_snapshot_round_trips_without_disk() {
    let mut session = advised_session(1);
    session.advise().unwrap();
    let snapshot = session.snapshot();
    let mut restored = snapshot.restore().unwrap();
    assert!(!restored.persistence_enabled());
    // The image is canonical: capturing the restored session (before any
    // further state-moving calls) reproduces the exact same bytes.
    assert_eq!(restored.snapshot().as_bytes(), snapshot.as_bytes());
    assert_sessions_identical(&mut restored, &mut session, "in-memory snapshot");
}

#[test]
fn restore_of_an_empty_directory_is_a_clean_error() {
    let dir = scratch_dir("empty_dir");
    assert!(R2d2Session::restore(&dir).is_err());
    std::fs::remove_dir_all(&dir).ok();
}
