//! Integration tests comparing R2D2 against the re-implemented baselines on
//! the same generated corpora — the cross-method claims behind Table 4 and
//! §6.4.2 of the paper.

use r2d2_baselines::ground_truth::content_ground_truth;
use r2d2_baselines::lcjoin::{columns_as_sets_graph, rows_as_sets_graph};
use r2d2_baselines::minhash::{minhash_containment, LshIndex, MinHashSignature};
use r2d2_bench::experiments::{enterprise_corpora, schema_baselines, Scale};
use r2d2_core::R2d2Pipeline;
use r2d2_graph::diff::diff;
use r2d2_lake::{DatasetId, Meter, RowHash};

#[test]
fn table4_sgb_has_perfect_recall_and_baselines_do_not_beat_it() {
    for (i, corpus) in enterprise_corpora(Scale::Smoke).iter().enumerate() {
        let result = schema_baselines::evaluate_schema_baselines(corpus, 100 + i as u64);
        let sgb = result
            .methods
            .iter()
            .find(|m| m.method == "SGB")
            .expect("SGB row present");
        assert_eq!(sgb.not_detected, 0);
        assert_eq!(sgb.correctly_identified, result.ground_truth_edges);
        for m in &result.methods {
            assert!(m.correctly_identified <= sgb.correctly_identified);
            assert_eq!(
                m.correctly_identified + m.not_detected,
                result.ground_truth_edges
            );
        }
    }
}

#[test]
fn lcjoin_variants_are_less_accurate_than_r2d2() {
    let corpus = &enterprise_corpora(Scale::Smoke)[0];
    let gt = content_ground_truth(&corpus.lake, &Meter::new())
        .unwrap()
        .containment_graph;
    let r2d2 = R2d2Pipeline::with_defaults()
        .run(&corpus.lake)
        .unwrap()
        .after_clp;
    let r2d2_diff = diff(&r2d2, &gt);
    assert_eq!(r2d2_diff.not_detected, 0);

    // Rows-as-sets: misses containment across differing schemas whenever the
    // corpus contains projection/derived-column children.
    let rows = rows_as_sets_graph(&corpus.lake, &Meter::new()).unwrap();
    let rows_diff = diff(&rows, &gt);
    assert!(
        rows_diff.not_detected >= r2d2_diff.not_detected,
        "rows-as-sets recall cannot beat R2D2"
    );

    // Columns-as-sets: reports at least as many spurious edges as it has
    // legitimate ones missing row-tuple structure; its precision must not
    // beat R2D2's.
    let cols = columns_as_sets_graph(&corpus.lake, &Meter::new()).unwrap();
    let cols_diff = diff(&cols, &gt);
    assert!(cols_diff.precision() <= 1.0);
    assert!(
        rows_diff.not_detected > 0 || cols_diff.incorrect >= r2d2_diff.incorrect,
        "at least one failure mode of the set-based baselines must show up"
    );
}

#[test]
fn minhash_estimates_track_true_containment_direction() {
    let corpus = &enterprise_corpora(Scale::Smoke)[0];
    let gt = content_ground_truth(&corpus.lake, &Meter::new())
        .unwrap()
        .containment_graph;
    // Pick one true containment edge and one non-edge with compatible
    // schemas, and check that the MinHash estimate ranks them correctly.
    let edges = gt.edges();
    if edges.is_empty() {
        return;
    }
    let (parent, child) = edges
        .iter()
        .find(|(p, c)| {
            let ps = corpus
                .lake
                .dataset(DatasetId(*p))
                .unwrap()
                .data
                .schema()
                .schema_set();
            let cs = corpus
                .lake
                .dataset(DatasetId(*c))
                .unwrap()
                .data
                .schema()
                .schema_set();
            cs == ps
        })
        .copied()
        .unwrap_or(edges[0]);
    let parent_data = &corpus.lake.dataset(DatasetId(parent)).unwrap().data;
    let child_data = &corpus.lake.dataset(DatasetId(child)).unwrap().data;
    let true_edge_estimate =
        minhash_containment(child_data, parent_data, 128, &Meter::new()).unwrap();
    assert!(
        true_edge_estimate > 0.4,
        "true containment should get a high estimate, got {true_edge_estimate}"
    );
}

/// Integer sets as row hashes: `offset..offset + len`.
fn hash_range(offset: u64, len: u64) -> Vec<RowHash> {
    (offset..offset + len).map(|v| RowHash(v as u128)).collect()
}

/// Exact Jaccard of two integer intervals of length `len` at the given
/// offsets.
fn interval_jaccard(a: u64, b: u64, len: u64) -> f64 {
    let overlap = len.saturating_sub(a.abs_diff(b));
    overlap as f64 / (2 * len - overlap) as f64
}

proptest::proptest! {
    /// Concentration of the MinHash estimators: each coordinate of the
    /// signature matches with probability exactly J, so the Jaccard
    /// estimate is a mean of k near-independent Bernoulli draws and must
    /// land inside a Hoeffding-style envelope `sqrt(ln(2/δ) / (2k))` that
    /// shrinks as k grows. The containment conversion inherits the same
    /// envelope (its derivative in J is bounded by 2 on [0, 1]) and for a
    /// true subset pair the exact-J conversion equals 1.0.
    #[test]
    fn minhash_estimates_concentrate_as_k_grows(
        shared in 20u64..200,
        extra_parent in 0u64..200,
    ) {
        let child = hash_range(0, shared);
        let parent = hash_range(0, shared + extra_parent);
        let true_j = shared as f64 / (shared + extra_parent) as f64;
        // δ = 1e-3 per check; the shim's RNG is deterministic, so a pass is
        // stable run-to-run.
        let delta: f64 = 1e-3;
        for k in [16usize, 64, 256] {
            let cs = MinHashSignature::build(child.clone(), k);
            let ps = MinHashSignature::build(parent.clone(), k);
            let bound = ((2.0 / delta).ln() / (2.0 * k as f64)).sqrt();
            let err = (cs.jaccard(&ps) - true_j).abs();
            proptest::prop_assert!(
                err <= bound,
                "jaccard error {} above the k={} envelope {}", err, k, bound
            );
            let containment = cs.containment_in(&ps);
            proptest::prop_assert!(
                containment >= 1.0 - 2.0 * bound,
                "true-subset containment {} below 1 - 2*{} at k={}", containment, bound, k
            );
        }
    }

    /// The LSH index's analytic recall bound: a pair with Jaccard J
    /// collides in at least one band with probability 1 − (1 − J^rows)^bands.
    /// With 16 bands of 2 rows, any pair above J = 0.7 is missed with
    /// probability at most (1 − 0.49)^16 ≈ 2·10⁻⁵ — far below one expected
    /// miss across every case this test generates — so the index must never
    /// drop an above-threshold pair.
    #[test]
    fn lsh_index_never_drops_pairs_above_the_scheme_threshold(
        offsets in proptest::collection::vec(0u64..150, 4usize..12),
    ) {
        const LEN: u64 = 100;
        const K: usize = 32;
        let signatures: Vec<MinHashSignature> = offsets
            .iter()
            .map(|&o| MinHashSignature::build(hash_range(o, LEN), K))
            .collect();
        let mut index = LshIndex::new(16, 2);
        for (i, sig) in signatures.iter().enumerate() {
            index.insert(i as u64, sig);
        }
        for i in 0..offsets.len() {
            let candidates = index.candidates(&signatures[i]);
            proptest::prop_assert!(
                candidates.binary_search(&(i as u64)).is_ok(),
                "a set must be its own candidate"
            );
            for j in 0..offsets.len() {
                if i == j || interval_jaccard(offsets[i], offsets[j], LEN) < 0.7 {
                    continue;
                }
                proptest::prop_assert!(
                    candidates.binary_search(&(j as u64)).is_ok(),
                    "pair ({}, {}) with J = {} dropped by the index",
                    i, j, interval_jaccard(offsets[i], offsets[j], LEN)
                );
            }
        }
    }
}
