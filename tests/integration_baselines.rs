//! Integration tests comparing R2D2 against the re-implemented baselines on
//! the same generated corpora — the cross-method claims behind Table 4 and
//! §6.4.2 of the paper.

use r2d2_baselines::ground_truth::content_ground_truth;
use r2d2_baselines::lcjoin::{columns_as_sets_graph, rows_as_sets_graph};
use r2d2_baselines::minhash::estimate_containment;
use r2d2_bench::experiments::{enterprise_corpora, schema_baselines, Scale};
use r2d2_core::R2d2Pipeline;
use r2d2_graph::diff::diff;
use r2d2_lake::{DatasetId, Meter};

#[test]
fn table4_sgb_has_perfect_recall_and_baselines_do_not_beat_it() {
    for (i, corpus) in enterprise_corpora(Scale::Smoke).iter().enumerate() {
        let result = schema_baselines::evaluate_schema_baselines(corpus, 100 + i as u64);
        let sgb = result
            .methods
            .iter()
            .find(|m| m.method == "SGB")
            .expect("SGB row present");
        assert_eq!(sgb.not_detected, 0);
        assert_eq!(sgb.correctly_identified, result.ground_truth_edges);
        for m in &result.methods {
            assert!(m.correctly_identified <= sgb.correctly_identified);
            assert_eq!(
                m.correctly_identified + m.not_detected,
                result.ground_truth_edges
            );
        }
    }
}

#[test]
fn lcjoin_variants_are_less_accurate_than_r2d2() {
    let corpus = &enterprise_corpora(Scale::Smoke)[0];
    let gt = content_ground_truth(&corpus.lake, &Meter::new())
        .unwrap()
        .containment_graph;
    let r2d2 = R2d2Pipeline::with_defaults()
        .run(&corpus.lake)
        .unwrap()
        .after_clp;
    let r2d2_diff = diff(&r2d2, &gt);
    assert_eq!(r2d2_diff.not_detected, 0);

    // Rows-as-sets: misses containment across differing schemas whenever the
    // corpus contains projection/derived-column children.
    let rows = rows_as_sets_graph(&corpus.lake, &Meter::new()).unwrap();
    let rows_diff = diff(&rows, &gt);
    assert!(
        rows_diff.not_detected >= r2d2_diff.not_detected,
        "rows-as-sets recall cannot beat R2D2"
    );

    // Columns-as-sets: reports at least as many spurious edges as it has
    // legitimate ones missing row-tuple structure; its precision must not
    // beat R2D2's.
    let cols = columns_as_sets_graph(&corpus.lake, &Meter::new()).unwrap();
    let cols_diff = diff(&cols, &gt);
    assert!(cols_diff.precision() <= 1.0);
    assert!(
        rows_diff.not_detected > 0 || cols_diff.incorrect >= r2d2_diff.incorrect,
        "at least one failure mode of the set-based baselines must show up"
    );
}

#[test]
fn minhash_estimates_track_true_containment_direction() {
    let corpus = &enterprise_corpora(Scale::Smoke)[0];
    let gt = content_ground_truth(&corpus.lake, &Meter::new())
        .unwrap()
        .containment_graph;
    // Pick one true containment edge and one non-edge with compatible
    // schemas, and check that the MinHash estimate ranks them correctly.
    let edges = gt.edges();
    if edges.is_empty() {
        return;
    }
    let (parent, child) = edges
        .iter()
        .find(|(p, c)| {
            let ps = corpus
                .lake
                .dataset(DatasetId(*p))
                .unwrap()
                .data
                .schema()
                .schema_set();
            let cs = corpus
                .lake
                .dataset(DatasetId(*c))
                .unwrap()
                .data
                .schema()
                .schema_set();
            cs == ps
        })
        .copied()
        .unwrap_or(edges[0]);
    let parent_data = &corpus.lake.dataset(DatasetId(parent)).unwrap().data;
    let child_data = &corpus.lake.dataset(DatasetId(child)).unwrap().data;
    let true_edge_estimate =
        estimate_containment(child_data, parent_data, 128, &Meter::new()).unwrap();
    assert!(
        true_edge_estimate > 0.4,
        "true containment should get a high estimate, got {true_edge_estimate}"
    );
}
