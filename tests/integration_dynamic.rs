//! Integration tests of §7.1 dynamic updates: incremental maintenance of the
//! containment graph must agree with a full pipeline re-run after arbitrary
//! sequences of lake mutations.

use r2d2_bench::experiments::{enterprise_corpora, Scale};
use r2d2_core::dynamic::{dataset_added, dataset_deleted, dataset_grew, dataset_shrank};
use r2d2_core::{PipelineConfig, R2d2Pipeline};
use r2d2_lake::{AccessProfile, DatasetId, Meter, PartitionSpec, PartitionedTable};
use r2d2_synth::roots::transactions;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn edges_sorted(g: &r2d2_graph::ContainmentGraph) -> Vec<(u64, u64)> {
    let mut e = g.edges();
    e.sort_unstable();
    e
}

#[test]
fn incremental_addition_matches_full_rerun_on_corpus() {
    let corpus = enterprise_corpora(Scale::Smoke)[2].clone();
    let mut lake = corpus.lake.clone();
    let config = PipelineConfig::default();
    let mut graph = R2d2Pipeline::new(config.clone())
        .run(&lake)
        .unwrap()
        .after_clp;

    // Add a new dataset derived from an existing one (a subset of some root).
    let (first_id, source) = {
        let first = lake.iter().next().unwrap();
        (first.id, first.data.to_table(&Meter::new()).unwrap())
    };
    let subset = source
        .take(&(0..source.num_rows() / 2).collect::<Vec<_>>())
        .unwrap();
    let new_id = lake
        .add_dataset(
            "incremental_subset",
            PartitionedTable::from_table(
                subset,
                PartitionSpec::ByRowCount {
                    rows_per_partition: 32,
                },
            )
            .unwrap(),
            AccessProfile::default(),
            None,
        )
        .unwrap();

    dataset_added(&lake, &mut graph, new_id.0, &config, &Meter::new()).unwrap();

    // The incremental graph must have full recall against the brute-force
    // ground truth of the updated lake (CLP keeps some probabilistically
    // surviving incorrect edges, which may differ from a full re-run because
    // different random filters are drawn, so exact equality is only required
    // on the correct edges).
    let gt = r2d2_baselines::ground_truth::content_ground_truth(&lake, &Meter::new())
        .unwrap()
        .containment_graph;
    let d = r2d2_graph::diff::diff(&graph, &gt);
    assert_eq!(d.not_detected, 0, "incremental update lost a correct edge");
    assert!(graph.parents(new_id.0).contains(&first_id.0));

    // A full re-run must agree with the incremental graph on every edge that
    // touches the new dataset and is a true containment.
    let full = R2d2Pipeline::new(config).run(&lake).unwrap().after_clp;
    for (p, c) in gt.edges() {
        if p == new_id.0 || c == new_id.0 {
            assert_eq!(graph.has_edge(p, c), full.has_edge(p, c));
        }
    }
}

#[test]
fn grow_shrink_delete_sequence_matches_full_rerun() {
    let mut rng = SmallRng::seed_from_u64(123);
    let config = PipelineConfig::default();
    let meter = Meter::new();

    // Small hand-built lake of transaction tables.
    let mut lake = r2d2_lake::DataLake::new();
    let base_table = transactions(200, 1, &mut rng);
    let base = lake
        .add_dataset(
            "base",
            PartitionedTable::single(base_table.clone()),
            AccessProfile::default(),
            None,
        )
        .unwrap();
    let slice = lake
        .add_dataset(
            "slice",
            PartitionedTable::single(base_table.take(&(20..80).collect::<Vec<_>>()).unwrap()),
            AccessProfile::default(),
            None,
        )
        .unwrap();
    let mut graph = R2d2Pipeline::new(config.clone())
        .run(&lake)
        .unwrap()
        .after_clp;
    assert!(graph.has_edge(base.0, slice.0));

    // 1. The slice grows with rows that are NOT in the base.
    let mut foreign_rng = SmallRng::seed_from_u64(55);
    let foreign = transactions(40, 99, &mut foreign_rng);
    let grown = base_table
        .take(&(20..80).collect::<Vec<_>>())
        .unwrap()
        .concat(&foreign)
        .unwrap();
    lake.replace_data(slice, PartitionedTable::single(grown))
        .unwrap();
    dataset_grew(&lake, &mut graph, slice.0, &config, &meter).unwrap();
    let full = R2d2Pipeline::new(config.clone())
        .run(&lake)
        .unwrap()
        .after_clp;
    assert_eq!(edges_sorted(&graph), edges_sorted(&full));
    assert!(!graph.has_edge(base.0, slice.0));

    // 2. The slice shrinks back to a strict subset of the base.
    lake.replace_data(
        slice,
        PartitionedTable::single(base_table.take(&(30..50).collect::<Vec<_>>()).unwrap()),
    )
    .unwrap();
    dataset_shrank(&lake, &mut graph, slice.0, &config, &meter).unwrap();
    let full = R2d2Pipeline::new(config.clone())
        .run(&lake)
        .unwrap()
        .after_clp;
    assert_eq!(edges_sorted(&graph), edges_sorted(&full));
    assert!(graph.has_edge(base.0, slice.0));

    // 3. The base is deleted from the lake.
    lake.remove_dataset(DatasetId(base.0)).unwrap();
    dataset_deleted(&mut graph, base.0);
    let full = R2d2Pipeline::new(config).run(&lake).unwrap().after_clp;
    assert_eq!(edges_sorted(&graph), edges_sorted(&full));
    assert_eq!(graph.edge_count(), 0);
}
