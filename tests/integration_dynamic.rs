//! Integration tests of §7.1 dynamic updates through [`R2d2Session`]:
//! incremental maintenance must be **bit-identical** to a fresh batch
//! pipeline run over the mutated lake, for any update sequence, at any
//! thread count, whether updates are applied one by one or as a coalesced
//! batch. The property-based oracle below generates random `LakeUpdate`
//! sequences and checks all of it; the remaining tests pin the behaviour on
//! full synthetic corpora.

use r2d2_core::{PipelineConfig, R2d2Pipeline, R2d2Session, UpdateReport};
use r2d2_graph::ContainmentGraph;
use r2d2_lake::{
    AccessProfile, Column, DataLake, DataType, DatasetId, LakeUpdate, Meter, OpCounts,
    PartitionSpec, PartitionedTable, Predicate, Schema, Table, Value,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn config(threads: usize) -> PipelineConfig {
    PipelineConfig::default().with_seed(7).with_threads(threads)
}

/// All oracle tables share one schema (so every dataset pair passes the
/// schema check and MMP/CLP do the discriminating work); every column is a
/// function of the id, so id-range subsets are true row-tuple subsets.
fn table(ids: std::ops::Range<i64>) -> Table {
    let schema = Schema::flat(&[
        ("id", DataType::Int),
        ("grp", DataType::Utf8),
        ("v", DataType::Float),
    ])
    .unwrap();
    Table::new(
        schema,
        vec![
            Column::from_ints(ids.clone()),
            Column::from_strs(ids.clone().map(|i| format!("g{}", i % 3))),
            Column::from_floats(ids.map(|i| i as f64 * 0.5)),
        ],
    )
    .unwrap()
}

fn part(t: Table) -> PartitionedTable {
    PartitionedTable::from_table(
        t,
        PartitionSpec::ByRowCount {
            rows_per_partition: 16,
        },
    )
    .unwrap()
}

/// Deterministic starting lake (ids 0..4): one root, one subset, one
/// disjoint table, one overlapping slice.
fn base_lake() -> DataLake {
    let mut lake = DataLake::new();
    let add = |lake: &mut DataLake, name: &str, t: Table| {
        lake.add_dataset(name, part(t), AccessProfile::default(), None)
            .unwrap()
    };
    add(&mut lake, "root", table(0..60));
    add(&mut lake, "mid", table(10..40));
    add(&mut lake, "other", table(100..140));
    add(&mut lake, "slice", table(30..80));
    lake
}

/// Generate a random but *replayable* update sequence: ids are tracked the
/// same way the catalog assigns them, and only live datasets are targeted,
/// so the sequence applies cleanly to any equal copy of the base lake.
fn gen_updates(seed: u64, count: usize) -> Vec<LakeUpdate> {
    let mut rng =
        SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(count as u64));
    let mut live: Vec<u64> = vec![0, 1, 2, 3];
    let mut next_id = 4u64;
    let mut updates = Vec::with_capacity(count);
    for k in 0..count {
        let choice = if live.is_empty() {
            0
        } else {
            rng.gen_range(0u8..10)
        };
        match choice {
            0..=2 => {
                let start = rng.gen_range(0i64..80);
                let len = rng.gen_range(1i64..40);
                updates.push(LakeUpdate::AddDataset {
                    name: format!("gen_{seed}_{k}"),
                    data: part(table(start..start + len)),
                    access: AccessProfile::default(),
                    lineage: None,
                });
                live.push(next_id);
                next_id += 1;
            }
            3..=5 => {
                let id = live[rng.gen_range(0..live.len())];
                let start = rng.gen_range(0i64..80);
                let len = rng.gen_range(0i64..20); // 0 → no-op append
                updates.push(LakeUpdate::AppendRows {
                    id: DatasetId(id),
                    rows: table(start..start + len),
                });
            }
            6..=7 => {
                let id = live[rng.gen_range(0..live.len())];
                let lo = rng.gen_range(0i64..80);
                let hi = lo + rng.gen_range(0i64..40);
                updates.push(LakeUpdate::DeleteRows {
                    id: DatasetId(id),
                    predicate: Predicate::between("id", Value::Int(lo), Value::Int(hi)),
                });
            }
            _ => {
                let idx = rng.gen_range(0..live.len());
                updates.push(LakeUpdate::DropDataset {
                    id: DatasetId(live.remove(idx)),
                });
            }
        }
    }
    updates
}

/// The deterministic slice of an `UpdateReport` (everything except wall
/// clock), used to compare runs across thread counts.
#[derive(Debug, Clone, PartialEq)]
struct ComparableReport {
    updates_applied: usize,
    applied: Vec<r2d2_lake::AppliedUpdate>,
    datasets_changed: usize,
    candidates_checked: usize,
    rows_sampled: usize,
    delta: r2d2_graph::diff::EdgeDelta,
    ops: OpCounts,
}

/// Everything observable about a session run, minus wall-clock times.
struct SessionRun {
    graph: ContainmentGraph,
    edges: Vec<(u64, u64)>,
    ops: OpCounts,
    log: Vec<ComparableReport>,
}

fn comparable(report: &UpdateReport) -> ComparableReport {
    ComparableReport {
        updates_applied: report.updates_applied,
        applied: report.applied.clone(),
        datasets_changed: report.datasets_changed,
        candidates_checked: report.candidates_checked,
        rows_sampled: report.rows_sampled,
        delta: report.delta.clone(),
        ops: report.ops,
    }
}

fn run_session(updates: &[LakeUpdate], threads: usize, batch: bool) -> SessionRun {
    let mut session = R2d2Session::bootstrap(base_lake(), config(threads)).unwrap();
    if batch {
        session.apply_batch(updates).unwrap();
    } else {
        for update in updates {
            session.apply(update.clone()).unwrap();
        }
    }
    let mut edges = session.graph().edges();
    edges.sort_unstable();
    let ops = session.ops();
    let log = session.update_log().iter().map(comparable).collect();
    SessionRun {
        graph: session.graph().clone(),
        edges,
        ops,
        log,
    }
}

fn fresh_edges(updates: &[LakeUpdate]) -> Vec<(u64, u64)> {
    let mut lake = base_lake();
    for update in updates {
        lake.apply_update(update).unwrap();
    }
    let mut edges = R2d2Pipeline::new(config(1))
        .run(&lake)
        .unwrap()
        .after_clp
        .edges();
    edges.sort_unstable();
    edges
}

proptest::proptest! {
    /// The equivalence oracle: after ANY random sequence of `LakeUpdate`s,
    /// (a) the session graph has exactly the edges of a fresh
    ///     `R2d2Pipeline::run` over the mutated lake,
    /// (b) graph, meter totals and per-batch reports are bit-identical at
    ///     threads = 1 and threads = 4,
    /// (c) applying the sequence one-by-one or as one coalesced batch lands
    ///     on the same graph.
    #[test]
    fn random_update_sequences_match_fresh_pipeline_runs(
        seed in 0u64..1_000_000,
        count in 1usize..6,
    ) {
        let updates = gen_updates(seed, count);
        let expected = fresh_edges(&updates);

        let seq1 = run_session(&updates, 1, false);
        let seq4 = run_session(&updates, 4, false);
        proptest::prop_assert_eq!(&seq1.edges, &expected, "sequential session != fresh run");
        proptest::prop_assert_eq!(&seq1.graph, &seq4.graph, "session graph depends on threads");
        proptest::prop_assert_eq!(seq1.ops, seq4.ops, "session meter depends on threads");
        proptest::prop_assert_eq!(&seq1.log, &seq4.log, "update reports depend on threads");

        let batch1 = run_session(&updates, 1, true);
        let batch4 = run_session(&updates, 4, true);
        proptest::prop_assert_eq!(&batch1.edges, &expected, "batched session != fresh run");
        proptest::prop_assert_eq!(&batch1.graph, &batch4.graph, "batched graph depends on threads");
        proptest::prop_assert_eq!(batch1.ops, batch4.ops, "batched meter depends on threads");
        proptest::prop_assert_eq!(&batch1.log, &batch4.log, "batched reports depend on threads");
    }
}

#[test]
fn incremental_addition_matches_full_rerun_on_corpus() {
    use r2d2_bench::experiments::{enterprise_corpora, Scale};

    let corpus = enterprise_corpora(Scale::Smoke)[2].clone();
    let (first_id, source) = {
        let first = corpus.lake.iter().next().unwrap();
        (first.id, first.data.to_table(&Meter::new()).unwrap())
    };
    let mut session = R2d2Session::with_defaults(corpus.lake).unwrap();

    // Add a new dataset derived from an existing one (a subset of a root).
    let subset = source
        .take(&(0..source.num_rows() / 2).collect::<Vec<_>>())
        .unwrap();
    let report = session
        .apply(LakeUpdate::AddDataset {
            name: "incremental_subset".into(),
            data: PartitionedTable::from_table(
                subset,
                PartitionSpec::ByRowCount {
                    rows_per_partition: 32,
                },
            )
            .unwrap(),
            access: AccessProfile::default(),
            lineage: None,
        })
        .unwrap();
    let new_id = report
        .applied
        .iter()
        .find_map(|a| match a {
            r2d2_lake::AppliedUpdate::Added { id } => Some(id.0),
            _ => None,
        })
        .expect("AddDataset reports its assigned id");
    assert!(session.graph().parents(new_id).contains(&first_id.0));

    // The incremental graph must keep full recall against the brute-force
    // ground truth of the updated lake...
    let gt = r2d2_baselines::ground_truth::content_ground_truth(session.lake(), &Meter::new())
        .unwrap()
        .containment_graph;
    let d = r2d2_graph::diff::diff(session.graph(), &gt);
    assert_eq!(d.not_detected, 0, "incremental update lost a correct edge");

    // ...and agree edge-for-edge with a fresh batch run over the same lake.
    let full = R2d2Pipeline::new(session.config().clone())
        .run(session.lake())
        .unwrap()
        .after_clp;
    let mut inc_edges = session.graph().edges();
    let mut full_edges = full.edges();
    inc_edges.sort_unstable();
    full_edges.sort_unstable();
    assert_eq!(inc_edges, full_edges);
}

#[test]
fn grow_shrink_delete_sequence_matches_full_rerun() {
    let mut session = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
    let check = |session: &R2d2Session| {
        let full = R2d2Pipeline::new(session.config().clone())
            .run(session.lake())
            .unwrap()
            .after_clp;
        let mut inc = session.graph().edges();
        let mut fre = full.edges();
        inc.sort_unstable();
        fre.sort_unstable();
        assert_eq!(inc, fre);
    };
    assert!(session.graph().has_edge(0, 1), "root ⊇ mid at bootstrap");

    // 1. `mid` grows with rows that are NOT in `root`.
    session
        .apply(LakeUpdate::AppendRows {
            id: DatasetId(1),
            rows: table(200..240),
        })
        .unwrap();
    assert!(!session.graph().has_edge(0, 1));
    check(&session);

    // 2. `mid` shrinks back to a strict subset of `root`.
    session
        .apply(LakeUpdate::DeleteRows {
            id: DatasetId(1),
            predicate: Predicate::between("id", Value::Int(35), Value::Int(999)),
        })
        .unwrap();
    assert!(session.graph().has_edge(0, 1));
    check(&session);

    // 3. `root` is deleted from the lake.
    session
        .apply(LakeUpdate::DropDataset { id: DatasetId(0) })
        .unwrap();
    assert!(session.graph().parents(1).is_empty());
    check(&session);
}

#[test]
fn session_meter_accumulates_across_bootstrap_and_updates() {
    let mut session = R2d2Session::bootstrap(base_lake(), config(1)).unwrap();
    let after_bootstrap = session.ops();
    assert!(after_bootstrap.row_level_ops() > 0, "bootstrap is metered");
    session
        .apply(LakeUpdate::AppendRows {
            id: DatasetId(1),
            rows: table(40..45),
        })
        .unwrap();
    let after_update = session.ops();
    assert!(
        after_update.row_level_ops() > after_bootstrap.row_level_ops(),
        "updates add to the cumulative meter"
    );
    let logged: u64 = session
        .update_log()
        .iter()
        .map(|r| r.ops.row_level_ops())
        .sum();
    assert_eq!(
        after_update.row_level_ops() - after_bootstrap.row_level_ops(),
        logged,
        "per-batch ops must account for all post-bootstrap work"
    );
}
