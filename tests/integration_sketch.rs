//! Integration tests of the sketch-gating contract:
//!
//! * **bloom gate is graph-invisible** — for random corpora and random
//!   update streams, the pipeline and the incremental session produce
//!   bit-identical graphs with `clp_bloom_gate` on or off, at threads 1
//!   and 4 (the gate may only prune an edge the exact check would have
//!   pruned on the same sample);
//! * **distinct gate is sound** — it only ever removes edges, and never a
//!   true containment edge (checked against the by-construction edges of a
//!   wide synthetic corpus);
//! * **sketches are durable** — `R2D2LAKE` v3 files round-trip every
//!   partition- and table-level sketch bit-for-bit (older versions fail
//!   with an explicit error), and a restored session reproduces the live
//!   session's gating decisions exactly.

use r2d2_core::{PersistenceConfig, PipelineConfig, R2d2Pipeline, R2d2Session};
use r2d2_lake::{
    storage, AccessProfile, Column, DataLake, DataType, DatasetId, LakeUpdate, Meter,
    PartitionSpec, PartitionedTable, Predicate, Schema, Table, Value,
};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn table(ids: std::ops::Range<i64>) -> Table {
    let schema = Schema::flat(&[
        ("id", DataType::Int),
        ("grp", DataType::Utf8),
        ("v", DataType::Float),
    ])
    .unwrap();
    Table::new(
        schema,
        vec![
            Column::from_ints(ids.clone()),
            Column::from_strs(ids.clone().map(|i| format!("g{}", i % 3))),
            Column::from_floats(ids.map(|i| i as f64 * 0.5)),
        ],
    )
    .unwrap()
}

/// Same schema and id/string columns as [`table`], but the float column is
/// offset — an impostor that passes the schema check and (for nested id
/// ranges) min/max pruning, and must be rejected at content level, which is
/// exactly where the bloom gate fires.
fn impostor(ids: std::ops::Range<i64>) -> Table {
    let schema = table(0..1).schema().clone();
    Table::new(
        schema,
        vec![
            Column::from_ints(ids.clone()),
            Column::from_strs(ids.clone().map(|i| format!("g{}", i % 3))),
            Column::from_floats(ids.map(|i| i as f64 * 0.5 + 0.123)),
        ],
    )
    .unwrap()
}

fn part(t: Table) -> PartitionedTable {
    PartitionedTable::from_table(
        t,
        PartitionSpec::ByRowCount {
            rows_per_partition: 16,
        },
    )
    .unwrap()
}

/// A random lake mixing honest subsets and impostors over one shared schema.
fn random_lake(seed: u64) -> DataLake {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0xA5A5_5A5A).wrapping_add(1));
    let mut lake = DataLake::new();
    lake.add_dataset("root", part(table(0..60)), AccessProfile::default(), None)
        .unwrap();
    let n = rng.gen_range(2usize..6);
    for k in 0..n {
        let start = rng.gen_range(0i64..40);
        let len = rng.gen_range(1i64..30);
        let t = if rng.gen_bool(0.5) {
            table(start..start + len)
        } else {
            impostor(start..start + len)
        };
        lake.add_dataset(format!("d{k}"), part(t), AccessProfile::default(), None)
            .unwrap();
    }
    lake
}

/// A random update stream that applies cleanly to any copy of the lake.
fn gen_updates(seed: u64, live: usize, count: usize) -> Vec<LakeUpdate> {
    let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(7));
    let mut updates = Vec::with_capacity(count);
    for k in 0..count {
        let id = rng.gen_range(0..live as u64);
        match rng.gen_range(0u8..4) {
            0 => {
                let start = rng.gen_range(0i64..50);
                let len = rng.gen_range(1i64..20);
                let t = if rng.gen_bool(0.5) {
                    table(start..start + len)
                } else {
                    impostor(start..start + len)
                };
                updates.push(LakeUpdate::AddDataset {
                    name: format!("u{seed}_{k}"),
                    data: part(t),
                    access: AccessProfile::default(),
                    lineage: None,
                });
            }
            1 => {
                let start = rng.gen_range(0i64..50);
                let len = rng.gen_range(0i64..15);
                updates.push(LakeUpdate::AppendRows {
                    id: DatasetId(id),
                    rows: table(start..start + len),
                });
            }
            _ => {
                let lo = rng.gen_range(0i64..50);
                let hi = lo + rng.gen_range(0i64..25);
                updates.push(LakeUpdate::DeleteRows {
                    id: DatasetId(id),
                    predicate: Predicate::between("id", Value::Int(lo), Value::Int(hi)),
                });
            }
        }
    }
    updates
}

use r2d2_bench::experiments::sorted_edges;

fn config(threads: usize) -> PipelineConfig {
    PipelineConfig::default()
        .with_seed(13)
        .with_threads(threads)
}

proptest::proptest! {
    /// The bit-identical oracle of the sketch gate: over random corpora and
    /// update streams, every stage graph and every session graph is
    /// identical with the bloom gate on or off, whether the stream is
    /// applied incrementally or the mutated lake is re-run from scratch, at
    /// threads 1 and 4. Identical `rows_sampled` pins that both modes draw
    /// the very same samples (same per-edge RNG streams).
    #[test]
    fn bloom_gating_is_bit_identical_everywhere(
        seed in 0u64..500_000,
        count in 1usize..5,
    ) {
        let live = random_lake(seed).len();
        let updates = gen_updates(seed, live, count);

        let mut runs = Vec::new();
        for threads in [1usize, 4] {
            for bloom in [true, false] {
                let cfg = config(threads).with_clp_bloom_gate(bloom);
                // Batch pipeline over the mutated lake.
                let mut lake = random_lake(seed);
                for u in &updates {
                    lake.apply_update(u).unwrap();
                }
                let report = R2d2Pipeline::new(cfg.clone()).run(&lake).unwrap();
                // Incremental session over the same stream.
                let mut session = R2d2Session::bootstrap(random_lake(seed), cfg).unwrap();
                let mut rows_sampled = 0usize;
                for u in &updates {
                    rows_sampled += session.apply(u.clone()).unwrap().rows_sampled;
                }
                proptest::prop_assert_eq!(
                    sorted_edges(report.final_graph()),
                    sorted_edges(session.graph()),
                    "incremental != batch (threads={}, bloom={})", threads, bloom
                );
                runs.push((
                    sorted_edges(&report.after_sgb),
                    sorted_edges(&report.after_mmp),
                    sorted_edges(&report.after_clp),
                    rows_sampled,
                ));
            }
        }
        for run in &runs[1..] {
            proptest::prop_assert_eq!(run, &runs[0], "gating or threads changed the outcome");
        }
    }
}

#[test]
fn bloom_gate_actually_fires_on_impostors() {
    // Sanity for the oracle above: the random corpora genuinely exercise
    // the gate (otherwise "bit-identical" would be vacuous).
    let mut lake = DataLake::new();
    lake.add_dataset("root", part(table(0..60)), AccessProfile::default(), None)
        .unwrap();
    lake.add_dataset(
        "fake",
        part(impostor(5..45)),
        AccessProfile::default(),
        None,
    )
    .unwrap();
    let report = R2d2Pipeline::new(config(1)).run(&lake).unwrap();
    let ops = lake.meter().snapshot();
    assert!(ops.sketch_probes > 0, "gate must probe");
    assert!(ops.sketch_prunes > 0, "gate must prune the impostor edge");
    assert!(!report.final_graph().has_edge(0, 1));
}

#[test]
fn distinct_gate_only_removes_edges_and_keeps_every_true_edge() {
    use r2d2_bench::experiments::containment_bench::wide_corpus;

    let corpus = wide_corpus(true);
    let gated = R2d2Pipeline::new(PipelineConfig::default())
        .run(&corpus.lake)
        .unwrap();
    let ungated = R2d2Pipeline::new(PipelineConfig::default().with_mmp_distinct_gate(false))
        .run(&corpus.lake)
        .unwrap();
    let gated_edges = sorted_edges(gated.final_graph());
    let ungated_edges = sorted_edges(ungated.final_graph());
    for edge in &gated_edges {
        assert!(
            ungated_edges.binary_search(edge).is_ok(),
            "distinct gate introduced edge {edge:?}"
        );
    }
    // Recall: every by-construction containment edge survives full gating.
    for (p, c) in corpus.expected.edges() {
        assert!(
            gated.final_graph().has_edge(p, c),
            "gating pruned true edge {p} -> {c}"
        );
    }
}

#[test]
fn storage_v3_round_trips_sketches_and_rejects_older_versions() {
    let pt = part(table(0..50));
    let bytes = storage::encode(&pt);
    let back = storage::decode(&bytes, &Meter::new()).unwrap();
    // Raw storage decode recovers everything except the partition policy
    // (which the snapshot codec frames alongside — see `snapshot` below):
    // per-partition stats, table-level stats, sketches, distinct-exact flag.
    assert_eq!(back.partition_meta(), pt.partition_meta());
    assert_eq!(back.table_stats(), pt.table_stats());
    assert!(back.table_distinct_exact());

    // The snapshot framing restores the spec too: full bit-for-bit equality.
    let mut framed = bytes::BytesMut::new();
    r2d2_lake::snapshot::put_partitioned(&mut framed, &pt);
    let mut cursor = framed.freeze();
    let snap_back = r2d2_lake::snapshot::get_partitioned(&mut cursor).unwrap();
    assert_eq!(
        snap_back, pt,
        "snapshot codec must reproduce the table bit-for-bit"
    );
    assert_eq!(
        back.column_sketch("v").unwrap(),
        pt.column_sketch("v").unwrap()
    );

    // The footer-only path exposes the same table-level statistics.
    let footer = storage::read_footer(&bytes, &Meter::new()).unwrap();
    assert_eq!(footer.table_level(), pt.table_stats().clone());

    // A v2 file (same bytes, patched version field) fails with an explicit
    // version error instead of silently dropping sketches.
    let mut old = bytes.to_vec();
    old[8..12].copy_from_slice(&2u32.to_le_bytes());
    let err = storage::decode(&bytes::Bytes::from(old), &Meter::new()).unwrap_err();
    assert!(
        err.to_string().contains("unsupported R2D2LAKE version 2"),
        "unexpected error: {err}"
    );
}

#[test]
fn restored_session_reproduces_gating_decisions() {
    let dir = std::env::temp_dir().join("r2d2_integration_sketch_restore");
    std::fs::remove_dir_all(&dir).ok();

    let mut live = R2d2Session::bootstrap(random_lake(99), config(1)).unwrap();
    live.enable_persistence(PersistenceConfig::new(&dir))
        .unwrap();
    let mut restored = R2d2Session::restore(&dir).unwrap();

    // Feed both sessions an update whose verification depends on the
    // sketches (an impostor add: its edges die at the bloom gate).
    let update = LakeUpdate::AddDataset {
        name: "late_impostor".into(),
        data: part(impostor(3..40)),
        access: AccessProfile::default(),
        lineage: None,
    };
    let prunes_before = restored.ops().sketch_prunes;
    let mut live_report = live.apply(update.clone()).unwrap();
    let mut restored_report = restored.apply(update).unwrap();
    // Everything except wall clock (and the process-local page counters —
    // the restored session materializes lazy pages the live one decoded
    // eagerly) must be identical.
    live_report.duration = std::time::Duration::ZERO;
    restored_report.duration = std::time::Duration::ZERO;
    live_report.ops = live_report.ops.without_page_counters();
    restored_report.ops = restored_report.ops.without_page_counters();
    assert_eq!(
        live_report, restored_report,
        "restored sketches must reproduce the live gating decisions"
    );
    assert_eq!(sorted_edges(live.graph()), sorted_edges(restored.graph()));
    assert_eq!(
        live.ops().without_page_counters(),
        restored.ops().without_page_counters(),
        "meter totals must stay in sync"
    );
    assert!(
        restored.ops().sketch_prunes > prunes_before,
        "the verification sweep must have exercised the restored sketches"
    );

    std::fs::remove_dir_all(&dir).ok();
}
