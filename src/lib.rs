//! Workspace root crate: convenience re-exports of every R2D2 reproduction
//! crate, so downstream users (and the integration tests / examples in this
//! package) can depend on a single name.

pub use r2d2_baselines as baselines;
pub use r2d2_bench as bench;
pub use r2d2_core as core;
pub use r2d2_graph as graph;
pub use r2d2_lake as lake;
pub use r2d2_opt as opt;
pub use r2d2_serve as serve;
pub use r2d2_synth as synth;
