//! Dynamic updates scenario (§7.1 of the paper): keep the containment graph
//! up to date as datasets are added, grown, shrunk and deleted, without
//! re-running the whole pipeline.
//!
//! Run with:
//!
//! ```text
//! cargo run -p r2d2-bench --example dynamic_updates
//! ```

use r2d2_core::dynamic::{dataset_added, dataset_deleted, dataset_grew, dataset_shrank};
use r2d2_core::{PipelineConfig, R2d2Pipeline};
use r2d2_lake::{
    AccessProfile, Column, DataLake, DataType, DatasetId, Meter, PartitionedTable, Schema, Table,
};

fn events_table(ids: std::ops::Range<i64>) -> Table {
    let schema = Schema::flat(&[
        ("event_id", DataType::Int),
        ("kind", DataType::Utf8),
        ("score", DataType::Float),
    ])
    .unwrap();
    Table::new(
        schema,
        vec![
            Column::from_ints(ids.clone()),
            Column::from_strs(ids.clone().map(|i| format!("k{}", i % 4))),
            Column::from_floats(ids.map(|i| i as f64 * 0.1)),
        ],
    )
    .unwrap()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = PipelineConfig::default();
    let meter = Meter::new();

    // Initial lake: one base table and one derived subset.
    let mut lake = DataLake::new();
    let base = lake.add_dataset(
        "events",
        PartitionedTable::single(events_table(0..500)),
        AccessProfile::default(),
        None,
    )?;
    let subset = lake.add_dataset(
        "events_recent",
        PartitionedTable::single(events_table(400..500)),
        AccessProfile::default(),
        None,
    )?;

    let mut graph = R2d2Pipeline::new(config.clone()).run(&lake)?.after_clp;
    println!("initial containment edges: {:?}", graph.edges());

    // 1. A new dataset lands in the lake: an analyst's export of a slice.
    let export = lake.add_dataset(
        "events_slice_export",
        PartitionedTable::single(events_table(100..160)),
        AccessProfile::default(),
        None,
    )?;
    let stats = dataset_added(&lake, &mut graph, export.0, &config, &meter)?;
    println!(
        "after adding events_slice_export: +{} edges ({} candidates checked) → {:?}",
        stats.edges_added,
        stats.candidates_checked,
        graph.edges()
    );

    // 2. The derived subset grows beyond its parent (new rows appended).
    lake.replace_data(subset, PartitionedTable::single(events_table(400..700)))?;
    let stats = dataset_grew(&lake, &mut graph, subset.0, &config, &meter)?;
    println!(
        "after events_recent grew past its parent: -{} edges → {:?}",
        stats.edges_removed,
        graph.edges()
    );

    // 3. The base table is truncated (old rows expire), so it may now fit
    //    inside other datasets — and some children may no longer be covered.
    lake.replace_data(base, PartitionedTable::single(events_table(0..150)))?;
    let stats = dataset_shrank(&lake, &mut graph, base.0, &config, &meter)?;
    println!(
        "after events shrank: -{} edges, +{} edges → {:?}",
        stats.edges_removed,
        stats.edges_added,
        graph.edges()
    );

    // 4. The export is deleted outright.
    lake.remove_dataset(DatasetId(export.0))?;
    let stats = dataset_deleted(&mut graph, export.0);
    println!(
        "after deleting events_slice_export: -{} edges → {:?}",
        stats.edges_removed,
        graph.edges()
    );

    // Sanity: an incremental maintenance pass and a full re-run agree.
    let full = R2d2Pipeline::new(config).run(&lake)?.after_clp;
    let mut incremental_edges = graph.edges();
    let mut full_edges = full.edges();
    incremental_edges.sort_unstable();
    full_edges.sort_unstable();
    assert_eq!(incremental_edges, full_edges, "incremental == full re-run");
    println!("incremental maintenance matches a full pipeline re-run ✔");
    Ok(())
}
