//! Dynamic updates scenario (§7.1 of the paper): keep the containment graph
//! up to date as datasets are added, grown, shrunk and deleted, without
//! re-running the whole pipeline.
//!
//! An [`R2d2Session`] owns the lake, the live graph and the shared caches;
//! every lake change is a typed [`LakeUpdate`] event fed to
//! `session.apply(...)` (or coalesced through `session.apply_batch(...)`).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example dynamic_updates
//! ```

use r2d2_core::{AppliedUpdate, PipelineConfig, R2d2Pipeline, R2d2Session};
use r2d2_lake::{AccessProfile, DataLake, LakeUpdate, PartitionedTable, Predicate, Value};
use r2d2_synth::demo::events_table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Initial lake: one base table and one derived subset.
    let mut lake = DataLake::new();
    let base = lake.add_dataset(
        "events",
        PartitionedTable::single(events_table(0..500)),
        AccessProfile::default(),
        None,
    )?;
    let subset = lake.add_dataset(
        "events_recent",
        PartitionedTable::single(events_table(400..500)),
        AccessProfile::default(),
        None,
    )?;

    // Bootstrap runs the batch SGB → MMP → CLP pipeline once; from here on
    // the session maintains the graph incrementally.
    let mut session = R2d2Session::bootstrap(lake, PipelineConfig::default())?;
    println!("initial containment edges: {:?}", session.graph().edges());

    // 1. A new dataset lands in the lake: an analyst's export of a slice.
    let report = session.apply(LakeUpdate::AddDataset {
        name: "events_slice_export".into(),
        data: PartitionedTable::single(events_table(100..160)),
        access: AccessProfile::default(),
        lineage: None,
    })?;
    let export = report
        .applied
        .iter()
        .find_map(|a| match a {
            AppliedUpdate::Added { id } => Some(*id),
            _ => None,
        })
        .expect("AddDataset reports its assigned id");
    println!(
        "after adding events_slice_export: +{} edges ({} candidates checked) → {:?}",
        report.delta.added.len(),
        report.candidates_checked,
        session.graph().edges()
    );

    // 2. The derived subset grows beyond its parent (new rows appended) —
    //    two appends to the same table coalesce into ONE verification sweep.
    let report = session.apply_batch(&[
        LakeUpdate::AppendRows {
            id: subset,
            rows: events_table(500..600),
        },
        LakeUpdate::AppendRows {
            id: subset,
            rows: events_table(600..700),
        },
    ])?;
    println!(
        "after events_recent grew past its parent: -{} edges ({} candidates for 2 appends) → {:?}",
        report.delta.removed.len(),
        report.candidates_checked,
        session.graph().edges()
    );

    // 3. The base table is truncated (old rows expire), so it may now fit
    //    inside other datasets — and some children may no longer be covered.
    let report = session.apply(LakeUpdate::DeleteRows {
        id: base,
        predicate: Predicate::between("event_id", Value::Int(150), Value::Int(499)),
    })?;
    println!(
        "after events shrank: -{} edges, +{} edges → {:?}",
        report.delta.removed.len(),
        report.delta.added.len(),
        session.graph().edges()
    );

    // 4. The export is deleted outright.
    let report = session.apply(LakeUpdate::DropDataset { id: export })?;
    println!(
        "after deleting events_slice_export: -{} edges → {:?}",
        report.delta.removed.len(),
        session.graph().edges()
    );

    // The session's event log remembers every batch.
    let summary = session.report();
    println!(
        "session: {} updates in {} batches over {} datasets, {} row-level ops total",
        summary.updates_applied,
        summary.batches_applied,
        summary.datasets,
        summary.ops.row_level_ops()
    );

    // Sanity: incremental maintenance and a full re-run agree exactly.
    let full = R2d2Pipeline::new(session.config().clone())
        .run(session.lake())?
        .after_clp;
    let mut incremental_edges = session.graph().edges();
    let mut full_edges = full.edges();
    incremental_edges.sort_unstable();
    full_edges.sort_unstable();
    assert_eq!(incremental_edges, full_edges, "incremental == full re-run");
    println!("incremental maintenance matches a full pipeline re-run ✔");
    Ok(())
}
