//! Durable sessions: snapshot + write-ahead log, crash, warm restart.
//!
//! An [`R2d2Session`] with persistence enabled writes every update batch to
//! a write-ahead log *before* applying it, and periodically compacts the
//! log into a fresh snapshot generation. Killing the process at any point
//! and calling [`R2d2Session::restore`] rebuilds the exact same session —
//! graph, meter totals, update log, caches and advisor — without re-running
//! the SGB → MMP → CLP bootstrap.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example persistence
//! ```

use r2d2_core::{PersistenceConfig, PipelineConfig, R2d2Session};
use r2d2_lake::{DataLake, LakeUpdate, PartitionedTable, Predicate, Value};
use r2d2_synth::demo::events_table;
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("r2d2_example_persistence");
    std::fs::remove_dir_all(&dir).ok();

    // 1. Bootstrap a session and make it durable. `enable_persistence`
    //    writes generation 1 (snapshot + empty WAL) into the directory;
    //    `snapshot_every_n_updates` controls when the WAL is folded into a
    //    fresh snapshot.
    let mut lake = DataLake::new();
    let events = lake.add_dataset(
        "events",
        PartitionedTable::single(events_table(0..500)),
        Default::default(),
        None,
    )?;
    lake.add_dataset(
        "events_recent",
        PartitionedTable::single(events_table(400..500)),
        Default::default(),
        None,
    )?;
    let mut session = R2d2Session::bootstrap(lake, PipelineConfig::default())?;
    session.enable_persistence(PersistenceConfig::new(&dir).with_snapshot_every(8))?;
    println!(
        "persisting into {} (generation {})",
        dir.display(),
        session.persistence_generation().unwrap()
    );

    // 2. Serve updates. Each batch is fsynced to the WAL before it runs.
    session.apply(LakeUpdate::AddDataset {
        name: "events_slice".into(),
        data: PartitionedTable::single(events_table(100..160)),
        access: Default::default(),
        lineage: None,
    })?;
    session.apply(LakeUpdate::AppendRows {
        id: events,
        rows: events_table(500..600),
    })?;
    session.apply(LakeUpdate::DeleteRows {
        id: events,
        predicate: Predicate::between("event_id", Value::Int(0), Value::Int(49)),
    })?;
    let edges_before = session.graph().edges();
    let ops_before = session.ops();
    println!(
        "live session: {} datasets, {} edges, {} updates in the WAL tail",
        session.report().datasets,
        edges_before.len(),
        session.wal_tail_updates().unwrap()
    );

    // 3. Crash. Dropping the session is all it takes — state lives on disk.
    drop(session);
    println!("process 'crashed' (session dropped)");

    // 4. Warm restart: newest intact snapshot + WAL-tail replay. No
    //    pipeline bootstrap runs here.
    let t0 = Instant::now();
    let mut restored = R2d2Session::restore(&dir)?;
    println!(
        "restored in {:.2?}: {} datasets, {} edges",
        t0.elapsed(),
        restored.report().datasets,
        restored.graph().edge_count()
    );
    assert_eq!(restored.graph().edges(), edges_before, "graph is identical");
    // Page counters are process-local laziness telemetry (the restored
    // session decodes lazily where the live one built tables eagerly), so
    // meter equivalence is always checked modulo them.
    assert_eq!(
        restored.ops().without_page_counters(),
        ops_before.without_page_counters(),
        "meter totals are identical"
    );

    // 5. The restored session keeps serving — and keeps persisting into the
    //    same directory.
    restored.apply(LakeUpdate::AppendRows {
        id: events,
        rows: events_table(600..640),
    })?;
    let generation = restored.checkpoint()?;
    println!(
        "applied one more update and checkpointed → generation {generation}, WAL tail {} updates",
        restored.wal_tail_updates().unwrap()
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
