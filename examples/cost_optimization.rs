//! Cost optimization scenario: take a corpus with known lineage, run the
//! full R2D2 pipeline, pre-process the containment graph for safe deletion
//! (§5.1), solve Opt-Ret (Eq. 3), and report the Table-7-style summary plus
//! the Figure-5-style projection of what those savings look like for a large
//! lake over a year. Also demonstrates the Dyn-Lin fast path on a chain of
//! derived datasets.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example cost_optimization
//! ```

use r2d2_core::R2d2Pipeline;
use r2d2_graph::random::line_graph;
use r2d2_opt::costmodel::CostModel;
use r2d2_opt::dynlin::solve_line;
use r2d2_opt::preprocess::{preprocess_for_safe_deletion, TransformKnowledge};
use r2d2_opt::savings::{figure5_series, table7_row};
use r2d2_opt::{solve, solve_exact, OptRetProblem};
use r2d2_synth::corpus::{generate, CorpusSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: Opt-Ret on a generated corpus (Table 7 style) ---------
    let corpus = generate(&CorpusSpec::enterprise_like(0, 256))?;
    let report = R2d2Pipeline::with_defaults().run(&corpus.lake)?;
    let mut graph = report.after_clp;
    let model = CostModel::default();
    let stats = preprocess_for_safe_deletion(
        &mut graph,
        &corpus.lake,
        &model,
        TransformKnowledge::Required,
    )?;
    println!(
        "safe-deletion preprocessing: {} edges kept, {} dropped (no transform), {} dropped (latency)",
        stats.kept, stats.pruned_unknown_transform, stats.pruned_latency
    );

    let problem = OptRetProblem::from_graph(&graph, &corpus.lake, &model)?;
    let solution = solve(&problem);
    let row = table7_row(&solution, &problem, &corpus.lake, 1.0)?;
    println!(
        "Opt-Ret: delete {} datasets / retain {} — {:.0} row scans saved per month, cost {:.4} vs {:.4} USD/period",
        row.deleted_nodes,
        row.retained_nodes,
        row.gdpr_row_scans_saved_per_month,
        solution.total_cost,
        problem.retain_all_cost()
    );

    // --- Part 2: the Dyn-Lin fast path on a line graph ------------------
    let chain = line_graph(12);
    let chain_problem = OptRetProblem::synthetic(
        &chain,
        &model,
        |_| 20u64 << 30, // 20 GB per dataset
        |_| 0.05,        // rarely accessed
    );
    let dp = solve_line(&chain_problem).expect("line graph");
    let exact = solve_exact(&chain_problem);
    println!(
        "Dyn-Lin on a 12-dataset edit chain: delete {} datasets, cost {:.4} (exact solver agrees: {:.4})",
        dp.deleted_count(),
        dp.total_cost,
        exact.total_cost
    );

    // --- Part 3: Figure-5-style projection for a 10 PB lake -------------
    println!("\n10 PB lake, 1-year horizon, net savings by contained fraction:");
    for (fraction, net) in figure5_series(&[0.1, 0.2, 0.3, 0.4, 0.5], 1.0, &model) {
        println!("  {:>4.0}% contained → ${:>12.0}", fraction * 100.0, net);
    }
    Ok(())
}
