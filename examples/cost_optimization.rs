//! Cost optimization scenario: bootstrap a long-lived [`R2d2Session`] over a
//! corpus with known lineage, attach the live storage advisor (incremental
//! Opt-Ret, Eq. 3), report the Table-7-style summary, and show the advice
//! staying current — re-solving only the dirtied components — as the lake
//! changes. Closes with the Dyn-Lin fast path on a chain of derived datasets
//! and the Figure-5-style projection of the savings for a large lake over a
//! year.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example cost_optimization
//! ```

use r2d2_core::{AdvisorConfig, LakeUpdate, R2d2Session};
use r2d2_graph::random::line_graph;
use r2d2_lake::DatasetId;
use r2d2_opt::costmodel::CostModel;
use r2d2_opt::dynlin::solve_line;
use r2d2_opt::savings::figure5_series;
use r2d2_opt::{solve_exact, OptRetProblem};
use r2d2_synth::corpus::{generate, CorpusSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Part 1: the live storage advisor on a generated corpus ---------
    // Bootstrap the session (SGB → MMP → CLP once), then keep an Opt-Ret
    // solution current instead of re-running `preprocess + solve` by hand.
    let corpus = generate(&CorpusSpec::enterprise_like(0, 256))?;
    let model = CostModel::default();
    let mut session = R2d2Session::with_defaults(corpus.lake)?;
    session.enable_advisor(model, AdvisorConfig::default())?;

    let report = session.advisor_report()?;
    println!(
        "Opt-Ret advisor: delete {} datasets / retain {} — {:.0} row scans saved per month, cost {:.4} vs {:.4} USD/period",
        report.table7.deleted_nodes,
        report.table7.retained_nodes,
        report.table7.gdpr_row_scans_saved_per_month,
        report.total_cost,
        report.retain_all_cost
    );

    // The advice stays current as the lake changes: drop one recommended
    // deletion and the next advise() re-solves only the dirtied components.
    if let Some(&victim) = report.solution.deleted.iter().next() {
        session.apply(LakeUpdate::DropDataset {
            id: DatasetId(victim),
        })?;
        let refreshed = session.advisor_report()?;
        println!(
            "after dropping ds{victim}: delete {} / retain {} (re-solved {} of {} components, reused {})",
            refreshed.table7.deleted_nodes,
            refreshed.table7.retained_nodes,
            refreshed.stats.components_resolved,
            refreshed.stats.components_total,
            refreshed.stats.components_reused
        );
    }

    // --- Part 2: the Dyn-Lin fast path on a line graph ------------------
    let chain = line_graph(12);
    let chain_problem = OptRetProblem::synthetic(
        &chain,
        &model,
        |_| 20u64 << 30, // 20 GB per dataset
        |_| 0.05,        // rarely accessed
    );
    let dp = solve_line(&chain_problem).expect("line graph");
    let exact = solve_exact(&chain_problem);
    println!(
        "Dyn-Lin on a 12-dataset edit chain: delete {} datasets, cost {:.4} (exact solver agrees: {:.4})",
        dp.deleted_count(),
        dp.total_cost,
        exact.total_cost
    );

    // --- Part 3: Figure-5-style projection for a 10 PB lake -------------
    println!("\n10 PB lake, 1-year horizon, net savings by contained fraction:");
    for (fraction, net) in figure5_series(&[0.1, 0.2, 0.3, 0.4, 0.5], 1.0, &model) {
        println!("  {:>4.0}% contained → ${:>12.0}", fraction * 100.0, net);
    }
    Ok(())
}
