//! Quickstart: take a tiny data lake, run the R2D2 pipeline, inspect the
//! containment graph, and ask the optimizer what can be safely deleted.
//!
//! The lake comes from [`r2d2_synth::demo::demo_lake`]: an "orders" table, a
//! derived EMEA export (an analyst's `WHERE region = 'emea'` copy, lineage
//! recorded) and an unrelated "returns" table.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use r2d2_core::R2d2Pipeline;
use r2d2_opt::costmodel::CostModel;
use r2d2_opt::preprocess::{preprocess_for_safe_deletion, TransformKnowledge};
use r2d2_opt::{solve, OptRetProblem};
use r2d2_synth::demo::demo_lake;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small data lake with one redundant derived dataset.
    let (lake, ids) = demo_lake()?;

    // 2. Run the R2D2 pipeline (SGB → MMP → CLP).
    let report = R2d2Pipeline::with_defaults().run(&lake)?;
    println!("datasets in the lake : {}", lake.len());
    println!("edges after SGB      : {}", report.after_sgb.edge_count());
    println!("edges after MMP      : {}", report.after_mmp.edge_count());
    println!("edges after CLP      : {}", report.after_clp.edge_count());
    for (parent, child) in report.after_clp.edges() {
        let p = lake.dataset(r2d2_lake::DatasetId(parent))?;
        let c = lake.dataset(r2d2_lake::DatasetId(child))?;
        println!("containment: {} ⊆ {}", c.name, p.name);
    }

    // 3. Pre-process the graph for safe deletion and run Opt-Ret.
    let mut graph = report.after_clp.clone();
    let model = CostModel::default();
    preprocess_for_safe_deletion(&mut graph, &lake, &model, TransformKnowledge::Required)?;
    let problem = OptRetProblem::from_graph(&graph, &lake, &model)?;
    let solution = solve(&problem);
    println!(
        "optimizer: retain {} dataset(s), delete {} dataset(s), cost {:.6} USD/period (vs {:.6} retaining everything)",
        solution.retained.len(),
        solution.deleted.len(),
        solution.total_cost,
        problem.retain_all_cost(),
    );
    for d in &solution.deleted {
        let entry = lake.dataset(r2d2_lake::DatasetId(*d))?;
        let parent = solution.reconstruction_parent[d];
        let parent_name = lake.dataset(r2d2_lake::DatasetId(parent))?.name.clone();
        println!(
            "  delete `{}` ({} rows); reconstruct on demand from `{}`",
            entry.name,
            entry.num_rows(),
            parent_name
        );
    }
    assert!(
        solution.deleted.contains(&ids.emea_export.0),
        "the derived export is redundant"
    );
    Ok(())
}
