//! Quickstart: build a tiny data lake, run the R2D2 pipeline, inspect the
//! containment graph, and ask the optimizer what can be safely deleted.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use r2d2_core::R2d2Pipeline;
use r2d2_lake::{
    AccessProfile, Column, DataLake, DataType, Lineage, PartitionSpec, PartitionedTable, Schema,
    Table,
};
use r2d2_opt::costmodel::CostModel;
use r2d2_opt::preprocess::{preprocess_for_safe_deletion, TransformKnowledge};
use r2d2_opt::{solve, OptRetProblem};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a small data lake: an "orders" table, a filtered copy of it
    //    (an analyst's `WHERE region = 'emea'` export) and an unrelated table.
    let schema = Schema::flat(&[
        ("order_id", DataType::Int),
        ("region", DataType::Utf8),
        ("amount", DataType::Float),
    ])?;
    let orders = Table::new(
        schema.clone(),
        vec![
            Column::from_ints(0..1_000),
            Column::from_strs((0..1_000).map(|i| if i % 3 == 0 { "emea" } else { "na" })),
            Column::from_floats((0..1_000).map(|i| i as f64 * 1.5)),
        ],
    )?;
    // The derived export: exactly the EMEA rows of `orders`.
    let emea_rows: Vec<usize> = (0..1_000).filter(|i| i % 3 == 0).collect();
    let emea_export = orders.take(&emea_rows)?;
    // An unrelated table with the same schema but different content.
    let other = Table::new(
        schema,
        vec![
            Column::from_ints(50_000..50_200),
            Column::from_strs((0..200).map(|_| "apac")),
            Column::from_floats((0..200).map(|i| i as f64)),
        ],
    )?;

    let mut lake = DataLake::new();
    let part = |t: Table| {
        PartitionedTable::from_table(
            t,
            PartitionSpec::ByRowCount {
                rows_per_partition: 128,
            },
        )
    };
    let orders_id = lake.add_dataset("orders", part(orders)?, AccessProfile::default(), None)?;
    let emea_id = lake.add_dataset(
        "orders_emea_export",
        part(emea_export)?,
        AccessProfile {
            accesses_per_period: 0.2,
            maintenance_per_period: 4.0,
        },
        Some(Lineage {
            parent: orders_id,
            transform: "SELECT * FROM orders WHERE region = 'emea'".to_string(),
        }),
    )?;
    lake.add_dataset("returns", part(other)?, AccessProfile::default(), None)?;

    // 2. Run the R2D2 pipeline (SGB → MMP → CLP).
    let report = R2d2Pipeline::with_defaults().run(&lake)?;
    println!("datasets in the lake : {}", lake.len());
    println!("edges after SGB      : {}", report.after_sgb.edge_count());
    println!("edges after MMP      : {}", report.after_mmp.edge_count());
    println!("edges after CLP      : {}", report.after_clp.edge_count());
    for (parent, child) in report.after_clp.edges() {
        let p = lake.dataset(r2d2_lake::DatasetId(parent))?;
        let c = lake.dataset(r2d2_lake::DatasetId(child))?;
        println!("containment: {} ⊆ {}", c.name, p.name);
    }

    // 3. Pre-process the graph for safe deletion and run Opt-Ret.
    let mut graph = report.after_clp.clone();
    let model = CostModel::default();
    preprocess_for_safe_deletion(&mut graph, &lake, &model, TransformKnowledge::Required)?;
    let problem = OptRetProblem::from_graph(&graph, &lake, &model)?;
    let solution = solve(&problem);
    println!(
        "optimizer: retain {} dataset(s), delete {} dataset(s), cost {:.6} USD/period (vs {:.6} retaining everything)",
        solution.retained.len(),
        solution.deleted.len(),
        solution.total_cost,
        problem.retain_all_cost(),
    );
    for d in &solution.deleted {
        let entry = lake.dataset(r2d2_lake::DatasetId(*d))?;
        let parent = solution.reconstruction_parent[d];
        let parent_name = lake.dataset(r2d2_lake::DatasetId(parent))?.name.clone();
        println!(
            "  delete `{}` ({} rows); reconstruct on demand from `{}`",
            entry.name,
            entry.num_rows(),
            parent_name
        );
    }
    assert!(
        solution.deleted.contains(&emea_id.0),
        "the derived export is redundant"
    );
    Ok(())
}
