//! Concurrent serving: snapshot-isolated readers over a group-committing
//! writer.
//!
//! [`R2d2Server`] wraps a bootstrapped [`R2d2Session`] behind a single
//! writer thread and hands out clonable [`ReadHandle`]s. Readers pin an
//! immutable [`Epoch`] — containment graph, advisor solution, catalog and
//! operation counters, stamped with a generation number — and keep serving
//! from it no matter what the writer does; the writer drains the submit
//! queue in coalesced groups, commits each group as one batch (one WAL
//! record, one fsync when persistence is attached) and only then publishes
//! the next epoch. A failing batch fails alone: its submitter gets the
//! error, everyone else's commits land, and no torn state is ever visible.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve
//! ```

use r2d2_core::{PipelineConfig, R2d2Session};
use r2d2_lake::{DataLake, LakeUpdate, PartitionedTable, Predicate};
use r2d2_serve::{R2d2Server, ServeConfig};
use r2d2_synth::demo::events_table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Bootstrap a session, then hand it to the server. `start` publishes
    //    epoch 0 (the bootstrap state) and spawns the writer thread.
    let mut lake = DataLake::new();
    let events = lake.add_dataset(
        "events",
        PartitionedTable::single(events_table(0..400)),
        Default::default(),
        None,
    )?;
    lake.add_dataset(
        "events_recent",
        PartitionedTable::single(events_table(300..400)),
        Default::default(),
        None,
    )?;
    let session = R2d2Session::bootstrap(lake, PipelineConfig::default())?;
    let server = R2d2Server::start(session, ServeConfig::default());

    // 2. Readers pin epochs. A pinned epoch is immutable — queries against
    //    it see exactly the generation they pinned, forever.
    let pinned = server.handle().epoch();
    println!(
        "pinned epoch {}: {} datasets, {} edges",
        pinned.generation(),
        pinned.datasets(),
        pinned.edges()
    );

    // 3. Concurrent reads and writes. The reader thread serves queries from
    //    whatever epoch is current while the main thread streams update
    //    batches through the commit queue; neither blocks the other.
    let handle = server.handle();
    let reader = std::thread::spawn(move || {
        let mut served = 0usize;
        for _ in 0..200 {
            let epoch = handle.epoch();
            let rows = epoch
                .query_dataset(events, &Predicate::True, Some(5))
                .expect("snapshot read");
            served += rows.num_rows();
        }
        (served, handle.generation())
    });
    let good = server.submit(vec![LakeUpdate::AppendRows {
        id: events,
        rows: events_table(400..460),
    }]);
    let bad = server.submit(vec![LakeUpdate::DropDataset {
        id: r2d2_lake::DatasetId(9999),
    }]);
    let also_good = server.submit(vec![LakeUpdate::AddDataset {
        name: "events_slice".into(),
        data: PartitionedTable::single(events_table(100..180)),
        access: Default::default(),
        lineage: None,
    }]);

    // 4. Every submitter gets its own verdict: the failing batch reports
    //    its error, the batches around it commit as if it never existed.
    let receipt = good.wait()?;
    println!(
        "append committed at generation {} ({} updates)",
        receipt.generation, receipt.updates_applied
    );
    println!("drop of unknown dataset: {}", bad.wait().unwrap_err());
    println!(
        "add committed at generation {}",
        also_good.wait()?.generation
    );

    let (served, last_gen) = reader.join().expect("reader thread");
    println!("reader served {served} rows, last saw generation {last_gen}");
    println!(
        "pinned epoch still reports {} datasets at generation {}",
        pinned.datasets(),
        pinned.generation()
    );

    // 5. Shutdown drains the queue and returns the session for offline use
    //    (checkpointing, advising, further single-threaded batches).
    let stats = server.stats();
    let session = server.shutdown();
    println!(
        "writer stats: {} batches submitted, {} committed, {} failed, {} group commits",
        stats.batches_submitted, stats.batches_committed, stats.batches_failed, stats.commits
    );
    println!(
        "session back in hand: {} datasets, {} updates applied",
        session.report().datasets,
        session.report().updates_applied
    );
    Ok(())
}
