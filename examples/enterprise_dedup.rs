//! Enterprise-scale (structurally) deduplication scenario: generate three
//! customer-org corpora the way §6.1 of the paper describes, serve each from
//! an [`R2d2Session`], compare against the brute-force ground truth and
//! report the Table-1-style edge quality plus the operation savings of
//! Table 3 — then keep the session alive through a dynamic update.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example enterprise_dedup
//! ```

use r2d2_baselines::ground_truth::{
    content_ground_truth, content_ground_truth_op_estimate, schema_ground_truth_op_estimate,
};
use r2d2_core::{R2d2Session, Stage};
use r2d2_graph::diff::diff;
use r2d2_lake::{LakeUpdate, Meter, PartitionedTable};
use r2d2_synth::corpus::{generate, CorpusSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for variant in 0..3 {
        let spec = CorpusSpec::enterprise_like(variant, 200);
        let corpus = generate(&spec)?;
        println!(
            "=== {} — {} datasets, {:.1} MB ===",
            corpus.name,
            corpus.lake.len(),
            corpus.lake.total_bytes() as f64 / 1_048_576.0
        );

        // Ground truth (what a brute-force job would compute).
        let gt = content_ground_truth(&corpus.lake, &Meter::new())?;
        let schema_ops = schema_ground_truth_op_estimate(&corpus.lake);
        let content_ops = content_ground_truth_op_estimate(&corpus.lake, &gt.schema_graph)?;

        // R2D2, served as a long-lived session (bootstrap = one batch run).
        let mut session = R2d2Session::with_defaults(corpus.lake)?;
        let report = session.bootstrap_report();
        let stages = [
            (Stage::Sgb, &report.after_sgb),
            (Stage::Mmp, &report.after_mmp),
            (Stage::Clp, &report.after_clp),
        ];
        for (stage, graph) in stages {
            let d = diff(graph, &gt.containment_graph);
            println!(
                "  after {stage}: correct={:<4} incorrect(<1)={:<5} not detected={}",
                d.correct, d.incorrect, d.not_detected
            );
        }
        let clp_ops = report
            .stage(Stage::Clp)
            .map(|s| s.ops.row_level_ops())
            .unwrap_or(0);
        let bootstrap_ops: u64 = report.stages.iter().map(|s| s.ops.row_level_ops()).sum();
        println!(
            "  ops: ground-truth schema pairs = {schema_ops}, ground-truth content row ops = {content_ops}, R2D2 CLP row ops = {clp_ops}"
        );
        println!(
            "  wall clock: ground truth would do {}x the row-level work of CLP",
            if clp_ops > 0 {
                (content_ops / clp_ops as u128).max(1)
            } else {
                content_ops.max(1)
            }
        );

        // The lake keeps living: a fresh export lands and the session
        // absorbs it with work linear in the number of datasets.
        let donor = session
            .lake()
            .iter()
            .next()
            .expect("corpus is non-empty")
            .data
            .to_table(&Meter::new())?;
        let export = donor.take(&(0..donor.num_rows() / 2).collect::<Vec<_>>())?;
        let update = session.apply(LakeUpdate::AddDataset {
            name: "fresh_export".into(),
            data: PartitionedTable::single(export),
            access: Default::default(),
            lineage: None,
        })?;
        println!(
            "  dynamic add: {} candidates re-verified, +{} edges, {} row-level ops (vs {} for the bootstrap run)",
            update.candidates_checked,
            update.delta.added.len(),
            update.ops.row_level_ops(),
            bootstrap_ops
        );
        println!();
    }
    Ok(())
}
