//! Enterprise-scale (structurally) deduplication scenario: generate three
//! customer-org corpora the way §6.1 of the paper describes, run the R2D2
//! pipeline on each, compare against the brute-force ground truth and report
//! the Table-1-style edge quality plus the operation savings of Table 3.
//!
//! Run with:
//!
//! ```text
//! cargo run -p r2d2-bench --release --example enterprise_dedup
//! ```

use r2d2_baselines::ground_truth::{
    content_ground_truth, content_ground_truth_op_estimate, schema_ground_truth_op_estimate,
};
use r2d2_core::R2d2Pipeline;
use r2d2_graph::diff::diff;
use r2d2_lake::Meter;
use r2d2_synth::corpus::{generate, CorpusSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for variant in 0..3 {
        let spec = CorpusSpec::enterprise_like(variant, 200);
        let corpus = generate(&spec)?;
        println!(
            "=== {} — {} datasets, {:.1} MB ===",
            corpus.name,
            corpus.lake.len(),
            corpus.lake.total_bytes() as f64 / 1_048_576.0
        );

        // Ground truth (what a brute-force job would compute).
        let gt = content_ground_truth(&corpus.lake, &Meter::new())?;
        let schema_ops = schema_ground_truth_op_estimate(&corpus.lake);
        let content_ops = content_ground_truth_op_estimate(&corpus.lake, &gt.schema_graph)?;

        // R2D2.
        let report = R2d2Pipeline::with_defaults().run(&corpus.lake)?;
        let stages = [
            ("SGB", &report.after_sgb),
            ("MMP", &report.after_mmp),
            ("CLP", &report.after_clp),
        ];
        for (name, graph) in stages {
            let d = diff(graph, &gt.containment_graph);
            println!(
                "  after {name}: correct={:<4} incorrect(<1)={:<5} not detected={}",
                d.correct, d.incorrect, d.not_detected
            );
        }
        let clp_ops = report
            .stage("CLP")
            .map(|s| s.ops.row_level_ops())
            .unwrap_or(0);
        println!(
            "  ops: ground-truth schema pairs = {schema_ops}, ground-truth content row ops = {content_ops}, R2D2 CLP row ops = {clp_ops}"
        );
        println!(
            "  wall clock: ground truth would do {}x the row-level work of CLP",
            if clp_ops > 0 {
                (content_ops / clp_ops as u128).max(1)
            } else {
                content_ops.max(1)
            }
        );
        println!();
    }
    Ok(())
}
