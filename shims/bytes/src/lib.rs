//! Offline shim for `bytes`.
//!
//! Provides [`Bytes`] (cheaply cloneable, sliceable, reference-counted byte
//! buffer), [`BytesMut`] (growable write buffer) and the [`Buf`] / [`BufMut`]
//! traits, limited to the little-endian accessors the storage layer uses.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer supporting cheap clones and
/// zero-copy slicing.
#[derive(Debug, Clone)]
pub struct Bytes {
    // `Arc<Vec<u8>>` rather than `Arc<[u8]>`: converting a `Vec` into an
    // `Arc<[u8]>` re-allocates and copies the whole buffer (the Arc header
    // must precede the data), while `Arc::new(vec)` just moves the Vec's
    // 24-byte header. That makes `BytesMut::freeze` and `Bytes::from(Vec)`
    // O(1) — snapshot restore wraps multi-megabyte files this way on its
    // hot path. The price is one extra pointer hop per access.
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::from(Vec::new())
    }

    /// Wrap a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Length of the (remaining) buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Zero-copy sub-slice, indexed relative to this buffer's start.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the buffer out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end: len,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

/// Read cursor over a byte buffer (little-endian accessors only, matching
/// this workspace's storage format).
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copy out the next `len` bytes as an owned [`Bytes`].
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;

    /// Read one byte.
    fn get_u8(&mut self) -> u8;

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32;

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64;

    /// Read a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        self.get_u64_le() as i64
    }

    /// Read a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.start += n;
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(..len);
        self.advance(len);
        out
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.as_slice()[0];
        self.advance(1);
        b
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.as_slice()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.as_slice()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }
}

/// A growable write buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

/// Write cursor over a growable buffer (little-endian only).
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8);

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }

    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        let mut w = BytesMut::new();
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_u64_le(u64::MAX - 1);
        w.put_i64_le(-42);
        w.put_f64_le(1.5);
        w.put_slice(b"hello");
        let mut r = w.freeze();
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.get_i64_le(), -42);
        assert_eq!(r.get_f64_le(), 1.5);
        assert_eq!(r.copy_to_bytes(5).to_vec(), b"hello");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slicing_and_advance() {
        let b = Bytes::from((0u8..10).collect::<Vec<_>>());
        let s = b.slice(2..8);
        assert_eq!(s.len(), 6);
        assert_eq!(s[0], 2);
        let mut c = s.clone();
        c.advance(3);
        assert_eq!(c.remaining(), 3);
        assert_eq!(c[0], 5);
        // Original untouched by clone's advance.
        assert_eq!(s[0], 2);
    }

    #[test]
    fn deref_to_slice() {
        let b = Bytes::from_static(b"R2D2LAKE");
        assert_eq!(&b[..4], b"R2D2");
        assert_eq!(b.len(), 8);
    }
}
