//! Offline shim for `criterion`.
//!
//! A minimal wall-clock benchmarking harness exposing the API shape the
//! `benches/` targets use (`criterion_group!` / `criterion_main!`,
//! `Criterion::benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`). No statistics machinery: each benchmark
//! is warmed up once, timed over `sample_size` batches, and the per-batch
//! mean / min are printed. Good enough to compare variants within one run;
//! not a substitute for real criterion's outlier analysis.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-exported so benches can `black_box` values (stable std version).
pub use std::hint::black_box;

/// Identifier of one benchmark case inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call (untimed).
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run_case<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let n = bencher.samples.len().max(1);
        let total: Duration = bencher.samples.iter().sum();
        let mean = total / n as u32;
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        println!(
            "bench {:<50} mean {:>12?}  min {:>12?}  ({} samples)",
            format!("{}/{}", self.name, id),
            mean,
            min,
            n
        );
    }

    /// Benchmark a closure under a simple name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_case(id, f);
        self
    }

    /// Benchmark a closure that receives a shared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_case(&id.to_string(), |b| f(b, input));
        self
    }

    /// Finish the group (printing is immediate, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.run_case(id, f);
        self
    }
}

/// Declare a group-runner function that calls each benchmark function with a
/// fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("counts", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
        assert_eq!(BenchmarkId::new("f", "x").to_string(), "f/x");
    }
}
