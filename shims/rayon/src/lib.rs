//! Offline shim for `rayon`.
//!
//! The build container has no crates.io access, so instead of rayon's
//! work-stealing pool and `ParallelIterator` machinery this crate exposes the
//! one primitive the pipeline needs: an **order-preserving, dynamically
//! scheduled parallel map** over a slice, built on `std::thread::scope`.
//!
//! Guarantees relied on by `r2d2-core`:
//!
//! * `parallel_map(threads, items, f)` returns exactly
//!   `items.iter().map(f).collect()` — same values, same order — regardless
//!   of `threads`; only the execution interleaving differs.
//! * `threads <= 1` runs inline on the caller's thread with no spawning, so
//!   a single-threaded run is *identical* to the pre-parallelism code path
//!   (same stack, same panic behaviour, no scheduling jitter).
//! * Work is handed out item-by-item from an atomic counter, so uneven item
//!   costs (e.g. containment edges over differently sized parents) balance
//!   across workers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of hardware threads available, with a fallback of 1.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Resolve a user-facing thread knob: `0` means "use all hardware threads",
/// anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        current_num_threads()
    } else {
        threads
    }
}

/// Map `f` over `items` on up to `threads` worker threads, returning results
/// in input order. See the crate docs for the determinism guarantees.
pub fn parallel_map<T, U, F>(threads: usize, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = resolve_threads(threads).min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<U>>> = Mutex::new((0..items.len()).map(|_| None).collect());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Each worker drains indices from the shared counter and
                // buffers its results locally, taking the results lock once
                // per batch instead of once per item.
                let mut local: Vec<(usize, U)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, f(&items[i])));
                    if local.len() >= 64 {
                        let mut guard = results.lock().unwrap();
                        for (idx, v) in local.drain(..) {
                            guard[idx] = Some(v);
                        }
                    }
                }
                if !local.is_empty() {
                    let mut guard = results.lock().unwrap();
                    for (idx, v) in local.drain(..) {
                        guard[idx] = Some(v);
                    }
                }
            });
        }
    });

    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|v| v.expect("every index was processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..1000).collect();
        let seq: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 4, 7] {
            let par = parallel_map(threads, &items, |x| x * x);
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn zero_threads_means_auto() {
        assert_eq!(resolve_threads(0), current_num_threads());
        assert_eq!(resolve_threads(3), 3);
        let items = [1, 2, 3];
        assert_eq!(parallel_map(0, &items, |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(4, &empty, |x| *x).is_empty());
        assert_eq!(parallel_map(4, &[9], |x| x - 1), vec![8]);
    }

    #[test]
    fn uneven_work_is_balanced() {
        // Items with wildly different costs still come back in order.
        let items: Vec<usize> = (0..200).collect();
        let out = parallel_map(8, &items, |&i| {
            if i % 17 == 0 {
                // Simulate an expensive item.
                let mut acc = 0u64;
                for k in 0..50_000u64 {
                    acc = acc.wrapping_add(k.wrapping_mul(k));
                }
                std::hint::black_box(acc);
            }
            i * 2
        });
        assert_eq!(out, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }
}
