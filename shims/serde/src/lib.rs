//! Offline shim for `serde`.
//!
//! The build container has no crates.io access, and this workspace only uses
//! serde as a derive marker (`#[derive(Serialize, Deserialize)]`); nothing
//! serializes through serde's data model. This shim provides empty marker
//! traits and re-exports the no-op derive macros from the `serde_derive`
//! shim under the same names, so `use serde::{Serialize, Deserialize}`
//! resolves both the trait and the derive exactly like the real crate.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
