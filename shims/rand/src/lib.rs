//! Offline shim for `rand` (0.8-style API).
//!
//! The build container has no crates.io access, so this crate provides the
//! subset of the `rand` API the workspace uses, backed by a deterministic
//! xoshiro256++ generator seeded via SplitMix64. Stream values differ from
//! the real `rand` crate (seeded runs are reproducible *within* this
//! workspace, not against external rand-based code), which is acceptable
//! because every consumer treats the RNG as an opaque seeded source.
//!
//! Provided surface:
//!
//! * [`RngCore`] / [`Rng`] (`gen`, `gen_range`, `gen_bool`) with blanket
//!   impls for `&mut R`,
//! * [`SeedableRng::seed_from_u64`] and [`rngs::SmallRng`],
//! * [`distributions::Alphanumeric`], [`distributions::Distribution`]
//!   (`sample`, `sample_iter`),
//! * [`seq::SliceRandom::shuffle`] and [`seq::index::sample`]
//!   (O(k) partial Fisher–Yates).

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next random 64-bit word.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from a half-open `lo..hi` range.
pub trait SampleUniform: Copy {
    /// Draw a value in `lo..hi` (`hi` exclusive; callers guarantee `lo < hi`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * unit_f64(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * unit_f64(rng.next_u64()) as f32
    }
}

/// Map a random word to a float in `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level random value helpers (auto-implemented for every [`RngCore`]).
pub trait Rng: RngCore {
    /// Draw a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    /// Draw uniformly from a half-open range (`range.start < range.end`).
    fn gen_range<T: SampleUniform + PartialOrd>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_in(self, range.start, range.end)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 state expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Value distributions.
pub mod distributions {
    use super::{Rng, RngCore};

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;

        /// Iterator of draws, consuming `rng`.
        fn sample_iter<R: RngCore>(self, rng: R) -> DistIter<Self, R, T>
        where
            Self: Sized,
        {
            DistIter {
                dist: self,
                rng,
                _marker: std::marker::PhantomData,
            }
        }
    }

    /// Iterator returned by [`Distribution::sample_iter`].
    pub struct DistIter<D, R, T> {
        dist: D,
        rng: R,
        _marker: std::marker::PhantomData<fn() -> T>,
    }

    impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            Some(self.dist.sample(&mut self.rng))
        }
    }

    /// Uniform distribution over ASCII letters and digits (samples `u8`).
    #[derive(Debug, Clone, Copy)]
    pub struct Alphanumeric;

    const ALPHANUMERIC: &[u8; 62] =
        b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";

    impl Distribution<u8> for Alphanumeric {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            ALPHANUMERIC[rng.gen_range(0..ALPHANUMERIC.len())]
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffle the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` for an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    /// Index sampling without replacement.
    pub mod index {
        use super::{Rng, RngCore};
        use std::collections::HashMap;

        /// A sampled set of indices (the shim keeps them as a plain vector).
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The sampled indices, in draw order.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Iterate the sampled indices.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }

            /// Number of sampled indices.
            pub fn len(&self) -> usize {
                self.0.len()
            }

            /// Whether the sample is empty.
            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }
        }

        /// Sample `amount` distinct indices from `0..length`, uniformly at
        /// random, in O(`amount`) time and space (sparse partial
        /// Fisher–Yates: only displaced entries are stored in a map).
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from {length}"
            );
            let mut displaced: HashMap<usize, usize> = HashMap::with_capacity(amount);
            let mut out = Vec::with_capacity(amount);
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                let elem_j = displaced.get(&j).copied().unwrap_or(j);
                let elem_i = displaced.get(&i).copied().unwrap_or(i);
                out.push(elem_j);
                displaced.insert(j, elem_i);
            }
            IndexVec(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};
    use std::collections::BTreeSet;

    #[test]
    fn deterministic_from_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0..2.0f64);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let set: BTreeSet<usize> = v.iter().copied().collect();
        assert_eq!(set.len(), 50);
    }

    #[test]
    fn index_sample_distinct_and_uniformish() {
        let mut rng = SmallRng::seed_from_u64(4);
        let picked = super::seq::index::sample(&mut rng, 1000, 10).into_vec();
        assert_eq!(picked.len(), 10);
        let set: BTreeSet<usize> = picked.iter().copied().collect();
        assert_eq!(set.len(), 10, "indices must be distinct");
        assert!(picked.iter().all(|&i| i < 1000));
        // Full-range sample is a permutation.
        let all = super::seq::index::sample(&mut rng, 64, 64).into_vec();
        let set: BTreeSet<usize> = all.iter().copied().collect();
        assert_eq!(set.len(), 64);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
