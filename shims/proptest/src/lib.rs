//! Offline shim for `proptest`.
//!
//! Supports the subset used in this workspace: the [`proptest!`] macro with
//! `arg in strategy` bindings, integer-range strategies, and
//! [`collection::vec`] / [`collection::btree_set`] combinators. Instead of
//! proptest's shrinking machinery, each test runs a fixed number of cases
//! (64) from an RNG seeded deterministically from the test name, so failures
//! are reproducible run-to-run (print the case index to replay).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Number of generated cases per property test.
pub const DEFAULT_CASES: usize = 64;

/// Deterministic per-test RNG (FNV-1a hash of the test name as seed).
pub fn new_test_rng(test_name: &str) -> SmallRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h)
}

/// A value-generation strategy.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use rand::rngs::SmallRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate vectors whose elements come from `element` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size drawn from
    /// `size` (duplicates collapse, so the realised size may be smaller).
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generate ordered sets whose elements come from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut SmallRng) -> BTreeSet<S::Value> {
            let target = if self.size.is_empty() {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            (0..target).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Assert equality inside a property test (plain `assert_eq!` in this shim).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert a condition inside a property test (plain `assert!` in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Define property tests: each `fn name(arg in strategy) { body }` runs
/// [`DEFAULT_CASES`] generated cases under a deterministic RNG.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut proptest_rng = $crate::new_test_rng(stringify!($name));
                for proptest_case in 0..$crate::DEFAULT_CASES {
                    let _ = proptest_case;
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut proptest_rng);
                    )+
                    $body
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    crate::proptest! {
        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u8..10, 2..5)) {
            crate::prop_assert!(v.len() >= 2 && v.len() < 5);
            crate::prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn sets_are_bounded(s in crate::collection::btree_set(0u8..12, 0..6)) {
            crate::prop_assert!(s.len() < 6);
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use rand::RngCore;
        let mut a = new_test_rng("foo");
        let mut b = new_test_rng("foo");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
