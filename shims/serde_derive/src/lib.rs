//! Offline shim for `serde_derive`.
//!
//! The workspace uses `#[derive(Serialize, Deserialize)]` purely as a marker
//! (nothing is actually serialized through serde's data model — reports are
//! rendered as text and the storage layer has its own binary format), so the
//! derives expand to nothing. The trait names are still importable from the
//! sibling `serde` shim, which re-exports these macros under the same names.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
