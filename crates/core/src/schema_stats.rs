//! Schema- and content-similarity statistics over a data lake.
//!
//! §1.2 of the paper motivates R2D2 with two observations about enterprise
//! data: (i) the distribution of pairwise *schema containment* varies widely
//! across customer orgs (Fig. 2 shows histograms for two orgs), and (ii)
//! tables with identical schemas often hold very different values — "over
//! 20% of table pairs have normalized quantiles that are at least 50%
//! different". This module computes both statistics so the experiment
//! harness can regenerate Fig. 2 and the §1.2 quantile analysis on the
//! synthetic corpora.

use r2d2_lake::stats::{normalized_quantile_distance, numeric_quantiles, PAPER_QUANTILE_FRACTIONS};
use r2d2_lake::{DataLake, Meter, Result, SchemaSet};
use serde::{Deserialize, Serialize};

/// A histogram over `[0, 1]` with equal-width buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Bucket counts; bucket `i` covers `[i/n, (i+1)/n)`, the last bucket is
    /// closed on the right.
    pub buckets: Vec<usize>,
    /// Number of observations.
    pub total: usize,
}

impl Histogram {
    /// Build a histogram with `n_buckets` buckets from values in `[0, 1]`.
    pub fn from_values(values: &[f64], n_buckets: usize) -> Self {
        assert!(n_buckets > 0, "need at least one bucket");
        let mut buckets = vec![0usize; n_buckets];
        for &v in values {
            let v = v.clamp(0.0, 1.0);
            let mut idx = (v * n_buckets as f64) as usize;
            if idx == n_buckets {
                idx -= 1;
            }
            buckets[idx] += 1;
        }
        Histogram {
            buckets,
            total: values.len(),
        }
    }

    /// Fraction of observations in each bucket.
    pub fn normalized(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.buckets.len()];
        }
        self.buckets
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }
}

/// Pairwise schema containment fractions for every ordered pair `(A, B)`
/// with `|A.schema| ≤ |B.schema|` — the quantity whose histogram Fig. 2
/// plots. Returns `(pairs, fractions)` where `pairs[i]` is the (smaller,
/// larger) dataset-id pair behind `fractions[i]`.
pub fn schema_containment_fractions(schemas: &[(u64, SchemaSet)]) -> (Vec<(u64, u64)>, Vec<f64>) {
    let mut pairs = Vec::new();
    let mut fractions = Vec::new();
    for (i, (id_a, sa)) in schemas.iter().enumerate() {
        for (id_b, sb) in schemas.iter().skip(i + 1) {
            // CM(smaller, larger)
            let (small_id, small, large_id, large) = if sa.len() <= sb.len() {
                (*id_a, sa, *id_b, sb)
            } else {
                (*id_b, sb, *id_a, sa)
            };
            pairs.push((small_id, large_id));
            fractions.push(small.containment_fraction(large));
        }
    }
    (pairs, fractions)
}

/// Histogram of pairwise schema containment for a lake (Fig. 2 for one org).
pub fn schema_containment_histogram(lake: &DataLake, n_buckets: usize) -> Histogram {
    let schemas: Vec<(u64, SchemaSet)> = lake
        .iter()
        .map(|e| (e.id.0, e.data.schema().schema_set()))
        .collect();
    let (_, fractions) = schema_containment_fractions(&schemas);
    Histogram::from_values(&fractions, n_buckets)
}

/// Result of the §1.2 quantile-divergence analysis over same-schema pairs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct QuantileDivergence {
    /// Number of table pairs with identical schemas that were compared.
    pub same_schema_pairs: usize,
    /// Of those, the number whose average normalised quantile distance is at
    /// least `threshold`.
    pub divergent_pairs: usize,
    /// The divergence threshold used (the paper uses 0.5, i.e. "at least 50%
    /// different").
    pub threshold: f64,
}

impl QuantileDivergence {
    /// Fraction of same-schema pairs that are divergent.
    pub fn divergent_fraction(&self) -> f64 {
        if self.same_schema_pairs == 0 {
            0.0
        } else {
            self.divergent_pairs as f64 / self.same_schema_pairs as f64
        }
    }
}

/// For every pair of datasets with identical schemas, compute the average
/// normalised quantile distance over their numeric columns and count how
/// many pairs exceed `threshold` (§1.2 uses 0.5).
pub fn quantile_divergence(
    lake: &DataLake,
    threshold: f64,
    meter: &Meter,
) -> Result<QuantileDivergence> {
    let entries: Vec<_> = lake.iter().collect();
    let mut result = QuantileDivergence {
        threshold,
        ..Default::default()
    };
    for (i, a) in entries.iter().enumerate() {
        for b in entries.iter().skip(i + 1) {
            let sa = a.data.schema().schema_set();
            let sb = b.data.schema().schema_set();
            if sa != sb {
                continue;
            }
            result.same_schema_pairs += 1;
            // Average quantile distance over numeric columns.
            let ta = a.data.to_table(meter)?;
            let tb = b.data.to_table(meter)?;
            let mut total = 0.0;
            let mut n = 0usize;
            for field in ta.schema().fields() {
                if !field.data_type.is_numeric() {
                    continue;
                }
                let qa =
                    numeric_quantiles(ta.column(&field.name)?.values(), &PAPER_QUANTILE_FRACTIONS);
                let qb =
                    numeric_quantiles(tb.column(&field.name)?.values(), &PAPER_QUANTILE_FRACTIONS);
                if let Some(d) = normalized_quantile_distance(&qa, &qb) {
                    total += d;
                    n += 1;
                }
            }
            if n > 0 && total / n as f64 >= threshold {
                result.divergent_pairs += 1;
            }
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_lake::{AccessProfile, Column, DataType, PartitionedTable, Schema, Table};

    #[test]
    fn histogram_bucketing() {
        let h = Histogram::from_values(&[0.0, 0.05, 0.5, 0.99, 1.0], 10);
        assert_eq!(h.total, 5);
        assert_eq!(h.buckets[0], 2);
        assert_eq!(h.buckets[5], 1);
        assert_eq!(h.buckets[9], 2, "1.0 falls in the last bucket");
        let norm = h.normalized();
        assert!((norm.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::from_values(&[], 4);
        assert_eq!(h.total, 0);
        assert_eq!(h.normalized(), vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_zero_buckets_panics() {
        Histogram::from_values(&[0.5], 0);
    }

    #[test]
    fn containment_fractions_pairwise() {
        let schemas = vec![
            (1, SchemaSet::from_names(["a", "b", "c"])),
            (2, SchemaSet::from_names(["a", "b"])),
            (3, SchemaSet::from_names(["x"])),
        ];
        let (pairs, fractions) = schema_containment_fractions(&schemas);
        assert_eq!(pairs.len(), 3);
        // (2,1): {a,b} fully inside {a,b,c} → 1.0
        let idx = pairs.iter().position(|&p| p == (2, 1)).unwrap();
        assert_eq!(fractions[idx], 1.0);
        // (3,1): {x} vs {a,b,c} → 0.0
        let idx = pairs.iter().position(|&p| p == (3, 1)).unwrap();
        assert_eq!(fractions[idx], 0.0);
    }

    fn lake_with_two_same_schema_tables(shift: f64) -> DataLake {
        let schema = Schema::flat(&[("v", DataType::Float)]).unwrap();
        let a = Table::new(
            schema.clone(),
            vec![Column::from_floats((0..50).map(|i| i as f64))],
        )
        .unwrap();
        let b = Table::new(
            schema,
            vec![Column::from_floats((0..50).map(|i| i as f64 + shift))],
        )
        .unwrap();
        let mut lake = DataLake::new();
        lake.add_dataset(
            "a",
            PartitionedTable::single(a),
            AccessProfile::default(),
            None,
        )
        .unwrap();
        lake.add_dataset(
            "b",
            PartitionedTable::single(b),
            AccessProfile::default(),
            None,
        )
        .unwrap();
        lake
    }

    #[test]
    fn quantile_divergence_detects_shifted_distributions() {
        let lake = lake_with_two_same_schema_tables(10_000.0);
        let d = quantile_divergence(&lake, 0.5, &Meter::new()).unwrap();
        assert_eq!(d.same_schema_pairs, 1);
        assert_eq!(d.divergent_pairs, 1);
        assert_eq!(d.divergent_fraction(), 1.0);
    }

    #[test]
    fn quantile_divergence_ignores_similar_distributions() {
        let lake = lake_with_two_same_schema_tables(0.0);
        let d = quantile_divergence(&lake, 0.5, &Meter::new()).unwrap();
        assert_eq!(d.same_schema_pairs, 1);
        assert_eq!(d.divergent_pairs, 0);
        assert_eq!(d.divergent_fraction(), 0.0);
    }

    #[test]
    fn schema_histogram_over_lake() {
        let lake = lake_with_two_same_schema_tables(1.0);
        let h = schema_containment_histogram(&lake, 10);
        assert_eq!(h.total, 1);
        assert_eq!(h.buckets[9], 1, "identical schemas → containment 1.0");
    }
}
