//! # r2d2-core — the R2D2 containment-detection pipeline
//!
//! This crate implements the primary contribution of the paper *"R2D2:
//! Reducing Redundancy and Duplication in Data Lakes"* (SIGMOD 2023): a
//! three-step hierarchical pipeline that identifies table-level containment
//! relations in a data lake by progressively reducing the search space:
//!
//! 1. **SGB — Schema Graph Builder** ([`sgb`], Algorithm 1): clusters
//!    schema sets around containment "centers" and adds an edge for every
//!    intra-cluster schema containment pair. Theorem 4.1 guarantees no true
//!    edge is missed (100% recall at the schema level).
//! 2. **MMP — Min-Max Pruning** ([`mmp`], Algorithm 2): removes edges whose
//!    child column ranges are not nested inside the parent's, using only
//!    partition-level min/max metadata.
//! 3. **CLP — Content-Level Pruning** ([`clp`], Algorithm 3): samples up to
//!    `t` rows of the child via `WHERE` predicates over up to `s` columns and
//!    left-anti joins them against the parent; any missing row disproves
//!    containment. Theorem 4.2 ([`sampling`]) bounds the number of samples
//!    needed for a probabilistic pruning guarantee.
//!
//! [`pipeline::R2d2Pipeline`] orchestrates the three stages over a
//! [`r2d2_lake::DataLake`], producing per-stage reports (timings, operation
//! counts, edge counts) used to regenerate the paper's Tables 1–3 and 5–6.
//! [`dynamic`] implements the §7.1 dynamic-update scenarios and [`approx`]
//! the §7.2 approximate-containment extensions.

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod approx;
pub mod clp;
pub mod config;
pub mod dynamic;
pub mod mmp;
pub mod pipeline;
pub mod sampling;
pub mod schema_stats;
pub mod sgb;

pub use config::{ClpSampling, PipelineConfig};
pub use pipeline::{PipelineReport, R2d2Pipeline, StageReport};
pub use sgb::{SchemaCluster, SgbResult};
