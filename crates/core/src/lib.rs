//! # r2d2-core — the R2D2 containment-detection pipeline
//!
//! This crate implements the primary contribution of the paper *"R2D2:
//! Reducing Redundancy and Duplication in Data Lakes"* (SIGMOD 2023): a
//! three-step hierarchical pipeline that identifies table-level containment
//! relations in a data lake by progressively reducing the search space:
//!
//! 1. **SGB — Schema Graph Builder** ([`sgb`], Algorithm 1): clusters
//!    schema sets around containment "centers" and adds an edge for every
//!    intra-cluster schema containment pair. Theorem 4.1 guarantees no true
//!    edge is missed (100% recall at the schema level).
//! 2. **MMP — Min-Max Pruning** ([`mmp`], Algorithm 2): removes edges whose
//!    child column ranges are not nested inside the parent's, using only
//!    partition-level min/max metadata.
//! 3. **CLP — Content-Level Pruning** ([`clp`], Algorithm 3): samples up to
//!    `t` rows of the child via `WHERE` predicates over up to `s` columns and
//!    left-anti joins them against the parent; any missing row disproves
//!    containment. Theorem 4.2 ([`sampling`]) bounds the number of samples
//!    needed for a probabilistic pruning guarantee.
//!
//! [`pipeline::R2d2Pipeline`] orchestrates the three stages over a
//! [`r2d2_lake::DataLake`], producing per-stage reports (timings, operation
//! counts, edge counts) used to regenerate the paper's Tables 1–3 and 5–6.
//! [`session::R2d2Session`] wraps the pipeline into a long-lived service:
//! bootstrap once, then keep the graph current through typed
//! [`r2d2_lake::LakeUpdate`] events (the §7.1 dynamic-update scenarios) with
//! work linear in the number of datasets per update, and optionally keep a
//! live Opt-Ret **storage advisor** ([`r2d2_opt::advisor`]) in sync with the
//! evolving graph. [`approx`] implements the §7.2 approximate-containment
//! extensions.
//!
//! ## Execution model
//!
//! The paper runs the pipeline on a Spark cluster; this reproduction makes
//! the same data-parallelism explicit through
//! [`config::PipelineConfig::threads`]:
//!
//! * **`threads = 1`** (default) runs every stage inline on the calling
//!   thread.
//! * **`threads = n`** fans the per-cluster pair checks (SGB step 6), the
//!   per-edge metadata checks (MMP) and the per-edge sampling/anti-join
//!   checks (CLP) out over `n` workers; **`0`** uses all hardware threads.
//!
//! **Determinism guarantee:** the thread count changes wall clock only.
//! Graphs, cluster lists, stage statistics and meter totals are bit-for-bit
//! identical for every `threads` value, because (a) each work item only
//! reads the immutable lake and an atomic meter, (b) results are merged in
//! input order, and (c) every CLP edge draws from its own RNG stream seeded
//! by `(config.seed, parent, child)` rather than a shared sequential stream
//! (see `tests/integration_parallel.rs`).
//!
//! Two constant-factor optimisations ride along: SGB interns all column
//! names once and compares schema sets as sorted `u32` ids with a bitset
//! fast path ([`r2d2_lake::SchemaInterner`]), and CLP shares each parent's
//! hash multiset across all edges probing that parent
//! ([`r2d2_lake::HashJoinCache`]).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod approx;
pub mod clp;
pub mod config;
mod dynamic;
mod fanout;
pub mod ingest;
pub mod mmp;
pub mod persist;
pub mod pipeline;
pub mod sampling;
pub mod schema_stats;
pub mod session;
pub mod sgb;
pub mod view;

pub use config::{ApproxConfig, ClpSampling, PipelineConfig};
pub use ingest::{FileIngest, IngestOptions, IngestReport};
pub use persist::{Failpoints, PersistenceConfig, SessionSnapshot};
pub use pipeline::{ApproxEdgeReport, PipelineReport, R2d2Pipeline, Stage, StageReport};
pub use r2d2_lake::{AppliedUpdate, LakeUpdate};
pub use r2d2_opt::advisor::{AdvisorConfig, AdvisorReport};
pub use session::{GroupCommit, GroupOutcome, R2d2Session, SessionReport, UpdateReport};
pub use sgb::{ApproxCandidates, CandidateSource, ExactCandidates, SchemaCluster, SgbResult};
pub use view::SessionView;
