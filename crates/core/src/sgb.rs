//! SGB — Schema Graph Builder (Algorithm 1 of the paper).
//!
//! The goal of this stage is a schema containment graph with **no missing
//! edges** (Theorem 4.1): an edge `B → A` is added whenever
//! `A.schema ⊆ B.schema`, possibly along with extra edges that later stages
//! prune. Instead of the `O(N²)` all-pairs comparison, SGB:
//!
//! 1. sorts schema sets by non-increasing cardinality,
//! 2. sweeps the sorted list, maintaining a set of *cluster centers*: a
//!    schema contained in no existing center becomes a new center, otherwise
//!    it joins (as a member) every cluster whose center contains it,
//! 3. finally adds an edge `B → A` for every pair with `A.schema ⊆ B.schema`.
//!
//! Both the center sweep (step 2) and the edge generation (step 3) are
//! **candidate-driven** rather than pairwise: a parent of schema `A` must
//! contain *every* column of `A`, so it suffices to probe an inverted
//! `column → schemas` index with `A`'s rarest column (the length-1 prefix
//! of the frequency-ordered column list) and verify only the schemas on
//! that posting list. Posting lists are kept in non-increasing-cardinality
//! order, so the scan stops at the first candidate smaller than `A`. This
//! makes candidate generation *output-sensitive*: disjoint or weakly
//! overlapping corpora do `O(N)` total verifications instead of the
//! `O(K(N−K)) + Σ cluster²` pairwise checks of the previous
//! implementation, while dense clusters still verify exactly the schemas
//! that can possibly contain `A`. Completeness is unchanged (Theorem 4.1):
//! any true parent shares the child's rarest column, so it is always on the
//! probed posting list — the proptest oracle below keeps pinning SGB
//! against the brute-force graph.
//!
//! ## The candidate-source seam
//!
//! Step 6's candidate verification is additionally **pluggable**: every
//! `(parent, child)` candidate pair passes through a [`CandidateSource`]
//! before the exact subset check. [`ExactCandidates`] admits everything —
//! byte-for-byte the behaviour described above. [`ApproxCandidates`] gates
//! pairs through per-table MinHash signatures (built as column statistics,
//! persisted in the `R2D2LAKE` v5 footer): a pair is admitted when its LSH
//! band hashes collide or its domination-based containment estimate clears
//! the configured threshold. Because a true containment pair estimates
//! exactly `1.0` (see [`r2d2_lake::MinHashSignature::containment_estimate_in`]),
//! the approximate tier only ever discards pairs whose signatures *prove*
//! non-containment — the final graph is unchanged; only the verification
//! work shrinks.

use crate::config::ApproxConfig;
use r2d2_graph::ContainmentGraph;
use r2d2_lake::{
    DataLake, InternedSchemaSet, Meter, MinHashSignature, SchemaInterner, SchemaSet, SIGNATURE_K,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;

/// One schema cluster produced by SGB: a center plus its members
/// (the center itself is also a member, as in the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaCluster {
    /// Dataset id of the cluster center (the largest schema in the cluster).
    pub center: u64,
    /// Dataset ids of all cluster members, including the center.
    pub members: Vec<u64>,
}

/// Output of the SGB stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SgbResult {
    /// The schema containment graph (parent → child edges).
    pub graph: ContainmentGraph,
    /// The overlapping clusters built during the sweep.
    pub clusters: Vec<SchemaCluster>,
    /// Number of schema-pair containment checks performed (center-candidate
    /// verifications during the sweep plus edge-candidate verifications from
    /// the inverted column index) — the SGB row of Table 3.
    pub schema_comparisons: u64,
}

impl SgbResult {
    /// Number of clusters (`K` in the complexity analysis).
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }
}

/// A set that supports the operations SGB needs: cardinality, subset
/// testing and element enumeration (for the inverted column index).
/// Implemented by both the interned (fast) and the string (legacy /
/// baseline) schema-set representations so the two code paths share one
/// algorithm and produce identical graphs and comparison counts.
trait ContainmentSet: Sync {
    /// The element (column) representation the inverted index is keyed by.
    type Elem: Hash + Eq + Sync;

    fn card(&self) -> usize;
    fn subset_of(&self, other: &Self) -> bool;
    fn elements(&self) -> Vec<Self::Elem>;
}

impl ContainmentSet for SchemaSet {
    type Elem = String;

    fn card(&self) -> usize {
        self.len()
    }

    fn subset_of(&self, other: &Self) -> bool {
        self.is_contained_in(other)
    }

    fn elements(&self) -> Vec<String> {
        self.iter().map(str::to_string).collect()
    }
}

impl ContainmentSet for InternedSchemaSet {
    type Elem = u32;

    fn card(&self) -> usize {
        self.len()
    }

    fn subset_of(&self, other: &Self) -> bool {
        self.is_contained_in(other)
    }

    fn elements(&self) -> Vec<u32> {
        self.ids().to_vec()
    }
}

/// A pluggable gate over SGB's step-6 candidate pairs: every candidate
/// `(parent, child)` pair is offered to the source before the exact
/// schema-subset check, and only admitted pairs are verified.
///
/// Implementations must be deterministic (same inputs → same decisions at
/// any thread count) and **sound for recall**: a source may only reject
/// pairs it can prove are not containment pairs, or the stage loses
/// Theorem 4.1's no-missing-edges guarantee.
pub trait CandidateSource: Sync {
    /// Whether the candidate pair `parent → child` (dataset ids) should go
    /// on to exact verification.
    fn admit(&self, parent: u64, child: u64) -> bool;
}

/// The exact candidate source: admits every pair. With this source the
/// stage is byte-for-byte the pre-seam inverted-index implementation.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactCandidates;

impl CandidateSource for ExactCandidates {
    fn admit(&self, _parent: u64, _child: u64) -> bool {
        true
    }
}

/// The approximate candidate source: per-table MinHash signatures (the
/// union fold of the per-column signatures kept as table statistics) gate
/// candidate pairs before exact verification.
///
/// A pair is admitted when (a) the two tables' LSH band hashes collide in
/// at least one band (near-duplicate fast path), or (b) the child
/// signature's domination-based containment estimate in the parent reaches
/// the configured threshold. Every probed pair charges `approx_probes` on
/// the meter; every rejection charges `approx_prunes`. Pairs whose datasets
/// are unknown to the source (not in the lake it was built from) are
/// admitted — no evidence, no prune.
///
/// Decisions are a pure function of the lake's persisted signatures and the
/// [`ApproxConfig`], so a restored session reproduces them bit-for-bit
/// without re-hashing a value.
pub struct ApproxCandidates {
    signatures: HashMap<u64, MinHashSignature>,
    band_hashes: HashMap<u64, Vec<u64>>,
    threshold: f64,
    meter: Meter,
}

impl ApproxCandidates {
    /// Build the source from the lake's table signatures. The signature
    /// size clamps to the persisted [`SIGNATURE_K`]; the banding scheme
    /// clamps so `bands · rows ≤ k` (at least one band of one row).
    pub fn build(lake: &DataLake, config: &ApproxConfig, meter: &Meter) -> Self {
        let k = config.signature_k.clamp(1, SIGNATURE_K);
        let rows = config.lsh_rows.clamp(1, k);
        let bands = config.lsh_bands.clamp(1, k / rows);
        let mut signatures = HashMap::new();
        let mut band_hashes = HashMap::new();
        for entry in lake.iter() {
            let signature = entry.data.table_signature().prefix(k);
            band_hashes.insert(entry.id.0, signature.band_hashes(bands, rows));
            signatures.insert(entry.id.0, signature);
        }
        ApproxCandidates {
            signatures,
            band_hashes,
            threshold: config.threshold,
            meter: meter.clone(),
        }
    }

    /// Number of datasets the source holds signatures for.
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// Whether the source holds no signatures.
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// The signature the source gates `dataset` with (`None` for unknown
    /// ids). Exposed so restore oracles can compare gating metadata.
    pub fn signature(&self, dataset: u64) -> Option<&MinHashSignature> {
        self.signatures.get(&dataset)
    }
}

impl CandidateSource for ApproxCandidates {
    fn admit(&self, parent: u64, child: u64) -> bool {
        let (Some(ps), Some(cs)) = (self.signatures.get(&parent), self.signatures.get(&child))
        else {
            return true;
        };
        self.meter.add_approx_probes(1);
        let collide = match (self.band_hashes.get(&parent), self.band_hashes.get(&child)) {
            (Some(pb), Some(cb)) => pb.iter().zip(cb).any(|(a, b)| a == b),
            _ => false,
        };
        if collide || cs.containment_estimate_in(ps) >= self.threshold {
            return true;
        }
        self.meter.add_approx_prunes(1);
        false
    }
}

/// The shortest posting list among `elems`' postings — the best (rarest)
/// candidate prefix for a subset probe. Ties are broken by comparing the
/// lists themselves (they hold dataset *indices*, so the choice — and hence
/// the comparison count — is identical for the string and interned
/// representations). Returns `None` when some element has no postings at
/// all, which proves no indexed set can be a superset.
fn rarest_postings<'a, E: Hash + Eq>(
    postings: &'a HashMap<&E, Vec<usize>>,
    elems: &[E],
) -> Option<&'a [usize]> {
    let mut best: Option<&[usize]> = None;
    for e in elems {
        let list = postings.get(e)?.as_slice();
        best = Some(match best {
            Some(b) if (list.len(), list) >= (b.len(), b) => b,
            _ => list,
        });
    }
    best
}

/// The SGB algorithm over any [`ContainmentSet`] representation.
///
/// `ids[i]` and `sets[i]` describe dataset `i`. Step 6 (edge-candidate
/// verification, the dominant cost) fans out over children on up to
/// `threads` workers; per-child edge lists are merged back in child order,
/// so the resulting graph and comparison count are identical for every
/// thread count. Candidate pairs pass through `source` before the exact
/// subset check; the center sweep (steps 3–5) stays exact regardless.
fn sgb_core<S: ContainmentSet, C: CandidateSource>(
    ids: &[u64],
    sets: &[S],
    threads: usize,
    source: &C,
) -> SgbResult {
    // Step 2: sort by non-increasing schema-set cardinality. Ties are broken
    // by dataset id for determinism.
    let mut order: Vec<usize> = (0..ids.len()).collect();
    order.sort_by(|&a, &b| {
        sets[b]
            .card()
            .cmp(&sets[a].card())
            .then(ids[a].cmp(&ids[b]))
    });

    let mut graph = ContainmentGraph::new();
    for &id in ids {
        graph.add_dataset(id);
    }

    let elements: Vec<Vec<S::Elem>> = sets.iter().map(ContainmentSet::elements).collect();

    // Steps 3–5: sweep in cardinality order, maintaining clusters. A schema
    // is contained in a center only if the center holds *all* of its
    // columns, so candidate centers come from an incrementally maintained
    // inverted `column → centers` index (probed with the schema's rarest
    // column) instead of scanning every cluster — only the candidates are
    // verified and counted.
    struct Cluster {
        center: usize,
        members: Vec<usize>,
    }
    let mut clusters: Vec<Cluster> = Vec::new();
    let mut comparisons: u64 = 0;
    let mut center_postings: HashMap<&S::Elem, Vec<usize>> = HashMap::new();

    for &si in &order {
        let mut contained_in_some_center = false;
        if elements[si].is_empty() {
            // The empty schema is contained in every center.
            contained_in_some_center = !clusters.is_empty();
            for cluster in clusters.iter_mut() {
                cluster.members.push(si);
            }
        } else if let Some(candidates) = rarest_postings(&center_postings, &elements[si]) {
            // Candidates are cluster indices in creation order; membership
            // pushes happen in sweep order either way, so the resulting
            // clusters are identical to the exhaustive scan's.
            let candidates: Vec<usize> = candidates.to_vec();
            for ci in candidates {
                comparisons += 1;
                if sets[si].subset_of(&sets[clusters[ci].center]) {
                    clusters[ci].members.push(si);
                    contained_in_some_center = true;
                }
            }
        }
        if !contained_in_some_center {
            let ci = clusters.len();
            clusters.push(Cluster {
                center: si,
                members: vec![si],
            });
            for e in &elements[si] {
                center_postings.entry(e).or_default().push(ci);
            }
        }
    }
    drop(center_postings);

    // Step 6: emit an edge for every containment-ordered pair. Candidate
    // parents of a schema come from a global inverted `column → datasets`
    // index whose posting lists are kept in non-increasing-cardinality
    // order: probe with the child's rarest column and stop at the first
    // candidate smaller than the child. Children are independent, so the
    // verifications fan out per child and merge back in child order —
    // identical graphs and comparison counts at every thread count.
    let mut postings: HashMap<&S::Elem, Vec<usize>> = HashMap::new();
    for &si in &order {
        for e in &elements[si] {
            postings.entry(e).or_default().push(si);
        }
    }
    let children: Vec<usize> = (0..ids.len()).collect();
    let per_child: Vec<(Vec<(u64, u64)>, u64)> = rayon::parallel_map(threads, &children, |&si| {
        let mut edges = Vec::new();
        let mut local_comparisons = 0u64;
        if elements[si].is_empty() {
            // The empty schema is contained in every other dataset (the
            // brute-force graph has those edges too); no subset check is
            // needed to prove it.
            for (oj, &other_id) in ids.iter().enumerate() {
                if oj != si && other_id != ids[si] {
                    edges.push((other_id, ids[si]));
                }
            }
        } else {
            let candidates = rarest_postings(&postings, &elements[si])
                .expect("every element of an indexed set has postings");
            let my_card = sets[si].card();
            for &cj in candidates {
                if sets[cj].card() < my_card {
                    break; // posting lists are cardinality-sorted
                }
                if cj == si || ids[cj] == ids[si] {
                    continue;
                }
                if !source.admit(ids[cj], ids[si]) {
                    continue;
                }
                local_comparisons += 1;
                if sets[si].subset_of(&sets[cj]) {
                    edges.push((ids[cj], ids[si]));
                }
            }
        }
        (edges, local_comparisons)
    });
    for (edges, local_comparisons) in per_child {
        comparisons += local_comparisons;
        for (parent, child) in edges {
            graph.add_edge(parent, child);
        }
    }

    let clusters = clusters
        .into_iter()
        .map(|c| SchemaCluster {
            center: ids[c.center],
            members: c.members.iter().map(|&i| ids[i]).collect(),
        })
        .collect();

    SgbResult {
        graph,
        clusters,
        schema_comparisons: comparisons,
    }
}

/// Run the Schema Graph Builder over `(dataset id, schema set)` pairs,
/// single-threaded. See [`build_schema_graph_threaded`].
pub fn build_schema_graph(schemas: &[(u64, SchemaSet)], meter: &Meter) -> SgbResult {
    build_schema_graph_threaded(schemas, 1, meter)
}

/// Run the Schema Graph Builder over `(dataset id, schema set)` pairs on up
/// to `threads` workers (`0` = all hardware threads).
///
/// Every dataset becomes a node of the output graph even if it has no edges.
/// Schema comparisons are counted both in the returned result and on the
/// meter (as `schema_comparisons`). All column names are interned up front
/// so each comparison is a sorted-`u32` merge-walk (with a bitset fast path)
/// rather than a `BTreeSet<String>` subset test; the produced graph,
/// clusters and comparison counts are identical to the string-based
/// implementation at any thread count.
pub fn build_schema_graph_threaded(
    schemas: &[(u64, SchemaSet)],
    threads: usize,
    meter: &Meter,
) -> SgbResult {
    build_schema_graph_with_source(schemas, threads, meter, &ExactCandidates)
}

/// [`build_schema_graph_threaded`] with a pluggable [`CandidateSource`]
/// gating step 6's candidate pairs. With [`ExactCandidates`] this is the
/// exact stage; with [`ApproxCandidates`] the pairs are MinHash-gated
/// before exact verification (`schema_comparisons` then counts only
/// admitted pairs; the gate's own work shows up as `approx_probes` /
/// `approx_prunes` on the source's meter).
pub fn build_schema_graph_with_source<C: CandidateSource>(
    schemas: &[(u64, SchemaSet)],
    threads: usize,
    meter: &Meter,
    source: &C,
) -> SgbResult {
    let mut interner = SchemaInterner::new();
    let ids: Vec<u64> = schemas.iter().map(|(id, _)| *id).collect();
    let sets: Vec<InternedSchemaSet> = schemas
        .iter()
        .map(|(_, s)| interner.intern_set(s))
        .collect();
    let result = sgb_core(&ids, &sets, threads, source);
    meter.add_schema_comparisons(result.schema_comparisons);
    result
}

/// The pre-interning implementation: identical algorithm, but containment
/// checks run directly on the string [`SchemaSet`]s. Kept as the baseline
/// the criterion benches compare interning against; produces exactly the
/// same graph and comparison counts as [`build_schema_graph`].
pub fn build_schema_graph_string(schemas: &[(u64, SchemaSet)], meter: &Meter) -> SgbResult {
    let ids: Vec<u64> = schemas.iter().map(|(id, _)| *id).collect();
    let sets: Vec<SchemaSet> = schemas.iter().map(|(_, s)| s.clone()).collect();
    let result = sgb_core(&ids, &sets, 1, &ExactCandidates);
    meter.add_schema_comparisons(result.schema_comparisons);
    result
}

/// The brute-force `O(N²)` schema containment graph ("Ground Truth Schema"
/// baseline of §6.4.1): compare every ordered pair of schema sets directly.
/// Exposed here because the pipeline tests use it to verify Theorem 4.1; the
/// baselines crate re-exports it alongside the other baselines.
pub fn brute_force_schema_graph(schemas: &[(u64, SchemaSet)], meter: &Meter) -> ContainmentGraph {
    let mut graph = ContainmentGraph::new();
    for (id, _) in schemas {
        graph.add_dataset(*id);
    }
    let mut comparisons = 0u64;
    for (i, (id_a, sa)) in schemas.iter().enumerate() {
        for (id_b, sb) in schemas.iter().skip(i + 1) {
            comparisons += 1;
            if sa.is_contained_in(sb) {
                graph.add_edge(*id_b, *id_a);
            }
            if sb.is_contained_in(sa) {
                graph.add_edge(*id_a, *id_b);
            }
        }
    }
    meter.add_schema_comparisons(comparisons);
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_graph::diff::diff;

    fn schema(names: &[&str]) -> SchemaSet {
        SchemaSet::from_names(names.iter().copied())
    }

    /// The worked example of Fig. 3: six schemas over columns c1..c5.
    fn paper_example() -> Vec<(u64, SchemaSet)> {
        vec![
            (1, schema(&["c1", "c2", "c3", "c4", "c5"])), // S1 (largest)
            (2, schema(&["c1", "c2", "c3"])),
            (3, schema(&["c2", "c3", "c4"])),
            (4, schema(&["c1", "c2"])),
            (5, schema(&["c4", "c5"])),
            (6, schema(&["c2"])),
        ]
    }

    #[test]
    fn builds_expected_edges_on_paper_example() {
        let schemas = paper_example();
        let meter = Meter::new();
        let result = build_schema_graph(&schemas, &meter);
        let g = &result.graph;
        // Everything is contained in S1.
        for child in [2u64, 3, 4, 5, 6] {
            assert!(g.has_edge(1, child), "1 → {child} missing");
        }
        // S4 {c1,c2} ⊆ S2 {c1,c2,c3}; S6 {c2} ⊆ S2, S3, S4.
        assert!(g.has_edge(2, 4));
        assert!(g.has_edge(2, 6));
        assert!(g.has_edge(3, 6));
        assert!(g.has_edge(4, 6));
        // No spurious reverse edges.
        assert!(!g.has_edge(4, 2));
        assert!(!g.has_edge(6, 1));
        // S5 {c4,c5} is not contained in S2/S3/S4.
        assert!(!g.has_edge(2, 5));
        assert!(!g.has_edge(3, 5));
    }

    #[test]
    fn matches_brute_force_on_paper_example() {
        let schemas = paper_example();
        let sgb = build_schema_graph(&schemas, &Meter::new());
        let truth = brute_force_schema_graph(&schemas, &Meter::new());
        let d = diff(&sgb.graph, &truth);
        assert_eq!(d.not_detected, 0, "Theorem 4.1: no missing edges");
        assert_eq!(d.incorrect, 0, "SGB only adds true schema edges");
    }

    #[test]
    fn identical_schemas_get_edges_in_both_directions() {
        let schemas = vec![(10, schema(&["a", "b"])), (20, schema(&["a", "b"]))];
        let result = build_schema_graph(&schemas, &Meter::new());
        assert!(result.graph.has_edge(10, 20));
        assert!(result.graph.has_edge(20, 10));
    }

    #[test]
    fn disjoint_schemas_produce_no_edges_and_many_clusters() {
        let schemas = vec![
            (1, schema(&["a", "b"])),
            (2, schema(&["c", "d"])),
            (3, schema(&["e"])),
        ];
        let result = build_schema_graph(&schemas, &Meter::new());
        assert_eq!(result.graph.edge_count(), 0);
        assert_eq!(result.cluster_count(), 3);
    }

    #[test]
    fn cluster_centers_are_largest_members() {
        let schemas = paper_example();
        let result = build_schema_graph(&schemas, &Meter::new());
        for cluster in &result.clusters {
            let center_len = schemas
                .iter()
                .find(|(id, _)| *id == cluster.center)
                .unwrap()
                .1
                .len();
            for m in &cluster.members {
                let len = schemas.iter().find(|(id, _)| id == m).unwrap().1.len();
                assert!(len <= center_len);
            }
            assert!(cluster.members.contains(&cluster.center));
        }
    }

    #[test]
    fn member_of_multiple_clusters_possible() {
        // Two disjoint big schemas plus a tiny schema contained in both.
        let schemas = vec![
            (1, schema(&["a", "b", "x"])),
            (2, schema(&["a", "b", "y"])),
            (3, schema(&["a", "b"])),
        ];
        let result = build_schema_graph(&schemas, &Meter::new());
        let membership: usize = result
            .clusters
            .iter()
            .filter(|c| c.members.contains(&3))
            .count();
        assert_eq!(membership, 2, "schema 3 belongs to both clusters");
        assert!(result.graph.has_edge(1, 3));
        assert!(result.graph.has_edge(2, 3));
        assert!(!result.graph.has_edge(1, 2));
    }

    #[test]
    fn comparisons_counted_and_metered() {
        let schemas = paper_example();
        let meter = Meter::new();
        let result = build_schema_graph(&schemas, &meter);
        assert!(result.schema_comparisons > 0);
        assert_eq!(
            meter.snapshot().schema_comparisons,
            result.schema_comparisons
        );
        // SGB should do fewer comparisons than the N^2 brute force here? Not
        // necessarily for tiny N, but it must be bounded by N*K + sum of
        // cluster pair counts; sanity: below the all-pairs double count.
        let n = schemas.len() as u64;
        assert!(result.schema_comparisons <= n * n);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty = build_schema_graph(&[], &Meter::new());
        assert_eq!(empty.graph.node_count(), 0);
        assert_eq!(empty.cluster_count(), 0);

        let single = build_schema_graph(&[(7, schema(&["a"]))], &Meter::new());
        assert_eq!(single.graph.node_count(), 1);
        assert_eq!(single.graph.edge_count(), 0);
        assert_eq!(single.cluster_count(), 1);
    }

    #[test]
    fn string_interned_and_threaded_variants_agree() {
        let schemas = paper_example();
        let interned = build_schema_graph(&schemas, &Meter::new());
        let string = build_schema_graph_string(&schemas, &Meter::new());
        let threaded = build_schema_graph_threaded(&schemas, 0, &Meter::new());
        assert_eq!(interned.graph, string.graph);
        assert_eq!(interned.graph, threaded.graph);
        assert_eq!(interned.clusters, string.clusters);
        assert_eq!(interned.clusters, threaded.clusters);
        assert_eq!(interned.schema_comparisons, string.schema_comparisons);
        assert_eq!(interned.schema_comparisons, threaded.schema_comparisons);
    }

    #[test]
    fn candidate_source_gates_step6_only() {
        /// Rejects every pair — the graph must lose all non-trivial edges
        /// while clusters (built by the ungated center sweep) survive.
        struct RejectAll;
        impl CandidateSource for RejectAll {
            fn admit(&self, _p: u64, _c: u64) -> bool {
                false
            }
        }
        let schemas = paper_example();
        let exact = build_schema_graph_threaded(&schemas, 1, &Meter::new());
        let via_seam = build_schema_graph_with_source(&schemas, 1, &Meter::new(), &ExactCandidates);
        assert_eq!(exact.graph, via_seam.graph, "ExactCandidates is identity");
        assert_eq!(exact.schema_comparisons, via_seam.schema_comparisons);

        let gated = build_schema_graph_with_source(&schemas, 1, &Meter::new(), &RejectAll);
        assert_eq!(gated.graph.edge_count(), 0, "every candidate was rejected");
        assert_eq!(gated.clusters, exact.clusters, "center sweep is ungated");
        assert!(
            gated.schema_comparisons < exact.schema_comparisons,
            "rejected pairs are not counted as comparisons"
        );
    }

    #[test]
    fn empty_schema_contained_everywhere() {
        let schemas = vec![(1, schema(&["a", "b"])), (2, schema(&[]))];
        let result = build_schema_graph(&schemas, &Meter::new());
        assert!(result.graph.has_edge(1, 2));
    }

    proptest::proptest! {
        /// Theorem 4.1 (recall guarantee): on random schema families the SGB
        /// graph must contain every edge of the brute-force schema graph.
        #[test]
        fn sgb_never_misses_an_edge(raw in proptest::collection::vec(
            proptest::collection::btree_set(0u8..12, 0..6), 1..24)) {
            let schemas: Vec<(u64, SchemaSet)> = raw
                .iter()
                .enumerate()
                .map(|(i, cols)| {
                    (
                        i as u64,
                        SchemaSet::from_names(cols.iter().map(|c| format!("c{c}"))),
                    )
                })
                .collect();
            let sgb = build_schema_graph(&schemas, &Meter::new());
            let truth = brute_force_schema_graph(&schemas, &Meter::new());
            let d = diff(&sgb.graph, &truth);
            proptest::prop_assert_eq!(d.not_detected, 0);
            // SGB adds only schema-containment edges, so precision is also 1
            // at this stage (incorrectness only appears w.r.t. *content*
            // ground truth, not schema ground truth).
            proptest::prop_assert_eq!(d.incorrect, 0);
        }
    }
}
