//! SGB — Schema Graph Builder (Algorithm 1 of the paper).
//!
//! The goal of this stage is a schema containment graph with **no missing
//! edges** (Theorem 4.1): an edge `B → A` is added whenever
//! `A.schema ⊆ B.schema`, possibly along with extra edges that later stages
//! prune. Instead of the `O(N²)` all-pairs comparison, SGB:
//!
//! 1. sorts schema sets by non-increasing cardinality,
//! 2. sweeps the sorted list, maintaining a set of *cluster centers*: a
//!    schema contained in no existing center becomes a new center, otherwise
//!    it joins (as a member) every cluster whose center contains it,
//! 3. finally adds an edge for every containment-ordered pair of members
//!    within each cluster (centers included).
//!
//! For `K` clusters the work is `O(N log N) + O(K(N−K))` center checks plus
//! the intra-cluster pair checks — the complexity row reported for SGB in
//! Table 3.

use r2d2_graph::ContainmentGraph;
use r2d2_lake::{InternedSchemaSet, Meter, SchemaInterner, SchemaSet};
use serde::{Deserialize, Serialize};

/// One schema cluster produced by SGB: a center plus its members
/// (the center itself is also a member, as in the paper).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchemaCluster {
    /// Dataset id of the cluster center (the largest schema in the cluster).
    pub center: u64,
    /// Dataset ids of all cluster members, including the center.
    pub members: Vec<u64>,
}

/// Output of the SGB stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SgbResult {
    /// The schema containment graph (parent → child edges).
    pub graph: ContainmentGraph,
    /// The overlapping clusters built during the sweep.
    pub clusters: Vec<SchemaCluster>,
    /// Number of schema-pair containment checks performed (center checks
    /// plus intra-cluster pair checks) — the SGB row of Table 3.
    pub schema_comparisons: u64,
}

impl SgbResult {
    /// Number of clusters (`K` in the complexity analysis).
    pub fn cluster_count(&self) -> usize {
        self.clusters.len()
    }
}

/// A set that supports the two operations SGB needs: cardinality and subset
/// testing. Implemented by both the interned (fast) and the string (legacy /
/// baseline) schema-set representations so the two code paths share one
/// algorithm and produce identical graphs and comparison counts.
trait ContainmentSet: Sync {
    fn card(&self) -> usize;
    fn subset_of(&self, other: &Self) -> bool;
}

impl ContainmentSet for SchemaSet {
    fn card(&self) -> usize {
        self.len()
    }

    fn subset_of(&self, other: &Self) -> bool {
        self.is_contained_in(other)
    }
}

impl ContainmentSet for InternedSchemaSet {
    fn card(&self) -> usize {
        self.len()
    }

    fn subset_of(&self, other: &Self) -> bool {
        self.is_contained_in(other)
    }
}

/// The SGB algorithm over any [`ContainmentSet`] representation.
///
/// `ids[i]` and `sets[i]` describe dataset `i`. Step 6 (intra-cluster pair
/// checks, the dominant cost) fans out over clusters on up to `threads`
/// workers; per-cluster edge lists are merged back in cluster order, so the
/// resulting graph and comparison count are identical for every thread
/// count.
fn sgb_core<S: ContainmentSet>(ids: &[u64], sets: &[S], threads: usize) -> SgbResult {
    // Step 2: sort by non-increasing schema-set cardinality. Ties are broken
    // by dataset id for determinism.
    let mut order: Vec<usize> = (0..ids.len()).collect();
    order.sort_by(|&a, &b| {
        sets[b]
            .card()
            .cmp(&sets[a].card())
            .then(ids[a].cmp(&ids[b]))
    });

    let mut graph = ContainmentGraph::new();
    for &id in ids {
        graph.add_dataset(id);
    }

    // Steps 3–5: sweep, maintaining clusters; indices into `ids` / `sets`.
    // The sweep is inherently sequential (the center list evolves), but it
    // only performs O(K·N) of the comparisons; the quadratic part is step 6.
    struct Cluster {
        center: usize,
        members: Vec<usize>,
    }
    let mut clusters: Vec<Cluster> = Vec::new();
    let mut comparisons: u64 = 0;

    for &si in &order {
        let schema = &sets[si];
        let mut contained_in_some_center = false;
        for cluster in clusters.iter_mut() {
            let center_schema = &sets[cluster.center];
            comparisons += 1;
            if schema.card() <= center_schema.card() && schema.subset_of(center_schema) {
                cluster.members.push(si);
                contained_in_some_center = true;
            }
        }
        if !contained_in_some_center {
            clusters.push(Cluster {
                center: si,
                members: vec![si],
            });
        }
    }

    // Step 6: add edges between every containment-ordered pair of cluster
    // members (the center is a member). Each cluster is independent, so the
    // pair checks fan out per cluster; results carry their edges in pair
    // order and are merged in cluster order.
    let per_cluster: Vec<(Vec<(u64, u64)>, u64)> =
        rayon::parallel_map(threads, &clusters, |cluster| {
            let members = &cluster.members;
            let mut edges = Vec::new();
            let mut local_comparisons = 0u64;
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    let (id_i, schema_i) = (ids[members[i]], &sets[members[i]]);
                    let (id_j, schema_j) = (ids[members[j]], &sets[members[j]]);
                    if id_i == id_j {
                        continue;
                    }
                    local_comparisons += 1;
                    // WLOG the larger schema is the potential parent; check
                    // both directions so equal-size (identical) schemas get
                    // both edges.
                    if schema_j.subset_of(schema_i) {
                        edges.push((id_i, id_j));
                    }
                    if schema_i.subset_of(schema_j) {
                        edges.push((id_j, id_i));
                    }
                }
            }
            (edges, local_comparisons)
        });
    for (edges, local_comparisons) in per_cluster {
        comparisons += local_comparisons;
        for (parent, child) in edges {
            graph.add_edge(parent, child);
        }
    }

    let clusters = clusters
        .into_iter()
        .map(|c| SchemaCluster {
            center: ids[c.center],
            members: c.members.iter().map(|&i| ids[i]).collect(),
        })
        .collect();

    SgbResult {
        graph,
        clusters,
        schema_comparisons: comparisons,
    }
}

/// Run the Schema Graph Builder over `(dataset id, schema set)` pairs,
/// single-threaded. See [`build_schema_graph_threaded`].
pub fn build_schema_graph(schemas: &[(u64, SchemaSet)], meter: &Meter) -> SgbResult {
    build_schema_graph_threaded(schemas, 1, meter)
}

/// Run the Schema Graph Builder over `(dataset id, schema set)` pairs on up
/// to `threads` workers (`0` = all hardware threads).
///
/// Every dataset becomes a node of the output graph even if it has no edges.
/// Schema comparisons are counted both in the returned result and on the
/// meter (as `schema_comparisons`). All column names are interned up front
/// so each comparison is a sorted-`u32` merge-walk (with a bitset fast path)
/// rather than a `BTreeSet<String>` subset test; the produced graph,
/// clusters and comparison counts are identical to the string-based
/// implementation at any thread count.
pub fn build_schema_graph_threaded(
    schemas: &[(u64, SchemaSet)],
    threads: usize,
    meter: &Meter,
) -> SgbResult {
    let mut interner = SchemaInterner::new();
    let ids: Vec<u64> = schemas.iter().map(|(id, _)| *id).collect();
    let sets: Vec<InternedSchemaSet> = schemas
        .iter()
        .map(|(_, s)| interner.intern_set(s))
        .collect();
    let result = sgb_core(&ids, &sets, threads);
    meter.add_schema_comparisons(result.schema_comparisons);
    result
}

/// The pre-interning implementation: identical algorithm, but containment
/// checks run directly on the string [`SchemaSet`]s. Kept as the baseline
/// the criterion benches compare interning against; produces exactly the
/// same graph and comparison counts as [`build_schema_graph`].
pub fn build_schema_graph_string(schemas: &[(u64, SchemaSet)], meter: &Meter) -> SgbResult {
    let ids: Vec<u64> = schemas.iter().map(|(id, _)| *id).collect();
    let sets: Vec<SchemaSet> = schemas.iter().map(|(_, s)| s.clone()).collect();
    let result = sgb_core(&ids, &sets, 1);
    meter.add_schema_comparisons(result.schema_comparisons);
    result
}

/// The brute-force `O(N²)` schema containment graph ("Ground Truth Schema"
/// baseline of §6.4.1): compare every ordered pair of schema sets directly.
/// Exposed here because the pipeline tests use it to verify Theorem 4.1; the
/// baselines crate re-exports it alongside the other baselines.
pub fn brute_force_schema_graph(schemas: &[(u64, SchemaSet)], meter: &Meter) -> ContainmentGraph {
    let mut graph = ContainmentGraph::new();
    for (id, _) in schemas {
        graph.add_dataset(*id);
    }
    let mut comparisons = 0u64;
    for (i, (id_a, sa)) in schemas.iter().enumerate() {
        for (id_b, sb) in schemas.iter().skip(i + 1) {
            comparisons += 1;
            if sa.is_contained_in(sb) {
                graph.add_edge(*id_b, *id_a);
            }
            if sb.is_contained_in(sa) {
                graph.add_edge(*id_a, *id_b);
            }
        }
    }
    meter.add_schema_comparisons(comparisons);
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_graph::diff::diff;

    fn schema(names: &[&str]) -> SchemaSet {
        SchemaSet::from_names(names.iter().copied())
    }

    /// The worked example of Fig. 3: six schemas over columns c1..c5.
    fn paper_example() -> Vec<(u64, SchemaSet)> {
        vec![
            (1, schema(&["c1", "c2", "c3", "c4", "c5"])), // S1 (largest)
            (2, schema(&["c1", "c2", "c3"])),
            (3, schema(&["c2", "c3", "c4"])),
            (4, schema(&["c1", "c2"])),
            (5, schema(&["c4", "c5"])),
            (6, schema(&["c2"])),
        ]
    }

    #[test]
    fn builds_expected_edges_on_paper_example() {
        let schemas = paper_example();
        let meter = Meter::new();
        let result = build_schema_graph(&schemas, &meter);
        let g = &result.graph;
        // Everything is contained in S1.
        for child in [2u64, 3, 4, 5, 6] {
            assert!(g.has_edge(1, child), "1 → {child} missing");
        }
        // S4 {c1,c2} ⊆ S2 {c1,c2,c3}; S6 {c2} ⊆ S2, S3, S4.
        assert!(g.has_edge(2, 4));
        assert!(g.has_edge(2, 6));
        assert!(g.has_edge(3, 6));
        assert!(g.has_edge(4, 6));
        // No spurious reverse edges.
        assert!(!g.has_edge(4, 2));
        assert!(!g.has_edge(6, 1));
        // S5 {c4,c5} is not contained in S2/S3/S4.
        assert!(!g.has_edge(2, 5));
        assert!(!g.has_edge(3, 5));
    }

    #[test]
    fn matches_brute_force_on_paper_example() {
        let schemas = paper_example();
        let sgb = build_schema_graph(&schemas, &Meter::new());
        let truth = brute_force_schema_graph(&schemas, &Meter::new());
        let d = diff(&sgb.graph, &truth);
        assert_eq!(d.not_detected, 0, "Theorem 4.1: no missing edges");
        assert_eq!(d.incorrect, 0, "SGB only adds true schema edges");
    }

    #[test]
    fn identical_schemas_get_edges_in_both_directions() {
        let schemas = vec![(10, schema(&["a", "b"])), (20, schema(&["a", "b"]))];
        let result = build_schema_graph(&schemas, &Meter::new());
        assert!(result.graph.has_edge(10, 20));
        assert!(result.graph.has_edge(20, 10));
    }

    #[test]
    fn disjoint_schemas_produce_no_edges_and_many_clusters() {
        let schemas = vec![
            (1, schema(&["a", "b"])),
            (2, schema(&["c", "d"])),
            (3, schema(&["e"])),
        ];
        let result = build_schema_graph(&schemas, &Meter::new());
        assert_eq!(result.graph.edge_count(), 0);
        assert_eq!(result.cluster_count(), 3);
    }

    #[test]
    fn cluster_centers_are_largest_members() {
        let schemas = paper_example();
        let result = build_schema_graph(&schemas, &Meter::new());
        for cluster in &result.clusters {
            let center_len = schemas
                .iter()
                .find(|(id, _)| *id == cluster.center)
                .unwrap()
                .1
                .len();
            for m in &cluster.members {
                let len = schemas.iter().find(|(id, _)| id == m).unwrap().1.len();
                assert!(len <= center_len);
            }
            assert!(cluster.members.contains(&cluster.center));
        }
    }

    #[test]
    fn member_of_multiple_clusters_possible() {
        // Two disjoint big schemas plus a tiny schema contained in both.
        let schemas = vec![
            (1, schema(&["a", "b", "x"])),
            (2, schema(&["a", "b", "y"])),
            (3, schema(&["a", "b"])),
        ];
        let result = build_schema_graph(&schemas, &Meter::new());
        let membership: usize = result
            .clusters
            .iter()
            .filter(|c| c.members.contains(&3))
            .count();
        assert_eq!(membership, 2, "schema 3 belongs to both clusters");
        assert!(result.graph.has_edge(1, 3));
        assert!(result.graph.has_edge(2, 3));
        assert!(!result.graph.has_edge(1, 2));
    }

    #[test]
    fn comparisons_counted_and_metered() {
        let schemas = paper_example();
        let meter = Meter::new();
        let result = build_schema_graph(&schemas, &meter);
        assert!(result.schema_comparisons > 0);
        assert_eq!(
            meter.snapshot().schema_comparisons,
            result.schema_comparisons
        );
        // SGB should do fewer comparisons than the N^2 brute force here? Not
        // necessarily for tiny N, but it must be bounded by N*K + sum of
        // cluster pair counts; sanity: below the all-pairs double count.
        let n = schemas.len() as u64;
        assert!(result.schema_comparisons <= n * n);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty = build_schema_graph(&[], &Meter::new());
        assert_eq!(empty.graph.node_count(), 0);
        assert_eq!(empty.cluster_count(), 0);

        let single = build_schema_graph(&[(7, schema(&["a"]))], &Meter::new());
        assert_eq!(single.graph.node_count(), 1);
        assert_eq!(single.graph.edge_count(), 0);
        assert_eq!(single.cluster_count(), 1);
    }

    #[test]
    fn string_interned_and_threaded_variants_agree() {
        let schemas = paper_example();
        let interned = build_schema_graph(&schemas, &Meter::new());
        let string = build_schema_graph_string(&schemas, &Meter::new());
        let threaded = build_schema_graph_threaded(&schemas, 0, &Meter::new());
        assert_eq!(interned.graph, string.graph);
        assert_eq!(interned.graph, threaded.graph);
        assert_eq!(interned.clusters, string.clusters);
        assert_eq!(interned.clusters, threaded.clusters);
        assert_eq!(interned.schema_comparisons, string.schema_comparisons);
        assert_eq!(interned.schema_comparisons, threaded.schema_comparisons);
    }

    #[test]
    fn empty_schema_contained_everywhere() {
        let schemas = vec![(1, schema(&["a", "b"])), (2, schema(&[]))];
        let result = build_schema_graph(&schemas, &Meter::new());
        assert!(result.graph.has_edge(1, 2));
    }

    proptest::proptest! {
        /// Theorem 4.1 (recall guarantee): on random schema families the SGB
        /// graph must contain every edge of the brute-force schema graph.
        #[test]
        fn sgb_never_misses_an_edge(raw in proptest::collection::vec(
            proptest::collection::btree_set(0u8..12, 0..6), 1..24)) {
            let schemas: Vec<(u64, SchemaSet)> = raw
                .iter()
                .enumerate()
                .map(|(i, cols)| {
                    (
                        i as u64,
                        SchemaSet::from_names(cols.iter().map(|c| format!("c{c}"))),
                    )
                })
                .collect();
            let sgb = build_schema_graph(&schemas, &Meter::new());
            let truth = brute_force_schema_graph(&schemas, &Meter::new());
            let d = diff(&sgb.graph, &truth);
            proptest::prop_assert_eq!(d.not_detected, 0);
            // SGB adds only schema-containment edges, so precision is also 1
            // at this stage (incorrectness only appears w.r.t. *content*
            // ground truth, not schema ground truth).
            proptest::prop_assert_eq!(d.incorrect, 0);
        }
    }
}
