//! Dynamic graph maintenance (§7.1 of the paper): verification plans.
//!
//! Enterprise data lakes change: datasets are added, rows are appended or
//! removed, datasets are dropped. §7.1 observes that each update only needs
//! work **linear in the number of datasets**: only pairs involving a changed
//! dataset can change validity, while every other edge keeps its state.
//!
//! This module is the private machinery behind [`crate::session::R2d2Session`].
//! A batch of applied updates is first coalesced into one [`Effect`] per
//! dataset (N appends to one table cause one re-verification sweep, not N),
//! then turned into a sorted candidate-pair list by [`plan_pairs`], and
//! finally verified by [`verify_pairs`] — schema containment on the
//! session's interned schema sets, then the MMP metadata check, then the CLP
//! sampling check through the session's shared [`HashJoinCache`] — fanned
//! out over `config.threads` workers with the same bit-identical-at-any-
//! thread-count guarantee as the batch pipeline (pure per-pair work, RNG
//! streams seeded per edge, results merged in input order).
//!
//! ## Which pairs must be re-verified
//!
//! Every pipeline check of a pair `(parent, child)` — schema, MMP, CLP
//! sampling — is a pure function of the two datasets' current content, the
//! config, and the pair's own RNG stream. A pair therefore needs
//! re-verification exactly when either endpoint's content changed, with two
//! provable exceptions that survive *any* sample draw:
//!
//! * a **grown** parent keeps every existing outgoing edge (its row multiset
//!   only gained rows, so an anti-join that found nothing missing still
//!   finds nothing missing, and its min/max ranges only widened);
//! * a **shrunk** parent gains no new outgoing edge (its row multiset only
//!   lost rows, so an anti-join that disproved containment still does).
//!
//! Everything else — all incoming pairs of a changed dataset, absent
//! outgoing pairs of a grown one, existing outgoing edges of a shrunk one,
//! and both directions for added or mixed-change datasets — is re-verified.
//! This is what makes the session graph *bit-identical* to a fresh batch
//! run over the mutated lake (the oracle pinned by
//! `tests/integration_dynamic.rs`), not merely equal on true edges.

use crate::clp;
use crate::config::PipelineConfig;
use crate::mmp;
use r2d2_graph::ContainmentGraph;
use r2d2_lake::{DataLake, DatasetId, HashJoinCache, InternedSchemaSet, Meter, Result};
use std::collections::{BTreeMap, BTreeSet};

/// Coalesced content effect of a batch of updates on one dataset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct Effect {
    /// The dataset was created by this batch.
    pub added: bool,
    /// The dataset's row multiset gained rows.
    pub grew: bool,
    /// The dataset's row multiset lost rows.
    pub shrank: bool,
    /// The dataset was removed from the lake by this batch.
    pub dropped: bool,
}

impl Effect {
    pub(crate) const ADDED: Effect = Effect {
        added: true,
        grew: false,
        shrank: false,
        dropped: false,
    };
    pub(crate) const GREW: Effect = Effect {
        added: false,
        grew: true,
        shrank: false,
        dropped: false,
    };
    pub(crate) const SHRANK: Effect = Effect {
        added: false,
        grew: false,
        shrank: true,
        dropped: false,
    };
    pub(crate) const DROPPED: Effect = Effect {
        added: false,
        grew: false,
        shrank: false,
        dropped: true,
    };

    /// Merge a later effect into this one. Dropping is terminal (the
    /// catalog refuses further updates to the id), so it wins outright.
    pub(crate) fn merge(&mut self, later: Effect) {
        if later.dropped {
            *self = Effect::DROPPED;
        } else {
            self.added |= later.added;
            self.grew |= later.grew;
            self.shrank |= later.shrank;
        }
    }

    /// Whether both directions of every pair involving the dataset must be
    /// re-verified (new dataset, or mixed growth and shrinkage).
    fn full_recheck(self) -> bool {
        self.added || (self.grew && self.shrank)
    }
}

/// Build the sorted candidate-pair list for one verification sweep.
///
/// `graph` must still hold the pre-sweep edges (drop-clearing aside): the
/// grown/shrunk exceptions are keyed off which outgoing edges currently
/// exist. Pairs are deduplicated across affected datasets; pairs whose
/// partner was dropped never appear because partners are drawn from the
/// post-mutation catalog.
pub(crate) fn plan_pairs(
    lake: &DataLake,
    graph: &ContainmentGraph,
    effects: &BTreeMap<u64, Effect>,
) -> Vec<(u64, u64)> {
    let live: Vec<u64> = lake.ids().iter().map(|d| d.0).collect();
    let mut pairs: BTreeSet<(u64, u64)> = BTreeSet::new();
    for (&d, &e) in effects {
        if e.dropped || !lake.contains(DatasetId(d)) {
            continue;
        }
        for &o in &live {
            if o == d {
                continue;
            }
            // Incoming (o → d): d's content is the child side of the check,
            // so any content change invalidates the previous outcome.
            pairs.insert((o, d));
            // Outgoing (d → o): apply the grown/shrunk parent exceptions.
            let existing = graph.has_edge(d, o);
            let recheck = if e.full_recheck() {
                true
            } else if e.grew {
                !existing
            } else if e.shrank {
                existing
            } else {
                false
            };
            if recheck {
                pairs.insert((d, o));
            }
        }
    }
    pairs.into_iter().collect()
}

/// Outcome of verifying one candidate pair.
#[derive(Debug, Clone, Copy)]
pub(crate) struct VerifyOutcome {
    /// Whether the pair survives all three checks (schema, MMP, CLP).
    pub pass: bool,
    /// Child rows sampled by the CLP check.
    pub rows_sampled: usize,
}

/// Verify candidate pairs on up to `config.threads` workers, returning
/// outcomes aligned with `pairs`. Each pair runs the same checks the batch
/// pipeline would: the optional approximate MinHash gate
/// ([`crate::sgb::ApproxCandidates`], when [`PipelineConfig::approx`] is
/// set), then interned schema containment, the MMP metadata check, and the
/// CLP sampling check through the shared `cache`.
///
/// The gate is rebuilt per sweep from the lake's per-column signature
/// stats — cheap (no row rehashing) and automatically current with the
/// batch's mutations. Like in batch SGB, a gated-out pair is metered as an
/// `approx_prune` and fails without counting a schema comparison; because
/// the gate only rejects provably-false pairs, the resulting graph is still
/// bit-identical to an exact sweep.
pub(crate) fn verify_pairs(
    lake: &DataLake,
    pairs: &[(u64, u64)],
    schemas: &BTreeMap<u64, InternedSchemaSet>,
    config: &PipelineConfig,
    cache: &HashJoinCache,
    meter: &Meter,
) -> Result<Vec<VerifyOutcome>> {
    let source = config
        .approx
        .as_ref()
        .map(|approx| crate::sgb::ApproxCandidates::build(lake, approx, meter));
    crate::fanout::try_parallel_map(config.threads, pairs, |&(parent, child)| {
        if let Some(source) = &source {
            use crate::sgb::CandidateSource;
            if !source.admit(parent, child) {
                return Ok(VerifyOutcome {
                    pass: false,
                    rows_sampled: 0,
                });
            }
        }
        verify_pair(lake, parent, child, schemas, config, cache, meter)
    })
}

/// Run the schema → MMP → CLP check cascade on one `parent → child` pair.
fn verify_pair(
    lake: &DataLake,
    parent: u64,
    child: u64,
    schemas: &BTreeMap<u64, InternedSchemaSet>,
    config: &PipelineConfig,
    cache: &HashJoinCache,
    meter: &Meter,
) -> Result<VerifyOutcome> {
    let missing = |id: u64| {
        r2d2_lake::LakeError::DatasetNotFound(format!("no interned schema for dataset ds{id}"))
    };
    let p = schemas.get(&parent).ok_or_else(|| missing(parent))?;
    let c = schemas.get(&child).ok_or_else(|| missing(child))?;
    meter.add_schema_comparisons(1);
    if !c.is_contained_in(p) {
        return Ok(VerifyOutcome {
            pass: false,
            rows_sampled: 0,
        });
    }
    if !mmp::edge_passes(
        lake,
        parent,
        child,
        mmp::MmpOptions::from_config(config),
        meter,
    )? {
        return Ok(VerifyOutcome {
            pass: false,
            rows_sampled: 0,
        });
    }
    let (pass, rows_sampled) = clp::edge_passes(lake, parent, child, config, cache, meter)?;
    Ok(VerifyOutcome { pass, rows_sampled })
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_lake::{
        AccessProfile, Column, DataType, PartitionedTable, Schema, SchemaInterner, Table,
    };

    fn table(ids: std::ops::Range<i64>) -> Table {
        let schema = Schema::flat(&[("id", DataType::Int), ("v", DataType::Float)]).unwrap();
        Table::new(
            schema,
            vec![
                Column::from_ints(ids.clone()),
                Column::from_floats(ids.map(|i| i as f64 * 0.5)),
            ],
        )
        .unwrap()
    }

    fn lake3() -> (DataLake, u64, u64, u64) {
        let mut lake = DataLake::new();
        let add = |lake: &mut DataLake, name: &str, t: Table| {
            lake.add_dataset(
                name,
                PartitionedTable::single(t),
                AccessProfile::default(),
                None,
            )
            .unwrap()
            .0
        };
        let a = add(&mut lake, "a", table(0..50));
        let b = add(&mut lake, "b", table(10..30));
        let c = add(&mut lake, "c", table(100..120));
        (lake, a, b, c)
    }

    fn interned(lake: &DataLake) -> BTreeMap<u64, InternedSchemaSet> {
        let mut interner = SchemaInterner::new();
        lake.iter()
            .map(|e| (e.id.0, interner.intern_set(&e.data.schema().schema_set())))
            .collect()
    }

    #[test]
    fn effect_merge_coalesces_and_drop_wins() {
        let mut e = Effect::GREW;
        e.merge(Effect::GREW);
        assert_eq!(e, Effect::GREW);
        e.merge(Effect::SHRANK);
        assert!(e.grew && e.shrank && e.full_recheck());
        let mut a = Effect::ADDED;
        a.merge(Effect::GREW);
        assert!(a.added && a.full_recheck());
        a.merge(Effect::DROPPED);
        assert_eq!(a, Effect::DROPPED);
    }

    #[test]
    fn grown_dataset_skips_existing_outgoing_edges_only() {
        let (lake, a, b, c) = lake3();
        let mut graph = ContainmentGraph::new();
        for d in [a, b, c] {
            graph.add_dataset(d);
        }
        graph.add_edge(a, b); // a currently contains b
        let mut effects = BTreeMap::new();
        effects.insert(a, Effect::GREW);
        let pairs = plan_pairs(&lake, &graph, &effects);
        // Incoming pairs of a are all re-checked; the existing outgoing
        // (a, b) is provably still valid; the absent outgoing (a, c) is not.
        assert!(pairs.contains(&(b, a)) && pairs.contains(&(c, a)));
        assert!(pairs.contains(&(a, c)));
        assert!(!pairs.contains(&(a, b)));
    }

    #[test]
    fn shrunk_dataset_skips_absent_outgoing_pairs_only() {
        let (lake, a, b, c) = lake3();
        let mut graph = ContainmentGraph::new();
        for d in [a, b, c] {
            graph.add_dataset(d);
        }
        graph.add_edge(a, b);
        let mut effects = BTreeMap::new();
        effects.insert(a, Effect::SHRANK);
        let pairs = plan_pairs(&lake, &graph, &effects);
        assert!(pairs.contains(&(b, a)) && pairs.contains(&(c, a)));
        assert!(pairs.contains(&(a, b)), "existing outgoing is re-checked");
        assert!(!pairs.contains(&(a, c)), "absent outgoing stays absent");
    }

    #[test]
    fn added_dataset_rechecks_both_directions_and_dropped_none() {
        let (lake, a, b, c) = lake3();
        let graph = ContainmentGraph::with_datasets([a, b, c]);
        let mut effects = BTreeMap::new();
        effects.insert(c, Effect::ADDED);
        let pairs = plan_pairs(&lake, &graph, &effects);
        assert_eq!(
            pairs,
            vec![(a, c), (b, c), (c, a), (c, b)],
            "sorted, both directions, no self pairs"
        );

        let mut dropped = BTreeMap::new();
        dropped.insert(a, Effect::DROPPED);
        assert!(plan_pairs(&lake, &graph, &dropped).is_empty());
    }

    #[test]
    fn pairs_are_deduplicated_across_affected_datasets() {
        let (lake, a, b, c) = lake3();
        let graph = ContainmentGraph::with_datasets([a, b, c]);
        let mut effects = BTreeMap::new();
        effects.insert(a, Effect::ADDED);
        effects.insert(b, Effect::ADDED);
        let pairs = plan_pairs(&lake, &graph, &effects);
        let unique: BTreeSet<_> = pairs.iter().copied().collect();
        assert_eq!(unique.len(), pairs.len());
        assert!(pairs.contains(&(a, b)) && pairs.contains(&(b, a)));
    }

    #[test]
    fn verify_pairs_matches_the_batch_checks() {
        let (lake, a, b, c) = lake3();
        let schemas = interned(&lake);
        let config = PipelineConfig::default();
        let cache = HashJoinCache::new();
        let meter = Meter::new();
        let pairs = vec![(a, b), (b, a), (a, c)];
        let outcomes = verify_pairs(&lake, &pairs, &schemas, &config, &cache, &meter).unwrap();
        assert!(outcomes[0].pass, "b ⊂ a must verify");
        assert!(!outcomes[1].pass, "a ⊄ b");
        assert!(!outcomes[2].pass, "disjoint ranges fail MMP");
        assert!(outcomes[0].rows_sampled > 0);
        assert_eq!(meter.snapshot().schema_comparisons, 3);
    }

    #[test]
    fn verify_pairs_is_identical_across_thread_counts() {
        let (lake, a, b, c) = lake3();
        let schemas = interned(&lake);
        let pairs = vec![(a, b), (a, c), (b, a), (b, c), (c, a), (c, b)];
        let run = |threads: usize| {
            let config = PipelineConfig::default().with_threads(threads);
            let cache = HashJoinCache::new();
            let meter = Meter::new();
            let outcomes = verify_pairs(&lake, &pairs, &schemas, &config, &cache, &meter).unwrap();
            let passes: Vec<bool> = outcomes.iter().map(|o| o.pass).collect();
            let sampled: Vec<usize> = outcomes.iter().map(|o| o.rows_sampled).collect();
            (passes, sampled, meter.snapshot())
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn approx_gate_prunes_disjoint_pairs_without_sampling() {
        let (lake, a, b, c) = lake3();
        let schemas = interned(&lake);
        let config = PipelineConfig::default().with_approx(crate::config::ApproxConfig::default());
        let cache = HashJoinCache::new();
        let meter = Meter::new();
        let pairs = vec![(a, b), (a, c)];
        let outcomes = verify_pairs(&lake, &pairs, &schemas, &config, &cache, &meter).unwrap();
        assert!(outcomes[0].pass, "true containment admitted and verified");
        assert!(!outcomes[1].pass, "disjoint pair fails");
        let ops = meter.snapshot();
        assert!(ops.approx_probes > 0, "gate must have probed");
        assert!(ops.approx_prunes > 0, "disjoint pair pruned by the gate");

        // The gated sweep agrees with the exact sweep on every outcome.
        let exact_meter = Meter::new();
        let exact = verify_pairs(
            &lake,
            &pairs,
            &schemas,
            &PipelineConfig::default(),
            &HashJoinCache::new(),
            &exact_meter,
        )
        .unwrap();
        let passes = |o: &[VerifyOutcome]| o.iter().map(|x| x.pass).collect::<Vec<_>>();
        assert_eq!(passes(&outcomes), passes(&exact));
        assert_eq!(exact_meter.snapshot().approx_probes, 0);
    }

    #[test]
    fn verify_pair_without_interned_schema_errors() {
        let (lake, a, ..) = lake3();
        let schemas = BTreeMap::new();
        let err = verify_pairs(
            &lake,
            &[(a, a + 1)],
            &schemas,
            &PipelineConfig::default(),
            &HashJoinCache::new(),
            &Meter::new(),
        )
        .unwrap_err();
        assert!(matches!(err, r2d2_lake::LakeError::DatasetNotFound(_)));
    }
}
