//! Dynamic graph updates (§7.1 of the paper).
//!
//! Enterprise data lakes change: datasets are added, rows or columns are
//! appended or removed, and datasets are deleted. Rather than re-running the
//! whole pipeline, §7.1 observes that each update only requires work linear
//! in the number of datasets: the affected dataset is re-checked against the
//! rest of the lake (schema check, then MMP, then CLP on the surviving
//! candidate edges), while the unaffected edges keep their validity.

use crate::clp::content_level_prune;
use crate::config::PipelineConfig;
use crate::mmp::min_max_prune;
use r2d2_graph::ContainmentGraph;
use r2d2_lake::{DataLake, DatasetId, Meter, Result};
use serde::{Deserialize, Serialize};

/// Statistics of a dynamic update.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateStats {
    /// Candidate edges (pairs involving the updated dataset) examined.
    pub candidates_checked: usize,
    /// Edges added to the graph by this update.
    pub edges_added: usize,
    /// Edges removed from the graph by this update.
    pub edges_removed: usize,
}

/// Verify a single candidate edge `parent → child` with the MMP + CLP checks
/// (schema containment is assumed to have been established by the caller).
/// Returns `true` if the edge survives both pruning stages.
fn verify_edge(
    lake: &DataLake,
    parent: u64,
    child: u64,
    config: &PipelineConfig,
    meter: &Meter,
) -> Result<bool> {
    let mut probe = ContainmentGraph::new();
    probe.add_edge(parent, child);
    min_max_prune(lake, &mut probe, config.mmp_typed_columns_only, meter)?;
    if probe.edge_count() == 0 {
        return Ok(false);
    }
    content_level_prune(lake, &mut probe, config, meter)?;
    Ok(probe.edge_count() == 1)
}

/// Schema containment check between two datasets in the lake:
/// returns `true` when `child.schema ⊆ parent.schema`.
fn schema_contained(lake: &DataLake, parent: u64, child: u64, meter: &Meter) -> Result<bool> {
    meter.add_schema_comparisons(1);
    let p = lake.dataset(DatasetId(parent))?.data.schema().schema_set();
    let c = lake.dataset(DatasetId(child))?.data.schema().schema_set();
    Ok(c.is_contained_in(&p))
}

/// A new dataset `new_id` was added to the lake (it must already be present
/// in the catalog). Containment is checked in both directions against every
/// other dataset in the graph; surviving edges are added. Work is linear in
/// the number of datasets, as §7.1 claims.
pub fn dataset_added(
    lake: &DataLake,
    graph: &mut ContainmentGraph,
    new_id: u64,
    config: &PipelineConfig,
    meter: &Meter,
) -> Result<UpdateStats> {
    let mut stats = UpdateStats::default();
    graph.add_dataset(new_id);
    let others: Vec<u64> = graph
        .datasets()
        .iter()
        .copied()
        .filter(|&d| d != new_id)
        .collect();
    for other in others {
        if !lake.contains(DatasetId(other)) {
            continue;
        }
        // other as parent of new_id.
        stats.candidates_checked += 1;
        if schema_contained(lake, other, new_id, meter)?
            && verify_edge(lake, other, new_id, config, meter)?
            && graph.add_edge(other, new_id)
        {
            stats.edges_added += 1;
        }
        // new_id as parent of other.
        stats.candidates_checked += 1;
        if schema_contained(lake, new_id, other, meter)?
            && verify_edge(lake, new_id, other, config, meter)?
            && graph.add_edge(new_id, other)
        {
            stats.edges_added += 1;
        }
    }
    Ok(stats)
}

/// Rows (or columns) were **added** to dataset `id` (the catalog already
/// holds the new data). Outgoing edges of `id` (where `id` is the parent)
/// remain valid — a grown parent still contains its children. Incoming
/// edges (where `id` is the child) and previously absent relationships must
/// be re-checked.
pub fn dataset_grew(
    lake: &DataLake,
    graph: &mut ContainmentGraph,
    id: u64,
    config: &PipelineConfig,
    meter: &Meter,
) -> Result<UpdateStats> {
    let mut stats = UpdateStats::default();
    // Re-check incoming edges.
    for parent in graph.parents(id) {
        stats.candidates_checked += 1;
        let ok = schema_contained(lake, parent, id, meter)?
            && verify_edge(lake, parent, id, config, meter)?;
        if !ok && graph.remove_edge(parent, id).is_some() {
            stats.edges_removed += 1;
        }
    }
    // Check previously absent relationships: id as new parent of others.
    let others: Vec<u64> = graph
        .datasets()
        .iter()
        .copied()
        .filter(|&d| d != id && !graph.has_edge(id, d))
        .collect();
    for other in others {
        if !lake.contains(DatasetId(other)) {
            continue;
        }
        stats.candidates_checked += 1;
        if schema_contained(lake, id, other, meter)?
            && verify_edge(lake, id, other, config, meter)?
            && graph.add_edge(id, other)
        {
            stats.edges_added += 1;
        }
    }
    Ok(stats)
}

/// Rows (or columns) were **removed** from dataset `id`. Incoming edges of
/// `id` remain valid — a shrunk child is still contained in its parents.
/// Outgoing edges and previously absent relationships where `id` is the
/// child must be re-checked.
pub fn dataset_shrank(
    lake: &DataLake,
    graph: &mut ContainmentGraph,
    id: u64,
    config: &PipelineConfig,
    meter: &Meter,
) -> Result<UpdateStats> {
    let mut stats = UpdateStats::default();
    // Re-check outgoing edges (id as parent).
    for child in graph.children(id) {
        stats.candidates_checked += 1;
        let ok = schema_contained(lake, id, child, meter)?
            && verify_edge(lake, id, child, config, meter)?;
        if !ok && graph.remove_edge(id, child).is_some() {
            stats.edges_removed += 1;
        }
    }
    // Check previously absent relationships: id as new child of others.
    let others: Vec<u64> = graph
        .datasets()
        .iter()
        .copied()
        .filter(|&d| d != id && !graph.has_edge(d, id))
        .collect();
    for other in others {
        if !lake.contains(DatasetId(other)) {
            continue;
        }
        stats.candidates_checked += 1;
        if schema_contained(lake, other, id, meter)?
            && verify_edge(lake, other, id, config, meter)?
            && graph.add_edge(other, id)
        {
            stats.edges_added += 1;
        }
    }
    Ok(stats)
}

/// Dataset `id` was deleted from the lake: drop all of its incident edges.
pub fn dataset_deleted(graph: &mut ContainmentGraph, id: u64) -> UpdateStats {
    let before = graph.edge_count();
    graph.clear_dataset(id);
    UpdateStats {
        candidates_checked: 0,
        edges_added: 0,
        edges_removed: before - graph.edge_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::R2d2Pipeline;
    use r2d2_lake::{AccessProfile, Column, DataType, PartitionedTable, Schema, Table};

    fn schema() -> Schema {
        Schema::flat(&[("id", DataType::Int), ("v", DataType::Float)]).unwrap()
    }

    fn table(ids: std::ops::Range<i64>) -> Table {
        // The float column is a function of the id so that any id-range
        // subset is also a true row-tuple subset.
        Table::new(
            schema(),
            vec![
                Column::from_ints(ids.clone()),
                Column::from_floats(ids.map(|i| i as f64 * 0.5)),
            ],
        )
        .unwrap()
    }

    fn add(lake: &mut DataLake, name: &str, t: Table) -> u64 {
        lake.add_dataset(
            name,
            PartitionedTable::single(t),
            AccessProfile::default(),
            None,
        )
        .unwrap()
        .0
    }

    fn config() -> PipelineConfig {
        PipelineConfig::default().with_seed(3)
    }

    #[test]
    fn adding_a_contained_dataset_creates_edges() {
        let mut lake = DataLake::new();
        let base = add(&mut lake, "base", table(0..50));
        let report = R2d2Pipeline::with_defaults().run(&lake).unwrap();
        let mut graph = report.after_clp;

        // New dataset: a strict subset of base.
        let sub = add(&mut lake, "sub", table(10..30));
        let stats = dataset_added(&lake, &mut graph, sub, &config(), &Meter::new()).unwrap();
        assert!(graph.has_edge(base, sub));
        assert!(!graph.has_edge(sub, base));
        assert_eq!(stats.edges_added, 1);
        assert!(stats.candidates_checked >= 2);
    }

    #[test]
    fn adding_an_unrelated_dataset_creates_no_edges() {
        let mut lake = DataLake::new();
        let _base = add(&mut lake, "base", table(0..50));
        let report = R2d2Pipeline::with_defaults().run(&lake).unwrap();
        let mut graph = report.after_clp;

        let other = add(&mut lake, "other", table(1000..1050));
        let stats = dataset_added(&lake, &mut graph, other, &config(), &Meter::new()).unwrap();
        assert_eq!(stats.edges_added, 0);
        assert_eq!(graph.edge_count(), 0);
    }

    #[test]
    fn growing_a_child_invalidates_incoming_edges() {
        let mut lake = DataLake::new();
        let base = add(&mut lake, "base", table(0..50));
        let sub = add(&mut lake, "sub", table(10..30));
        let mut graph = ContainmentGraph::new();
        graph.add_edge(base, sub);

        // The child grows beyond the parent's id range.
        lake.replace_data(DatasetId(sub), PartitionedTable::single(table(10..90)))
            .unwrap();
        let stats = dataset_grew(&lake, &mut graph, sub, &config(), &Meter::new()).unwrap();
        assert!(!graph.has_edge(base, sub));
        assert_eq!(stats.edges_removed, 1);
    }

    #[test]
    fn growing_a_dataset_can_create_new_outgoing_edges() {
        let mut lake = DataLake::new();
        let a = add(&mut lake, "a", table(0..20));
        let b = add(&mut lake, "b", table(0..10));
        let mut graph = ContainmentGraph::new();
        graph.add_dataset(a);
        graph.add_dataset(b);

        // `b` grows to superset of `a`... actually grow `a` so that it now
        // contains nothing new; instead grow b to cover a.
        lake.replace_data(DatasetId(b), PartitionedTable::single(table(0..40)))
            .unwrap();
        let stats = dataset_grew(&lake, &mut graph, b, &config(), &Meter::new()).unwrap();
        assert!(graph.has_edge(b, a), "b now contains a");
        assert_eq!(stats.edges_added, 1);
    }

    #[test]
    fn shrinking_a_parent_invalidates_outgoing_edges() {
        let mut lake = DataLake::new();
        let base = add(&mut lake, "base", table(0..50));
        let sub = add(&mut lake, "sub", table(10..30));
        let mut graph = ContainmentGraph::new();
        graph.add_edge(base, sub);

        // The parent shrinks so much that it no longer covers the child.
        lake.replace_data(DatasetId(base), PartitionedTable::single(table(0..15)))
            .unwrap();
        let stats = dataset_shrank(&lake, &mut graph, base, &config(), &Meter::new()).unwrap();
        assert!(!graph.has_edge(base, sub));
        assert_eq!(stats.edges_removed, 1);
    }

    #[test]
    fn shrinking_a_dataset_can_create_new_incoming_edges() {
        let mut lake = DataLake::new();
        let a = add(&mut lake, "a", table(0..30));
        let b = add(&mut lake, "b", table(0..60));
        let mut graph = ContainmentGraph::new();
        graph.add_dataset(a);
        graph.add_dataset(b);

        // b shrinks to a subset of a.
        lake.replace_data(DatasetId(b), PartitionedTable::single(table(5..20)))
            .unwrap();
        let stats = dataset_shrank(&lake, &mut graph, b, &config(), &Meter::new()).unwrap();
        assert!(graph.has_edge(a, b));
        assert_eq!(stats.edges_added, 1);
    }

    #[test]
    fn deleting_a_dataset_clears_incident_edges() {
        let mut graph = ContainmentGraph::new();
        graph.add_edge(1, 2);
        graph.add_edge(2, 3);
        graph.add_edge(4, 5);
        let stats = dataset_deleted(&mut graph, 2);
        assert_eq!(stats.edges_removed, 2);
        assert!(graph.has_edge(4, 5));
    }

    #[test]
    fn incremental_result_matches_full_rerun() {
        // Build a lake, run the pipeline, then add a dataset incrementally
        // and compare against re-running the pipeline from scratch.
        let mut lake = DataLake::new();
        let _a = add(&mut lake, "a", table(0..40));
        let _b = add(&mut lake, "b", table(5..25));
        let report = R2d2Pipeline::with_defaults().run(&lake).unwrap();
        let mut incremental = report.after_clp.clone();

        let c = add(&mut lake, "c", table(10..20));
        dataset_added(&lake, &mut incremental, c, &config(), &Meter::new()).unwrap();

        let full = R2d2Pipeline::with_defaults().run(&lake).unwrap().after_clp;
        let mut inc_edges = incremental.edges();
        let mut full_edges = full.edges();
        inc_edges.sort_unstable();
        full_edges.sort_unstable();
        assert_eq!(inc_edges, full_edges);
    }
}
