//! CLP — Content-Level Pruning (Algorithm 3 of the paper).
//!
//! For every surviving edge `parent → child`, CLP samples up to `t` rows of
//! the child — either uniformly at random or via a `WHERE` filter built from
//! up to `s` of the common columns — and left-anti joins the sample against
//! the parent on the child's full column set. If any sampled row is absent
//! from the parent, containment cannot hold and the edge is pruned. Because
//! sampling uses predicate queries, a partitioned / indexed lake only needs
//! to touch the partitions admitted by the filter, which is where the
//! order-of-magnitude savings of Table 3's CLP row come from.

use crate::config::{ClpSampling, PipelineConfig};
use r2d2_graph::ContainmentGraph;
use r2d2_lake::query::{left_anti_join, random_rows, scan, Predicate};
use r2d2_lake::{DataLake, DatasetId, Meter, Result, Table};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Statistics of one CLP run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClpStats {
    /// Edges examined.
    pub edges_examined: usize,
    /// Edges removed because a sampled child row was missing from the parent.
    pub edges_pruned: usize,
    /// Total child rows sampled across all edges.
    pub rows_sampled: usize,
}

/// Build the WHERE filter for an edge: pick up to `s` of the child's columns
/// (preferring id/timestamp-like columns, which enterprise tables are often
/// partitioned by), read one random child row and equate the chosen columns
/// to that row's values.
fn build_filter(
    child: &r2d2_lake::PartitionedTable,
    columns: &[String],
    s: usize,
    rng: &mut SmallRng,
    meter: &Meter,
) -> Result<Option<Predicate>> {
    if child.num_rows() == 0 || columns.is_empty() || s == 0 {
        return Ok(None);
    }
    // Prefer columns that look like good sampling keys.
    let mut cols: Vec<&String> = columns.iter().collect();
    cols.shuffle(rng);
    cols.sort_by_key(|c| {
        let lower = c.to_lowercase();
        if lower.contains("id") || lower.contains("time") || lower.contains("date") {
            0
        } else {
            1
        }
    });
    let chosen: Vec<&String> = cols.into_iter().take(s).collect();

    // Seed row: one random row of the child (a point read).
    let seed = random_rows(child, 1, rng, meter)?;
    if seed.is_empty() {
        return Ok(None);
    }
    let mut clauses = Vec::with_capacity(chosen.len());
    for col in chosen {
        let idx = match seed.schema().index_of(col) {
            Some(i) => i,
            None => continue,
        };
        let value = seed.row(0).expect("one row").values()[idx].clone();
        if value.is_null() {
            continue;
        }
        clauses.push(Predicate::eq(col.clone(), value));
    }
    if clauses.is_empty() {
        Ok(None)
    } else {
        Ok(Some(Predicate::and(clauses)))
    }
}

/// Sample up to `t` child rows according to the configured strategy.
fn sample_child(
    child: &r2d2_lake::PartitionedTable,
    common: &[String],
    config: &PipelineConfig,
    rng: &mut SmallRng,
    meter: &Meter,
) -> Result<(Table, Option<Predicate>)> {
    match config.clp_sampling {
        ClpSampling::RandomRows => {
            Ok((random_rows(child, config.clp_rows, rng, meter)?, None))
        }
        ClpSampling::PredicateFilter | ClpSampling::BothSides => {
            match build_filter(child, common, config.clp_columns, rng, meter)? {
                Some(filter) => {
                    let rows = scan(child, &filter, Some(config.clp_rows), meter)?;
                    if rows.is_empty() {
                        // Degenerate filter (e.g. all chosen values NULL in
                        // other rows): fall back to uniform sampling so the
                        // edge still gets checked.
                        Ok((random_rows(child, config.clp_rows, rng, meter)?, None))
                    } else {
                        Ok((rows, Some(filter)))
                    }
                }
                None => Ok((random_rows(child, config.clp_rows, rng, meter)?, None)),
            }
        }
    }
}

/// Run Content-Level Pruning over `graph`, mutating it in place.
pub fn content_level_prune(
    lake: &DataLake,
    graph: &mut ContainmentGraph,
    config: &PipelineConfig,
    meter: &Meter,
) -> Result<ClpStats> {
    let mut rng = SmallRng::seed_from_u64(config.seed ^ 0xC1B0_5EED);
    let mut stats = ClpStats::default();

    for (parent_id, child_id) in graph.edges() {
        stats.edges_examined += 1;
        let parent = lake.dataset(DatasetId(parent_id))?;
        let child = lake.dataset(DatasetId(child_id))?;

        let child_schema = child.data.schema();
        let parent_set = parent.data.schema().schema_set();
        let common: Vec<String> = child_schema.schema_set().intersection(&parent_set);
        if common.len() < child_schema.len() {
            // The child has columns the parent lacks: containment (over the
            // child's schema) is impossible. SGB normally prevents this, but
            // dynamic updates can surface it.
            graph.remove_edge(parent_id, child_id);
            stats.edges_pruned += 1;
            continue;
        }
        let join_cols: Vec<&str> = common.iter().map(String::as_str).collect();

        let mut pruned = false;
        for _round in 0..config.clp_rounds.max(1) {
            let (sample, filter) =
                sample_child(&child.data, &common, config, &mut rng, meter)?;
            stats.rows_sampled += sample.num_rows();
            if sample.is_empty() {
                continue;
            }
            let missing = match (config.clp_sampling, &filter) {
                (ClpSampling::BothSides, Some(f)) => {
                    // Restrict the parent to the same filter before probing;
                    // under true containment sA ⊆ sB must hold.
                    let parent_filtered = scan(&parent.data, f, None, meter)?;
                    let parent_part =
                        r2d2_lake::PartitionedTable::single(parent_filtered);
                    left_anti_join(&sample, &parent_part, &join_cols, meter)?
                }
                _ => left_anti_join(&sample, &parent.data, &join_cols, meter)?,
            };
            if !missing.is_empty() {
                graph.remove_edge(parent_id, child_id);
                stats.edges_pruned += 1;
                pruned = true;
                break;
            }
        }
        let _ = pruned;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_lake::{
        AccessProfile, Column, DataType, PartitionSpec, PartitionedTable, Schema, Table,
    };

    fn base_table(n: i64) -> Table {
        let schema = Schema::flat(&[
            ("user_id", DataType::Int),
            ("event", DataType::Utf8),
            ("value", DataType::Float),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Column::from_ints(0..n),
                Column::from_strs((0..n).map(|i| format!("e{}", i % 5))),
                Column::from_floats((0..n).map(|i| i as f64 * 0.25)),
            ],
        )
        .unwrap()
    }

    fn add(lake: &mut DataLake, name: &str, t: Table) -> u64 {
        lake.add_dataset(
            name,
            PartitionedTable::from_table(
                t,
                PartitionSpec::ByRowCount {
                    rows_per_partition: 16,
                },
            )
            .unwrap(),
            AccessProfile::default(),
            None,
        )
        .unwrap()
        .0
    }

    fn config() -> PipelineConfig {
        PipelineConfig::default().with_seed(17)
    }

    #[test]
    fn keeps_true_containment_edges() {
        let mut lake = DataLake::new();
        let parent_t = base_table(100);
        let child_t = parent_t.take(&(10..40).collect::<Vec<_>>()).unwrap();
        let p = add(&mut lake, "p", parent_t);
        let c = add(&mut lake, "c", child_t);
        let mut g = ContainmentGraph::new();
        g.add_edge(p, c);
        let stats = content_level_prune(&lake, &mut g, &config(), &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 0);
        assert!(g.has_edge(p, c));
    }

    #[test]
    fn prunes_disjoint_tables() {
        let mut lake = DataLake::new();
        let p = add(&mut lake, "p", base_table(50));
        // Child rows use ids 1000.. which never appear in the parent.
        let schema = base_table(1).schema().clone();
        let child_t = Table::new(
            schema,
            vec![
                Column::from_ints(1000..1020),
                Column::from_strs((0..20).map(|i| format!("e{}", i % 5))),
                Column::from_floats((0..20).map(|i| i as f64)),
            ],
        )
        .unwrap();
        let c = add(&mut lake, "c", child_t);
        let mut g = ContainmentGraph::new();
        g.add_edge(p, c);
        let stats = content_level_prune(&lake, &mut g, &config(), &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 1);
        assert!(!g.has_edge(p, c));
    }

    #[test]
    fn random_rows_strategy_also_works() {
        let mut lake = DataLake::new();
        let parent_t = base_table(60);
        let child_ok = parent_t.take(&(0..30).collect::<Vec<_>>()).unwrap();
        let p = add(&mut lake, "p", parent_t);
        let c = add(&mut lake, "c", child_ok);
        let mut g = ContainmentGraph::new();
        g.add_edge(p, c);
        let cfg = config().with_sampling(ClpSampling::RandomRows);
        let stats = content_level_prune(&lake, &mut g, &cfg, &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 0);
        assert!(stats.rows_sampled > 0);
    }

    #[test]
    fn both_sides_strategy_keeps_true_edges() {
        let mut lake = DataLake::new();
        let parent_t = base_table(80);
        let child_t = parent_t.take(&(0..40).collect::<Vec<_>>()).unwrap();
        let p = add(&mut lake, "p", parent_t);
        let c = add(&mut lake, "c", child_t);
        let mut g = ContainmentGraph::new();
        g.add_edge(p, c);
        let cfg = config().with_sampling(ClpSampling::BothSides);
        let stats = content_level_prune(&lake, &mut g, &cfg, &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 0);
        assert!(g.has_edge(p, c));
    }

    #[test]
    fn detects_modified_rows_with_enough_rounds() {
        // Child = parent rows but with the float column perturbed: no child
        // row exists verbatim in the parent, so any sample disproves
        // containment regardless of the filter drawn.
        let mut lake = DataLake::new();
        let parent_t = base_table(50);
        let schema = parent_t.schema().clone();
        let child_t = Table::new(
            schema,
            vec![
                Column::from_ints(0..50),
                Column::from_strs((0..50).map(|i| format!("e{}", i % 5))),
                Column::from_floats((0..50).map(|i| i as f64 * 0.25 + 1000.0)),
            ],
        )
        .unwrap();
        let p = add(&mut lake, "p", parent_t);
        let c = add(&mut lake, "c", child_t);
        let mut g = ContainmentGraph::new();
        g.add_edge(p, c);
        let stats = content_level_prune(&lake, &mut g, &config(), &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 1);
    }

    #[test]
    fn child_with_extra_columns_is_pruned() {
        let mut lake = DataLake::new();
        let p = add(&mut lake, "p", base_table(20));
        let child_t = base_table(10)
            .with_column(
                r2d2_lake::Field::new("extra", DataType::Int),
                Column::from_ints(0..10),
            )
            .unwrap();
        let c = add(&mut lake, "c", child_t);
        let mut g = ContainmentGraph::new();
        g.add_edge(p, c);
        let stats = content_level_prune(&lake, &mut g, &config(), &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 1);
    }

    #[test]
    fn empty_child_never_pruned() {
        let mut lake = DataLake::new();
        let p = add(&mut lake, "p", base_table(10));
        let c = add(&mut lake, "c", base_table(0));
        let mut g = ContainmentGraph::new();
        g.add_edge(p, c);
        let stats = content_level_prune(&lake, &mut g, &config(), &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 0);
        assert!(g.has_edge(p, c));
    }

    #[test]
    fn sorted_copy_is_recognised_as_contained() {
        // Row order does not matter for containment (§2's point against
        // block-level dedup).
        let mut lake = DataLake::new();
        let parent_t = base_table(40);
        let sorted_child = parent_t.sort_by("value").unwrap();
        let p = add(&mut lake, "p", parent_t);
        let c = add(&mut lake, "c", sorted_child);
        let mut g = ContainmentGraph::new();
        g.add_edge(p, c);
        g.add_edge(c, p);
        let stats = content_level_prune(&lake, &mut g, &config(), &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 0);
        assert!(g.has_edge(p, c) && g.has_edge(c, p));
    }

    #[test]
    fn duplicate_rows_in_child_do_not_prune_when_parent_has_them() {
        let mut lake = DataLake::new();
        let parent_t = base_table(20).concat(&base_table(20)).unwrap(); // every row twice
        let child_t = base_table(20);
        let p = add(&mut lake, "p", parent_t);
        let c = add(&mut lake, "c", child_t);
        let mut g = ContainmentGraph::new();
        g.add_edge(p, c);
        let stats = content_level_prune(&lake, &mut g, &config(), &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 0);
    }

    #[test]
    fn missing_dataset_is_error() {
        let lake = DataLake::new();
        let mut g = ContainmentGraph::new();
        g.add_edge(0, 1);
        assert!(content_level_prune(&lake, &mut g, &config(), &Meter::new()).is_err());
    }
}
