//! CLP — Content-Level Pruning (Algorithm 3 of the paper).
//!
//! For every surviving edge `parent → child`, CLP samples up to `t` rows of
//! the child — either uniformly at random or via a `WHERE` filter built from
//! up to `s` of the common columns — and left-anti joins the sample against
//! the parent on the child's full column set. If any sampled row is absent
//! from the parent, containment cannot hold and the edge is pruned. Because
//! sampling uses predicate queries, a partitioned / indexed lake only needs
//! to touch the partitions admitted by the filter, which is where the
//! order-of-magnitude savings of Table 3's CLP row come from.
//!
//! With [`PipelineConfig::clp_bloom_gate`] set (the default), every sampled
//! value is probed against the parent's per-column bloom sketches *before*
//! the parent's hash multiset is built: a sketch miss proves the sampled
//! row is absent from the parent (sketches have no false negatives), so the
//! edge is pruned without scanning or hashing a single parent row. Sketch
//! hits — including false positives — fall through to the exact anti-join,
//! which is why the final graph is bit-identical with the gate on or off:
//! the gate prunes exactly when the exact check on the same sample would
//! have pruned.

use crate::config::{ClpSampling, PipelineConfig};
use r2d2_graph::ContainmentGraph;
use r2d2_lake::query::{left_anti_join, left_anti_join_cached, random_rows, scan, Predicate};
use r2d2_lake::row::hash_single;
use r2d2_lake::{DataLake, DatasetId, HashJoinCache, Meter, PartitionedTable, Result, Table};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Statistics of one CLP run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClpStats {
    /// Edges examined.
    pub edges_examined: usize,
    /// Edges removed because a sampled child row was missing from the parent.
    pub edges_pruned: usize,
    /// Edges removed by the bloom-sketch gate (a subset of `edges_pruned`):
    /// a sampled value was provably absent from the parent, so the edge was
    /// dropped before the parent's hash multiset was built or probed.
    pub edges_pruned_by_sketch: usize,
    /// Total child rows sampled across all edges.
    pub rows_sampled: usize,
}

/// Build the WHERE filter for an edge: pick up to `s` of the child's columns
/// (preferring id/timestamp-like columns, which enterprise tables are often
/// partitioned by), read one random child row and equate the chosen columns
/// to that row's values.
fn build_filter(
    child: &r2d2_lake::PartitionedTable,
    columns: &[String],
    s: usize,
    rng: &mut SmallRng,
    meter: &Meter,
) -> Result<Option<Predicate>> {
    if child.num_rows() == 0 || columns.is_empty() || s == 0 {
        return Ok(None);
    }
    // Prefer columns that look like good sampling keys.
    let mut cols: Vec<&String> = columns.iter().collect();
    cols.shuffle(rng);
    cols.sort_by_key(|c| {
        let lower = c.to_lowercase();
        if lower.contains("id") || lower.contains("time") || lower.contains("date") {
            0
        } else {
            1
        }
    });
    let chosen: Vec<&String> = cols.into_iter().take(s).collect();

    // Seed row: one random row of the child (a point read).
    let seed = random_rows(child, 1, rng, meter)?;
    if seed.is_empty() {
        return Ok(None);
    }
    let mut clauses = Vec::with_capacity(chosen.len());
    for col in chosen {
        let idx = match seed.schema().index_of(col) {
            Some(i) => i,
            None => continue,
        };
        let value = seed.row(0).expect("one row").values()[idx].clone();
        if value.is_null() {
            continue;
        }
        clauses.push(Predicate::eq(col.clone(), value));
    }
    if clauses.is_empty() {
        Ok(None)
    } else {
        Ok(Some(Predicate::and(clauses)))
    }
}

/// Sample up to `t` child rows according to the configured strategy.
fn sample_child(
    child: &r2d2_lake::PartitionedTable,
    common: &[String],
    config: &PipelineConfig,
    rng: &mut SmallRng,
    meter: &Meter,
) -> Result<(Table, Option<Predicate>)> {
    match config.clp_sampling {
        ClpSampling::RandomRows => Ok((random_rows(child, config.clp_rows, rng, meter)?, None)),
        ClpSampling::PredicateFilter | ClpSampling::BothSides => {
            match build_filter(child, common, config.clp_columns, rng, meter)? {
                Some(filter) => {
                    let rows = scan(child, &filter, Some(config.clp_rows), meter)?;
                    if rows.is_empty() {
                        // Degenerate filter (e.g. all chosen values NULL in
                        // other rows): fall back to uniform sampling so the
                        // edge still gets checked.
                        Ok((random_rows(child, config.clp_rows, rng, meter)?, None))
                    } else {
                        Ok((rows, Some(filter)))
                    }
                }
                None => Ok((random_rows(child, config.clp_rows, rng, meter)?, None)),
            }
        }
    }
}

/// Mix an edge's endpoints into the pipeline seed (SplitMix64 finaliser), so
/// every edge gets an independent, schedule-free RNG stream. This is what
/// makes CLP embarrassingly parallel *and* deterministic: with a single
/// shared RNG the draws an edge sees would depend on how many draws earlier
/// edges consumed (and, under threads, on scheduling order).
fn edge_seed(seed: u64, parent_id: u64, child_id: u64) -> u64 {
    let mut z = (seed ^ 0xC1B0_5EED)
        .wrapping_add(parent_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(child_id.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Outcome of checking one edge, merged deterministically afterwards.
struct EdgeOutcome {
    prune: bool,
    sketch_pruned: bool,
    rows_sampled: usize,
}

/// Probe every non-null sampled value against the parent's per-column bloom
/// sketches. Returns `true` when some value is provably absent from the
/// parent — the sampled row containing it cannot exist in the parent, so
/// containment is disproved without touching parent rows. Columns are
/// visited in the (deterministic) `common` order, values in row order, so
/// the probe count is identical at any thread count.
fn sketch_disproves(
    parent: &PartitionedTable,
    sample: &Table,
    common: &[String],
    meter: &Meter,
) -> bool {
    for col in common {
        let Some(sketch) = parent.column_sketch(col) else {
            continue;
        };
        let Ok(column) = sample.column(col) else {
            continue;
        };
        for value in column.values() {
            if value.is_null() {
                continue;
            }
            meter.add_sketch_probes(1);
            if matches!(value, r2d2_lake::Value::Str(_)) {
                meter.add_string_hash_ops(1);
                meter.add_string_cells_hashed(1);
            }
            if !sketch.contains(hash_single(value)) {
                meter.add_sketch_prunes(1);
                return true;
            }
        }
    }
    false
}

/// Check a single `parent → child` edge by sampling and anti-joining.
fn check_edge(
    lake: &DataLake,
    parent_id: u64,
    child_id: u64,
    config: &PipelineConfig,
    cache: &HashJoinCache,
    meter: &Meter,
) -> Result<EdgeOutcome> {
    let parent = lake.dataset(DatasetId(parent_id))?;
    let child = lake.dataset(DatasetId(child_id))?;

    let child_schema = child.data.schema();
    let parent_set = parent.data.schema().schema_set();
    let common: Vec<String> = child_schema.schema_set().intersection(&parent_set);
    if common.len() < child_schema.len() {
        // The child has columns the parent lacks: containment (over the
        // child's schema) is impossible. SGB normally prevents this, but
        // dynamic updates can surface it.
        return Ok(EdgeOutcome {
            prune: true,
            sketch_pruned: false,
            rows_sampled: 0,
        });
    }
    let join_cols: Vec<&str> = common.iter().map(String::as_str).collect();

    let mut rng = SmallRng::seed_from_u64(edge_seed(config.seed, parent_id, child_id));
    let mut rows_sampled = 0usize;
    for _round in 0..config.clp_rounds.max(1) {
        let (sample, filter) = sample_child(&child.data, &common, config, &mut rng, meter)?;
        rows_sampled += sample.num_rows();
        if sample.is_empty() {
            continue;
        }
        // Bloom gate: a sampled value absent from the parent's sketch
        // proves the sampled row absent from the parent — prune before
        // building or probing the (expensive) parent hash multiset. The
        // exact check below would prune on the same sample, so the final
        // graph is identical with the gate on or off.
        if config.clp_bloom_gate && sketch_disproves(&parent.data, &sample, &common, meter) {
            return Ok(EdgeOutcome {
                prune: true,
                sketch_pruned: true,
                rows_sampled,
            });
        }
        let missing = match (config.clp_sampling, &filter) {
            (ClpSampling::BothSides, Some(f)) => {
                // Restrict the parent to the same filter before probing;
                // under true containment sA ⊆ sB must hold. The filtered
                // parent is filter-specific, so it bypasses the cache.
                let parent_filtered = scan(&parent.data, f, None, meter)?;
                let parent_part = r2d2_lake::PartitionedTable::single(parent_filtered);
                left_anti_join(&sample, &parent_part, &join_cols, meter)?
            }
            // Unfiltered probes share the parent's hash multiset across all
            // edges (and rounds) with the same parent and column set.
            _ => left_anti_join_cached(
                &sample,
                parent_id,
                parent.generation,
                &parent.data,
                &join_cols,
                meter,
                cache,
            )?,
        };
        if !missing.is_empty() {
            return Ok(EdgeOutcome {
                prune: true,
                sketch_pruned: false,
                rows_sampled,
            });
        }
    }
    Ok(EdgeOutcome {
        prune: false,
        sketch_pruned: false,
        rows_sampled,
    })
}

/// Whether the single edge `parent → child` survives Content-Level Pruning,
/// together with the number of child rows sampled. This is the per-edge
/// primitive behind [`content_level_prune`], shared with the session's
/// dynamic-update verification path: the caller's `HashJoinCache` serves the
/// parent's hash multiset, so repeated verifications against one parent
/// build it once instead of once per candidate edge.
pub(crate) fn edge_passes(
    lake: &DataLake,
    parent_id: u64,
    child_id: u64,
    config: &PipelineConfig,
    cache: &HashJoinCache,
    meter: &Meter,
) -> Result<(bool, usize)> {
    let outcome = check_edge(lake, parent_id, child_id, config, cache, meter)?;
    Ok((!outcome.prune, outcome.rows_sampled))
}

/// Run Content-Level Pruning over `graph`, mutating it in place, on up to
/// `config.threads` workers (`1` = inline sequential, `0` = all hardware
/// threads).
///
/// Each edge draws from its own RNG stream seeded by
/// `(config.seed, parent, child)` and only reads the immutable lake (plus a
/// shared build-side hash cache that computes each parent multiset exactly
/// once), so edges fan out freely; prune decisions are applied in edge
/// order afterwards. The resulting graph, stats and meter totals are
/// identical for every thread count.
pub fn content_level_prune(
    lake: &DataLake,
    graph: &mut ContainmentGraph,
    config: &PipelineConfig,
    meter: &Meter,
) -> Result<ClpStats> {
    let edges = graph.edges();
    let cache = HashJoinCache::new();
    // The edge list is grouped by parent. When running inline (one worker)
    // edges are processed in exactly that order, so a finished parent's
    // multisets can be evicted as soon as the sweep moves past it — keeping
    // peak cache memory at one parent's worth, like the seed. With several
    // workers, parents interleave and eviction could force re-builds (which
    // would also skew meter totals versus a sequential run), so the cache is
    // instead left bounded by the edge list's distinct (parent, column-set)
    // keys for the duration of the stage.
    let sequential = rayon::resolve_threads(config.threads) <= 1;
    let previous_parent = std::sync::Mutex::new(None::<u64>);
    let outcomes: Vec<EdgeOutcome> =
        crate::fanout::try_parallel_map(config.threads, &edges, |&(parent_id, child_id)| {
            if sequential {
                let mut previous = previous_parent.lock().expect("eviction lock poisoned");
                match *previous {
                    Some(prev) if prev != parent_id => cache.evict_dataset(prev),
                    _ => {}
                }
                *previous = Some(parent_id);
            }
            check_edge(lake, parent_id, child_id, config, &cache, meter)
        })?;

    let mut stats = ClpStats::default();
    for (&(parent_id, child_id), outcome) in edges.iter().zip(outcomes) {
        stats.edges_examined += 1;
        stats.rows_sampled += outcome.rows_sampled;
        stats.edges_pruned_by_sketch += outcome.sketch_pruned as usize;
        if outcome.prune {
            graph.remove_edge(parent_id, child_id);
            stats.edges_pruned += 1;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_lake::{
        AccessProfile, Column, DataType, PartitionSpec, PartitionedTable, Schema, Table,
    };

    fn base_table(n: i64) -> Table {
        let schema = Schema::flat(&[
            ("user_id", DataType::Int),
            ("event", DataType::Utf8),
            ("value", DataType::Float),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Column::from_ints(0..n),
                Column::from_strs((0..n).map(|i| format!("e{}", i % 5))),
                Column::from_floats((0..n).map(|i| i as f64 * 0.25)),
            ],
        )
        .unwrap()
    }

    fn add(lake: &mut DataLake, name: &str, t: Table) -> u64 {
        lake.add_dataset(
            name,
            PartitionedTable::from_table(
                t,
                PartitionSpec::ByRowCount {
                    rows_per_partition: 16,
                },
            )
            .unwrap(),
            AccessProfile::default(),
            None,
        )
        .unwrap()
        .0
    }

    fn config() -> PipelineConfig {
        PipelineConfig::default().with_seed(17)
    }

    #[test]
    fn keeps_true_containment_edges() {
        let mut lake = DataLake::new();
        let parent_t = base_table(100);
        let child_t = parent_t.take(&(10..40).collect::<Vec<_>>()).unwrap();
        let p = add(&mut lake, "p", parent_t);
        let c = add(&mut lake, "c", child_t);
        let mut g = ContainmentGraph::new();
        g.add_edge(p, c);
        let stats = content_level_prune(&lake, &mut g, &config(), &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 0);
        assert!(g.has_edge(p, c));
    }

    #[test]
    fn prunes_disjoint_tables() {
        let mut lake = DataLake::new();
        let p = add(&mut lake, "p", base_table(50));
        // Child rows use ids 1000.. which never appear in the parent.
        let schema = base_table(1).schema().clone();
        let child_t = Table::new(
            schema,
            vec![
                Column::from_ints(1000..1020),
                Column::from_strs((0..20).map(|i| format!("e{}", i % 5))),
                Column::from_floats((0..20).map(|i| i as f64)),
            ],
        )
        .unwrap();
        let c = add(&mut lake, "c", child_t);
        let mut g = ContainmentGraph::new();
        g.add_edge(p, c);
        let stats = content_level_prune(&lake, &mut g, &config(), &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 1);
        assert!(!g.has_edge(p, c));
    }

    #[test]
    fn random_rows_strategy_also_works() {
        let mut lake = DataLake::new();
        let parent_t = base_table(60);
        let child_ok = parent_t.take(&(0..30).collect::<Vec<_>>()).unwrap();
        let p = add(&mut lake, "p", parent_t);
        let c = add(&mut lake, "c", child_ok);
        let mut g = ContainmentGraph::new();
        g.add_edge(p, c);
        let cfg = config().with_sampling(ClpSampling::RandomRows);
        let stats = content_level_prune(&lake, &mut g, &cfg, &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 0);
        assert!(stats.rows_sampled > 0);
    }

    #[test]
    fn both_sides_strategy_keeps_true_edges() {
        let mut lake = DataLake::new();
        let parent_t = base_table(80);
        let child_t = parent_t.take(&(0..40).collect::<Vec<_>>()).unwrap();
        let p = add(&mut lake, "p", parent_t);
        let c = add(&mut lake, "c", child_t);
        let mut g = ContainmentGraph::new();
        g.add_edge(p, c);
        let cfg = config().with_sampling(ClpSampling::BothSides);
        let stats = content_level_prune(&lake, &mut g, &cfg, &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 0);
        assert!(g.has_edge(p, c));
    }

    #[test]
    fn detects_modified_rows_with_enough_rounds() {
        // Child = parent rows but with the float column perturbed: no child
        // row exists verbatim in the parent, so any sample disproves
        // containment regardless of the filter drawn.
        let mut lake = DataLake::new();
        let parent_t = base_table(50);
        let schema = parent_t.schema().clone();
        let child_t = Table::new(
            schema,
            vec![
                Column::from_ints(0..50),
                Column::from_strs((0..50).map(|i| format!("e{}", i % 5))),
                Column::from_floats((0..50).map(|i| i as f64 * 0.25 + 1000.0)),
            ],
        )
        .unwrap();
        let p = add(&mut lake, "p", parent_t);
        let c = add(&mut lake, "c", child_t);
        let mut g = ContainmentGraph::new();
        g.add_edge(p, c);
        let stats = content_level_prune(&lake, &mut g, &config(), &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 1);
    }

    #[test]
    fn child_with_extra_columns_is_pruned() {
        let mut lake = DataLake::new();
        let p = add(&mut lake, "p", base_table(20));
        let child_t = base_table(10)
            .with_column(
                r2d2_lake::Field::new("extra", DataType::Int),
                Column::from_ints(0..10),
            )
            .unwrap();
        let c = add(&mut lake, "c", child_t);
        let mut g = ContainmentGraph::new();
        g.add_edge(p, c);
        let stats = content_level_prune(&lake, &mut g, &config(), &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 1);
    }

    #[test]
    fn empty_child_never_pruned() {
        let mut lake = DataLake::new();
        let p = add(&mut lake, "p", base_table(10));
        let c = add(&mut lake, "c", base_table(0));
        let mut g = ContainmentGraph::new();
        g.add_edge(p, c);
        let stats = content_level_prune(&lake, &mut g, &config(), &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 0);
        assert!(g.has_edge(p, c));
    }

    #[test]
    fn sorted_copy_is_recognised_as_contained() {
        // Row order does not matter for containment (§2's point against
        // block-level dedup).
        let mut lake = DataLake::new();
        let parent_t = base_table(40);
        let sorted_child = parent_t.sort_by("value").unwrap();
        let p = add(&mut lake, "p", parent_t);
        let c = add(&mut lake, "c", sorted_child);
        let mut g = ContainmentGraph::new();
        g.add_edge(p, c);
        g.add_edge(c, p);
        let stats = content_level_prune(&lake, &mut g, &config(), &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 0);
        assert!(g.has_edge(p, c) && g.has_edge(c, p));
    }

    #[test]
    fn duplicate_rows_in_child_do_not_prune_when_parent_has_them() {
        let mut lake = DataLake::new();
        let parent_t = base_table(20).concat(&base_table(20)).unwrap(); // every row twice
        let child_t = base_table(20);
        let p = add(&mut lake, "p", parent_t);
        let c = add(&mut lake, "c", child_t);
        let mut g = ContainmentGraph::new();
        g.add_edge(p, c);
        let stats = content_level_prune(&lake, &mut g, &config(), &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 0);
    }

    #[test]
    fn threaded_clp_matches_sequential() {
        // A mix of true, false and extra-column edges across shared parents,
        // under every sampling strategy.
        for sampling in [
            ClpSampling::PredicateFilter,
            ClpSampling::RandomRows,
            ClpSampling::BothSides,
        ] {
            let mut lake = DataLake::new();
            let parent_t = base_table(100);
            let p = add(&mut lake, "p", parent_t.clone());
            let c_ok = add(
                &mut lake,
                "c_ok",
                parent_t.take(&(5..45).collect::<Vec<_>>()).unwrap(),
            );
            let c_ok2 = add(
                &mut lake,
                "c_ok2",
                parent_t.take(&(50..90).collect::<Vec<_>>()).unwrap(),
            );
            let schema = parent_t.schema().clone();
            let c_bad = add(
                &mut lake,
                "c_bad",
                Table::new(
                    schema,
                    vec![
                        Column::from_ints(5000..5030),
                        Column::from_strs((0..30).map(|i| format!("e{}", i % 5))),
                        Column::from_floats((0..30).map(|i| i as f64)),
                    ],
                )
                .unwrap(),
            );
            let build = || {
                let mut g = ContainmentGraph::new();
                g.add_edge(p, c_ok);
                g.add_edge(p, c_ok2);
                g.add_edge(p, c_bad);
                g
            };

            let seq_meter = Meter::new();
            let mut seq_graph = build();
            let seq_cfg = config().with_sampling(sampling).with_threads(1);
            let seq = content_level_prune(&lake, &mut seq_graph, &seq_cfg, &seq_meter).unwrap();

            let par_meter = Meter::new();
            let mut par_graph = build();
            let par_cfg = config().with_sampling(sampling).with_threads(4);
            let par = content_level_prune(&lake, &mut par_graph, &par_cfg, &par_meter).unwrap();

            assert_eq!(seq_graph, par_graph, "{sampling:?}: graphs must match");
            assert_eq!(seq, par, "{sampling:?}: stats must match");
            assert_eq!(
                seq_meter.snapshot(),
                par_meter.snapshot(),
                "{sampling:?}: meter totals must match"
            );
            assert!(!par_graph.has_edge(p, c_bad));
            assert!(par_graph.has_edge(p, c_ok));
        }
    }

    #[test]
    fn bloom_gate_prunes_disjoint_edge_without_touching_parent_rows() {
        let mut lake = DataLake::new();
        let p = add(&mut lake, "p", base_table(50));
        let schema = base_table(1).schema().clone();
        let child_t = Table::new(
            schema,
            vec![
                Column::from_ints(9000..9020),
                Column::from_strs((0..20).map(|i| format!("zz{i}"))),
                Column::from_floats((0..20).map(|i| i as f64 + 0.125)),
            ],
        )
        .unwrap();
        let c = add(&mut lake, "c", child_t);
        let mut g = ContainmentGraph::new();
        g.add_edge(p, c);
        let meter = Meter::new();
        let stats = content_level_prune(&lake, &mut g, &config(), &meter).unwrap();
        assert_eq!(stats.edges_pruned, 1);
        assert_eq!(
            stats.edges_pruned_by_sketch, 1,
            "gate fires before the join"
        );
        let snap = meter.snapshot();
        assert!(snap.sketch_probes > 0);
        assert_eq!(snap.sketch_prunes, 1);
        assert_eq!(
            snap.rows_hashed, 0,
            "no parent multiset was built: the edge died at the sketch"
        );
    }

    #[test]
    fn gated_and_ungated_produce_identical_graphs_and_samples() {
        for sampling in [
            ClpSampling::PredicateFilter,
            ClpSampling::RandomRows,
            ClpSampling::BothSides,
        ] {
            let mut lake = DataLake::new();
            let parent_t = base_table(80);
            let p = add(&mut lake, "p", parent_t.clone());
            let c_ok = add(
                &mut lake,
                "c_ok",
                parent_t.take(&(5..45).collect::<Vec<_>>()).unwrap(),
            );
            let schema = parent_t.schema().clone();
            let c_bad = add(
                &mut lake,
                "c_bad",
                Table::new(
                    schema,
                    vec![
                        Column::from_ints(7000..7030),
                        Column::from_strs((0..30).map(|i| format!("e{}", i % 5))),
                        Column::from_floats((0..30).map(|i| i as f64)),
                    ],
                )
                .unwrap(),
            );
            let build = || {
                let mut g = ContainmentGraph::new();
                g.add_edge(p, c_ok);
                g.add_edge(p, c_bad);
                g
            };
            let mut gated_graph = build();
            let gated_cfg = config().with_sampling(sampling);
            let gated =
                content_level_prune(&lake, &mut gated_graph, &gated_cfg, &Meter::new()).unwrap();

            let mut ungated_graph = build();
            let ungated_cfg = config().with_sampling(sampling).with_clp_bloom_gate(false);
            let ungated =
                content_level_prune(&lake, &mut ungated_graph, &ungated_cfg, &Meter::new())
                    .unwrap();

            assert_eq!(
                gated_graph, ungated_graph,
                "{sampling:?}: bloom gating must be graph-invisible"
            );
            assert_eq!(gated.edges_pruned, ungated.edges_pruned);
            assert_eq!(
                gated.rows_sampled, ungated.rows_sampled,
                "{sampling:?}: identical RNG streams draw identical samples"
            );
            assert_eq!(ungated.edges_pruned_by_sketch, 0);
        }
    }

    #[test]
    fn edge_seed_streams_are_independent() {
        let a = edge_seed(1, 10, 20);
        let b = edge_seed(1, 10, 21);
        let c = edge_seed(1, 11, 20);
        let d = edge_seed(2, 10, 20);
        assert!(a != b && a != c && a != d && b != c);
        assert_eq!(a, edge_seed(1, 10, 20), "seed derivation is pure");
    }

    #[test]
    fn missing_dataset_is_error() {
        let lake = DataLake::new();
        let mut g = ContainmentGraph::new();
        g.add_edge(0, 1);
        assert!(content_level_prune(&lake, &mut g, &config(), &Meter::new()).is_err());
    }
}
