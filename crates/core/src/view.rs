//! [`SessionView`] — the immutable, share-safe read side of a session.
//!
//! [`crate::session::R2d2Session`] is a mutable engine: `apply_batch`
//! rewrites the catalog, the graph, the caches and the meter in place, so
//! every read through `&R2d2Session` contends with the writer for the whole
//! session. A [`SessionView`] is the split the serve layer needs: a
//! self-contained snapshot of everything a reader may observe — catalog,
//! containment graph, advisor solution, meter totals — captured at one
//! commit point by [`crate::session::R2d2Session::view`] and then never
//! mutated again.
//!
//! The capture is cheap where it matters: the catalog view shares every
//! dataset's `Arc`'d table (no row is copied; later session mutations
//! install fresh `Arc`s and leave the view untouched), the graph and advisor
//! solution are cloned once and wrapped in `Arc`s so views can be
//! re-published across epochs, and the meter is a plain [`OpCounts`] value.
//! Queries through the view still tally into the lake's **shared**
//! [`r2d2_lake::AccessLog`] — reader traffic keeps feeding the Eq. 3 access
//! profiles — but their scans land on the view's own detached meter, so the
//! writer's op counts stay a deterministic function of the applied update
//! stream (`tests/integration_serve.rs` pins that with the serve layer's
//! snapshot-isolation oracle).

use r2d2_graph::ContainmentGraph;
use r2d2_lake::{DataLake, DatasetId, OpCounts, Predicate, Result, Table};
use r2d2_opt::Solution;
use std::sync::Arc;

/// An immutable point-in-time view of a session: the read-only half of the
/// [`crate::session::R2d2Session`] split. `Send + Sync` and cheap to share;
/// see the [module docs](self) for what is shared vs copied.
#[derive(Debug, Clone)]
pub struct SessionView {
    lake: DataLake,
    graph: Arc<ContainmentGraph>,
    advice: Option<Arc<Solution>>,
    ops: OpCounts,
    updates_applied: usize,
    batches_applied: usize,
}

impl SessionView {
    pub(crate) fn new(
        lake: DataLake,
        graph: Arc<ContainmentGraph>,
        advice: Option<Arc<Solution>>,
        ops: OpCounts,
        updates_applied: usize,
        batches_applied: usize,
    ) -> Self {
        SessionView {
            lake,
            graph,
            advice,
            ops,
            updates_applied,
            batches_applied,
        }
    }

    /// The catalog as of the capture point (a
    /// [`reader view`](DataLake::reader_view): shared tables and access log,
    /// detached meter).
    pub fn lake(&self) -> &DataLake {
        &self.lake
    }

    /// The containment graph as of the capture point.
    pub fn graph(&self) -> &ContainmentGraph {
        &self.graph
    }

    /// The graph's shared handle (for re-publishing without another clone).
    pub fn graph_arc(&self) -> Arc<ContainmentGraph> {
        Arc::clone(&self.graph)
    }

    /// The storage advisor's Opt-Ret solution as of the capture point
    /// (`None` when the session had no advisor attached).
    pub fn advice(&self) -> Option<&Solution> {
        self.advice.as_deref()
    }

    /// The session's cumulative meter totals as of the capture point. This
    /// is writer-side work only — reader queries meter into
    /// [`SessionView::read_ops`] instead.
    pub fn ops(&self) -> OpCounts {
        self.ops
    }

    /// Work metered by queries served *through this view* since its capture
    /// (the view's detached read-side meter).
    pub fn read_ops(&self) -> OpCounts {
        self.lake.meter().snapshot()
    }

    /// Updates applied to the session when the view was captured.
    pub fn updates_applied(&self) -> usize {
        self.updates_applied
    }

    /// Successful batches applied when the view was captured.
    pub fn batches_applied(&self) -> usize {
        self.batches_applied
    }

    /// Datasets in the captured catalog.
    pub fn datasets(&self) -> usize {
        self.lake.len()
    }

    /// Edges in the captured containment graph.
    pub fn edges(&self) -> usize {
        self.graph.edge_count()
    }

    /// Serve a customer query against the captured catalog: scans the
    /// dataset's immutable snapshot, meters into the view's detached meter
    /// and tallies the access on the shared access log (see
    /// [`DataLake::query_dataset`]).
    pub fn query_dataset(
        &self,
        id: DatasetId,
        predicate: &Predicate,
        limit: Option<usize>,
    ) -> Result<Table> {
        self.lake.query_dataset(id, predicate, limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn _assert_send_sync<T: Send + Sync>() {}

    #[test]
    fn view_is_send_and_sync() {
        _assert_send_sync::<SessionView>();
    }
}
