//! [`R2d2Session`] — a long-lived incremental containment service.
//!
//! The batch API ([`crate::pipeline::R2d2Pipeline`]) answers "what does the
//! lake contain *right now*"; a production deployment instead keeps one
//! session alive and feeds it a stream of typed [`LakeUpdate`] events as the
//! lake changes. The session owns the [`DataLake`], the live
//! [`ContainmentGraph`], a [`SchemaInterner`] with every dataset's interned
//! schema set, a long-lived build-side [`HashJoinCache`], and the cumulative
//! [`Meter`] — the shared state the old free-function dynamic API
//! (`dataset_added` / `dataset_grew` / `dataset_shrank` / `dataset_deleted`)
//! forced every caller to wire together and silently failed to share.
//!
//! * [`R2d2Session::bootstrap`] runs the SGB → MMP → CLP batch pipeline once
//!   and keeps its [`PipelineReport`].
//! * [`R2d2Session::apply`] / [`R2d2Session::apply_batch`] execute updates
//!   against the catalog, coalesce them into one re-verification sweep per
//!   affected dataset (N appends to one table are verified once), and fan
//!   the candidate checks out over `config.threads` workers.
//! * [`R2d2Session::graph`] / [`R2d2Session::report`] snapshot the current
//!   state; [`R2d2Session::update_log`] is the session's update-event log.
//! * [`R2d2Session::enable_advisor`] attaches a **live storage advisor**: an
//!   incremental Opt-Ret (Eq. 3) state kept in sync with every applied
//!   batch. [`R2d2Session::advise`] / [`R2d2Session::advisor_report`] return
//!   the current deletion recommendation and its savings, re-solving only
//!   the components the updates dirtied;
//!   [`R2d2Session::refresh_access_profiles`] folds metered query traffic
//!   back into the cost model's access estimates.
//!
//! **Equivalence guarantee.** After any sequence of updates the session
//! graph has exactly the edges a fresh `R2d2Pipeline::run` over the mutated
//! lake would produce, and — like the batch pipeline — graph, reports and
//! meter totals are bit-for-bit identical for every `config.threads` value
//! (`tests/integration_dynamic.rs` pins both properties with a randomized
//! oracle). Dropped datasets keep an isolated node in the session graph so
//! node ids stay stable for downstream consumers.

use crate::config::PipelineConfig;
use crate::dynamic::{self, Effect};
use crate::persist::{
    self, Failpoints, Persistence, PersistenceConfig, SessionSnapshot, WalRecord,
};
use crate::pipeline::{PipelineReport, R2d2Pipeline};
use crate::view::SessionView;
use bytes::Buf;
use r2d2_graph::diff::EdgeDelta;
use r2d2_graph::ContainmentGraph;
use r2d2_lake::wal::{self, WalStats, WalWriter};
use r2d2_lake::{
    AppliedUpdate, DataLake, DatasetId, HashJoinCache, InternedSchemaSet, LakeError, LakeUpdate,
    Meter, OpCounts, Result, SchemaInterner, Table,
};
use r2d2_opt::advisor::{AdvisorConfig, AdvisorReport, AdvisorState, DatasetChange};
use r2d2_opt::{CostModel, Solution};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;
use std::time::{Duration, Instant};

/// What one [`R2d2Session::apply_batch`] (or [`R2d2Session::apply`]) did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateReport {
    /// Updates executed against the catalog in this batch.
    pub updates_applied: usize,
    /// What each executed mutation did, in execution order (merged append
    /// runs appear once, with their total row count). `AddDataset` callers
    /// read their assigned id from the [`AppliedUpdate::Added`] entry.
    pub applied: Vec<AppliedUpdate>,
    /// Distinct datasets whose content (or existence) changed.
    pub datasets_changed: usize,
    /// Candidate pairs re-verified (schema → MMP → CLP cascade).
    pub candidates_checked: usize,
    /// Child rows sampled by the CLP checks of this sweep.
    pub rows_sampled: usize,
    /// Edges added / removed by this batch.
    pub delta: EdgeDelta,
    /// Metered work attributable to this batch (mutation rebuilds plus the
    /// verification sweep).
    pub ops: OpCounts,
    /// Wall-clock duration of the batch.
    pub duration: Duration,
}

/// Point-in-time summary of a session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionReport {
    /// Datasets currently in the lake.
    pub datasets: usize,
    /// Edges currently in the containment graph.
    pub edges: usize,
    /// Total updates executed since bootstrap.
    pub updates_applied: usize,
    /// Batches executed since bootstrap (entries in the update log).
    pub batches_applied: usize,
    /// Wall-clock duration of the bootstrap pipeline run.
    pub bootstrap_duration: Duration,
    /// Cumulative meter totals since bootstrap began.
    pub ops: OpCounts,
}

/// One executed commit of an [`R2d2Session::apply_group`] call: the exact
/// update concatenation that ran as a single `apply_batch`-equivalent
/// execution (and, with persistence enabled, as a single write-ahead record
/// and fsync).
#[derive(Debug, Clone)]
pub struct GroupCommit {
    /// The concatenated updates this commit executed — replaying these
    /// through [`R2d2Session::apply_batch`] reproduces the commit exactly,
    /// including a mid-commit mutation failure.
    pub updates: Vec<LakeUpdate>,
    /// What the execution did (the applied prefix, when `error` is set).
    pub report: UpdateReport,
    /// The mutation error that cut the commit short, if any (rendered — the
    /// typed error goes to the failing batch's slot in
    /// [`GroupOutcome::results`]).
    pub error: Option<String>,
}

/// What one [`R2d2Session::apply_group`] call did with its queued batches.
#[derive(Debug)]
pub struct GroupOutcome {
    /// Executed commits, in order. Fewer commits than input batches is the
    /// point: a fully successful group is **one** commit.
    pub commits: Vec<GroupCommit>,
    /// Per input batch, in input order: `Ok(i)` — every update of that batch
    /// was applied by `commits[i]`; `Err(e)` — the batch failed (its updates
    /// at and after the failure point are not applied).
    pub results: Vec<std::result::Result<usize, LakeError>>,
    /// A durability error *after* all commits succeeded (auto-checkpoint
    /// rotation): the commits stand and every submitter already has its
    /// result, but the session could not rotate its snapshot generation.
    pub persist_error: Option<LakeError>,
}

impl GroupOutcome {
    /// Updates applied across all commits of the group.
    pub fn updates_applied(&self) -> usize {
        self.commits.iter().map(|c| c.report.updates_applied).sum()
    }
}

/// A long-lived containment-detection service over one data lake.
#[derive(Debug)]
pub struct R2d2Session {
    lake: DataLake,
    graph: ContainmentGraph,
    interner: SchemaInterner,
    schemas: BTreeMap<u64, InternedSchemaSet>,
    cache: HashJoinCache,
    meter: Meter,
    config: PipelineConfig,
    bootstrap: PipelineReport,
    updates_applied: usize,
    log: Vec<UpdateReport>,
    advisor: Option<AdvisorState>,
    persist: Option<Persistence>,
    /// Durability counters of WAL generations already rotated away (the live
    /// generation's counters live in `persist`; see
    /// [`R2d2Session::wal_stats`]).
    wal_retired: WalStats,
    /// Injectable crash points consulted by every persistence write site
    /// ([`Failpoints::none`] outside the fault-injection tests).
    failpoints: Failpoints,
}

impl R2d2Session {
    /// Take ownership of `lake`, run the batch SGB → MMP → CLP pipeline once
    /// and start serving incremental updates from its final graph.
    pub fn bootstrap(lake: DataLake, config: PipelineConfig) -> Result<Self> {
        let meter = lake.meter().clone();
        let bootstrap = R2d2Pipeline::new(config.clone()).run(&lake)?;
        let graph = bootstrap.after_clp.clone();
        let mut interner = SchemaInterner::new();
        let schemas = lake
            .iter()
            .map(|e| (e.id.0, interner.intern_set(&e.data.schema().schema_set())))
            .collect();
        Ok(R2d2Session {
            lake,
            graph,
            interner,
            schemas,
            cache: HashJoinCache::new(),
            meter,
            config,
            bootstrap,
            updates_applied: 0,
            log: Vec::new(),
            advisor: None,
            persist: None,
            wal_retired: WalStats::default(),
            failpoints: Failpoints::none(),
        })
    }

    /// Bootstrap with the paper's default configuration.
    pub fn with_defaults(lake: DataLake) -> Result<Self> {
        Self::bootstrap(lake, PipelineConfig::default())
    }

    /// Execute one update and re-verify the affected pairs.
    pub fn apply(&mut self, update: LakeUpdate) -> Result<UpdateReport> {
        self.apply_batch(std::slice::from_ref(&update))
    }

    /// Execute a batch of updates, coalescing per-dataset work: adjacent
    /// appends to one table merge into a single catalog rebuild, the whole
    /// batch triggers one re-verification sweep (N appends to one table
    /// re-verify that table's pairs once), and a dataset dropped at the end
    /// of the batch is never verified at all.
    ///
    /// Error semantics: if a *mutation* fails mid-batch (unknown dataset,
    /// schema mismatch, …), the updates before it stay applied; the session
    /// still runs the verification sweep for them — so the graph remains
    /// consistent with the lake — and then returns the error. If the
    /// *verification sweep itself* fails (a lake read error, which cannot
    /// arise from session-managed state), the mutations stand but the graph
    /// is left at its pre-batch state; re-bootstrap via
    /// [`R2d2Session::into_parts`] in that case. Failed batches are not
    /// recorded in the update log.
    ///
    /// With [`R2d2Session::enable_persistence`] attached, the whole batch is
    /// appended to the write-ahead log (and fsynced) *before* any mutation
    /// runs, so a crash at any point replays to exactly this batch's
    /// outcome; reaching the configured `snapshot_every_n_updates` threshold
    /// afterwards rotates to a fresh snapshot generation.
    pub fn apply_batch(&mut self, updates: &[LakeUpdate]) -> Result<UpdateReport> {
        self.apply_batch_inner(updates, true)
    }

    /// The batch engine behind [`R2d2Session::apply_batch`]. `durable = false`
    /// is the WAL-replay path: identical execution, but no write-ahead
    /// record (the batch came *from* the log) and no auto-checkpoint.
    fn apply_batch_inner(&mut self, updates: &[LakeUpdate], durable: bool) -> Result<UpdateReport> {
        if durable {
            if let Some(p) = &mut self.persist {
                // Write-ahead: the record is durable before the first
                // mutation, so the log can only over-describe (a batch that
                // never ran re-runs on replay), never lose applied work.
                p.append(
                    &WalRecord::Batch(updates.to_vec()).encode(),
                    &self.failpoints,
                )?;
            }
        }
        let (first_err, report) = self.apply_batch_core(updates)?;
        match first_err {
            Some(e) => Err(e),
            None => {
                self.log.push(report.clone());
                if durable {
                    self.maybe_auto_checkpoint()?;
                }
                Ok(report)
            }
        }
    }

    /// Execute one batch against the catalog and graph — phases 1–5 of the
    /// batch engine, shared by [`R2d2Session::apply_batch`] and
    /// [`R2d2Session::apply_group`]. Performs **no** durability work (no WAL
    /// record, no update-log entry, no checkpoint); callers own those.
    ///
    /// The outer `Result` is the sweep/advisor path: `Err` means the
    /// mutations stand but the graph is at its pre-batch state (re-bootstrap
    /// territory). On `Ok`, the inner `Option<LakeError>` is a mid-batch
    /// *mutation* failure: exactly the updates before it are applied and the
    /// graph has been re-verified over that applied prefix.
    fn apply_batch_core(
        &mut self,
        updates: &[LakeUpdate],
    ) -> Result<(Option<LakeError>, UpdateReport)> {
        let start = Instant::now();
        let ops_before = self.meter.snapshot();

        // Phase 1: execute the catalog mutations — merging each adjacent
        // run of appends to one dataset into a single rebuild — and
        // coalesce content effects.
        let mut effects: BTreeMap<u64, Effect> = BTreeMap::new();
        let mut applied = Vec::new();
        let mut applied_count = 0usize;
        let mut first_err = None;
        for (op, merged) in Self::coalesce_appends(updates) {
            match self.lake.apply_update(&op) {
                Ok(done) => {
                    applied_count += merged;
                    applied.push(done);
                    if done.is_noop() {
                        continue;
                    }
                    let effect = match done {
                        AppliedUpdate::Added { .. } => Effect::ADDED,
                        AppliedUpdate::Appended { .. } => Effect::GREW,
                        AppliedUpdate::Deleted { .. } => Effect::SHRANK,
                        AppliedUpdate::Dropped { .. } => Effect::DROPPED,
                    };
                    effects.entry(done.dataset().0).or_default().merge(effect);
                }
                Err(e) => {
                    first_err = Some(e);
                    break;
                }
            }
        }

        // Phase 2: refresh per-dataset derived state for everything that
        // changed. Build-side hash multisets need no per-mutation eviction —
        // the cache is keyed by `(dataset, generation)` and every mutation
        // bumps the catalog generation, so stale entries simply stop being
        // addressable. Pruning them (and entries of dropped datasets) is a
        // single sweep against the catalog's live generation set.
        for (&d, &e) in &effects {
            if e.dropped {
                self.schemas.remove(&d);
            } else if let Ok(entry) = self.lake.dataset(DatasetId(d)) {
                self.schemas.insert(
                    d,
                    self.interner.intern_set(&entry.data.schema().schema_set()),
                );
            }
        }
        if !effects.is_empty() {
            let live: std::collections::HashSet<(u64, u64)> = self
                .lake
                .iter()
                .map(|entry| (entry.id.0, entry.generation))
                .collect();
            self.cache.retain_generations(&live);
        }

        // Phase 3: plan and run one verification sweep. The plan reads the
        // pre-batch edges (the grown/shrunk exceptions key off them) and
        // excludes dropped datasets, so it does not need the node changes
        // below — which keeps the graph untouched if verification errors.
        let pairs = dynamic::plan_pairs(&self.lake, &self.graph, &effects);
        let outcomes = dynamic::verify_pairs(
            &self.lake,
            &pairs,
            &self.schemas,
            &self.config,
            &self.cache,
            &self.meter,
        )?;

        // Phase 4: commit node changes and pair outcomes in order,
        // accumulating the edge delta as it happens.
        let mut added: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut removed: BTreeSet<(u64, u64)> = BTreeSet::new();
        for (&d, &e) in &effects {
            if e.dropped {
                for parent in self.graph.parents(d) {
                    removed.insert((parent, d));
                }
                for child in self.graph.children(d) {
                    removed.insert((d, child));
                }
                self.graph.clear_dataset(d);
            } else {
                self.graph.add_dataset(d);
            }
        }
        let mut rows_sampled = 0usize;
        for (&(parent, child), outcome) in pairs.iter().zip(&outcomes) {
            rows_sampled += outcome.rows_sampled;
            if outcome.pass {
                if self.graph.add_edge(parent, child) {
                    added.insert((parent, child));
                }
            } else if self.graph.remove_edge(parent, child).is_some() {
                removed.insert((parent, child));
            }
        }

        // Phase 5: keep the storage advisor's pruned problem in sync with
        // what this batch did (it re-solves the dirtied components lazily,
        // on the next `advise`). Runs even when a mutation failed mid-batch:
        // the applied prefix is live and verified, so the advisor must see
        // it.
        let delta = EdgeDelta {
            added: added.into_iter().collect(),
            removed: removed.into_iter().collect(),
        };
        if let Some(advisor) = &mut self.advisor {
            let changes: Vec<(u64, DatasetChange)> = effects
                .iter()
                .map(|(&d, &e)| {
                    let change = if e.dropped {
                        DatasetChange::Dropped
                    } else if e.added {
                        DatasetChange::Added
                    } else {
                        DatasetChange::ContentChanged
                    };
                    (d, change)
                })
                .collect();
            advisor.apply(&self.lake, &self.graph, &changes, &delta)?;
        }

        self.updates_applied += applied_count;
        let report = UpdateReport {
            updates_applied: applied_count,
            applied,
            datasets_changed: effects.len(),
            candidates_checked: pairs.len(),
            rows_sampled,
            delta,
            ops: self.meter.snapshot().since(&ops_before),
            duration: start.elapsed(),
        };
        if let Some(p) = &mut self.persist {
            // The applied prefix is live even when a later mutation failed,
            // so it counts toward the compaction threshold either way.
            p.updates_since_snapshot += report.updates_applied;
        }
        Ok((first_err, report))
    }

    /// Group commit: execute a queue of independent batches as few
    /// `apply_batch`-equivalent commits as possible. The whole group is
    /// concatenated into **one** execution — one write-ahead record, one
    /// fsync, one verification sweep — and each submitter still gets its own
    /// per-batch result.
    ///
    /// Failure isolation: when a mutation fails mid-group, the commit's
    /// applied prefix stands (verified, exactly like a mid-batch failure of
    /// [`R2d2Session::apply_batch`]), the batches fully inside that prefix
    /// report success, the batch containing the failing update gets the
    /// error, and the *tail* batches are retried as a fresh commit — one bad
    /// batch never poisons the batches queued behind it. WAL fidelity holds
    /// because each executed concatenation is logged as a single `Batch`
    /// record: replay re-runs the same concatenations and fails at the same
    /// update again.
    ///
    /// A *sweep* failure (a lake read error inside verification — cannot
    /// arise from session-managed state) aborts the group: the current
    /// commit's mutations stand but the graph is at its pre-commit state, so
    /// all not-yet-committed batches fail and the session should be
    /// re-bootstrapped, exactly as documented on [`R2d2Session::apply_batch`].
    /// A WAL append failure likewise fails the remaining batches without
    /// executing them.
    pub fn apply_group(&mut self, batches: &[Vec<LakeUpdate>]) -> GroupOutcome {
        let mut outcome = GroupOutcome {
            commits: Vec::new(),
            results: Vec::with_capacity(batches.len()),
            persist_error: None,
        };
        let mut start = 0;
        while start < batches.len() {
            let group = &batches[start..];
            let concat: Vec<LakeUpdate> = group.iter().flatten().cloned().collect();
            if let Some(p) = &mut self.persist {
                if let Err(e) =
                    p.append(&WalRecord::Batch(concat.clone()).encode(), &self.failpoints)
                {
                    // Nothing of this group executed; every remaining batch
                    // reports the append failure (the typed error goes to
                    // the first, the rest get a rendered copy — LakeError
                    // holds io::Error and is not Clone).
                    let rendered = Self::derived_group_error(&e);
                    outcome.results.push(Err(e));
                    for _ in start + 1..batches.len() {
                        outcome.results.push(Err(rendered()));
                    }
                    return outcome;
                }
            }
            let applied_before = self.updates_applied;
            match self.apply_batch_core(&concat) {
                Err(e) => {
                    // Sweep/advisor failure: graph at pre-commit state,
                    // session inconsistent. Fail everything still queued.
                    let rendered = Self::derived_group_error(&e);
                    outcome.results.push(Err(e));
                    for _ in start + 1..batches.len() {
                        outcome.results.push(Err(rendered()));
                    }
                    return outcome;
                }
                Ok((None, report)) => {
                    // The whole remaining group committed as one execution.
                    self.log.push(report.clone());
                    outcome.commits.push(GroupCommit {
                        updates: concat,
                        report,
                        error: None,
                    });
                    let commit = outcome.commits.len() - 1;
                    for _ in start..batches.len() {
                        outcome.results.push(Ok(commit));
                    }
                    break;
                }
                Ok((Some(e), report)) => {
                    // Mid-commit mutation failure. The failing source update
                    // is at concat index `applied` (0-based): attribute it to
                    // the batch whose cumulative length first exceeds it.
                    let applied = self.updates_applied - applied_before;
                    let mut cumulative = 0usize;
                    let mut failing = group.len() - 1;
                    for (i, batch) in group.iter().enumerate() {
                        cumulative += batch.len();
                        if applied < cumulative {
                            failing = i;
                            break;
                        }
                    }
                    outcome.commits.push(GroupCommit {
                        updates: concat,
                        report,
                        error: Some(e.to_string()),
                    });
                    let commit = outcome.commits.len() - 1;
                    for _ in 0..failing {
                        outcome.results.push(Ok(commit));
                    }
                    outcome.results.push(Err(e));
                    // Batches behind the failure retry as a fresh commit.
                    start += failing + 1;
                }
            }
        }
        // One rotation check per group, after every submitter has its
        // result: a checkpoint failure must not fail committed batches.
        if let Err(e) = self.maybe_auto_checkpoint() {
            outcome.persist_error = Some(e);
        }
        outcome
    }

    /// A factory of rendered copies of `e` for the group members that share
    /// a failure ([`LakeError`] is not `Clone` — it can hold an `io::Error`).
    fn derived_group_error(e: &LakeError) -> impl Fn() -> LakeError {
        let msg = format!("failed alongside a grouped batch: {e}");
        move || LakeError::InvalidArgument(msg.clone())
    }

    /// Capture an immutable [`SessionView`] of the session as of now: shared
    /// `Arc`'d tables and access log, a detached read-side meter, the graph,
    /// the advisor's current advice (re-solving dirty components if one is
    /// attached) and the writer meter totals. The serve layer publishes one
    /// of these per commit epoch.
    pub fn view(&mut self) -> SessionView {
        let advice = self
            .advisor
            .as_mut()
            .map(|a| std::sync::Arc::new(a.advise().clone()));
        SessionView::new(
            self.lake.reader_view(),
            std::sync::Arc::new(self.graph.clone()),
            advice,
            self.meter.snapshot(),
            self.updates_applied,
            self.log.len(),
        )
    }

    /// Durability-cost counters since persistence was enabled — write-ahead
    /// records appended, fsyncs issued, segment files created and segment
    /// files compacted away, summed across WAL generation rotations. `None`
    /// when persistence is not enabled. `fsyncs / records` ≈ 1 under
    /// per-batch commits; group commit drives records (and hence fsyncs)
    /// *below* the number of submitted batches.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.persist
            .as_ref()
            .map(|p| self.wal_retired.plus(&p.wal_stats()))
    }

    /// Rotate to a fresh snapshot generation when the compaction threshold
    /// has been reached.
    fn maybe_auto_checkpoint(&mut self) -> Result<()> {
        let due = self.persist.as_ref().is_some_and(|p| {
            p.config.snapshot_every_n_updates > 0
                && p.updates_since_snapshot >= p.config.snapshot_every_n_updates
        });
        if due {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Merge each *adjacent* run of `AppendRows` to one dataset into a
    /// single update (one pre-sized concat, one catalog rebuild). Returns
    /// `(update, how many source updates it stands for)`.
    ///
    /// Only adjacent appends merge: a merged run then always corresponds to
    /// a contiguous prefix-respecting slice of `updates`, so the mid-batch
    /// error guarantee ("exactly the updates before the failure are
    /// applied") survives coalescing. Runs whose row schemas disagree are
    /// left unmerged so the catalog reports the mismatch against the exact
    /// offending update.
    fn coalesce_appends(updates: &[LakeUpdate]) -> Vec<(LakeUpdate, usize)> {
        let mut ops: Vec<(LakeUpdate, usize)> = Vec::with_capacity(updates.len());
        let mut i = 0;
        while i < updates.len() {
            let LakeUpdate::AppendRows { id, rows } = &updates[i] else {
                ops.push((updates[i].clone(), 1));
                i += 1;
                continue;
            };
            let mut chunks = vec![rows];
            let mut j = i + 1;
            while j < updates.len() {
                match &updates[j] {
                    LakeUpdate::AppendRows { id: next, rows: r } if next == id => {
                        chunks.push(r);
                        j += 1;
                    }
                    _ => break,
                }
            }
            if j == i + 1 {
                ops.push((updates[i].clone(), 1));
            } else {
                match Table::concat_many(rows.schema().clone(), chunks) {
                    Ok(merged) => ops.push((
                        LakeUpdate::AppendRows {
                            id: *id,
                            rows: merged,
                        },
                        j - i,
                    )),
                    // Mixed schemas inside the run: execute unmerged so the
                    // error lands on the precise source update.
                    Err(_) => {
                        for update in &updates[i..j] {
                            ops.push((update.clone(), 1));
                        }
                    }
                }
            }
            i = j;
        }
        ops
    }

    /// The lake as of the last applied update.
    pub fn lake(&self) -> &DataLake {
        &self.lake
    }

    /// The live containment graph.
    pub fn graph(&self) -> &ContainmentGraph {
        &self.graph
    }

    /// The session's pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The report of the bootstrap batch run (per-stage timings, op counts
    /// and intermediate graphs).
    pub fn bootstrap_report(&self) -> &PipelineReport {
        &self.bootstrap
    }

    /// Every successful batch since bootstrap, in order — the session's
    /// update-event log.
    pub fn update_log(&self) -> &[UpdateReport] {
        &self.log
    }

    /// Cumulative meter totals since bootstrap began.
    pub fn ops(&self) -> OpCounts {
        self.meter.snapshot()
    }

    /// Number of `(dataset, column set)` build-side hash multisets currently
    /// cached for re-use across updates.
    pub fn cached_build_sides(&self) -> usize {
        self.cache.len()
    }

    /// Attach a live storage advisor: an incremental Opt-Ret (Eq. 3) state
    /// built from the current lake and graph and kept in sync with every
    /// subsequent [`R2d2Session::apply`] / [`R2d2Session::apply_batch`].
    ///
    /// After any update sequence, [`R2d2Session::advise`] returns exactly
    /// the solution a from-scratch §5.1 preprocess + solve over the mutated
    /// lake would produce ([`r2d2_opt::advisor::from_scratch`]), but only
    /// re-solves the weakly-connected components the updates dirtied.
    /// Replaces any previously attached advisor.
    ///
    /// With persistence enabled, attaching an advisor immediately writes a
    /// fresh snapshot generation (advisor attachment is a structural change
    /// the WAL's update vocabulary cannot express).
    pub fn enable_advisor(&mut self, model: CostModel, config: AdvisorConfig) -> Result<()> {
        self.advisor = Some(AdvisorState::build(&self.lake, &self.graph, model, config)?);
        if self.persist.is_some() {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Whether a storage advisor is attached.
    pub fn advisor_enabled(&self) -> bool {
        self.advisor.is_some()
    }

    /// Detach the storage advisor (updates stop paying the sync cost).
    ///
    /// Not write-ahead-logged: with persistence enabled the detachment is
    /// captured by the next [`R2d2Session::checkpoint`] (a restore from an
    /// older generation resurrects the advisor, which is harmless — its
    /// advice stays oracle-correct).
    pub fn disable_advisor(&mut self) {
        self.advisor = None;
    }

    /// The advisor's view of the current Opt-Ret instance (for inspection
    /// and oracle tests). Attaches a default advisor on first use, like
    /// [`R2d2Session::advise`].
    pub fn advisor_problem(&mut self) -> Result<r2d2_opt::OptRetProblem> {
        self.ensure_advisor()?;
        Ok(self.advisor.as_ref().expect("just ensured").problem())
    }

    /// Current Opt-Ret deletion recommendation over the live lake,
    /// re-solving only the components dirtied since the last call.
    ///
    /// Attaches an advisor with [`CostModel::default`] and
    /// [`AdvisorConfig::default`] on first use if none was enabled.
    pub fn advise(&mut self) -> Result<Solution> {
        self.ensure_advisor()?;
        Ok(self
            .advisor
            .as_mut()
            .expect("just ensured")
            .advise()
            .clone())
    }

    /// Re-solve statistics of the advisor's most recent
    /// [`R2d2Session::advise`] pass (`None` when no advisor is attached).
    pub fn advisor_stats(&self) -> Option<r2d2_opt::advisor::ResolveStats> {
        self.advisor.as_ref().map(|a| a.last_resolve_stats())
    }

    /// [`R2d2Session::advise`] plus Table-7-style counters and GDPR savings,
    /// and the re-solve statistics of the pass.
    pub fn advisor_report(&mut self) -> Result<AdvisorReport> {
        self.ensure_advisor()?;
        let advisor = self.advisor.as_mut().expect("just ensured");
        advisor.report(&self.lake)
    }

    /// Fold the metered query traffic since the last call into the catalog's
    /// access profiles: each dataset's drained
    /// [`access-log`](DataLake::access_log) tally becomes its
    /// `accesses_per_period` (the drain window is treated as one billing
    /// period, and a dataset that served no queries observed **0** — stale
    /// estimates cool down instead of persisting). Datasets whose profile
    /// moved are marked dirty on the advisor, so the next
    /// [`R2d2Session::advise`] re-solves exactly the components whose costs
    /// drifted. Returns how many profiles changed.
    pub fn refresh_access_profiles(&mut self) -> Result<usize> {
        let counts = self.lake.drain_access_counts();
        if let Some(p) = &mut self.persist {
            // The drained tallies — and the read-side metering accumulated
            // since the last sync point — are runtime traffic replay cannot
            // regenerate, so the record carries both verbatim.
            let record = WalRecord::AccessRefresh {
                counts: counts.clone(),
                meter: self.meter.snapshot(),
            };
            if let Err(e) = p.append(&record.encode(), &self.failpoints) {
                // Put the window back: the drained counts were neither
                // logged nor applied, so they must not be lost to a
                // transient append failure (merged — traffic may have
                // arrived since the drain).
                self.lake.access_log().merge(&counts);
                return Err(e);
            }
        }
        self.apply_access_counts(&counts)
    }

    /// Fold one drained access-tally window into the catalog profiles and
    /// the advisor — shared by [`R2d2Session::refresh_access_profiles`] and
    /// WAL replay.
    fn apply_access_counts(&mut self, counts: &BTreeMap<u64, u64>) -> Result<usize> {
        let mut changed = 0usize;
        // Every catalogued dataset is visited: one that served no queries
        // this window observed 0 accesses — a once-hot dataset must cool
        // down, not keep its stale estimate forever.
        for id in self.lake.ids() {
            let mut access = self.lake.dataset(id)?.access;
            let observed = counts.get(&id.0).copied().unwrap_or(0) as f64;
            if access.accesses_per_period != observed {
                access.accesses_per_period = observed;
                self.lake.set_access_profile(id, access)?;
                changed += 1;
                if let Some(advisor) = &mut self.advisor {
                    advisor.note_cost_drift(&self.lake, id.0)?;
                }
            }
        }
        Ok(changed)
    }

    fn ensure_advisor(&mut self) -> Result<()> {
        if self.advisor.is_none() {
            self.enable_advisor(CostModel::default(), AdvisorConfig::default())?;
        }
        Ok(())
    }

    /// Point-in-time summary of the session.
    pub fn report(&self) -> SessionReport {
        SessionReport {
            datasets: self.lake.len(),
            edges: self.graph.edge_count(),
            updates_applied: self.updates_applied,
            batches_applied: self.log.len(),
            bootstrap_duration: self.bootstrap.total_duration,
            ops: self.meter.snapshot(),
        }
    }

    /// Dissolve the session into its lake and graph.
    pub fn into_parts(self) -> (DataLake, ContainmentGraph) {
        (self.lake, self.graph)
    }

    // -------------------------------------------------------------------
    // Durability: snapshots, write-ahead log, warm restart
    // -------------------------------------------------------------------

    /// Make the session durable: write a snapshot generation into
    /// `config.dir` and start write-ahead logging every subsequent
    /// [`R2d2Session::apply_batch`] /
    /// [`R2d2Session::refresh_access_profiles`] before it mutates state.
    /// From here on, [`R2d2Session::restore`] on that directory rebuilds
    /// this session bit-identically after a crash or clean shutdown.
    ///
    /// If the directory already holds generations (e.g. from an earlier
    /// process), a fresh generation is started after the newest one; older
    /// generations beyond the previous are pruned.
    pub fn enable_persistence(&mut self, config: PersistenceConfig) -> Result<()> {
        std::fs::create_dir_all(&config.dir)?;
        let seq = persist::list_generations(&config.dir)?
            .last()
            .copied()
            .unwrap_or(0)
            + 1;
        self.write_generation(config, seq)
    }

    /// Whether the session is persisting itself.
    pub fn persistence_enabled(&self) -> bool {
        self.persist.is_some()
    }

    /// Install fault-injection crash points: every persistence write site
    /// (checkpoint encode, WAL segment creation, snapshot rename, segment
    /// rotation, generation pruning) consults the hook and injects an I/O
    /// error where it returns `true`, leaving the on-disk state exactly as a
    /// crash at that point would. Testing aid — production sessions keep the
    /// default [`Failpoints::none`].
    pub fn set_failpoints(&mut self, failpoints: Failpoints) {
        self.failpoints = failpoints;
    }

    /// Current snapshot generation number, when persistence is enabled.
    pub fn persistence_generation(&self) -> Option<u64> {
        self.persist.as_ref().map(|p| p.seq)
    }

    /// Updates write-ahead-logged since the current generation's snapshot
    /// (the WAL tail a restore would replay right now).
    pub fn wal_tail_updates(&self) -> Option<usize> {
        self.persist.as_ref().map(|p| p.updates_since_snapshot)
    }

    /// Write a fresh snapshot generation now and rotate the write-ahead log,
    /// returning the new generation number. Errors when persistence is not
    /// enabled. Generations older than the previous one are pruned.
    pub fn checkpoint(&mut self) -> Result<u64> {
        let (config, seq) = match &self.persist {
            Some(p) => (p.config.clone(), p.seq + 1),
            None => {
                return Err(r2d2_lake::LakeError::InvalidArgument(
                    "persistence is not enabled; call enable_persistence first".into(),
                ))
            }
        };
        self.write_generation(config, seq)?;
        Ok(seq)
    }

    /// Write generation `seq` (snapshot + empty WAL segment 0) and make it
    /// the live one. On success every generation no restore chain needs is
    /// pruned; on failure the previous persistence state stays attached.
    ///
    /// The generation is a **delta** — only the state dirtied since the
    /// previous generation, chained to it by sequence number and body
    /// checksum — when a live base capture exists and fewer than
    /// [`PersistenceConfig::rebase_every_k_deltas`] deltas have accumulated
    /// since the last full snapshot; otherwise it is a **full** rebase.
    ///
    /// Order matters: the WAL is created *before* the snapshot is renamed
    /// into place. The snapshot file is what makes a generation visible to
    /// [`R2d2Session::restore`], so a failure in between leaves only a
    /// stray empty WAL (invisible — restore walks snapshot files) and the
    /// session keeps appending to its old, fully consistent generation.
    /// Writing the snapshot first would open a window where a visible
    /// newer snapshot shadows records still being acknowledged into the
    /// old WAL.
    fn write_generation(&mut self, config: PersistenceConfig, seq: u64) -> Result<()> {
        // Delta only chains onto a generation this session is live on (and
        // in the same directory — `enable_persistence` on a fresh dir must
        // bottom the chain out with a full snapshot).
        let is_delta = self.persist.as_ref().is_some_and(|p| {
            config.rebase_every_k_deltas > 0
                && p.deltas_since_full < config.rebase_every_k_deltas
                && p.config.dir == config.dir
        });
        let site = if is_delta { "delta" } else { "rebase" };
        let parts = persist::SnapshotParts {
            config: &self.config,
            snapshot_every_n_updates: config.snapshot_every_n_updates,
            rebase_every_k_deltas: config.rebase_every_k_deltas,
            wal_segment_max_bytes: config.wal_segment_max_bytes,
            lake: &self.lake,
            graph: &self.graph,
            interner: &self.interner,
            cache: &self.cache,
            bootstrap: &self.bootstrap,
            updates_applied: self.updates_applied,
            log: &self.log,
            advisor: self.advisor.as_ref(),
        };
        let (kind, body) = if is_delta {
            let base = &self
                .persist
                .as_ref()
                .expect("delta requires a live base")
                .base;
            (
                persist::SnapshotKind::Delta {
                    base_seq: base.seq,
                    base_checksum: base.body_checksum,
                },
                persist::encode_delta_body(&parts, base),
            )
        } else {
            (
                persist::SnapshotKind::Full,
                persist::encode_snapshot_body(&parts),
            )
        };
        let body_checksum = wal::checksum(&body);
        let bytes = persist::frame_snapshot(kind, body);
        self.failpoints.hit(&format!("{site}:encoded"))?;
        let wal = WalWriter::create(&persist::wal_segment_path(&config.dir, seq, 0), seq, 0)?;
        self.failpoints.hit(&format!("{site}:wal-created"))?;
        persist::write_snapshot_file_with(
            &persist::snapshot_path(&config.dir, seq),
            &bytes,
            &self.failpoints,
            site,
        )?;
        self.failpoints.hit(&format!("{site}:renamed"))?;
        // The new generation is durable; everything below is bookkeeping on
        // the session and best-effort cleanup on disk.
        let base = persist::capture_base(seq, body_checksum, &parts);
        let deltas_since_full = if is_delta {
            self.persist.as_ref().map_or(0, |p| p.deltas_since_full) + 1
        } else {
            0
        };
        if let Some(old) = &self.persist {
            // Fold the rotated-away generation's durability counters into
            // the retired total so `wal_stats` spans rotations.
            self.wal_retired = self.wal_retired.plus(&old.wal_stats());
        }
        self.persist = Some(Persistence {
            config: config.clone(),
            seq,
            segment: 0,
            wal,
            retired_segments: WalStats::default(),
            updates_since_snapshot: 0,
            deltas_since_full,
            base,
        });
        // Pruning is best-effort: the new generation is already durable and
        // live, so a cleanup failure must not fail the checkpoint. Dropped
        // WAL segments count as compacted.
        if let Ok(compacted) = persist::prune_generations(&config.dir, seq, &self.failpoints) {
            self.wal_retired.segments_compacted += compacted;
        }
        Ok(())
    }

    /// Capture a self-contained point-in-time snapshot of the session (the
    /// same image a persistence generation writes, without touching disk or
    /// the WAL).
    pub fn snapshot(&self) -> SessionSnapshot {
        let (every, rebase, segment_bytes) = self
            .persist
            .as_ref()
            .map(|p| {
                (
                    p.config.snapshot_every_n_updates,
                    p.config.rebase_every_k_deltas,
                    p.config.wal_segment_max_bytes,
                )
            })
            .unwrap_or((
                persist::DEFAULT_SNAPSHOT_EVERY,
                persist::DEFAULT_REBASE_EVERY,
                0,
            ));
        self.snapshot_with_policy(every, rebase, segment_bytes)
    }

    /// A standalone snapshot is always a *full* image — deltas only exist as
    /// chain links inside a persistence directory.
    fn snapshot_with_policy(
        &self,
        snapshot_every_n_updates: usize,
        rebase_every_k_deltas: usize,
        wal_segment_max_bytes: u64,
    ) -> SessionSnapshot {
        SessionSnapshot {
            bytes: persist::encode_snapshot(&persist::SnapshotParts {
                config: &self.config,
                snapshot_every_n_updates,
                rebase_every_k_deltas,
                wal_segment_max_bytes,
                lake: &self.lake,
                graph: &self.graph,
                interner: &self.interner,
                cache: &self.cache,
                bootstrap: &self.bootstrap,
                updates_applied: self.updates_applied,
                log: &self.log,
                advisor: self.advisor.as_ref(),
            }),
        }
    }

    /// Warm restart: load the newest intact snapshot generation in `dir`,
    /// replay its write-ahead-log tail, and resume persisting into the same
    /// directory. The result is bit-identical — graph, meter totals, update
    /// log, caches, advisor — to the session that wrote the files, no
    /// matter where between snapshots it was killed
    /// (`tests/integration_persistence.rs` pins this with a randomized
    /// crash oracle).
    ///
    /// Corrupt state degrades gracefully: a torn or checksum-corrupt WAL
    /// tail is dropped at the first bad record (only unacknowledged work is
    /// lost, by the write-ahead contract), and a corrupt snapshot falls
    /// back to the previous generation — whose replay then continues
    /// through the newer generation's intact WAL, so acknowledged updates
    /// survive even the loss of the snapshot that followed them.
    pub fn restore(dir: impl AsRef<Path>) -> Result<R2d2Session> {
        let dir = dir.as_ref();
        let generations = persist::list_generations(dir)?;

        // 1. Newest intact *chain* wins as the replay base: a generation is
        //    usable only if its own file and every base link down to the
        //    chain's full snapshot decode and match the checksums their
        //    dependent deltas name. A broken link falls the walk back to the
        //    next older generation.
        let mut base = None;
        let mut last_err: Option<r2d2_lake::LakeError> = None;
        for &seq in generations.iter().rev() {
            match persist::decode_chain(dir, seq) {
                Ok((decoded, checksum)) => {
                    base = Some((seq, decoded, checksum));
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let Some((base_seq, decoded, base_checksum)) = base else {
            return Err(last_err.unwrap_or_else(|| {
                r2d2_lake::LakeError::InvalidArgument(format!(
                    "no snapshot generations found in {}",
                    dir.display()
                ))
            }));
        };
        let config = PersistenceConfig {
            dir: dir.to_path_buf(),
            snapshot_every_n_updates: decoded.snapshot_every_n_updates,
            rebase_every_k_deltas: decoded.rebase_every_k_deltas,
            wal_segment_max_bytes: decoded.wal_segment_max_bytes,
        };
        let mut session = R2d2Session::from_decoded(decoded);

        // Fingerprint the restored state *before* WAL replay: this is
        // exactly what generation `base_seq`'s snapshot describes, so the
        // resumed session can write its next checkpoint as a delta against
        // it.
        let resume_base = persist::capture_base(
            base_seq,
            base_checksum,
            &persist::SnapshotParts {
                config: &session.config,
                snapshot_every_n_updates: config.snapshot_every_n_updates,
                rebase_every_k_deltas: config.rebase_every_k_deltas,
                wal_segment_max_bytes: config.wal_segment_max_bytes,
                lake: &session.lake,
                graph: &session.graph,
                interner: &session.interner,
                cache: &session.cache,
                bootstrap: &session.bootstrap,
                updates_applied: session.updates_applied,
                log: &session.log,
                advisor: session.advisor.as_ref(),
            },
        );

        // 2. Replay WALs from the base generation forward. Generation N's
        //    WAL holds the updates applied after snapshot N, so when a
        //    newer snapshot was corrupt (base fell back), replaying the
        //    base WAL first reproduces exactly the state that newer
        //    snapshot captured — and the newer WAL then applies cleanly on
        //    top. Each batch re-executes through the exact apply path the
        //    live session used (same planner, caches and RNG streams), so
        //    mutations, metering and update-log entries come out identical
        //    — including batches that originally failed mid-way, which fail
        //    at the same update again.
        let updates_before = session.updates_applied;
        let fell_back = generations.iter().any(|&s| s > base_seq);
        let mut dropped_tail = false;
        'replay: for &seq in generations.iter().filter(|&&s| s >= base_seq) {
            // A generation's segments must run contiguously from 0 and each
            // header must name this generation and its own index: a gap, an
            // unreadable header or a mislabeled segment makes everything
            // behind it unknowable, like a torn tail.
            for (expect, (segment, path)) in persist::list_wal_segments(dir, seq)?
                .into_iter()
                .enumerate()
            {
                if segment as usize != expect {
                    dropped_tail = true;
                    break 'replay;
                }
                let contents = match wal::read_records(&path) {
                    Ok(contents) => contents,
                    Err(_) => {
                        dropped_tail = true;
                        break 'replay;
                    }
                };
                if contents.generation != seq || contents.segment != segment {
                    dropped_tail = true;
                    break 'replay;
                }
                dropped_tail |= contents.dropped_tail;
                for raw in contents.records {
                    let mut cursor = bytes::Bytes::from(raw);
                    let record = WalRecord::decode(&mut cursor)?;
                    if cursor.remaining() != 0 {
                        return Err(r2d2_lake::LakeError::Corrupt(
                            "trailing wal record bytes".into(),
                        ));
                    }
                    match record {
                        WalRecord::Batch(updates) => {
                            let _ = session.apply_batch_inner(&updates, false);
                        }
                        WalRecord::AccessRefresh { counts, meter } => {
                            session.apply_access_counts(&counts)?;
                            // Top the meter up to the recorded totals: replay
                            // reproduces all session-applied work, so any gap
                            // is exactly the read-side traffic served
                            // out-of-band before this sync point.
                            let gap = meter.since(&session.meter.snapshot());
                            session.meter.add_counts(&gap);
                        }
                    }
                }
                if dropped_tail {
                    break 'replay; // nothing behind a torn record can be trusted
                }
            }
        }
        let replayed = session.updates_applied - updates_before;

        // 3. Resume persisting. The clean common case appends to the live
        //    generation's newest WAL segment; any degradation (torn tail,
        //    snapshot fallback) rotates to a fresh generation — a full
        //    rebase, since no live base capture is attached yet — so the
        //    directory is coherent again.
        let live_seq = generations.last().copied().unwrap_or(base_seq);
        if dropped_tail || fell_back {
            session.write_generation(config, live_seq + 1)?;
        } else {
            let segments = persist::list_wal_segments(dir, live_seq)?;
            let (segment, wal) = match segments.last() {
                Some(&(segment, ref path)) => (
                    segment,
                    WalWriter::open_append(path, Some((live_seq, segment)))?,
                ),
                None => (
                    0,
                    WalWriter::create(&persist::wal_segment_path(dir, live_seq, 0), live_seq, 0)?,
                ),
            };
            // The resumed chain keeps its delta depth: rebase cadence
            // carries across restarts.
            let deltas_since_full =
                persist::chain_members(dir, live_seq).map_or(0, |chain| chain.len() - 1);
            session.persist = Some(Persistence {
                config,
                seq: live_seq,
                segment,
                wal,
                retired_segments: WalStats::default(),
                updates_since_snapshot: replayed,
                deltas_since_full,
                base: resume_base,
            });
            session.maybe_auto_checkpoint()?;
        }
        Ok(session)
    }

    /// Assemble a live session from a decoded snapshot. The per-dataset
    /// interned schema sets are rebuilt from the restored interner (every
    /// name is already interned, so symbol ids — and hence all downstream
    /// comparisons — come out identical to the captured session's).
    pub(crate) fn from_decoded(decoded: persist::DecodedSnapshot) -> R2d2Session {
        let persist::DecodedSnapshot {
            config,
            snapshot_every_n_updates: _,
            rebase_every_k_deltas: _,
            wal_segment_max_bytes: _,
            lake,
            graph,
            mut interner,
            cache,
            bootstrap,
            updates_applied,
            log,
            advisor,
        } = decoded;
        let schemas = lake
            .iter()
            .map(|e| (e.id.0, interner.intern_set(&e.data.schema().schema_set())))
            .collect();
        let meter = lake.meter().clone();
        R2d2Session {
            lake,
            graph,
            interner,
            schemas,
            cache,
            meter,
            config,
            bootstrap,
            updates_applied,
            log,
            advisor,
            persist: None,
            wal_retired: WalStats::default(),
            failpoints: Failpoints::none(),
        }
    }
}

impl SessionSnapshot {
    /// Rebuild a live session from this snapshot image alone (no WAL
    /// replay, no persistence attached — pair with
    /// [`R2d2Session::enable_persistence`] to resume durability).
    pub fn restore(&self) -> Result<R2d2Session> {
        let decoded = persist::decode_snapshot(&self.bytes)?;
        Ok(R2d2Session::from_decoded(decoded))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_lake::{
        AccessProfile, Column, DataType, PartitionSpec, PartitionedTable, Predicate, Schema, Table,
        Value,
    };

    fn table(ids: std::ops::Range<i64>) -> Table {
        // The float column is a function of the id so any id-range subset is
        // also a true row-tuple subset.
        let schema = Schema::flat(&[("id", DataType::Int), ("v", DataType::Float)]).unwrap();
        Table::new(
            schema,
            vec![
                Column::from_ints(ids.clone()),
                Column::from_floats(ids.map(|i| i as f64 * 0.5)),
            ],
        )
        .unwrap()
    }

    fn part(t: Table) -> PartitionedTable {
        PartitionedTable::from_table(
            t,
            PartitionSpec::ByRowCount {
                rows_per_partition: 16,
            },
        )
        .unwrap()
    }

    fn add_update(name: &str, t: Table) -> LakeUpdate {
        LakeUpdate::AddDataset {
            name: name.into(),
            data: part(t),
            access: AccessProfile::default(),
            lineage: None,
        }
    }

    fn session_with(datasets: &[(&str, Table)]) -> R2d2Session {
        let mut lake = DataLake::new();
        for (name, t) in datasets {
            lake.add_dataset(*name, part(t.clone()), AccessProfile::default(), None)
                .unwrap();
        }
        R2d2Session::bootstrap(lake, PipelineConfig::default().with_seed(3)).unwrap()
    }

    fn fresh_edges(session: &R2d2Session) -> Vec<(u64, u64)> {
        let mut edges = R2d2Pipeline::new(session.config().clone())
            .run(session.lake())
            .unwrap()
            .after_clp
            .edges();
        edges.sort_unstable();
        edges
    }

    fn session_edges(session: &R2d2Session) -> Vec<(u64, u64)> {
        let mut edges = session.graph().edges();
        edges.sort_unstable();
        edges
    }

    #[test]
    fn bootstrap_runs_the_batch_pipeline() {
        let session = session_with(&[("base", table(0..50)), ("sub", table(10..30))]);
        assert_eq!(session.bootstrap_report().stages.len(), 3);
        assert_eq!(session_edges(&session), fresh_edges(&session));
        assert_eq!(session.graph().edge_count(), 1);
        let report = session.report();
        assert_eq!(report.datasets, 2);
        assert_eq!(report.edges, 1);
        assert_eq!(report.updates_applied, 0);
        assert!(report.ops.row_level_ops() > 0);
    }

    #[test]
    fn adding_a_contained_dataset_creates_edges() {
        let mut session = session_with(&[("base", table(0..50))]);
        let before = session.graph().clone();
        let report = session.apply(add_update("sub", table(10..30))).unwrap();
        assert_eq!(report.updates_applied, 1);
        assert_eq!(report.datasets_changed, 1);
        assert_eq!(report.delta.added.len(), 1);
        assert!(report.candidates_checked >= 2);
        // The report's delta is exactly the graph-level edge diff.
        assert_eq!(
            report.delta,
            r2d2_graph::diff::edge_delta(&before, session.graph())
        );
        assert_eq!(session_edges(&session), fresh_edges(&session));
        assert_eq!(session.update_log().len(), 1);
    }

    #[test]
    fn appending_foreign_rows_invalidates_incoming_edges() {
        let mut session = session_with(&[("base", table(0..50)), ("sub", table(10..30))]);
        let (base, sub) = (0u64, 1u64);
        assert!(session.graph().has_edge(base, sub));
        // The child grows past its parent's range.
        let report = session
            .apply(LakeUpdate::AppendRows {
                id: DatasetId(sub),
                rows: table(60..90),
            })
            .unwrap();
        assert!(!session.graph().has_edge(base, sub));
        assert!(report.delta.removed.contains(&(base, sub)));
        assert_eq!(session_edges(&session), fresh_edges(&session));
    }

    #[test]
    fn deleting_rows_can_create_new_incoming_edges() {
        let mut session = session_with(&[("a", table(0..30)), ("b", table(0..60))]);
        let (a, b) = (0u64, 1u64);
        assert!(session.graph().has_edge(b, a), "b ⊇ a initially");
        // b shrinks to a strict subset of a.
        let report = session
            .apply(LakeUpdate::DeleteRows {
                id: DatasetId(b),
                predicate: Predicate::between("id", Value::Int(20), Value::Int(59)),
            })
            .unwrap();
        assert!(session.graph().has_edge(a, b), "a now contains b");
        assert!(report.delta.added.contains(&(a, b)));
        assert_eq!(session_edges(&session), fresh_edges(&session));
    }

    #[test]
    fn dropping_a_dataset_clears_its_edges() {
        let mut session = session_with(&[
            ("base", table(0..50)),
            ("sub", table(10..30)),
            ("other", table(5..25)),
        ]);
        let report = session
            .apply(LakeUpdate::DropDataset { id: DatasetId(0) })
            .unwrap();
        assert!(report.delta.added.is_empty());
        assert!(!report.delta.removed.is_empty());
        assert_eq!(report.candidates_checked, 0, "drops verify nothing");
        assert_eq!(session_edges(&session), fresh_edges(&session));
        assert_eq!(session.report().datasets, 2);
    }

    #[test]
    fn batch_coalesces_repeated_appends_into_one_sweep() {
        let mut seq = session_with(&[("base", table(0..80)), ("sub", table(10..30))]);
        let mut batch = session_with(&[("base", table(0..80)), ("sub", table(10..30))]);
        let updates = vec![
            LakeUpdate::AppendRows {
                id: DatasetId(1),
                rows: table(30..40),
            },
            LakeUpdate::AppendRows {
                id: DatasetId(1),
                rows: table(40..50),
            },
            LakeUpdate::AppendRows {
                id: DatasetId(1),
                rows: table(50..60),
            },
        ];
        let mut seq_candidates = 0;
        for u in &updates {
            seq_candidates += seq.apply(u.clone()).unwrap().candidates_checked;
        }
        let report = batch.apply_batch(&updates).unwrap();
        assert_eq!(report.updates_applied, 3);
        assert_eq!(report.datasets_changed, 1);
        assert!(
            report.candidates_checked < seq_candidates,
            "batch must verify once, not once per append ({} vs {})",
            report.candidates_checked,
            seq_candidates
        );
        // The three appends also merged into ONE catalog rebuild...
        assert_eq!(
            report.applied,
            vec![r2d2_lake::AppliedUpdate::Appended {
                id: DatasetId(1),
                rows: 30
            }]
        );
        // ...so the batch scans strictly less than the three sequential
        // materialise+rebuild cycles did.
        let seq_scanned: u64 = seq.update_log().iter().map(|r| r.ops.rows_scanned).sum();
        assert!(
            report.ops.rows_scanned < seq_scanned,
            "merged append must rebuild once ({} vs {})",
            report.ops.rows_scanned,
            seq_scanned
        );
        // Both routes land on the same graph, which matches a fresh run.
        assert_eq!(session_edges(&seq), session_edges(&batch));
        assert_eq!(session_edges(&batch), fresh_edges(&batch));
    }

    #[test]
    fn append_runs_do_not_merge_across_a_delete_of_the_same_dataset() {
        // append(5 rows) → delete(id ≥ 10) → append(rows 10..15): merging
        // the appends across the delete would resurrect deleted rows.
        let mut session = session_with(&[("d", table(0..10))]);
        session
            .apply_batch(&[
                LakeUpdate::AppendRows {
                    id: DatasetId(0),
                    rows: table(10..15),
                },
                LakeUpdate::DeleteRows {
                    id: DatasetId(0),
                    predicate: Predicate::between("id", Value::Int(10), Value::Int(99)),
                },
                LakeUpdate::AppendRows {
                    id: DatasetId(0),
                    rows: table(10..15),
                },
            ])
            .unwrap();
        assert_eq!(session.lake().dataset(DatasetId(0)).unwrap().num_rows(), 15);
        assert_eq!(session_edges(&session), fresh_edges(&session));

        // Only ADJACENT appends merge — any intervening update (even to
        // another dataset) closes the run, so a merged run always maps to a
        // contiguous slice of the batch and the mid-batch error guarantee
        // ("exactly the updates before the failure are applied") holds.
        let mut session = session_with(&[("a", table(0..10)), ("b", table(0..10))]);
        let report = session
            .apply_batch(&[
                LakeUpdate::AppendRows {
                    id: DatasetId(0),
                    rows: table(10..12),
                },
                LakeUpdate::AppendRows {
                    id: DatasetId(1),
                    rows: table(10..12),
                },
                LakeUpdate::AppendRows {
                    id: DatasetId(0),
                    rows: table(12..14),
                },
            ])
            .unwrap();
        assert_eq!(report.updates_applied, 3);
        assert_eq!(report.applied.len(), 3, "interleaved appends stay separate");
        assert_eq!(session_edges(&session), fresh_edges(&session));
    }

    #[test]
    fn appends_after_a_failing_update_are_not_applied() {
        // Regression: an append AFTER the failure point must never merge
        // into an earlier run and sneak in before the error.
        let mut session = session_with(&[("base", table(0..50)), ("sub", table(10..30))]);
        let err = session
            .apply_batch(&[
                LakeUpdate::AppendRows {
                    id: DatasetId(1),
                    rows: table(30..35),
                },
                LakeUpdate::DropDataset { id: DatasetId(99) },
                LakeUpdate::AppendRows {
                    id: DatasetId(1),
                    rows: table(35..40),
                },
            ])
            .unwrap_err();
        assert!(matches!(err, r2d2_lake::LakeError::DatasetNotFound(_)));
        assert_eq!(
            session.lake().dataset(DatasetId(1)).unwrap().num_rows(),
            25,
            "exactly the updates before the failure are applied"
        );
        assert_eq!(session.report().updates_applied, 1);
        assert_eq!(session_edges(&session), fresh_edges(&session));
    }

    #[test]
    fn add_then_drop_in_one_batch_is_never_verified() {
        let mut session = session_with(&[("base", table(0..40))]);
        let report = session
            .apply_batch(&[
                add_update("ephemeral", table(0..10)),
                LakeUpdate::DropDataset { id: DatasetId(1) },
            ])
            .unwrap();
        assert_eq!(report.candidates_checked, 0);
        assert!(report.delta.is_empty());
        assert_eq!(session.report().datasets, 1);
        assert_eq!(session_edges(&session), fresh_edges(&session));
    }

    #[test]
    fn verification_reuses_cached_parent_multisets_across_updates() {
        let mut session = session_with(&[("base", table(0..64)), ("sub", table(10..30))]);
        let parent_rows = 64;

        // First content update: the sweep builds base's multiset once.
        let first = session
            .apply(LakeUpdate::AppendRows {
                id: DatasetId(1),
                rows: table(30..40),
            })
            .unwrap();
        assert!(
            first.ops.rows_hashed >= parent_rows,
            "first sweep must build the parent's hash multiset ({} hashed)",
            first.ops.rows_hashed
        );
        let cached = session.cached_build_sides();
        assert!(cached >= 1, "parent multiset must stay cached");

        // Second update to the same child: the parent was not mutated, so
        // its multiset is served from the session cache — only the (small)
        // child sample is hashed.
        let second = session
            .apply(LakeUpdate::AppendRows {
                id: DatasetId(1),
                rows: table(40..50),
            })
            .unwrap();
        assert!(
            second.ops.rows_hashed < parent_rows,
            "second sweep must reuse the cached parent multiset ({} hashed)",
            second.ops.rows_hashed
        );
        assert_eq!(session.cached_build_sides(), cached);
        assert_eq!(session_edges(&session), fresh_edges(&session));
    }

    #[test]
    fn mutating_a_parent_invalidates_its_cached_multiset() {
        // cand (rows 60..70) is NOT contained in base (rows 0..64) at
        // bootstrap; once base grows to 0..80 it is. The verification of the
        // new base → cand edge must probe base's *post-append* multiset — a
        // stale cached one (0..64) would wrongly prune rows 64..69.
        let mut session = session_with(&[
            ("base", table(0..64)),
            ("sub", table(10..30)),
            ("cand", table(60..70)),
        ]);
        assert!(!session.graph().has_edge(0, 2));
        // Populate the session cache with base's multiset (an update to sub
        // re-verifies base → sub through the cache).
        session
            .apply(LakeUpdate::AppendRows {
                id: DatasetId(1),
                rows: table(30..40),
            })
            .unwrap();
        assert!(session.cached_build_sides() >= 1);
        // Append to base itself: its cached multiset is stale and evicted.
        let report = session
            .apply(LakeUpdate::AppendRows {
                id: DatasetId(0),
                rows: table(64..80),
            })
            .unwrap();
        assert!(
            session.graph().has_edge(0, 2),
            "base now contains cand — a stale cached multiset would prune this edge"
        );
        assert!(
            report.ops.rows_hashed >= 80,
            "the grown parent's multiset must be rebuilt ({} hashed)",
            report.ops.rows_hashed
        );
        assert_eq!(session_edges(&session), fresh_edges(&session));
    }

    #[test]
    fn mid_batch_error_keeps_graph_consistent_with_lake() {
        let mut session = session_with(&[("base", table(0..50)), ("sub", table(10..30))]);
        let err = session
            .apply_batch(&[
                LakeUpdate::AppendRows {
                    id: DatasetId(1),
                    rows: table(60..90),
                },
                LakeUpdate::DropDataset { id: DatasetId(99) },
            ])
            .unwrap_err();
        assert!(matches!(err, r2d2_lake::LakeError::DatasetNotFound(_)));
        // The append before the failure is applied AND verified: the edge
        // base → sub is gone, exactly as a fresh run over the lake says.
        assert!(!session.graph().has_edge(0, 1));
        assert_eq!(session_edges(&session), fresh_edges(&session));
        assert!(
            session.update_log().is_empty(),
            "failed batches are not logged"
        );
        assert_eq!(session.report().updates_applied, 1);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut session = session_with(&[("base", table(0..20))]);
        let report = session.apply_batch(&[]).unwrap();
        assert_eq!(report.updates_applied, 0);
        assert_eq!(report.candidates_checked, 0);
        assert!(report.delta.is_empty());
    }

    #[test]
    fn noop_updates_trigger_no_verification() {
        let mut session = session_with(&[("base", table(0..20)), ("sub", table(5..15))]);
        let report = session
            .apply(LakeUpdate::DeleteRows {
                id: DatasetId(1),
                predicate: Predicate::eq("id", Value::Int(999)),
            })
            .unwrap();
        assert_eq!(report.updates_applied, 1);
        assert_eq!(report.datasets_changed, 0);
        assert_eq!(report.candidates_checked, 0);
    }

    #[test]
    fn into_parts_returns_lake_and_graph() {
        let session = session_with(&[("base", table(0..20)), ("sub", table(5..15))]);
        let edges = session.graph().edge_count();
        let (lake, graph) = session.into_parts();
        assert_eq!(lake.len(), 2);
        assert_eq!(graph.edge_count(), edges);
    }

    #[test]
    fn with_defaults_uses_paper_config() {
        let session = R2d2Session::with_defaults(DataLake::new()).unwrap();
        assert_eq!(session.config(), &PipelineConfig::default());
        assert_eq!(session.report().datasets, 0);
    }

    #[test]
    fn apply_group_commits_queued_batches_as_one_execution() {
        let mut session = session_with(&[("base", table(0..50)), ("sub", table(10..30))]);
        let batches = vec![
            vec![LakeUpdate::AppendRows {
                id: DatasetId(1),
                rows: table(30..40),
            }],
            vec![add_update("extra", table(5..25))],
            vec![LakeUpdate::AppendRows {
                id: DatasetId(0),
                rows: table(50..60),
            }],
        ];
        let outcome = session.apply_group(&batches);
        assert_eq!(outcome.commits.len(), 1, "the whole group is one commit");
        assert!(outcome.commits[0].error.is_none());
        assert_eq!(outcome.updates_applied(), 3);
        let commits: Vec<usize> = outcome
            .results
            .iter()
            .map(|r| *r.as_ref().unwrap())
            .collect();
        assert_eq!(commits, vec![0, 0, 0]);
        assert!(outcome.persist_error.is_none());
        assert_eq!(session.report().updates_applied, 3);
        assert_eq!(session.update_log().len(), 1, "one commit, one log entry");
        // Captured before fresh_edges below — the oracle pipeline run meters
        // into the session's shared meter.
        let session_ops = session.ops();
        assert_eq!(session_edges(&session), fresh_edges(&session));

        // The commit's recorded updates replay bit-identically through the
        // plain batch path (the serve layer's oracle contract).
        let mut replay = session_with(&[("base", table(0..50)), ("sub", table(10..30))]);
        replay.apply_batch(&outcome.commits[0].updates).unwrap();
        assert_eq!(session_edges(&replay), session_edges(&session));
        assert_eq!(replay.ops(), session_ops);
    }

    #[test]
    fn apply_group_isolates_a_failing_batch_and_retries_the_tail() {
        let mut session = session_with(&[("base", table(0..50)), ("sub", table(10..30))]);
        let batches = vec![
            vec![LakeUpdate::AppendRows {
                id: DatasetId(1),
                rows: table(30..35),
            }],
            vec![
                LakeUpdate::AppendRows {
                    id: DatasetId(1),
                    rows: table(35..40),
                },
                LakeUpdate::DropDataset { id: DatasetId(99) },
            ],
            vec![LakeUpdate::AppendRows {
                id: DatasetId(0),
                rows: table(50..60),
            }],
        ];
        let outcome = session.apply_group(&batches);
        // Commit 0 executed the full concat and failed at the drop; the tail
        // batch retried as commit 1.
        assert_eq!(outcome.commits.len(), 2);
        assert!(outcome.commits[0].error.is_some());
        assert!(outcome.commits[1].error.is_none());
        assert_eq!(outcome.results.len(), 3);
        assert_eq!(*outcome.results[0].as_ref().unwrap(), 0);
        assert!(matches!(
            outcome.results[1],
            Err(r2d2_lake::LakeError::DatasetNotFound(_))
        ));
        assert_eq!(*outcome.results[2].as_ref().unwrap(), 1);
        // Exactly the updates before the failure, plus the retried tail, are
        // live: sub has both appends (they precede the bad drop), base grew.
        assert_eq!(session.lake().dataset(DatasetId(1)).unwrap().num_rows(), 30);
        assert_eq!(session.lake().dataset(DatasetId(0)).unwrap().num_rows(), 60);
        assert_eq!(session.report().updates_applied, 3);
        assert_eq!(
            session.update_log().len(),
            1,
            "failed commits are not logged"
        );
        let session_ops = session.ops();
        assert_eq!(session_edges(&session), fresh_edges(&session));

        // Replaying the recorded commits through the plain batch path lands
        // on the identical session (mid-commit failure included).
        let mut replay = session_with(&[("base", table(0..50)), ("sub", table(10..30))]);
        for commit in &outcome.commits {
            let _ = replay.apply_batch(&commit.updates);
        }
        assert_eq!(session_edges(&replay), session_edges(&session));
        assert_eq!(replay.ops(), session_ops);
        // Log entries match up to wall clock (UpdateReport carries a
        // duration).
        assert_eq!(replay.update_log().len(), session.update_log().len());
        for (a, b) in replay.update_log().iter().zip(session.update_log()) {
            assert_eq!(a.applied, b.applied);
            assert_eq!(a.delta, b.delta);
            assert_eq!(a.ops, b.ops);
        }
    }

    #[test]
    fn apply_group_amortizes_wal_records_and_fsyncs() {
        let dir = std::env::temp_dir().join("r2d2_session_group_wal");
        std::fs::remove_dir_all(&dir).ok();
        let batches: Vec<Vec<LakeUpdate>> = (0..4)
            .map(|i| {
                vec![LakeUpdate::AppendRows {
                    id: DatasetId(1),
                    rows: table(30 + i * 5..35 + i * 5),
                }]
            })
            .collect();

        let mut grouped = session_with(&[("base", table(0..80)), ("sub", table(10..30))]);
        grouped
            .enable_persistence(PersistenceConfig::new(dir.join("grouped")).with_snapshot_every(0))
            .unwrap();
        assert_eq!(grouped.wal_stats().unwrap().records, 0);
        let outcome = grouped.apply_group(&batches);
        assert_eq!(outcome.commits.len(), 1);
        let grouped_stats = grouped.wal_stats().unwrap();
        assert_eq!(grouped_stats.records, 1, "4 batches, one WAL record");

        let mut per_batch = session_with(&[("base", table(0..80)), ("sub", table(10..30))]);
        per_batch
            .enable_persistence(
                PersistenceConfig::new(dir.join("per_batch")).with_snapshot_every(0),
            )
            .unwrap();
        for batch in &batches {
            per_batch.apply_batch(batch).unwrap();
        }
        let per_batch_stats = per_batch.wal_stats().unwrap();
        assert_eq!(per_batch_stats.records, 4);
        assert!(grouped_stats.fsyncs < per_batch_stats.fsyncs);

        // Both WAL shapes restore to the identical session state.
        assert_eq!(session_edges(&grouped), session_edges(&per_batch));
        let restored = R2d2Session::restore(dir.join("grouped")).unwrap();
        assert_eq!(session_edges(&restored), session_edges(&grouped));
        // Page counters depend on what was already decoded in memory, so a
        // restore reproduces everything but them (same mask the restart
        // oracle uses).
        assert_eq!(
            restored.ops().without_page_counters(),
            grouped.ops().without_page_counters()
        );
        // Checkpointing folds the rotated WAL's counters into the total.
        grouped.checkpoint().unwrap();
        let after = grouped.wal_stats().unwrap();
        assert_eq!(after.records, grouped_stats.records);
        assert!(after.fsyncs > grouped_stats.fsyncs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn view_is_an_immutable_snapshot_of_the_session() {
        let mut session = session_with(&[("base", table(0..50)), ("sub", table(10..30))]);
        let view = session.view();
        assert_eq!(view.datasets(), 2);
        assert_eq!(view.edges(), 1);
        assert_eq!(view.updates_applied(), 0);
        assert_eq!(view.batches_applied(), 0);
        assert_eq!(view.ops(), session.ops());
        assert!(view.advice().is_none(), "no advisor attached");

        // Later session mutations are invisible to the captured view.
        session
            .apply(LakeUpdate::AppendRows {
                id: DatasetId(1),
                rows: table(60..90),
            })
            .unwrap();
        assert!(!session.graph().has_edge(0, 1));
        assert!(view.graph().has_edge(0, 1), "view keeps the old graph");
        assert_eq!(
            view.lake().dataset(DatasetId(1)).unwrap().num_rows(),
            20,
            "view keeps the old table"
        );

        // Reads through the view meter into the view, not the session...
        let ops_before = session.ops();
        let rows = view
            .query_dataset(DatasetId(1), &Predicate::True, None)
            .unwrap();
        assert_eq!(rows.num_rows(), 20);
        assert_eq!(session.ops(), ops_before);
        assert!(view.read_ops().rows_scanned > 0);
        // ...but their access tallies land on the shared log, so reader
        // traffic still feeds the session's access profiles.
        assert_eq!(session.refresh_access_profiles().unwrap(), 1);
        assert_eq!(
            session
                .lake()
                .dataset(DatasetId(1))
                .unwrap()
                .access
                .accesses_per_period,
            1.0
        );

        // A session with an advisor exposes its advice through the view.
        let view = session.view();
        assert_eq!(view.updates_applied(), 1);
        assert!(view.advice().is_none());
        session.advise().unwrap();
        assert!(session.view().advice().is_some());
    }

    use r2d2_opt::advisor::{self, AdvisorConfig};
    use r2d2_opt::preprocess::TransformKnowledge;
    use r2d2_opt::CostModel;

    fn advisor_config() -> AdvisorConfig {
        // AssumeKnown: every containment edge is a reconstruction option, so
        // the tiny test lakes produce non-trivial Opt-Ret instances.
        AdvisorConfig::default().with_knowledge(TransformKnowledge::AssumeKnown)
    }

    fn assert_advice_matches_from_scratch(session: &mut R2d2Session) {
        let incremental = session.advise().unwrap();
        let fresh = advisor::from_scratch(
            session.lake(),
            session.graph(),
            &CostModel::default(),
            &advisor_config(),
        )
        .unwrap();
        assert_eq!(incremental, fresh, "advisor diverged from from-scratch");
    }

    #[test]
    fn advisor_stays_in_sync_across_updates() {
        let mut session = session_with(&[("base", table(0..50)), ("sub", table(10..30))]);
        session
            .enable_advisor(CostModel::default(), advisor_config())
            .unwrap();
        assert!(session.advisor_enabled());
        assert_advice_matches_from_scratch(&mut session);

        // Add a contained dataset, append foreign rows, drop a dataset —
        // after every batch the incremental advice equals a fresh solve.
        session.apply(add_update("extra", table(0..20))).unwrap();
        assert_advice_matches_from_scratch(&mut session);

        session
            .apply(LakeUpdate::AppendRows {
                id: DatasetId(1),
                rows: table(60..90),
            })
            .unwrap();
        assert_advice_matches_from_scratch(&mut session);

        session
            .apply(LakeUpdate::DropDataset { id: DatasetId(2) })
            .unwrap();
        assert_advice_matches_from_scratch(&mut session);

        session.disable_advisor();
        assert!(!session.advisor_enabled());
    }

    #[test]
    fn advise_lazily_attaches_a_default_advisor() {
        let mut session = session_with(&[("base", table(0..50)), ("sub", table(10..30))]);
        assert!(!session.advisor_enabled());
        let solution = session.advise().unwrap();
        assert!(session.advisor_enabled());
        // Default knowledge policy is Required; with no lineage recorded the
        // problem has no edges, so everything is retained.
        assert_eq!(solution.deleted.len(), 0);
        assert_eq!(solution.retained.len(), 2);
        let problem = session.advisor_problem().unwrap();
        assert_eq!(problem.edge_count(), 0);
    }

    #[test]
    fn advisor_report_summarises_savings_and_resolves() {
        let mut session = session_with(&[("base", table(0..50)), ("sub", table(10..30))]);
        session
            .enable_advisor(CostModel::default(), advisor_config())
            .unwrap();
        let report = session.advisor_report().unwrap();
        assert_eq!(
            report.table7.deleted_nodes + report.table7.retained_nodes,
            session.report().datasets
        );
        assert!(report.total_cost <= report.retain_all_cost + 1e-12);
        assert_eq!(report.stats.components_reused, 0, "first pass solves all");

        // A second report with no intervening update reuses every component.
        let second = session.advisor_report().unwrap();
        assert_eq!(second.solution, report.solution);
        assert_eq!(second.stats.components_resolved, 0);
        assert_eq!(
            second.stats.components_reused,
            second.stats.components_total
        );
    }

    #[test]
    fn metered_queries_refresh_access_profiles_and_trigger_readvice() {
        let mut session = session_with(&[("base", table(0..50)), ("sub", table(10..30))]);
        session
            .enable_advisor(CostModel::default(), advisor_config())
            .unwrap();
        session.advise().unwrap();

        // Serve query traffic against `sub` through the metered entry point.
        for _ in 0..5 {
            session
                .lake()
                .query_dataset(DatasetId(1), &Predicate::True, Some(4))
                .unwrap();
        }
        let changed = session.refresh_access_profiles().unwrap();
        assert_eq!(changed, 1, "only the queried dataset's profile moved");
        assert_eq!(
            session
                .lake()
                .dataset(DatasetId(1))
                .unwrap()
                .access
                .accesses_per_period,
            5.0
        );
        // The advisor saw the drift and still matches a fresh solve over the
        // updated profiles.
        assert_advice_matches_from_scratch(&mut session);
        // A window with no traffic cools the dataset back down to 0
        // observed accesses (stale heat must not persist)...
        assert_eq!(session.refresh_access_profiles().unwrap(), 1);
        assert_eq!(
            session
                .lake()
                .dataset(DatasetId(1))
                .unwrap()
                .access
                .accesses_per_period,
            0.0
        );
        assert_advice_matches_from_scratch(&mut session);
        // ...after which further idle windows change nothing.
        assert_eq!(session.refresh_access_profiles().unwrap(), 0);
    }
}
