//! Pipeline configuration, shared by the batch runner
//! ([`crate::pipeline::R2d2Pipeline`]) and the incremental session
//! ([`crate::session::R2d2Session`]): the session's bootstrap run and every
//! dynamic re-verification sweep read the same `s`/`t`/rounds/sampling
//! parameters, seed derivation and worker-thread count, which is what keeps
//! incremental results bit-identical to a fresh batch run.

use serde::{Deserialize, Serialize};

/// How Content-Level Pruning draws its sample of child rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClpSampling {
    /// Sample `t` uniformly random rows of the child (the simplest variant;
    /// corresponds to "sampling a table naively" in §6.6).
    RandomRows,
    /// Run a `SELECT * FROM child WHERE col₁ = v₁ AND … LIMIT t` query whose
    /// filter values come from a randomly chosen child row over up to `s`
    /// sampled common columns — the variant Algorithm 3 describes, which can
    /// exploit partitioning / indexes to avoid full scans.
    PredicateFilter,
    /// Apply the *same* WHERE filter to both child and parent and check that
    /// the child's filtered rows are contained in the parent's filtered rows
    /// (the "sample from both A and B" extension discussed in §4.3).
    BothSides,
}

/// Configuration of the optional **approximate candidate tier**: MinHash
/// signatures gate SGB's candidate pairs before the exact subset check
/// ([`crate::sgb::ApproxCandidates`]), opening the scale ceiling for lakes
/// where even sub-quadratic exact candidate generation is too slow.
///
/// A candidate pair is admitted when the tables' LSH band hashes collide in
/// any band **or** the domination-based containment estimate
/// ([`r2d2_lake::MinHashSignature::containment_estimate_in`]) reaches
/// `threshold`. Because that estimate is exactly `1.0` for true containment
/// pairs, any `threshold ≤ 1.0` only ever prunes provably-false pairs — the
/// final graph stays identical; only the work to reach it shrinks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApproxConfig {
    /// Signature size `k` (number of MinHash permutations) the tier gates
    /// with. Clamped to the persisted size
    /// ([`r2d2_lake::SIGNATURE_K`]); smaller `k` uses a prefix of the
    /// stored signature — cheaper probes, coarser estimates.
    pub signature_k: usize,
    /// Number of LSH bands (`bands · rows ≤ signature_k`).
    pub lsh_bands: usize,
    /// Rows (signature minima) per LSH band.
    pub lsh_rows: usize,
    /// Containment-estimate admission threshold in `[0, 1]`. `1.0` admits
    /// only pairs with zero domination evidence against them; lower values
    /// admit more borderline pairs (more exact work, same final graph).
    pub threshold: f64,
    /// Rows sampled per reported edge by the §7.2.2 Hoeffding containment
    /// estimator attached to the final graph's edges when the tier is on
    /// ([`crate::pipeline::PipelineReport::approx_edges`]). `0` disables the
    /// report.
    pub report_samples: usize,
    /// Confidence level for the Hoeffding bound on reported edges.
    pub report_confidence: f64,
}

impl Default for ApproxConfig {
    fn default() -> Self {
        ApproxConfig {
            signature_k: 64,
            lsh_bands: 8,
            lsh_rows: 4,
            threshold: 0.5,
            report_samples: 32,
            report_confidence: 0.95,
        }
    }
}

impl ApproxConfig {
    /// Override the signature size `k`.
    pub fn with_signature_k(mut self, k: usize) -> Self {
        self.signature_k = k;
        self
    }

    /// Override the LSH banding scheme.
    pub fn with_lsh(mut self, bands: usize, rows: usize) -> Self {
        self.lsh_bands = bands;
        self.lsh_rows = rows;
        self
    }

    /// Override the containment-estimate admission threshold.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        self.threshold = threshold;
        self
    }

    /// Override the per-edge Hoeffding report parameters (`samples = 0`
    /// disables the edge report).
    pub fn with_report(mut self, samples: usize, confidence: f64) -> Self {
        self.report_samples = samples;
        self.report_confidence = confidence;
        self
    }
}

/// Configuration of the R2D2 pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// `s`: maximum number of (common) columns used to build the CLP filter.
    /// The paper finds `s = 4` a good default (§6.6, Table 6).
    pub clp_columns: usize,
    /// `t`: maximum number of child rows sampled per edge in CLP.
    /// The paper finds `t = 10` a good default (§6.6, Table 6).
    pub clp_rows: usize,
    /// Number of independent sampling rounds CLP performs per edge before
    /// giving up on pruning it (each round draws a fresh filter). One round
    /// matches Algorithm 3; more rounds trade time for precision.
    pub clp_rounds: usize,
    /// Sampling strategy for CLP.
    pub clp_sampling: ClpSampling,
    /// Seed for all randomised choices (column sampling, row sampling), so
    /// that experiments are reproducible.
    pub seed: u64,
    /// If true, MMP only considers columns whose declared type supports
    /// min/max statistics (numeric, timestamp, string); if false it uses
    /// every common column that happens to have statistics.
    pub mmp_typed_columns_only: bool,
    /// Enable the MMP **distinct-count gate**: on any common column, a sound
    /// metadata-only lower bound on the child's distinct count exceeding the
    /// parent's (upper-bounded) distinct count disproves containment, so the
    /// edge is pruned without reading a row. Like the min/max check itself
    /// this only ever removes provably-false edges (it can improve precision
    /// over a run without the gate, never recall).
    pub mmp_distinct_gate: bool,
    /// Enable the CLP **bloom-sketch gate**: after drawing each child
    /// sample and *before* building or probing the parent's hash multiset,
    /// probe every sampled value against the parent's per-column bloom
    /// sketches. A missing value proves the sampled row is absent from the
    /// parent (sketches have no false negatives), so the edge is pruned
    /// without touching a parent row; sketch hits fall through to the exact
    /// anti-join. Because the gate can only prune edges the exact check
    /// would have pruned on the very same sample, the final graph is
    /// **bit-identical** with this gate on or off.
    pub clp_bloom_gate: bool,
    /// Number of worker threads for the data-parallel stages (SGB step 6
    /// pair checks, MMP per-edge metadata checks, CLP per-edge sampling and
    /// anti-joins). `1` (the default) runs every stage inline on the calling
    /// thread; `0` uses all hardware threads. Any value produces bit-for-bit
    /// identical graphs and meter totals — see the determinism test in
    /// `tests/integration_parallel.rs`.
    pub threads: usize,
    /// Optional approximate candidate tier (`None` = exact candidate
    /// generation only, byte-for-byte the pre-refactor behaviour). See
    /// [`ApproxConfig`].
    pub approx: Option<ApproxConfig>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            clp_columns: 4,
            clp_rows: 10,
            clp_rounds: 1,
            clp_sampling: ClpSampling::PredicateFilter,
            seed: 0x5eed,
            mmp_typed_columns_only: true,
            mmp_distinct_gate: true,
            clp_bloom_gate: true,
            threads: 1,
            approx: None,
        }
    }
}

impl PipelineConfig {
    /// The paper's default parameter configuration (`s = 4`, `t = 10`).
    pub fn paper_defaults() -> Self {
        Self::default()
    }

    /// Override the CLP parameters, keeping everything else.
    pub fn with_clp_params(mut self, s: usize, t: usize) -> Self {
        self.clp_columns = s;
        self.clp_rows = t;
        self
    }

    /// Override the random seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the CLP sampling strategy.
    pub fn with_sampling(mut self, sampling: ClpSampling) -> Self {
        self.clp_sampling = sampling;
        self
    }

    /// Override the number of CLP sampling rounds per edge.
    pub fn with_clp_rounds(mut self, rounds: usize) -> Self {
        self.clp_rounds = rounds;
        self
    }

    /// Restrict (or not) MMP to columns whose type supports min/max stats.
    pub fn with_mmp_typed_columns_only(mut self, typed_only: bool) -> Self {
        self.mmp_typed_columns_only = typed_only;
        self
    }

    /// Enable or disable the MMP distinct-count gate.
    pub fn with_mmp_distinct_gate(mut self, enabled: bool) -> Self {
        self.mmp_distinct_gate = enabled;
        self
    }

    /// Enable or disable the CLP bloom-sketch gate.
    pub fn with_clp_bloom_gate(mut self, enabled: bool) -> Self {
        self.clp_bloom_gate = enabled;
        self
    }

    /// Disable every sketch-backed gate (the pre-sketch, "seed-shaped"
    /// pruning behaviour benchmarks compare against).
    pub fn without_sketch_gates(self) -> Self {
        self.with_mmp_distinct_gate(false)
            .with_clp_bloom_gate(false)
    }

    /// Override the worker thread count (`1` = sequential, `0` = all
    /// hardware threads).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Enable the approximate candidate tier with the given knobs.
    pub fn with_approx(mut self, approx: ApproxConfig) -> Self {
        self.approx = Some(approx);
        self
    }

    /// Disable the approximate candidate tier (the default).
    pub fn without_approx(mut self) -> Self {
        self.approx = None;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = PipelineConfig::default();
        assert_eq!(c.clp_columns, 4);
        assert_eq!(c.clp_rows, 10);
        assert_eq!(c.clp_sampling, ClpSampling::PredicateFilter);
        assert!(c.mmp_distinct_gate, "sketch gates default on");
        assert!(c.clp_bloom_gate, "sketch gates default on");
        assert_eq!(PipelineConfig::paper_defaults(), c);
    }

    #[test]
    fn sketch_gates_can_be_disabled() {
        let c = PipelineConfig::default().without_sketch_gates();
        assert!(!c.mmp_distinct_gate);
        assert!(!c.clp_bloom_gate);
        let partial = PipelineConfig::default()
            .with_mmp_distinct_gate(false)
            .with_clp_bloom_gate(true);
        assert!(!partial.mmp_distinct_gate);
        assert!(partial.clp_bloom_gate);
    }

    #[test]
    fn builder_style_overrides() {
        let c = PipelineConfig::default()
            .with_clp_params(8, 30)
            .with_seed(7)
            .with_sampling(ClpSampling::RandomRows)
            .with_threads(4)
            .with_clp_rounds(3)
            .with_mmp_typed_columns_only(false);
        assert_eq!(c.clp_columns, 8);
        assert_eq!(c.clp_rows, 30);
        assert_eq!(c.seed, 7);
        assert_eq!(c.clp_sampling, ClpSampling::RandomRows);
        assert_eq!(c.threads, 4);
        assert_eq!(c.clp_rounds, 3);
        assert!(!c.mmp_typed_columns_only);
    }

    #[test]
    fn default_is_sequential() {
        assert_eq!(PipelineConfig::default().threads, 1);
    }

    #[test]
    fn approx_tier_defaults_off_and_builds() {
        assert_eq!(PipelineConfig::default().approx, None);
        let a = ApproxConfig::default();
        assert_eq!(a.signature_k, 64);
        assert!(a.lsh_bands * a.lsh_rows <= a.signature_k);
        let c = PipelineConfig::default().with_approx(
            ApproxConfig::default()
                .with_signature_k(32)
                .with_lsh(4, 8)
                .with_threshold(0.8)
                .with_report(16, 0.99),
        );
        let approx = c.approx.unwrap();
        assert_eq!(approx.signature_k, 32);
        assert_eq!((approx.lsh_bands, approx.lsh_rows), (4, 8));
        assert_eq!(approx.threshold, 0.8);
        assert_eq!(
            (approx.report_samples, approx.report_confidence),
            (16, 0.99)
        );
        assert_eq!(c.without_approx().approx, None);
    }
}
