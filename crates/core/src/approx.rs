//! Approximate dataset relatedness (§7.2 of the paper).
//!
//! The main pipeline targets *exact* containment (`CM = 1`). §7.2 discusses
//! two relaxations that this module implements as extensions:
//!
//! * **Approximate schema containment** (§7.2.1): column names such as
//!   `Phone`, `Mobile` and `Work Phone` may denote the same attribute. When
//!   a canonical token list is available (through human input), schema
//!   tokens can be mapped to canonical values before containment is checked.
//!   [`TokenCanonicalizer`] implements that lookup-based mapping.
//! * **Approximate content containment** (§7.2.2): CLP-style sampling can
//!   estimate the containment fraction `CM(child, parent) < 1` with a
//!   confidence interval rather than merely disproving exactness.
//!   [`estimate_containment`] draws uniform samples of the child and probes
//!   the parent, returning a point estimate plus a Hoeffding-style bound.

use r2d2_lake::query::{left_anti_join, random_rows};
use r2d2_lake::{Meter, PartitionedTable, Result, SchemaSet};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Maps schema tokens to canonical names using an explicit, human-provided
/// synonym table (the paper argues embeddings are too error-prone for
/// enterprise schemas, so only exact lookups are applied).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TokenCanonicalizer {
    /// lowercase token → canonical name
    synonyms: BTreeMap<String, String>,
}

impl TokenCanonicalizer {
    /// Create an empty canonicalizer (identity mapping).
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a synonym: `token` will map to `canonical`. Matching is
    /// case-insensitive on the final path segment of a flattened column name.
    pub fn add_synonym(&mut self, token: impl Into<String>, canonical: impl Into<String>) {
        self.synonyms
            .insert(token.into().to_lowercase(), canonical.into());
    }

    /// Bulk registration.
    pub fn with_synonyms<I, A, B>(mut self, pairs: I) -> Self
    where
        I: IntoIterator<Item = (A, B)>,
        A: Into<String>,
        B: Into<String>,
    {
        for (a, b) in pairs {
            self.add_synonym(a, b);
        }
        self
    }

    /// Canonicalise one flattened column name: the last path segment is
    /// replaced by its canonical form when a synonym is registered.
    pub fn canonicalize(&self, column: &str) -> String {
        match column.rsplit_once('.') {
            Some((prefix, last)) => {
                let mapped = self
                    .synonyms
                    .get(&last.to_lowercase())
                    .cloned()
                    .unwrap_or_else(|| last.to_string());
                format!("{prefix}.{mapped}")
            }
            None => self
                .synonyms
                .get(&column.to_lowercase())
                .cloned()
                .unwrap_or_else(|| column.to_string()),
        }
    }

    /// Canonicalise a whole schema set.
    pub fn canonicalize_set(&self, set: &SchemaSet) -> SchemaSet {
        SchemaSet::from_names(set.iter().map(|c| self.canonicalize(c)))
    }

    /// Approximate schema containment fraction after canonicalisation:
    /// `CM(child, parent)` on the mapped schema sets.
    pub fn schema_containment(&self, child: &SchemaSet, parent: &SchemaSet) -> f64 {
        self.canonicalize_set(child)
            .containment_fraction(&self.canonicalize_set(parent))
    }
}

/// An estimated containment fraction with a two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContainmentEstimate {
    /// Point estimate of `CM(child, parent)` (fraction of sampled child rows
    /// found in the parent).
    pub estimate: f64,
    /// Lower bound of the confidence interval (clamped to `[0, 1]`).
    pub lower: f64,
    /// Upper bound of the confidence interval (clamped to `[0, 1]`).
    pub upper: f64,
    /// Number of samples the estimate is based on.
    pub samples: usize,
    /// Confidence level used for the interval (e.g. 0.95).
    pub confidence: f64,
}

impl ContainmentEstimate {
    /// Whether the interval is consistent with exact containment (CM = 1).
    pub fn could_be_exact(&self) -> bool {
        self.upper >= 1.0 - 1e-12
    }
}

/// Estimate `CM(child, parent)` by sampling `samples` child rows uniformly
/// (with the lake's point-read cost model) and probing the parent with a
/// left-anti join on the child's columns. The confidence interval is the
/// Hoeffding bound `±sqrt(ln(2/α) / (2n))` at level `confidence = 1 − α`.
pub fn estimate_containment(
    child: &PartitionedTable,
    parent: &PartitionedTable,
    samples: usize,
    confidence: f64,
    seed: u64,
    meter: &Meter,
) -> Result<ContainmentEstimate> {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1)"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let sample = random_rows(child, samples, &mut rng, meter)?;
    let n = sample.num_rows();
    if n == 0 {
        return Ok(ContainmentEstimate {
            estimate: 1.0,
            lower: 0.0,
            upper: 1.0,
            samples: 0,
            confidence,
        });
    }
    let child_cols_owned: Vec<String> = child
        .schema()
        .names()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let cols: Vec<&str> = child_cols_owned.iter().map(String::as_str).collect();
    let missing = left_anti_join(&sample, parent, &cols, meter)?;
    let hit = n - missing.num_rows();
    let estimate = hit as f64 / n as f64;
    let alpha = 1.0 - confidence;
    let half_width = ((2.0 / alpha).ln() / (2.0 * n as f64)).sqrt();
    Ok(ContainmentEstimate {
        estimate,
        lower: (estimate - half_width).max(0.0),
        upper: (estimate + half_width).min(1.0),
        samples: n,
        confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_lake::{Column, DataType, Schema, Table};

    fn canon() -> TokenCanonicalizer {
        TokenCanonicalizer::new().with_synonyms([
            ("mobile", "phone_number"),
            ("work phone", "phone_number"),
            ("phone", "phone_number"),
        ])
    }

    #[test]
    fn canonicalize_single_tokens_and_paths() {
        let c = canon();
        assert_eq!(c.canonicalize("Mobile"), "phone_number");
        assert_eq!(c.canonicalize("contact.Phone"), "contact.phone_number");
        assert_eq!(c.canonicalize("contact.email"), "contact.email");
    }

    #[test]
    fn approx_schema_containment_with_synonyms() {
        let c = canon();
        let child = SchemaSet::from_names(["name", "Mobile"]);
        let parent = SchemaSet::from_names(["name", "phone", "address"]);
        // Without canonicalisation, containment is 0.5; with it, 1.0.
        assert!((child.containment_fraction(&parent) - 0.5).abs() < 1e-12);
        assert!((c.schema_containment(&child, &parent) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_tokens_are_not_merged() {
        // "work phone" and "home phone" must not be collapsed unless the
        // human-provided table says so (§7.2.1's caution).
        let c = canon();
        let child = SchemaSet::from_names(["home phone"]);
        let parent = SchemaSet::from_names(["phone"]);
        assert_eq!(c.schema_containment(&child, &parent), 0.0);
    }

    fn tables(overlap: usize, total: usize) -> (PartitionedTable, PartitionedTable) {
        // Parent holds ids 0..1000; child holds `overlap` ids inside the
        // parent and `total - overlap` ids outside.
        let schema = Schema::flat(&[("id", DataType::Int)]).unwrap();
        let parent = Table::new(schema.clone(), vec![Column::from_ints(0..1000)]).unwrap();
        let mut child_ids: Vec<i64> = (0..overlap as i64).collect();
        child_ids.extend((0..(total - overlap) as i64).map(|i| 10_000 + i));
        let child = Table::new(schema, vec![Column::from_ints(child_ids)]).unwrap();
        (
            PartitionedTable::single(child),
            PartitionedTable::single(parent),
        )
    }

    #[test]
    fn estimate_full_containment() {
        let (child, parent) = tables(100, 100);
        let est = estimate_containment(&child, &parent, 50, 0.95, 1, &Meter::new()).unwrap();
        assert_eq!(est.estimate, 1.0);
        assert!(est.could_be_exact());
        assert_eq!(est.samples, 50);
    }

    #[test]
    fn estimate_partial_containment() {
        let (child, parent) = tables(50, 100); // true CM = 0.5
        let est = estimate_containment(&child, &parent, 100, 0.95, 2, &Meter::new()).unwrap();
        assert!(
            est.estimate > 0.2 && est.estimate < 0.8,
            "estimate {}",
            est.estimate
        );
        assert!(est.lower <= est.estimate && est.estimate <= est.upper);
        assert!(!est.could_be_exact() || est.upper < 1.0 + 1e-9);
    }

    #[test]
    fn estimate_zero_containment() {
        let (child, parent) = tables(0, 60);
        let est = estimate_containment(&child, &parent, 60, 0.99, 3, &Meter::new()).unwrap();
        assert_eq!(est.estimate, 0.0);
        assert!(!est.could_be_exact());
    }

    #[test]
    fn empty_child_is_trivially_exact() {
        let schema = Schema::flat(&[("id", DataType::Int)]).unwrap();
        let child = PartitionedTable::single(Table::empty(schema.clone()));
        let parent =
            PartitionedTable::single(Table::new(schema, vec![Column::from_ints(0..5)]).unwrap());
        let est = estimate_containment(&child, &parent, 10, 0.95, 4, &Meter::new()).unwrap();
        assert_eq!(est.samples, 0);
        assert!(est.could_be_exact());
    }

    #[test]
    fn interval_narrows_with_more_samples() {
        let (child, parent) = tables(80, 100);
        let small = estimate_containment(&child, &parent, 10, 0.95, 5, &Meter::new()).unwrap();
        let large = estimate_containment(&child, &parent, 100, 0.95, 5, &Meter::new()).unwrap();
        assert!(
            (large.upper - large.lower) < (small.upper - small.lower),
            "more samples → tighter interval"
        );
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn invalid_confidence_panics() {
        let (child, parent) = tables(1, 1);
        let _ = estimate_containment(&child, &parent, 1, 1.5, 0, &Meter::new());
    }
}
