//! Durable session snapshots and write-ahead logging.
//!
//! The paper's enterprise lakes persist in ADLS-style storage, but an
//! [`R2d2Session`](crate::session::R2d2Session) used to be purely in-memory:
//! every process restart paid a full SGB → MMP → CLP bootstrap plus a
//! from-scratch Opt-Ret solve. This module makes session state durable with
//! the classic snapshot + WAL split:
//!
//! * a **snapshot** ([`SessionSnapshot`]) serializes the *entire* session —
//!   lake catalog with partitioned tables (via the `R2D2LAKE` storage
//!   format), schema interner, containment graph, hash-join cache, meter
//!   totals, access log, bootstrap report, update log and the advisor's
//!   [`AdvisorState`] — into one checksummed file;
//! * a **write-ahead log** (framing in [`r2d2_lake::wal`]) appends each
//!   update batch and each access-profile refresh *before* it mutates the
//!   session, so a crash between snapshots loses nothing acknowledged.
//!
//! `R2d2Session::restore` loads the newest intact snapshot generation and
//! replays the WAL tail; torn or corrupt tail records are detected by the
//! per-record length + checksum framing and cleanly dropped. The restored
//! session is **bit-identical** to the uninterrupted one — graph, meter
//! totals, update log and advisor solution — because every piece of state
//! that influences future behaviour (including the hash-join cache, whose
//! hits keep metering schedule-independent) round-trips through the
//! snapshot (`tests/integration_persistence.rs` pins this with a randomized
//! kill-and-restore oracle).
//!
//! ## On-disk layout
//!
//! A persistence directory holds numbered *generations*; generation `N` is
//! `snapshot-00000N.r2d2snap` plus `wal-00000N.r2d2wal` (the updates applied
//! since that snapshot). Rotation ([`R2d2Session::checkpoint`], or
//! automatically every
//! [`PersistenceConfig::snapshot_every_n_updates`] updates) writes
//! generation `N+1` and prunes generations older than `N`. Snapshots are
//! written to a temp file and renamed into place, so a crash mid-write never
//! destroys the previous generation. See `ARCHITECTURE.md` for the
//! byte-level format specification.
//!
//! [`R2d2Session::restore`]: crate::session::R2d2Session::restore
//! [`R2d2Session::checkpoint`]: crate::session::R2d2Session::checkpoint
//! [`AdvisorState`]: r2d2_opt::advisor::AdvisorState

use crate::config::{ClpSampling, PipelineConfig};
use crate::pipeline::{ApproxEdgeReport, PipelineReport, Stage, StageReport};
use crate::session::UpdateReport;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use r2d2_graph::diff::EdgeDelta;
use r2d2_graph::{codec as graph_codec, ContainmentGraph};
use r2d2_lake::snapshot as wire;
use r2d2_lake::wal::{self, WalWriter};
use r2d2_lake::{DataLake, HashJoinCache, LakeError, LakeUpdate, Result, SchemaInterner};
use r2d2_opt::advisor::AdvisorState;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Leading/trailing magic of a snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"R2D2SNAP";

/// Current snapshot format version. Version 4 embeds `R2D2LAKE` v5 tables
/// (per-column MinHash signatures in the stats footer, so a restored
/// session's approximate candidate tier gates bit-identically without
/// re-hashing), persists the optional [`crate::config::ApproxConfig`] inside
/// the pipeline config, appends the §7.2.2 per-edge estimate report to the
/// bootstrap report, and carries the 17-counter meter (the two
/// `approx_probes`/`approx_prunes` counters are new). Version-1/2/3
/// snapshots fail with an explicit "unsupported snapshot version" error.
pub const SNAPSHOT_VERSION: u32 = 4;

/// Default compaction policy: snapshot after this many updates.
pub const DEFAULT_SNAPSHOT_EVERY: usize = 512;

/// How a session persists itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistenceConfig {
    /// Directory holding the snapshot + WAL generations.
    pub dir: PathBuf,
    /// Compaction policy: after this many applied updates since the last
    /// snapshot, the session automatically writes a fresh snapshot and
    /// rotates the WAL (keeping restart replay short). `0` disables
    /// automatic rotation — only explicit
    /// [`checkpoint`](crate::session::R2d2Session::checkpoint) calls
    /// snapshot.
    pub snapshot_every_n_updates: usize,
}

impl PersistenceConfig {
    /// Persist into `dir` with the default compaction policy (snapshot every
    /// 512 updates).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistenceConfig {
            dir: dir.into(),
            snapshot_every_n_updates: DEFAULT_SNAPSHOT_EVERY,
        }
    }

    /// Override the compaction policy (builder style; `0` = manual only).
    pub fn with_snapshot_every(mut self, n_updates: usize) -> Self {
        self.snapshot_every_n_updates = n_updates;
        self
    }
}

/// Live persistence state attached to a session.
#[derive(Debug)]
pub(crate) struct Persistence {
    pub(crate) config: PersistenceConfig,
    /// Current generation number (the snapshot the WAL extends).
    pub(crate) seq: u64,
    pub(crate) wal: WalWriter,
    /// Updates applied since the generation's snapshot was written.
    pub(crate) updates_since_snapshot: usize,
}

/// Path of generation `seq`'s snapshot file.
pub(crate) fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{seq:06}.r2d2snap"))
}

/// Path of generation `seq`'s write-ahead log.
pub(crate) fn wal_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:06}.r2d2wal"))
}

/// Snapshot generations present in `dir`, ascending.
pub(crate) fn list_generations(dir: &Path) -> Result<Vec<u64>> {
    let mut seqs = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(rest) = name
            .strip_prefix("snapshot-")
            .and_then(|r| r.strip_suffix(".r2d2snap"))
        {
            if let Ok(seq) = rest.parse::<u64>() {
                seqs.push(seq);
            }
        }
    }
    seqs.sort_unstable();
    Ok(seqs)
}

/// Delete every generation older than `keep_from` (both snapshot and WAL).
/// Best-effort: missing files are ignored.
pub(crate) fn prune_generations(dir: &Path, keep_from: u64) -> Result<()> {
    for seq in list_generations(dir)? {
        if seq < keep_from {
            std::fs::remove_file(snapshot_path(dir, seq)).ok();
            std::fs::remove_file(wal_path(dir, seq)).ok();
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// WAL record payloads
// ---------------------------------------------------------------------------

/// One logical write-ahead-log record (the payload inside
/// [`r2d2_lake::wal`]'s length + checksum framing).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalRecord {
    /// One `apply_batch` invocation, recorded *before* execution. Replay
    /// re-runs the whole batch; a batch whose mutation failed mid-way fails
    /// at the same update again, reproducing the original partial
    /// application exactly.
    Batch(Vec<LakeUpdate>),
    /// One `refresh_access_profiles` drain: the observed per-dataset access
    /// tallies plus the session's meter totals at the drain — runtime
    /// read-side traffic that replay cannot regenerate, so the record
    /// carries it verbatim and replay tops the meter up to the recorded
    /// totals. Refreshes (and checkpoints) are thus the *sync points* for
    /// read telemetry; raw traffic served between the last sync and a crash
    /// is lost (it is telemetry, not session state).
    AccessRefresh {
        /// Per-dataset access tallies drained from the lake's access log.
        counts: BTreeMap<u64, u64>,
        /// Cumulative meter totals at the drain.
        meter: r2d2_lake::OpCounts,
    },
}

impl WalRecord {
    pub(crate) fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            WalRecord::Batch(updates) => {
                buf.put_u8(0);
                buf.put_u32_le(updates.len() as u32);
                for u in updates {
                    wire::put_update(&mut buf, u);
                }
            }
            WalRecord::AccessRefresh { counts, meter } => {
                buf.put_u8(1);
                wire::put_count_map(&mut buf, counts);
                wire::put_op_counts(&mut buf, meter);
            }
        }
        buf.freeze()
    }

    pub(crate) fn decode(buf: &mut Bytes) -> Result<WalRecord> {
        Ok(match wire::get_tag(buf, "wal record tag")? {
            0 => {
                wire::expect_len(buf, 4, "wal batch length")?;
                let len = buf.get_u32_le() as usize;
                let mut updates = Vec::with_capacity(len.min(4096));
                for _ in 0..len {
                    updates.push(wire::get_update(buf)?);
                }
                WalRecord::Batch(updates)
            }
            1 => WalRecord::AccessRefresh {
                counts: wire::get_count_map(buf)?,
                meter: wire::get_op_counts(buf)?,
            },
            other => {
                return Err(LakeError::Corrupt(format!(
                    "unknown wal record tag {other}"
                )))
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Session snapshot codec
// ---------------------------------------------------------------------------

/// Borrowed view of everything a snapshot must capture. Assembled by
/// `R2d2Session::snapshot` (the fields are private to the session).
pub(crate) struct SnapshotParts<'a> {
    pub config: &'a PipelineConfig,
    pub snapshot_every_n_updates: usize,
    pub lake: &'a DataLake,
    pub graph: &'a ContainmentGraph,
    pub interner: &'a SchemaInterner,
    pub cache: &'a HashJoinCache,
    pub bootstrap: &'a PipelineReport,
    pub updates_applied: usize,
    pub log: &'a [UpdateReport],
    pub advisor: Option<&'a AdvisorState>,
}

/// Owned result of decoding a snapshot; `R2d2Session::from_snapshot` turns
/// it back into a live session.
pub(crate) struct DecodedSnapshot {
    pub config: PipelineConfig,
    pub snapshot_every_n_updates: usize,
    pub lake: DataLake,
    pub graph: ContainmentGraph,
    pub interner: SchemaInterner,
    pub cache: HashJoinCache,
    pub bootstrap: PipelineReport,
    pub updates_applied: usize,
    pub log: Vec<UpdateReport>,
    pub advisor: Option<AdvisorState>,
}

fn put_duration(buf: &mut BytesMut, d: &Duration) {
    buf.put_u64_le(d.as_secs());
    buf.put_u32_le(d.subsec_nanos());
}

fn get_duration(buf: &mut Bytes) -> Result<Duration> {
    wire::expect_len(buf, 12, "duration")?;
    let secs = buf.get_u64_le();
    let nanos = buf.get_u32_le();
    Ok(Duration::new(secs, nanos))
}

fn put_pipeline_config(buf: &mut BytesMut, c: &PipelineConfig) {
    wire::put_usize(buf, c.clp_columns);
    wire::put_usize(buf, c.clp_rows);
    wire::put_usize(buf, c.clp_rounds);
    buf.put_u8(match c.clp_sampling {
        ClpSampling::RandomRows => 0,
        ClpSampling::PredicateFilter => 1,
        ClpSampling::BothSides => 2,
    });
    buf.put_u64_le(c.seed);
    wire::put_bool(buf, c.mmp_typed_columns_only);
    wire::put_bool(buf, c.mmp_distinct_gate);
    wire::put_bool(buf, c.clp_bloom_gate);
    wire::put_usize(buf, c.threads);
    match &c.approx {
        None => buf.put_u8(0),
        Some(a) => {
            buf.put_u8(1);
            wire::put_usize(buf, a.signature_k);
            wire::put_usize(buf, a.lsh_bands);
            wire::put_usize(buf, a.lsh_rows);
            buf.put_f64_le(a.threshold);
            wire::put_usize(buf, a.report_samples);
            buf.put_f64_le(a.report_confidence);
        }
    }
}

fn get_pipeline_config(buf: &mut Bytes) -> Result<PipelineConfig> {
    let clp_columns = wire::get_usize(buf)?;
    let clp_rows = wire::get_usize(buf)?;
    let clp_rounds = wire::get_usize(buf)?;
    let clp_sampling = match wire::get_tag(buf, "clp sampling tag")? {
        0 => ClpSampling::RandomRows,
        1 => ClpSampling::PredicateFilter,
        2 => ClpSampling::BothSides,
        other => {
            return Err(LakeError::Corrupt(format!(
                "unknown clp sampling tag {other}"
            )))
        }
    };
    let seed = wire::get_u64(buf)?;
    let mmp_typed_columns_only = wire::get_bool(buf)?;
    let mmp_distinct_gate = wire::get_bool(buf)?;
    let clp_bloom_gate = wire::get_bool(buf)?;
    let threads = wire::get_usize(buf)?;
    let approx = match wire::get_tag(buf, "approx config tag")? {
        0 => None,
        1 => Some(crate::config::ApproxConfig {
            signature_k: wire::get_usize(buf)?,
            lsh_bands: wire::get_usize(buf)?,
            lsh_rows: wire::get_usize(buf)?,
            threshold: wire::get_f64(buf)?,
            report_samples: wire::get_usize(buf)?,
            report_confidence: wire::get_f64(buf)?,
        }),
        other => {
            return Err(LakeError::Corrupt(format!(
                "unknown approx config tag {other}"
            )))
        }
    };
    Ok(PipelineConfig {
        clp_columns,
        clp_rows,
        clp_rounds,
        clp_sampling,
        seed,
        mmp_typed_columns_only,
        mmp_distinct_gate,
        clp_bloom_gate,
        threads,
        approx,
    })
}

fn put_graph(buf: &mut BytesMut, graph: &ContainmentGraph) {
    wire::put_bytes(buf, &graph_codec::encode(graph));
}

fn get_graph(buf: &mut Bytes) -> Result<ContainmentGraph> {
    let raw = wire::get_bytes(buf)?;
    let mut cursor = raw.clone();
    let graph = graph_codec::decode(&mut cursor).map_err(|e| LakeError::Corrupt(e.to_string()))?;
    if cursor.remaining() != 0 {
        return Err(LakeError::Corrupt("trailing graph bytes".into()));
    }
    Ok(graph)
}

fn put_pipeline_report(buf: &mut BytesMut, report: &PipelineReport) {
    put_graph(buf, &report.after_sgb);
    put_graph(buf, &report.after_mmp);
    put_graph(buf, &report.after_clp);
    buf.put_u32_le(report.stages.len() as u32);
    for stage in &report.stages {
        buf.put_u8(match stage.stage {
            Stage::Sgb => 0,
            Stage::Mmp => 1,
            Stage::Clp => 2,
        });
        put_duration(buf, &stage.duration);
        wire::put_op_counts(buf, &stage.ops);
        wire::put_usize(buf, stage.edges_after);
    }
    wire::put_usize(buf, report.sgb_clusters);
    put_duration(buf, &report.total_duration);
    buf.put_u32_le(report.approx_edges.len() as u32);
    for edge in &report.approx_edges {
        buf.put_u64_le(edge.parent);
        buf.put_u64_le(edge.child);
        buf.put_f64_le(edge.estimate.estimate);
        buf.put_f64_le(edge.estimate.lower);
        buf.put_f64_le(edge.estimate.upper);
        wire::put_usize(buf, edge.estimate.samples);
        buf.put_f64_le(edge.estimate.confidence);
    }
}

fn get_pipeline_report(buf: &mut Bytes) -> Result<PipelineReport> {
    let after_sgb = get_graph(buf)?;
    let after_mmp = get_graph(buf)?;
    let after_clp = get_graph(buf)?;
    wire::expect_len(buf, 4, "stage count")?;
    let stage_count = buf.get_u32_le() as usize;
    let mut stages = Vec::with_capacity(stage_count.min(8));
    for _ in 0..stage_count {
        let stage = match wire::get_tag(buf, "stage tag")? {
            0 => Stage::Sgb,
            1 => Stage::Mmp,
            2 => Stage::Clp,
            other => return Err(LakeError::Corrupt(format!("unknown stage tag {other}"))),
        };
        stages.push(StageReport {
            stage,
            duration: get_duration(buf)?,
            ops: wire::get_op_counts(buf)?,
            edges_after: wire::get_usize(buf)?,
        });
    }
    let sgb_clusters = wire::get_usize(buf)?;
    let total_duration = get_duration(buf)?;
    wire::expect_len(buf, 4, "approx edge count")?;
    let approx_count = buf.get_u32_le() as usize;
    let mut approx_edges = Vec::with_capacity(approx_count.min(4096));
    for _ in 0..approx_count {
        wire::expect_len(buf, 16, "approx edge endpoints")?;
        let parent = buf.get_u64_le();
        let child = buf.get_u64_le();
        let estimate = crate::approx::ContainmentEstimate {
            estimate: wire::get_f64(buf)?,
            lower: wire::get_f64(buf)?,
            upper: wire::get_f64(buf)?,
            samples: wire::get_usize(buf)?,
            confidence: wire::get_f64(buf)?,
        };
        approx_edges.push(ApproxEdgeReport {
            parent,
            child,
            estimate,
        });
    }
    Ok(PipelineReport {
        after_sgb,
        after_mmp,
        after_clp,
        stages,
        sgb_clusters,
        total_duration,
        approx_edges,
    })
}

fn put_update_report(buf: &mut BytesMut, report: &UpdateReport) {
    wire::put_usize(buf, report.updates_applied);
    buf.put_u32_le(report.applied.len() as u32);
    for a in &report.applied {
        wire::put_applied(buf, a);
    }
    wire::put_usize(buf, report.datasets_changed);
    wire::put_usize(buf, report.candidates_checked);
    wire::put_usize(buf, report.rows_sampled);
    buf.put_u32_le(report.delta.added.len() as u32);
    for &(p, c) in &report.delta.added {
        buf.put_u64_le(p);
        buf.put_u64_le(c);
    }
    buf.put_u32_le(report.delta.removed.len() as u32);
    for &(p, c) in &report.delta.removed {
        buf.put_u64_le(p);
        buf.put_u64_le(c);
    }
    wire::put_op_counts(buf, &report.ops);
    put_duration(buf, &report.duration);
}

fn get_edge_list(buf: &mut Bytes) -> Result<Vec<(u64, u64)>> {
    wire::expect_len(buf, 4, "edge list length")?;
    let len = buf.get_u32_le() as usize;
    let mut edges = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        wire::expect_len(buf, 16, "edge pair")?;
        let p = buf.get_u64_le();
        let c = buf.get_u64_le();
        edges.push((p, c));
    }
    Ok(edges)
}

fn get_update_report(buf: &mut Bytes) -> Result<UpdateReport> {
    let updates_applied = wire::get_usize(buf)?;
    wire::expect_len(buf, 4, "applied list length")?;
    let applied_len = buf.get_u32_le() as usize;
    let mut applied = Vec::with_capacity(applied_len.min(4096));
    for _ in 0..applied_len {
        applied.push(wire::get_applied(buf)?);
    }
    let datasets_changed = wire::get_usize(buf)?;
    let candidates_checked = wire::get_usize(buf)?;
    let rows_sampled = wire::get_usize(buf)?;
    let delta = EdgeDelta {
        added: get_edge_list(buf)?,
        removed: get_edge_list(buf)?,
    };
    let ops = wire::get_op_counts(buf)?;
    let duration = get_duration(buf)?;
    Ok(UpdateReport {
        updates_applied,
        applied,
        datasets_changed,
        candidates_checked,
        rows_sampled,
        delta,
        ops,
        duration,
    })
}

pub(crate) fn encode_snapshot(parts: &SnapshotParts<'_>) -> Bytes {
    let mut body = BytesMut::new();
    put_pipeline_config(&mut body, parts.config);
    wire::put_usize(&mut body, parts.snapshot_every_n_updates);
    wire::put_lake(&mut body, parts.lake);
    put_graph(&mut body, parts.graph);
    wire::put_interner(&mut body, parts.interner);
    wire::put_join_cache(&mut body, parts.cache);
    put_pipeline_report(&mut body, parts.bootstrap);
    wire::put_usize(&mut body, parts.updates_applied);
    body.put_u32_le(parts.log.len() as u32);
    for report in parts.log {
        put_update_report(&mut body, report);
    }
    match parts.advisor {
        None => body.put_u8(0),
        Some(advisor) => {
            body.put_u8(1);
            wire::put_bytes(&mut body, &advisor.encode());
        }
    }
    let body = body.freeze();

    let mut file = BytesMut::with_capacity(body.len() + 28);
    file.put_slice(SNAPSHOT_MAGIC);
    file.put_u32_le(SNAPSHOT_VERSION);
    file.put_slice(&body);
    file.put_u64_le(wal::checksum(&body));
    file.put_slice(SNAPSHOT_MAGIC);
    file.freeze()
}

pub(crate) fn decode_snapshot(bytes: &Bytes) -> Result<DecodedSnapshot> {
    let overhead = 8 + 4 + 8 + 8; // magic + version + checksum + magic
    if bytes.len() < overhead {
        return Err(LakeError::Corrupt("snapshot too small".into()));
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(LakeError::Corrupt("bad snapshot magic".into()));
    }
    if &bytes[bytes.len() - 8..] != SNAPSHOT_MAGIC {
        return Err(LakeError::Corrupt("bad trailing snapshot magic".into()));
    }
    let mut header = bytes.slice(8..12);
    let version = header.get_u32_le();
    if version != SNAPSHOT_VERSION {
        return Err(LakeError::Corrupt(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let body = bytes.slice(12..bytes.len() - 16);
    let mut tail = bytes.slice(bytes.len() - 16..bytes.len() - 8);
    let expected = tail.get_u64_le();
    if wal::checksum(&body) != expected {
        return Err(LakeError::Corrupt("snapshot checksum mismatch".into()));
    }

    let mut buf = body;
    let config = get_pipeline_config(&mut buf)?;
    let snapshot_every_n_updates = wire::get_usize(&mut buf)?;
    let lake = wire::get_lake(&mut buf)?;
    let graph = get_graph(&mut buf)?;
    let interner = wire::get_interner(&mut buf)?;
    let cache = wire::get_join_cache(&mut buf)?;
    let bootstrap = get_pipeline_report(&mut buf)?;
    let updates_applied = wire::get_usize(&mut buf)?;
    wire::expect_len(&buf, 4, "update log length")?;
    let log_len = buf.get_u32_le() as usize;
    let mut log = Vec::with_capacity(log_len.min(4096));
    for _ in 0..log_len {
        log.push(get_update_report(&mut buf)?);
    }
    let advisor = match wire::get_tag(&mut buf, "advisor presence tag")? {
        0 => None,
        1 => {
            let raw = wire::get_bytes(&mut buf)?;
            let mut cursor = raw.clone();
            let state = AdvisorState::decode(&mut cursor)?;
            if cursor.remaining() != 0 {
                return Err(LakeError::Corrupt("trailing advisor bytes".into()));
            }
            Some(state)
        }
        other => {
            return Err(LakeError::Corrupt(format!(
                "unknown advisor presence tag {other}"
            )))
        }
    };
    if buf.remaining() != 0 {
        return Err(LakeError::Corrupt("trailing snapshot bytes".into()));
    }
    Ok(DecodedSnapshot {
        config,
        snapshot_every_n_updates,
        lake,
        graph,
        interner,
        cache,
        bootstrap,
        updates_applied,
        log,
        advisor,
    })
}

/// Write snapshot bytes atomically: temp file in the same directory, fsync,
/// rename into place. A crash mid-write leaves the previous generation
/// untouched.
pub(crate) fn write_snapshot_file(path: &Path, bytes: &Bytes) -> Result<()> {
    let tmp = path.with_extension("r2d2snap.tmp");
    {
        use std::io::Write;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// An encoded, self-contained session snapshot (one generation's
/// `.r2d2snap` file in memory).
///
/// Most callers go through the session-level API —
/// [`enable_persistence`](crate::session::R2d2Session::enable_persistence) /
/// [`checkpoint`](crate::session::R2d2Session::checkpoint) /
/// [`restore`](crate::session::R2d2Session::restore) — which also maintain
/// the WAL. `SessionSnapshot` is the lower-level building block: capture a
/// point-in-time image, ship it around as bytes, and rebuild a session from
/// it (without WAL replay).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    pub(crate) bytes: Bytes,
}

impl SessionSnapshot {
    /// The raw snapshot file image (magic, version, body, checksum).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Wrap raw bytes read from elsewhere; validated on
    /// [`SessionSnapshot::restore`].
    pub fn from_bytes(bytes: impl Into<Bytes>) -> Self {
        SessionSnapshot {
            bytes: bytes.into(),
        }
    }

    /// Write the snapshot to `path` (atomically), returning the byte count.
    pub fn write(&self, path: &Path) -> Result<u64> {
        write_snapshot_file(path, &self.bytes)?;
        Ok(self.bytes.len() as u64)
    }

    /// Read a snapshot file back into memory.
    pub fn read(path: &Path) -> Result<SessionSnapshot> {
        let raw = std::fs::read(path)?;
        Ok(SessionSnapshot {
            bytes: Bytes::from(raw),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_record_round_trip() {
        let records = vec![
            WalRecord::Batch(vec![LakeUpdate::DropDataset {
                id: r2d2_lake::DatasetId(3),
            }]),
            WalRecord::Batch(Vec::new()),
            WalRecord::AccessRefresh {
                counts: BTreeMap::from([(1, 5), (4, 0)]),
                meter: r2d2_lake::OpCounts {
                    rows_scanned: 11,
                    ..Default::default()
                },
            },
        ];
        for record in &records {
            let bytes = record.encode();
            let mut cursor = bytes.clone();
            assert_eq!(&WalRecord::decode(&mut cursor).unwrap(), record);
            assert_eq!(cursor.remaining(), 0);
        }
        let mut bad = Bytes::from(vec![7u8]);
        assert!(WalRecord::decode(&mut bad).is_err());
    }

    #[test]
    fn generation_paths_and_listing() {
        let dir = std::env::temp_dir().join("r2d2_persist_paths");
        std::fs::create_dir_all(&dir).unwrap();
        for stale in list_generations(&dir).unwrap() {
            std::fs::remove_file(snapshot_path(&dir, stale)).ok();
        }
        std::fs::write(snapshot_path(&dir, 3), b"x").unwrap();
        std::fs::write(snapshot_path(&dir, 12), b"x").unwrap();
        std::fs::write(dir.join("unrelated.txt"), b"x").unwrap();
        assert_eq!(list_generations(&dir).unwrap(), vec![3, 12]);
        prune_generations(&dir, 12).unwrap();
        assert_eq!(list_generations(&dir).unwrap(), vec![12]);
        std::fs::remove_file(snapshot_path(&dir, 12)).ok();
        std::fs::remove_file(dir.join("unrelated.txt")).ok();
    }
}
