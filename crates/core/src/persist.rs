//! Durable session snapshots and write-ahead logging.
//!
//! The paper's enterprise lakes persist in ADLS-style storage, but an
//! [`R2d2Session`](crate::session::R2d2Session) used to be purely in-memory:
//! every process restart paid a full SGB → MMP → CLP bootstrap plus a
//! from-scratch Opt-Ret solve. This module makes session state durable with
//! the classic snapshot + WAL split:
//!
//! * a **snapshot** ([`SessionSnapshot`]) serializes the *entire* session —
//!   lake catalog with partitioned tables (via the `R2D2LAKE` storage
//!   format), schema interner, containment graph, hash-join cache, meter
//!   totals, access log, bootstrap report, update log and the advisor's
//!   [`AdvisorState`] — into one checksummed file;
//! * a **write-ahead log** (framing in [`r2d2_lake::wal`]) appends each
//!   update batch and each access-profile refresh *before* it mutates the
//!   session, so a crash between snapshots loses nothing acknowledged.
//!
//! `R2d2Session::restore` loads the newest intact snapshot generation and
//! replays the WAL tail; torn or corrupt tail records are detected by the
//! per-record length + checksum framing and cleanly dropped. The restored
//! session is **bit-identical** to the uninterrupted one — graph, meter
//! totals, update log and advisor solution — because every piece of state
//! that influences future behaviour (including the hash-join cache, whose
//! hits keep metering schedule-independent) round-trips through the
//! snapshot (`tests/integration_persistence.rs` pins this with a randomized
//! kill-and-restore oracle).
//!
//! ## On-disk layout
//!
//! A persistence directory holds numbered *generations*; generation `N` is
//! `snapshot-00000N.r2d2snap` plus WAL segments
//! `wal-00000N-00S.r2d2wal` (the updates applied since that snapshot,
//! rotated into bounded files per
//! [`PersistenceConfig::wal_segment_max_bytes`]). Rotation
//! ([`R2d2Session::checkpoint`], or automatically every
//! [`PersistenceConfig::snapshot_every_n_updates`] updates) writes
//! generation `N+1` and prunes every older generation no surviving restore
//! chain needs. Snapshots are written to a temp file and renamed into place,
//! so a crash mid-write never destroys the previous generation.
//!
//! ## Delta generations
//!
//! A generation's snapshot is either **full** (self-contained) or a
//! **delta**: only the state dirtied since the previous generation — dirty
//! lake datasets, graph node tail + edge diff, interner tail, join-cache
//! add/remove sets, update-log tail and the advisor's component diff — with
//! a header naming the base generation's sequence number and body checksum.
//! Restore walks the chain (full base, then each delta oldest → newest) and
//! verifies every link's checksum against the header of the delta above it;
//! any broken link makes the whole generation fall back, exactly as a
//! corrupt full snapshot does. Every
//! [`PersistenceConfig::rebase_every_k_deltas`] deltas, a checkpoint
//! *rebases*: it writes a fresh full snapshot, bounding chain length and
//! letting the chain-aware pruner finally drop the old chain. See
//! `ARCHITECTURE.md` for the byte-level format specification.
//!
//! [`R2d2Session::restore`]: crate::session::R2d2Session::restore
//! [`R2d2Session::checkpoint`]: crate::session::R2d2Session::checkpoint
//! [`AdvisorState`]: r2d2_opt::advisor::AdvisorState

use crate::config::{ClpSampling, PipelineConfig};
use crate::pipeline::{ApproxEdgeReport, PipelineReport, Stage, StageReport};
use crate::session::UpdateReport;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use r2d2_graph::diff::EdgeDelta;
use r2d2_graph::{codec as graph_codec, ContainmentGraph};
use r2d2_lake::snapshot as wire;
use r2d2_lake::wal::{self, WalWriter};
use r2d2_lake::{DataLake, HashJoinCache, LakeError, LakeUpdate, Result, SchemaInterner};
use r2d2_opt::advisor::AdvisorState;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// Leading/trailing magic of a snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"R2D2SNAP";

/// Current snapshot format version. Version 5 introduces **delta
/// generations**: a one-byte kind tag follows the version, and delta files
/// carry a chain header naming the base generation they patch
/// (`base_seq u64 | base_checksum u64`); the body of a full snapshot also
/// gained the `rebase_every_k_deltas` / `wal_segment_max_bytes` policy
/// fields. Version-1/2/3/4 snapshots fail with an explicit "unsupported
/// snapshot version" error (a v4 reader likewise rejects v5 files by the
/// same check).
pub const SNAPSHOT_VERSION: u32 = 5;

/// Snapshot kind tag: a self-contained full snapshot.
const KIND_FULL: u8 = 0;
/// Snapshot kind tag: a delta patching the previous generation.
const KIND_DELTA: u8 = 1;

/// Default compaction policy: snapshot after this many updates.
pub const DEFAULT_SNAPSHOT_EVERY: usize = 512;

/// Default rebase policy: write a full snapshot after this many consecutive
/// delta generations.
pub const DEFAULT_REBASE_EVERY: usize = 8;

/// How a session persists itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistenceConfig {
    /// Directory holding the snapshot + WAL generations.
    pub dir: PathBuf,
    /// Compaction policy: after this many applied updates since the last
    /// snapshot, the session automatically writes a fresh snapshot and
    /// rotates the WAL (keeping restart replay short). `0` disables
    /// automatic rotation — only explicit
    /// [`checkpoint`](crate::session::R2d2Session::checkpoint) calls
    /// snapshot.
    pub snapshot_every_n_updates: usize,
    /// Rebase policy: a checkpoint writes a *delta* generation (only the
    /// state dirtied since the previous generation) unless this many deltas
    /// have accumulated since the last full snapshot, in which case it
    /// rebases with a fresh full snapshot. `0` disables deltas — every
    /// checkpoint writes a full snapshot (the pre-v5 behaviour).
    pub rebase_every_k_deltas: usize,
    /// WAL segment budget in bytes: the active segment rotates into a new
    /// file once it grows past this size, so compaction can drop bounded
    /// segments instead of one unbounded log. `0` disables rotation (one
    /// segment per generation).
    pub wal_segment_max_bytes: u64,
}

impl PersistenceConfig {
    /// Persist into `dir` with the default policies (snapshot every 512
    /// updates, rebase every 8 deltas, unbounded WAL segments).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        PersistenceConfig {
            dir: dir.into(),
            snapshot_every_n_updates: DEFAULT_SNAPSHOT_EVERY,
            rebase_every_k_deltas: DEFAULT_REBASE_EVERY,
            wal_segment_max_bytes: 0,
        }
    }

    /// Override the compaction policy (builder style; `0` = manual only).
    pub fn with_snapshot_every(mut self, n_updates: usize) -> Self {
        self.snapshot_every_n_updates = n_updates;
        self
    }

    /// Override the rebase policy (builder style; `0` = always full).
    pub fn with_rebase_every(mut self, k_deltas: usize) -> Self {
        self.rebase_every_k_deltas = k_deltas;
        self
    }

    /// Override the WAL segment budget (builder style; `0` = unbounded).
    pub fn with_wal_segment_max_bytes(mut self, bytes: u64) -> Self {
        self.wal_segment_max_bytes = bytes;
        self
    }
}

/// Injectable crash points for the fault-injection restore tests.
///
/// The persistence writer consults the installed hook at every named write
/// site (e.g. `"delta:tmp-written"`, `"rotate:created"`, `"prune:mid"`);
/// returning `true` injects an I/O error *at exactly that point*, leaving
/// the on-disk state as a real crash there would. Production sessions carry
/// [`Failpoints::none`] and pay one `Option` check per site.
#[derive(Clone, Default)]
pub struct Failpoints(Option<FailpointHook>);

type FailpointHook = std::sync::Arc<dyn Fn(&str) -> bool + Send + Sync>;

impl std::fmt::Debug for Failpoints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(_) => f.write_str("Failpoints(installed)"),
            None => f.write_str("Failpoints(none)"),
        }
    }
}

impl Failpoints {
    /// Install a hook, called with the site name at every crash point;
    /// returning `true` injects an I/O error there.
    pub fn new(hook: impl Fn(&str) -> bool + Send + Sync + 'static) -> Self {
        Failpoints(Some(std::sync::Arc::new(hook)))
    }

    /// No injected crash points (the default).
    pub fn none() -> Self {
        Failpoints(None)
    }

    /// Consult the hook at one named site.
    pub(crate) fn hit(&self, site: &str) -> Result<()> {
        if let Some(hook) = &self.0 {
            if hook(site) {
                return Err(LakeError::Io(std::io::Error::new(
                    std::io::ErrorKind::Interrupted,
                    format!("injected crash at {site}"),
                )));
            }
        }
        Ok(())
    }
}

/// Live persistence state attached to a session.
#[derive(Debug)]
pub(crate) struct Persistence {
    pub(crate) config: PersistenceConfig,
    /// Current generation number (the snapshot the WAL extends).
    pub(crate) seq: u64,
    /// Index of the active WAL segment within this generation.
    pub(crate) segment: u32,
    pub(crate) wal: WalWriter,
    /// Stats of this generation's already-rotated (closed) segments.
    pub(crate) retired_segments: wal::WalStats,
    /// Updates applied since the generation's snapshot was written.
    pub(crate) updates_since_snapshot: usize,
    /// Consecutive delta generations since the last full snapshot (0 right
    /// after a full snapshot).
    pub(crate) deltas_since_full: usize,
    /// Fingerprints of the state this generation's snapshot captured — what
    /// the next delta checkpoint diffs against.
    pub(crate) base: BaseCapture,
}

impl Persistence {
    /// Append one WAL record, rotating the active segment first when it has
    /// outgrown [`PersistenceConfig::wal_segment_max_bytes`]. Rotation
    /// happens *before* the record is framed, so a crash between creating
    /// the next segment and appending (site `"rotate:created"`) loses a
    /// record that was never acknowledged — exactly the write-ahead
    /// contract.
    pub(crate) fn append(&mut self, payload: &[u8], failpoints: &Failpoints) -> Result<()> {
        let budget = self.config.wal_segment_max_bytes;
        if budget > 0 && self.wal.bytes_written() >= budget {
            let next = self.segment + 1;
            let writer = WalWriter::create(
                &wal_segment_path(&self.config.dir, self.seq, next),
                self.seq,
                next,
            )?;
            let old = std::mem::replace(&mut self.wal, writer);
            self.retired_segments = self.retired_segments.plus(&old.stats());
            self.segment = next;
            failpoints.hit("rotate:created")?;
        }
        self.wal.append(payload)
    }

    /// This generation's WAL stats: retired segments plus the active writer.
    pub(crate) fn wal_stats(&self) -> wal::WalStats {
        self.retired_segments.plus(&self.wal.stats())
    }
}

/// Fingerprints of the session state captured by the current generation's
/// snapshot — everything a delta checkpoint needs to diff the live session
/// against, plus the chain identity (`seq`, body checksum) the delta's
/// header will name as its base.
#[derive(Debug)]
pub(crate) struct BaseCapture {
    /// Generation whose snapshot these fingerprints describe.
    pub(crate) seq: u64,
    /// Body checksum of that snapshot file (the chain link).
    pub(crate) body_checksum: u64,
    /// Lake fingerprint: id → (content generation, access profile).
    pub(crate) lake: BTreeMap<u64, (u64, r2d2_lake::AccessProfile)>,
    /// Graph fingerprint (node list + annotated edges).
    pub(crate) graph: graph_codec::GraphCapture,
    /// Interner length (interners only grow; the tail is the diff).
    pub(crate) interner_len: usize,
    /// Sorted join-cache key set (entries are immutable per key).
    pub(crate) cache_keys: Vec<wire::CacheKey>,
    /// Update-log length (the log only appends).
    pub(crate) log_len: usize,
    /// Advisor fingerprint, when the advisor was enabled at the snapshot.
    pub(crate) advisor: Option<r2d2_opt::advisor::AdvisorCapture>,
}

/// Capture the fingerprints of the state `parts` describes, as the base for
/// the next delta checkpoint.
pub(crate) fn capture_base(seq: u64, body_checksum: u64, parts: &SnapshotParts<'_>) -> BaseCapture {
    BaseCapture {
        seq,
        body_checksum,
        lake: wire::lake_fingerprint(parts.lake),
        graph: graph_codec::capture(parts.graph),
        interner_len: parts.interner.len(),
        cache_keys: wire::cache_keys(parts.cache),
        log_len: parts.log.len(),
        advisor: parts.advisor.map(|a| a.capture()),
    }
}

/// Path of generation `seq`'s snapshot file.
pub(crate) fn snapshot_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("snapshot-{seq:06}.r2d2snap"))
}

/// Path of segment `segment` of generation `seq`'s write-ahead log.
pub(crate) fn wal_segment_path(dir: &Path, seq: u64, segment: u32) -> PathBuf {
    dir.join(format!("wal-{seq:06}-{segment:03}.r2d2wal"))
}

/// Snapshot generations present in `dir`, ascending.
pub(crate) fn list_generations(dir: &Path) -> Result<Vec<u64>> {
    let mut seqs = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(rest) = name
            .strip_prefix("snapshot-")
            .and_then(|r| r.strip_suffix(".r2d2snap"))
        {
            if let Ok(seq) = rest.parse::<u64>() {
                seqs.push(seq);
            }
        }
    }
    seqs.sort_unstable();
    Ok(seqs)
}

/// WAL segments of generation `seq` present in `dir`, ascending by segment
/// index.
pub(crate) fn list_wal_segments(dir: &Path, seq: u64) -> Result<Vec<(u32, PathBuf)>> {
    let prefix = format!("wal-{seq:06}-");
    let mut segments = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(rest) = name
            .strip_prefix(prefix.as_str())
            .and_then(|r| r.strip_suffix(".r2d2wal"))
        {
            if let Ok(segment) = rest.parse::<u32>() {
                segments.push((segment, dir.join(name.as_ref())));
            }
        }
    }
    segments.sort_unstable_by_key(|&(segment, _)| segment);
    Ok(segments)
}

/// The generations a restore starting at `seq` would read: `seq` itself plus
/// every chain link down to (and including) its full-snapshot base, by cheap
/// header peeks — bodies are not decoded or checksummed.
pub(crate) fn chain_members(dir: &Path, seq: u64) -> Result<Vec<u64>> {
    let mut members = vec![seq];
    let mut at = seq;
    loop {
        match peek_snapshot_kind(&snapshot_path(dir, at))? {
            SnapshotKind::Full => break,
            SnapshotKind::Delta { base_seq, .. } => {
                if base_seq >= at {
                    return Err(LakeError::Corrupt(format!(
                        "delta chain does not descend at generation {at}"
                    )));
                }
                members.push(base_seq);
                at = base_seq;
            }
        }
    }
    Ok(members)
}

/// Delete every generation no surviving restore chain needs: the keep set is
/// the chain of `current` plus the chain of the newest older generation (the
/// fallback a restore would walk if `current` is broken). Never deletes a
/// delta chain's base while a dependent delta survives — the whole chain is
/// in the keep set. Any unreadable chain makes pruning a no-op (keeping
/// extra files is always safe; deleting a link is not). Returns the number
/// of WAL segment files compacted away.
pub(crate) fn prune_generations(dir: &Path, current: u64, failpoints: &Failpoints) -> Result<u64> {
    let generations = list_generations(dir)?;
    let mut keep: std::collections::BTreeSet<u64> = match chain_members(dir, current) {
        Ok(members) => members.into_iter().collect(),
        Err(_) => return Ok(0),
    };
    if let Some(&prev) = generations.iter().rev().find(|&&g| g < current) {
        match chain_members(dir, prev) {
            Ok(members) => keep.extend(members),
            Err(_) => return Ok(0),
        }
    }
    let mut compacted = 0u64;
    failpoints.hit("prune:begin")?;
    for seq in generations {
        if keep.contains(&seq) {
            continue;
        }
        std::fs::remove_file(snapshot_path(dir, seq)).ok();
        for (_, path) in list_wal_segments(dir, seq)? {
            std::fs::remove_file(path).ok();
            compacted += 1;
        }
        failpoints.hit("prune:mid")?;
    }
    Ok(compacted)
}

// ---------------------------------------------------------------------------
// WAL record payloads
// ---------------------------------------------------------------------------

/// One logical write-ahead-log record (the payload inside
/// [`r2d2_lake::wal`]'s length + checksum framing).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalRecord {
    /// One `apply_batch` invocation, recorded *before* execution. Replay
    /// re-runs the whole batch; a batch whose mutation failed mid-way fails
    /// at the same update again, reproducing the original partial
    /// application exactly.
    Batch(Vec<LakeUpdate>),
    /// One `refresh_access_profiles` drain: the observed per-dataset access
    /// tallies plus the session's meter totals at the drain — runtime
    /// read-side traffic that replay cannot regenerate, so the record
    /// carries it verbatim and replay tops the meter up to the recorded
    /// totals. Refreshes (and checkpoints) are thus the *sync points* for
    /// read telemetry; raw traffic served between the last sync and a crash
    /// is lost (it is telemetry, not session state).
    AccessRefresh {
        /// Per-dataset access tallies drained from the lake's access log.
        counts: BTreeMap<u64, u64>,
        /// Cumulative meter totals at the drain.
        meter: r2d2_lake::OpCounts,
    },
}

impl WalRecord {
    pub(crate) fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        match self {
            WalRecord::Batch(updates) => {
                buf.put_u8(0);
                buf.put_u32_le(updates.len() as u32);
                for u in updates {
                    wire::put_update(&mut buf, u);
                }
            }
            WalRecord::AccessRefresh { counts, meter } => {
                buf.put_u8(1);
                wire::put_count_map(&mut buf, counts);
                wire::put_op_counts(&mut buf, meter);
            }
        }
        buf.freeze()
    }

    pub(crate) fn decode(buf: &mut Bytes) -> Result<WalRecord> {
        Ok(match wire::get_tag(buf, "wal record tag")? {
            0 => {
                wire::expect_len(buf, 4, "wal batch length")?;
                let len = buf.get_u32_le() as usize;
                let mut updates = Vec::with_capacity(len.min(4096));
                for _ in 0..len {
                    updates.push(wire::get_update(buf)?);
                }
                WalRecord::Batch(updates)
            }
            1 => WalRecord::AccessRefresh {
                counts: wire::get_count_map(buf)?,
                meter: wire::get_op_counts(buf)?,
            },
            other => {
                return Err(LakeError::Corrupt(format!(
                    "unknown wal record tag {other}"
                )))
            }
        })
    }
}

// ---------------------------------------------------------------------------
// Session snapshot codec
// ---------------------------------------------------------------------------

/// Borrowed view of everything a snapshot must capture. Assembled by
/// `R2d2Session::snapshot` (the fields are private to the session).
pub(crate) struct SnapshotParts<'a> {
    pub config: &'a PipelineConfig,
    pub snapshot_every_n_updates: usize,
    pub rebase_every_k_deltas: usize,
    pub wal_segment_max_bytes: u64,
    pub lake: &'a DataLake,
    pub graph: &'a ContainmentGraph,
    pub interner: &'a SchemaInterner,
    pub cache: &'a HashJoinCache,
    pub bootstrap: &'a PipelineReport,
    pub updates_applied: usize,
    pub log: &'a [UpdateReport],
    pub advisor: Option<&'a AdvisorState>,
}

/// Owned result of decoding a snapshot (or a whole delta chain);
/// `R2d2Session::from_snapshot` turns it back into a live session.
pub(crate) struct DecodedSnapshot {
    pub config: PipelineConfig,
    pub snapshot_every_n_updates: usize,
    pub rebase_every_k_deltas: usize,
    pub wal_segment_max_bytes: u64,
    pub lake: DataLake,
    pub graph: ContainmentGraph,
    pub interner: SchemaInterner,
    pub cache: HashJoinCache,
    pub bootstrap: PipelineReport,
    pub updates_applied: usize,
    pub log: Vec<UpdateReport>,
    pub advisor: Option<AdvisorState>,
}

/// What kind of snapshot a generation's file holds, from its header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SnapshotKind {
    /// Self-contained: the body decodes on its own.
    Full,
    /// Patches the generation named by the chain header; the body is a diff
    /// against that base's decoded state.
    Delta {
        /// Generation this delta patches.
        base_seq: u64,
        /// Expected body checksum of the base generation's snapshot file —
        /// the chain-link integrity check.
        base_checksum: u64,
    },
}

/// A validated snapshot file split into its header and body: magic, version
/// and trailing magic checked, body checksum verified.
pub(crate) struct SnapshotFile {
    pub(crate) kind: SnapshotKind,
    pub(crate) body: Bytes,
    /// The body checksum stored in (and verified against) the file — what a
    /// dependent delta's chain header must name.
    pub(crate) body_checksum: u64,
}

fn put_duration(buf: &mut BytesMut, d: &Duration) {
    buf.put_u64_le(d.as_secs());
    buf.put_u32_le(d.subsec_nanos());
}

fn get_duration(buf: &mut Bytes) -> Result<Duration> {
    wire::expect_len(buf, 12, "duration")?;
    let secs = buf.get_u64_le();
    let nanos = buf.get_u32_le();
    Ok(Duration::new(secs, nanos))
}

fn put_pipeline_config(buf: &mut BytesMut, c: &PipelineConfig) {
    wire::put_usize(buf, c.clp_columns);
    wire::put_usize(buf, c.clp_rows);
    wire::put_usize(buf, c.clp_rounds);
    buf.put_u8(match c.clp_sampling {
        ClpSampling::RandomRows => 0,
        ClpSampling::PredicateFilter => 1,
        ClpSampling::BothSides => 2,
    });
    buf.put_u64_le(c.seed);
    wire::put_bool(buf, c.mmp_typed_columns_only);
    wire::put_bool(buf, c.mmp_distinct_gate);
    wire::put_bool(buf, c.clp_bloom_gate);
    wire::put_usize(buf, c.threads);
    match &c.approx {
        None => buf.put_u8(0),
        Some(a) => {
            buf.put_u8(1);
            wire::put_usize(buf, a.signature_k);
            wire::put_usize(buf, a.lsh_bands);
            wire::put_usize(buf, a.lsh_rows);
            buf.put_f64_le(a.threshold);
            wire::put_usize(buf, a.report_samples);
            buf.put_f64_le(a.report_confidence);
        }
    }
}

fn get_pipeline_config(buf: &mut Bytes) -> Result<PipelineConfig> {
    let clp_columns = wire::get_usize(buf)?;
    let clp_rows = wire::get_usize(buf)?;
    let clp_rounds = wire::get_usize(buf)?;
    let clp_sampling = match wire::get_tag(buf, "clp sampling tag")? {
        0 => ClpSampling::RandomRows,
        1 => ClpSampling::PredicateFilter,
        2 => ClpSampling::BothSides,
        other => {
            return Err(LakeError::Corrupt(format!(
                "unknown clp sampling tag {other}"
            )))
        }
    };
    let seed = wire::get_u64(buf)?;
    let mmp_typed_columns_only = wire::get_bool(buf)?;
    let mmp_distinct_gate = wire::get_bool(buf)?;
    let clp_bloom_gate = wire::get_bool(buf)?;
    let threads = wire::get_usize(buf)?;
    let approx = match wire::get_tag(buf, "approx config tag")? {
        0 => None,
        1 => Some(crate::config::ApproxConfig {
            signature_k: wire::get_usize(buf)?,
            lsh_bands: wire::get_usize(buf)?,
            lsh_rows: wire::get_usize(buf)?,
            threshold: wire::get_f64(buf)?,
            report_samples: wire::get_usize(buf)?,
            report_confidence: wire::get_f64(buf)?,
        }),
        other => {
            return Err(LakeError::Corrupt(format!(
                "unknown approx config tag {other}"
            )))
        }
    };
    Ok(PipelineConfig {
        clp_columns,
        clp_rows,
        clp_rounds,
        clp_sampling,
        seed,
        mmp_typed_columns_only,
        mmp_distinct_gate,
        clp_bloom_gate,
        threads,
        approx,
    })
}

fn put_graph(buf: &mut BytesMut, graph: &ContainmentGraph) {
    wire::put_bytes(buf, &graph_codec::encode(graph));
}

fn get_graph(buf: &mut Bytes) -> Result<ContainmentGraph> {
    let raw = wire::get_bytes(buf)?;
    let mut cursor = raw.clone();
    let graph = graph_codec::decode(&mut cursor).map_err(|e| LakeError::Corrupt(e.to_string()))?;
    if cursor.remaining() != 0 {
        return Err(LakeError::Corrupt("trailing graph bytes".into()));
    }
    Ok(graph)
}

fn put_pipeline_report(buf: &mut BytesMut, report: &PipelineReport) {
    put_graph(buf, &report.after_sgb);
    put_graph(buf, &report.after_mmp);
    put_graph(buf, &report.after_clp);
    buf.put_u32_le(report.stages.len() as u32);
    for stage in &report.stages {
        buf.put_u8(match stage.stage {
            Stage::Sgb => 0,
            Stage::Mmp => 1,
            Stage::Clp => 2,
        });
        put_duration(buf, &stage.duration);
        wire::put_op_counts(buf, &stage.ops);
        wire::put_usize(buf, stage.edges_after);
    }
    wire::put_usize(buf, report.sgb_clusters);
    put_duration(buf, &report.total_duration);
    buf.put_u32_le(report.approx_edges.len() as u32);
    for edge in &report.approx_edges {
        buf.put_u64_le(edge.parent);
        buf.put_u64_le(edge.child);
        buf.put_f64_le(edge.estimate.estimate);
        buf.put_f64_le(edge.estimate.lower);
        buf.put_f64_le(edge.estimate.upper);
        wire::put_usize(buf, edge.estimate.samples);
        buf.put_f64_le(edge.estimate.confidence);
    }
}

fn get_pipeline_report(buf: &mut Bytes) -> Result<PipelineReport> {
    let after_sgb = get_graph(buf)?;
    let after_mmp = get_graph(buf)?;
    let after_clp = get_graph(buf)?;
    wire::expect_len(buf, 4, "stage count")?;
    let stage_count = buf.get_u32_le() as usize;
    let mut stages = Vec::with_capacity(stage_count.min(8));
    for _ in 0..stage_count {
        let stage = match wire::get_tag(buf, "stage tag")? {
            0 => Stage::Sgb,
            1 => Stage::Mmp,
            2 => Stage::Clp,
            other => return Err(LakeError::Corrupt(format!("unknown stage tag {other}"))),
        };
        stages.push(StageReport {
            stage,
            duration: get_duration(buf)?,
            ops: wire::get_op_counts(buf)?,
            edges_after: wire::get_usize(buf)?,
        });
    }
    let sgb_clusters = wire::get_usize(buf)?;
    let total_duration = get_duration(buf)?;
    wire::expect_len(buf, 4, "approx edge count")?;
    let approx_count = buf.get_u32_le() as usize;
    let mut approx_edges = Vec::with_capacity(approx_count.min(4096));
    for _ in 0..approx_count {
        wire::expect_len(buf, 16, "approx edge endpoints")?;
        let parent = buf.get_u64_le();
        let child = buf.get_u64_le();
        let estimate = crate::approx::ContainmentEstimate {
            estimate: wire::get_f64(buf)?,
            lower: wire::get_f64(buf)?,
            upper: wire::get_f64(buf)?,
            samples: wire::get_usize(buf)?,
            confidence: wire::get_f64(buf)?,
        };
        approx_edges.push(ApproxEdgeReport {
            parent,
            child,
            estimate,
        });
    }
    Ok(PipelineReport {
        after_sgb,
        after_mmp,
        after_clp,
        stages,
        sgb_clusters,
        total_duration,
        approx_edges,
    })
}

fn put_update_report(buf: &mut BytesMut, report: &UpdateReport) {
    wire::put_usize(buf, report.updates_applied);
    buf.put_u32_le(report.applied.len() as u32);
    for a in &report.applied {
        wire::put_applied(buf, a);
    }
    wire::put_usize(buf, report.datasets_changed);
    wire::put_usize(buf, report.candidates_checked);
    wire::put_usize(buf, report.rows_sampled);
    buf.put_u32_le(report.delta.added.len() as u32);
    for &(p, c) in &report.delta.added {
        buf.put_u64_le(p);
        buf.put_u64_le(c);
    }
    buf.put_u32_le(report.delta.removed.len() as u32);
    for &(p, c) in &report.delta.removed {
        buf.put_u64_le(p);
        buf.put_u64_le(c);
    }
    wire::put_op_counts(buf, &report.ops);
    put_duration(buf, &report.duration);
}

fn get_edge_list(buf: &mut Bytes) -> Result<Vec<(u64, u64)>> {
    wire::expect_len(buf, 4, "edge list length")?;
    let len = buf.get_u32_le() as usize;
    let mut edges = Vec::with_capacity(len.min(4096));
    for _ in 0..len {
        wire::expect_len(buf, 16, "edge pair")?;
        let p = buf.get_u64_le();
        let c = buf.get_u64_le();
        edges.push((p, c));
    }
    Ok(edges)
}

fn get_update_report(buf: &mut Bytes) -> Result<UpdateReport> {
    let updates_applied = wire::get_usize(buf)?;
    wire::expect_len(buf, 4, "applied list length")?;
    let applied_len = buf.get_u32_le() as usize;
    let mut applied = Vec::with_capacity(applied_len.min(4096));
    for _ in 0..applied_len {
        applied.push(wire::get_applied(buf)?);
    }
    let datasets_changed = wire::get_usize(buf)?;
    let candidates_checked = wire::get_usize(buf)?;
    let rows_sampled = wire::get_usize(buf)?;
    let delta = EdgeDelta {
        added: get_edge_list(buf)?,
        removed: get_edge_list(buf)?,
    };
    let ops = wire::get_op_counts(buf)?;
    let duration = get_duration(buf)?;
    Ok(UpdateReport {
        updates_applied,
        applied,
        datasets_changed,
        candidates_checked,
        rows_sampled,
        delta,
        ops,
        duration,
    })
}

/// Wrap an encoded body in the v5 file framing:
/// `magic | version | kind [| base_seq | base_checksum] | body |
/// checksum(body) | magic`.
pub(crate) fn frame_snapshot(kind: SnapshotKind, body: Bytes) -> Bytes {
    let mut file = BytesMut::with_capacity(body.len() + 45);
    file.put_slice(SNAPSHOT_MAGIC);
    file.put_u32_le(SNAPSHOT_VERSION);
    match kind {
        SnapshotKind::Full => file.put_u8(KIND_FULL),
        SnapshotKind::Delta {
            base_seq,
            base_checksum,
        } => {
            file.put_u8(KIND_DELTA);
            file.put_u64_le(base_seq);
            file.put_u64_le(base_checksum);
        }
    }
    file.put_slice(&body);
    file.put_u64_le(wal::checksum(&body));
    file.put_slice(SNAPSHOT_MAGIC);
    file.freeze()
}

/// Validate a snapshot file image and split it into kind + body, verifying
/// magic, version, kind tag and the body checksum.
pub(crate) fn read_snapshot_file(bytes: &Bytes) -> Result<SnapshotFile> {
    let overhead = 8 + 4 + 1 + 8 + 8; // magic + version + kind + checksum + magic
    if bytes.len() < overhead {
        return Err(LakeError::Corrupt("snapshot too small".into()));
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(LakeError::Corrupt("bad snapshot magic".into()));
    }
    if &bytes[bytes.len() - 8..] != SNAPSHOT_MAGIC {
        return Err(LakeError::Corrupt("bad trailing snapshot magic".into()));
    }
    let mut header = bytes.slice(8..bytes.len() - 16);
    let version = header.get_u32_le();
    if version != SNAPSHOT_VERSION {
        return Err(LakeError::Corrupt(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let (kind, body_start) = match header.get_u8() {
        KIND_FULL => (SnapshotKind::Full, 8 + 4 + 1),
        KIND_DELTA => {
            if bytes.len() < overhead + 16 {
                return Err(LakeError::Corrupt("delta snapshot too small".into()));
            }
            let base_seq = header.get_u64_le();
            let base_checksum = header.get_u64_le();
            (
                SnapshotKind::Delta {
                    base_seq,
                    base_checksum,
                },
                8 + 4 + 1 + 16,
            )
        }
        other => {
            return Err(LakeError::Corrupt(format!(
                "unknown snapshot kind tag {other}"
            )))
        }
    };
    let body = bytes.slice(body_start..bytes.len() - 16);
    let mut tail = bytes.slice(bytes.len() - 16..bytes.len() - 8);
    let body_checksum = tail.get_u64_le();
    if wal::checksum(&body) != body_checksum {
        return Err(LakeError::Corrupt("snapshot checksum mismatch".into()));
    }
    Ok(SnapshotFile {
        kind,
        body,
        body_checksum,
    })
}

/// Read just enough of a snapshot file to learn its kind (and, for a delta,
/// its base link) without loading or checksumming the body — the cheap peek
/// [`chain_members`] walks chains with.
pub(crate) fn peek_snapshot_kind(path: &Path) -> Result<SnapshotKind> {
    use std::io::Read;
    let mut file = std::fs::File::open(path)?;
    let mut header = [0u8; 13];
    file.read_exact(&mut header)
        .map_err(|_| LakeError::Corrupt("snapshot header too short".into()))?;
    if &header[..8] != SNAPSHOT_MAGIC {
        return Err(LakeError::Corrupt("bad snapshot magic".into()));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(LakeError::Corrupt(format!(
            "unsupported snapshot version {version}"
        )));
    }
    match header[12] {
        KIND_FULL => Ok(SnapshotKind::Full),
        KIND_DELTA => {
            let mut chain = [0u8; 16];
            file.read_exact(&mut chain)
                .map_err(|_| LakeError::Corrupt("delta chain header too short".into()))?;
            Ok(SnapshotKind::Delta {
                base_seq: u64::from_le_bytes(chain[..8].try_into().expect("8 bytes")),
                base_checksum: u64::from_le_bytes(chain[8..].try_into().expect("8 bytes")),
            })
        }
        other => Err(LakeError::Corrupt(format!(
            "unknown snapshot kind tag {other}"
        ))),
    }
}

/// Encode the full (self-contained) snapshot body.
pub(crate) fn encode_snapshot_body(parts: &SnapshotParts<'_>) -> Bytes {
    let mut body = BytesMut::new();
    put_pipeline_config(&mut body, parts.config);
    wire::put_usize(&mut body, parts.snapshot_every_n_updates);
    wire::put_usize(&mut body, parts.rebase_every_k_deltas);
    body.put_u64_le(parts.wal_segment_max_bytes);
    wire::put_lake(&mut body, parts.lake);
    put_graph(&mut body, parts.graph);
    wire::put_interner(&mut body, parts.interner);
    wire::put_join_cache(&mut body, parts.cache);
    put_pipeline_report(&mut body, parts.bootstrap);
    wire::put_usize(&mut body, parts.updates_applied);
    body.put_u32_le(parts.log.len() as u32);
    for report in parts.log {
        put_update_report(&mut body, report);
    }
    match parts.advisor {
        None => body.put_u8(0),
        Some(advisor) => {
            body.put_u8(1);
            wire::put_bytes(&mut body, &advisor.encode());
        }
    }
    body.freeze()
}

/// Encode a complete full-snapshot file image (framing included).
pub(crate) fn encode_snapshot(parts: &SnapshotParts<'_>) -> Bytes {
    frame_snapshot(SnapshotKind::Full, encode_snapshot_body(parts))
}

/// Encode a delta body: the live state diffed against `base` (the previous
/// generation's [`BaseCapture`]). The bootstrap report is immutable after
/// bootstrap and is *not* re-encoded — it rides with the chain's full base.
/// This is what makes a delta O(dirtied state) instead of O(lake).
pub(crate) fn encode_delta_body(parts: &SnapshotParts<'_>, base: &BaseCapture) -> Bytes {
    let mut body = BytesMut::new();
    put_pipeline_config(&mut body, parts.config);
    wire::put_usize(&mut body, parts.snapshot_every_n_updates);
    wire::put_usize(&mut body, parts.rebase_every_k_deltas);
    body.put_u64_le(parts.wal_segment_max_bytes);
    wire::put_lake_delta(&mut body, parts.lake, &base.lake);
    wire::put_bytes(
        &mut body,
        &graph_codec::encode_delta(parts.graph, &base.graph),
    );
    wire::put_interner_tail(&mut body, parts.interner, base.interner_len);
    wire::put_join_cache_delta(&mut body, parts.cache, &base.cache_keys);
    wire::put_usize(&mut body, parts.updates_applied);
    // Update-log tail: the log only appends, so the diff is the new reports.
    wire::put_usize(&mut body, base.log_len);
    body.put_u32_le((parts.log.len() - base.log_len) as u32);
    for report in &parts.log[base.log_len..] {
        put_update_report(&mut body, report);
    }
    // Advisor: component diff when possible; full re-encode when the cost
    // model/config changed or the advisor was enabled since the base;
    // absent when disabled.
    match (parts.advisor, &base.advisor) {
        (None, _) => body.put_u8(0),
        (Some(advisor), Some(capture)) => match advisor.encode_delta(capture) {
            Some(delta) => {
                body.put_u8(2);
                wire::put_bytes(&mut body, &delta);
            }
            None => {
                body.put_u8(1);
                wire::put_bytes(&mut body, &advisor.encode());
            }
        },
        (Some(advisor), None) => {
            body.put_u8(1);
            wire::put_bytes(&mut body, &advisor.encode());
        }
    }
    body.freeze()
}

/// Decode a full snapshot body (as produced by [`encode_snapshot_body`]).
pub(crate) fn decode_snapshot_body(body: Bytes) -> Result<DecodedSnapshot> {
    let mut buf = body;
    let config = get_pipeline_config(&mut buf)?;
    let snapshot_every_n_updates = wire::get_usize(&mut buf)?;
    let rebase_every_k_deltas = wire::get_usize(&mut buf)?;
    let wal_segment_max_bytes = wire::get_u64(&mut buf)?;
    let lake = wire::get_lake(&mut buf)?;
    let graph = get_graph(&mut buf)?;
    let interner = wire::get_interner(&mut buf)?;
    let cache = wire::get_join_cache(&mut buf)?;
    let bootstrap = get_pipeline_report(&mut buf)?;
    let updates_applied = wire::get_usize(&mut buf)?;
    wire::expect_len(&buf, 4, "update log length")?;
    let log_len = buf.get_u32_le() as usize;
    let mut log = Vec::with_capacity(log_len.min(4096));
    for _ in 0..log_len {
        log.push(get_update_report(&mut buf)?);
    }
    let advisor = match wire::get_tag(&mut buf, "advisor presence tag")? {
        0 => None,
        1 => {
            let raw = wire::get_bytes(&mut buf)?;
            let mut cursor = raw.clone();
            let state = AdvisorState::decode(&mut cursor)?;
            if cursor.remaining() != 0 {
                return Err(LakeError::Corrupt("trailing advisor bytes".into()));
            }
            Some(state)
        }
        other => {
            return Err(LakeError::Corrupt(format!(
                "unknown advisor presence tag {other}"
            )))
        }
    };
    if buf.remaining() != 0 {
        return Err(LakeError::Corrupt("trailing snapshot bytes".into()));
    }
    Ok(DecodedSnapshot {
        config,
        snapshot_every_n_updates,
        rebase_every_k_deltas,
        wal_segment_max_bytes,
        lake,
        graph,
        interner,
        cache,
        bootstrap,
        updates_applied,
        log,
        advisor,
    })
}

/// Patch `base` — the decoded state of the generation below — with a delta
/// body. Every section verifies it splices onto the exact state it was
/// diffed from (interner length, graph node count, log length, advisor
/// identity), so a chain stitched from the wrong files errors cleanly.
pub(crate) fn apply_delta_body(body: Bytes, base: &mut DecodedSnapshot) -> Result<()> {
    let mut buf = body;
    base.config = get_pipeline_config(&mut buf)?;
    base.snapshot_every_n_updates = wire::get_usize(&mut buf)?;
    base.rebase_every_k_deltas = wire::get_usize(&mut buf)?;
    base.wal_segment_max_bytes = wire::get_u64(&mut buf)?;
    wire::apply_lake_delta(&mut buf, &mut base.lake)?;
    let graph_bytes = wire::get_bytes(&mut buf)?;
    let mut cursor = graph_bytes.clone();
    graph_codec::apply_delta(&mut base.graph, &mut cursor)
        .map_err(|e| LakeError::Corrupt(e.to_string()))?;
    if cursor.remaining() != 0 {
        return Err(LakeError::Corrupt("trailing graph delta bytes".into()));
    }
    wire::apply_interner_tail(&mut buf, &mut base.interner)?;
    wire::apply_join_cache_delta(&mut buf, &base.cache)?;
    base.updates_applied = wire::get_usize(&mut buf)?;
    let log_base = wire::get_usize(&mut buf)?;
    if base.log.len() != log_base {
        return Err(LakeError::Corrupt(format!(
            "update-log tail expects base length {log_base}, found {}",
            base.log.len()
        )));
    }
    wire::expect_len(&buf, 4, "update log tail length")?;
    let added = buf.get_u32_le() as usize;
    for _ in 0..added {
        base.log.push(get_update_report(&mut buf)?);
    }
    match wire::get_tag(&mut buf, "advisor delta tag")? {
        0 => base.advisor = None,
        1 => {
            let raw = wire::get_bytes(&mut buf)?;
            let mut cursor = raw.clone();
            let state = AdvisorState::decode(&mut cursor)?;
            if cursor.remaining() != 0 {
                return Err(LakeError::Corrupt("trailing advisor bytes".into()));
            }
            base.advisor = Some(state);
        }
        2 => {
            let raw = wire::get_bytes(&mut buf)?;
            let advisor = base
                .advisor
                .as_mut()
                .ok_or_else(|| LakeError::Corrupt("advisor delta without a base advisor".into()))?;
            let mut cursor = raw.clone();
            advisor.apply_delta(&mut cursor)?;
            if cursor.remaining() != 0 {
                return Err(LakeError::Corrupt("trailing advisor delta bytes".into()));
            }
        }
        other => {
            return Err(LakeError::Corrupt(format!(
                "unknown advisor delta tag {other}"
            )))
        }
    }
    if buf.remaining() != 0 {
        return Err(LakeError::Corrupt("trailing snapshot bytes".into()));
    }
    Ok(())
}

/// Decode generation `seq`'s state by walking its chain: read files down the
/// `base_seq` links (verifying each link's stored body checksum against what
/// the delta above expects), decode the full base, then apply the deltas
/// oldest → newest. Returns the decoded state plus the body checksum of
/// generation `seq`'s own file (the link a future delta would name).
pub(crate) fn decode_chain(dir: &Path, seq: u64) -> Result<(DecodedSnapshot, u64)> {
    // Newest link first.
    let mut links: Vec<SnapshotFile> = Vec::new();
    let mut at = seq;
    let mut expect: Option<u64> = None;
    loop {
        let raw = std::fs::read(snapshot_path(dir, at))?;
        let file = read_snapshot_file(&Bytes::from(raw))?;
        if let Some(checksum) = expect {
            if file.body_checksum != checksum {
                return Err(LakeError::Corrupt(format!(
                    "delta chain link mismatch: generation {at} does not match \
                     the checksum its dependent delta names"
                )));
            }
        }
        match file.kind {
            SnapshotKind::Full => {
                links.push(file);
                break;
            }
            SnapshotKind::Delta {
                base_seq,
                base_checksum,
            } => {
                if base_seq >= at {
                    return Err(LakeError::Corrupt(format!(
                        "delta chain does not descend at generation {at}"
                    )));
                }
                expect = Some(base_checksum);
                links.push(file);
                at = base_seq;
            }
        }
    }
    let top_checksum = links[0].body_checksum;
    let base = links.pop().expect("chain has at least its full base");
    let mut decoded = decode_snapshot_body(base.body)?;
    while let Some(link) = links.pop() {
        apply_delta_body(link.body, &mut decoded)?;
    }
    Ok((decoded, top_checksum))
}

/// Decode a *full* snapshot file image. Delta images are rejected: they only
/// decode as part of a chain ([`decode_chain`]).
pub(crate) fn decode_snapshot(bytes: &Bytes) -> Result<DecodedSnapshot> {
    let file = read_snapshot_file(bytes)?;
    match file.kind {
        SnapshotKind::Full => decode_snapshot_body(file.body),
        SnapshotKind::Delta { base_seq, .. } => Err(LakeError::Corrupt(format!(
            "delta snapshot (base generation {base_seq}) cannot be decoded standalone"
        ))),
    }
}

/// Write snapshot bytes atomically: temp file in the same directory, fsync,
/// rename into place. A crash mid-write leaves the previous generation
/// untouched. `site` names the checkpoint kind for the injectable crash
/// point between the durable temp write and the rename
/// (`"{site}:tmp-written"`).
pub(crate) fn write_snapshot_file_with(
    path: &Path,
    bytes: &Bytes,
    failpoints: &Failpoints,
    site: &str,
) -> Result<()> {
    let tmp = path.with_extension("r2d2snap.tmp");
    {
        use std::io::Write;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    failpoints.hit(&format!("{site}:tmp-written"))?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// [`write_snapshot_file_with`] without crash points (library callers).
pub(crate) fn write_snapshot_file(path: &Path, bytes: &Bytes) -> Result<()> {
    write_snapshot_file_with(path, bytes, &Failpoints::none(), "snapshot")
}

/// An encoded, self-contained session snapshot (one generation's
/// `.r2d2snap` file in memory).
///
/// Most callers go through the session-level API —
/// [`enable_persistence`](crate::session::R2d2Session::enable_persistence) /
/// [`checkpoint`](crate::session::R2d2Session::checkpoint) /
/// [`restore`](crate::session::R2d2Session::restore) — which also maintain
/// the WAL. `SessionSnapshot` is the lower-level building block: capture a
/// point-in-time image, ship it around as bytes, and rebuild a session from
/// it (without WAL replay).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSnapshot {
    pub(crate) bytes: Bytes,
}

impl SessionSnapshot {
    /// The raw snapshot file image (magic, version, body, checksum).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Wrap raw bytes read from elsewhere; validated on
    /// [`SessionSnapshot::restore`].
    pub fn from_bytes(bytes: impl Into<Bytes>) -> Self {
        SessionSnapshot {
            bytes: bytes.into(),
        }
    }

    /// Write the snapshot to `path` (atomically), returning the byte count.
    pub fn write(&self, path: &Path) -> Result<u64> {
        write_snapshot_file(path, &self.bytes)?;
        Ok(self.bytes.len() as u64)
    }

    /// Read a snapshot file back into memory.
    pub fn read(path: &Path) -> Result<SessionSnapshot> {
        let raw = std::fs::read(path)?;
        Ok(SessionSnapshot {
            bytes: Bytes::from(raw),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_record_round_trip() {
        let records = vec![
            WalRecord::Batch(vec![LakeUpdate::DropDataset {
                id: r2d2_lake::DatasetId(3),
            }]),
            WalRecord::Batch(Vec::new()),
            WalRecord::AccessRefresh {
                counts: BTreeMap::from([(1, 5), (4, 0)]),
                meter: r2d2_lake::OpCounts {
                    rows_scanned: 11,
                    ..Default::default()
                },
            },
        ];
        for record in &records {
            let bytes = record.encode();
            let mut cursor = bytes.clone();
            assert_eq!(&WalRecord::decode(&mut cursor).unwrap(), record);
            assert_eq!(cursor.remaining(), 0);
        }
        let mut bad = Bytes::from(vec![7u8]);
        assert!(WalRecord::decode(&mut bad).is_err());
    }

    fn write_marker(dir: &Path, seq: u64, kind: SnapshotKind) -> u64 {
        // A minimal but structurally valid snapshot file: empty body, real
        // framing, so header peeks and chain walks treat it like the real
        // thing (its body would fail to decode, which pruning never does).
        let bytes = frame_snapshot(kind, Bytes::new());
        let checksum = read_snapshot_file(&bytes).unwrap().body_checksum;
        std::fs::write(snapshot_path(dir, seq), &bytes).unwrap();
        checksum
    }

    #[test]
    fn generation_paths_and_listing() {
        let dir = std::env::temp_dir().join("r2d2_persist_paths");
        std::fs::create_dir_all(&dir).unwrap();
        for stale in list_generations(&dir).unwrap() {
            std::fs::remove_file(snapshot_path(&dir, stale)).ok();
        }
        write_marker(&dir, 2, SnapshotKind::Full);
        write_marker(&dir, 3, SnapshotKind::Full);
        write_marker(&dir, 12, SnapshotKind::Full);
        std::fs::write(dir.join("unrelated.txt"), b"x").unwrap();
        assert_eq!(list_generations(&dir).unwrap(), vec![2, 3, 12]);
        // Keep = chain(12) ∪ chain(3) — generation 2 goes.
        prune_generations(&dir, 12, &Failpoints::none()).unwrap();
        assert_eq!(list_generations(&dir).unwrap(), vec![3, 12]);
        for stale in list_generations(&dir).unwrap() {
            std::fs::remove_file(snapshot_path(&dir, stale)).ok();
        }
        std::fs::remove_file(dir.join("unrelated.txt")).ok();
    }

    #[test]
    fn pruning_never_orphans_a_delta_chain_base() {
        let dir = std::env::temp_dir().join("r2d2_persist_chain_prune");
        std::fs::create_dir_all(&dir).unwrap();
        for stale in list_generations(&dir).unwrap() {
            std::fs::remove_file(snapshot_path(&dir, stale)).ok();
        }
        // Chain 1F ← 2D ← 3D ← 4D: everything is load-bearing. The pre-v5
        // keep-from-newest policy would delete generations 1–2 here and
        // orphan the chain.
        let c1 = write_marker(&dir, 1, SnapshotKind::Full);
        let c2 = write_marker(
            &dir,
            2,
            SnapshotKind::Delta {
                base_seq: 1,
                base_checksum: c1,
            },
        );
        let c3 = write_marker(
            &dir,
            3,
            SnapshotKind::Delta {
                base_seq: 2,
                base_checksum: c2,
            },
        );
        write_marker(
            &dir,
            4,
            SnapshotKind::Delta {
                base_seq: 3,
                base_checksum: c3,
            },
        );
        std::fs::write(wal_segment_path(&dir, 1, 0), b"w").unwrap();
        prune_generations(&dir, 4, &Failpoints::none()).unwrap();
        assert_eq!(
            list_generations(&dir).unwrap(),
            vec![1, 2, 3, 4],
            "a chain base must survive while dependent deltas do"
        );
        assert!(wal_segment_path(&dir, 1, 0).exists());
        assert_eq!(chain_members(&dir, 4).unwrap(), vec![4, 3, 2, 1]);

        // Rebase at 5, one delta on top: the old chain is finally droppable.
        let c5 = write_marker(&dir, 5, SnapshotKind::Full);
        write_marker(
            &dir,
            6,
            SnapshotKind::Delta {
                base_seq: 5,
                base_checksum: c5,
            },
        );
        let compacted = prune_generations(&dir, 6, &Failpoints::none()).unwrap();
        assert_eq!(list_generations(&dir).unwrap(), vec![5, 6]);
        assert_eq!(compacted, 1, "generation 1's WAL segment was compacted");
        assert!(!wal_segment_path(&dir, 1, 0).exists());
        for stale in list_generations(&dir).unwrap() {
            std::fs::remove_file(snapshot_path(&dir, stale)).ok();
        }
    }
}
