//! Fallible parallel fan-out shared by the MMP and CLP stages.

use r2d2_lake::Result;
use std::sync::atomic::{AtomicBool, Ordering};

/// Map a fallible check over `items` on up to `threads` workers, returning
/// results in input order.
///
/// On success every item's result is returned, exactly aligned with `items`.
/// On failure the earliest (in input order) error among the items that ran
/// is returned, and a shared abort flag stops not-yet-started items from
/// doing any work — so a run that is going to fail does not first pay for a
/// full sweep (with `threads = 1` this matches the seed's behaviour of
/// stopping at the first erroring item; with more threads, items already in
/// flight finish but queued ones are skipped).
pub(crate) fn try_parallel_map<T, U, F>(threads: usize, items: &[T], f: F) -> Result<Vec<U>>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> Result<U> + Sync,
{
    let abort = AtomicBool::new(false);
    let outcomes: Vec<Option<Result<U>>> = rayon::parallel_map(threads, items, |item| {
        if abort.load(Ordering::Relaxed) {
            return None;
        }
        let result = f(item);
        if result.is_err() {
            abort.store(true, Ordering::Relaxed);
        }
        Some(result)
    });

    let mut results = Vec::with_capacity(outcomes.len());
    let mut first_err = None;
    for outcome in outcomes {
        match outcome {
            Some(Ok(v)) => results.push(v),
            Some(Err(e)) if first_err.is_none() => first_err = Some(e),
            Some(Err(_)) | None => {}
        }
    }
    match first_err {
        Some(e) => Err(e),
        // Without an error the abort flag is never set, so no item was
        // skipped and `results` is aligned 1:1 with `items`.
        None => Ok(results),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_lake::LakeError;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn success_keeps_input_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 4] {
            let out = try_parallel_map(threads, &items, |&x| Ok(x * 2)).unwrap();
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn sequential_error_short_circuits() {
        let items: Vec<u64> = (0..1000).collect();
        let ran = AtomicUsize::new(0);
        let err = try_parallel_map(1, &items, |&x| {
            ran.fetch_add(1, Ordering::Relaxed);
            if x == 3 {
                Err(LakeError::InvalidArgument("boom".into()))
            } else {
                Ok(x)
            }
        })
        .unwrap_err();
        assert!(matches!(err, LakeError::InvalidArgument(_)));
        assert_eq!(
            ran.load(Ordering::Relaxed),
            4,
            "items after the failing one must not run sequentially"
        );
    }

    #[test]
    fn parallel_error_propagates_and_aborts_queued_work() {
        let items: Vec<u64> = (0..10_000).collect();
        let ran = AtomicUsize::new(0);
        let err = try_parallel_map(4, &items, |&x| {
            ran.fetch_add(1, Ordering::Relaxed);
            if x == 0 {
                Err(LakeError::InvalidArgument("boom".into()))
            } else {
                Ok(x)
            }
        })
        .unwrap_err();
        assert!(matches!(err, LakeError::InvalidArgument(_)));
        assert!(
            ran.load(Ordering::Relaxed) < items.len(),
            "abort flag must stop queued items"
        );
    }
}
