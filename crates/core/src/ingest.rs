//! Directory CSV ingest — the hostile-input entry point of a session.
//!
//! The paper's evaluation (§6) runs on real open-data CSV corpora, and real
//! CSV is messy. [`R2d2Session::ingest_dir`] walks a directory tree of
//! `.csv` files in deterministic (sorted-path) order, parses each under a
//! [`CsvOptions`] policy via [`r2d2_lake::csv::read_csv`], and applies the
//! surviving rows as [`LakeUpdate::AddDataset`] events through the normal
//! incremental path — so an ingested lake gets the same bit-identical
//! graph, WAL durability and snapshot/restore guarantees as any other
//! update stream (a mid-ingest kill restores exactly the files already
//! applied; re-running the ingest resumes, recording the already-present
//! files as [`IngestError::Dataset`] rejections).
//!
//! Failure isolation is per *row* and per *file*, never per run: malformed
//! rows are quarantined into the per-file [`FileIngest`] record with typed
//! [`IngestError`]s, a file-fatal parse (no header, quarantine limit,
//! unreadable bytes) is recorded and the walk continues, and only a failure
//! to enumerate the directory itself aborts the ingest.

use std::path::{Path, PathBuf};

use r2d2_lake::csv::{read_csv, CsvOptions, IngestError, QuarantinedRow};
use r2d2_lake::{
    AccessProfile, DatasetId, LakeError, LakeUpdate, PartitionSpec, PartitionedTable, Result,
};

use crate::session::R2d2Session;

/// Policy for one [`R2d2Session::ingest_dir`] run: the CSV parsing options
/// plus how parsed tables are partitioned before entering the lake.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Per-file CSV parsing policy (delimiter, quarantine tolerance,
    /// type-inference widening rules).
    pub csv: CsvOptions,
    /// Rows per partition for ingested tables (the `ByRowCount` spec); the
    /// default of 512 matches the synthetic corpora.
    pub rows_per_partition: usize,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            csv: CsvOptions::default(),
            rows_per_partition: 512,
        }
    }
}

/// What happened to one CSV file during an ingest run.
#[derive(Debug, Clone)]
pub struct FileIngest {
    /// The file's path as walked.
    pub path: PathBuf,
    /// The dataset name the file was (or would have been) ingested under:
    /// its directory-relative path with the `.csv` extension stripped.
    pub dataset_name: String,
    /// The dataset id, when the file made it into the lake.
    pub dataset: Option<DatasetId>,
    /// Rows that survived quarantine and entered the lake.
    pub rows_ingested: usize,
    /// Rows quarantined with their typed reasons, in file order.
    pub quarantined: Vec<QuarantinedRow>,
    /// A file-fatal error (unreadable, no header, quarantine limit
    /// exceeded, rejected by the lake), when the file was skipped entirely.
    pub error: Option<IngestError>,
}

/// Per-file results of one [`R2d2Session::ingest_dir`] run, in walk order.
#[derive(Debug, Clone, Default)]
pub struct IngestReport {
    /// One record per `.csv` file found, in sorted-path order.
    pub files: Vec<FileIngest>,
}

impl IngestReport {
    /// Files that became datasets.
    pub fn datasets_added(&self) -> usize {
        self.files.iter().filter(|f| f.dataset.is_some()).count()
    }

    /// Total rows that entered the lake.
    pub fn rows_ingested(&self) -> usize {
        self.files.iter().map(|f| f.rows_ingested).sum()
    }

    /// Total rows quarantined across all files.
    pub fn rows_quarantined(&self) -> usize {
        self.files.iter().map(|f| f.quarantined.len()).sum()
    }

    /// Files skipped entirely with a file-fatal error.
    pub fn files_failed(&self) -> usize {
        self.files.iter().filter(|f| f.error.is_some()).count()
    }

    /// Human-readable quarantine report: one line per file, then one
    /// indented line per quarantined row or file-fatal error.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "ingested {} datasets ({} rows), {} rows quarantined, {} files failed\n",
            self.datasets_added(),
            self.rows_ingested(),
            self.rows_quarantined(),
            self.files_failed()
        ));
        for f in &self.files {
            match (&f.error, f.quarantined.len()) {
                (Some(e), _) => out.push_str(&format!("  {}: FAILED: {e}\n", f.dataset_name)),
                (None, 0) => {
                    out.push_str(&format!("  {}: {} rows\n", f.dataset_name, f.rows_ingested))
                }
                (None, q) => {
                    out.push_str(&format!(
                        "  {}: {} rows, {q} quarantined\n",
                        f.dataset_name, f.rows_ingested
                    ));
                    for row in &f.quarantined {
                        out.push_str(&format!("    {}\n", row.error));
                    }
                }
            }
        }
        out
    }
}

/// Recursively collect every `.csv` file (case-insensitive extension) under
/// `dir`, sorted by path so the resulting update stream — and therefore the
/// session graph — is deterministic across filesystems.
fn collect_csv_files(dir: &Path) -> Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = std::fs::read_dir(&d).map_err(LakeError::Io)?;
        for entry in entries {
            let path = entry.map_err(LakeError::Io)?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path
                .extension()
                .is_some_and(|e| e.eq_ignore_ascii_case("csv"))
            {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Dataset name for a file: its path relative to the ingest root with the
/// extension stripped, `/`-separated regardless of platform.
fn dataset_name(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    let stem = rel.with_extension("");
    stem.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

impl R2d2Session {
    /// Ingest every `.csv` file under `dir` (recursively, in sorted-path
    /// order) as [`LakeUpdate::AddDataset`] events, quarantining malformed
    /// rows per file instead of aborting. Returns the per-file
    /// [`IngestReport`]; only a failure to enumerate the directory itself
    /// is an `Err`.
    ///
    /// Each file flows through [`R2d2Session::apply`], so the incremental
    /// graph, WAL persistence and snapshot/restore behave exactly as for
    /// any other update stream.
    pub fn ingest_dir(
        &mut self,
        dir: impl AsRef<Path>,
        options: &IngestOptions,
    ) -> Result<IngestReport> {
        let dir = dir.as_ref();
        let mut report = IngestReport::default();
        for path in collect_csv_files(dir)? {
            let name = dataset_name(dir, &path);
            let mut record = FileIngest {
                path: path.clone(),
                dataset_name: name.clone(),
                dataset: None,
                rows_ingested: 0,
                quarantined: Vec::new(),
                error: None,
            };
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    record.error = Some(IngestError::Io {
                        path: path.display().to_string(),
                        error: e.to_string(),
                    });
                    report.files.push(record);
                    continue;
                }
            };
            let parsed = match read_csv(&text, &options.csv) {
                Ok(p) => p,
                Err(e) => {
                    record.error = Some(e);
                    report.files.push(record);
                    continue;
                }
            };
            record.quarantined = parsed.quarantined;
            let rows = parsed.table.num_rows();
            let data = match PartitionedTable::from_table(
                parsed.table,
                PartitionSpec::ByRowCount {
                    rows_per_partition: options.rows_per_partition.max(1),
                },
            ) {
                Ok(d) => d,
                Err(e) => {
                    record.error = Some(IngestError::Table(e.to_string()));
                    report.files.push(record);
                    continue;
                }
            };
            match self.apply(LakeUpdate::AddDataset {
                name,
                data,
                access: AccessProfile::default(),
                lineage: None,
            }) {
                Ok(applied) => {
                    record.dataset = applied.applied.iter().find_map(|u| match u {
                        r2d2_lake::AppliedUpdate::Added { id } => Some(*id),
                        _ => None,
                    });
                    record.rows_ingested = rows;
                }
                Err(e) => record.error = Some(IngestError::Dataset(e.to_string())),
            }
            report.files.push(record);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use r2d2_lake::DataLake;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("r2d2_ingest_test_{name}"));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn ingest_dir_walks_quarantines_and_reports() {
        let dir = temp_dir("walk");
        std::fs::write(dir.join("orders.csv"), "id,total\n1,10.5\n2,20.0\n").unwrap();
        std::fs::create_dir_all(dir.join("sub")).unwrap();
        std::fs::write(
            dir.join("sub").join("messy.csv"),
            "a,b\n1,2\n3\n4,\"oops\n5,6\n",
        )
        .unwrap();
        std::fs::write(dir.join("notes.txt"), "not a csv").unwrap();
        std::fs::write(dir.join("empty.csv"), "\n\n").unwrap();

        let mut session =
            R2d2Session::bootstrap(DataLake::new(), PipelineConfig::default().with_seed(1))
                .unwrap();
        let report = session.ingest_dir(&dir, &IngestOptions::default()).unwrap();

        // Sorted walk order: empty.csv, orders.csv, sub/messy.csv.
        assert_eq!(report.files.len(), 3);
        assert_eq!(report.files[0].dataset_name, "empty");
        assert_eq!(report.files[0].error, Some(IngestError::EmptyFile));
        assert_eq!(report.files[1].dataset_name, "orders");
        assert_eq!(report.files[1].rows_ingested, 2);
        assert_eq!(report.files[2].dataset_name, "sub/messy");
        assert_eq!(report.files[2].rows_ingested, 2);
        assert_eq!(report.files[2].quarantined.len(), 2);
        assert_eq!(report.datasets_added(), 2);
        assert_eq!(report.rows_quarantined(), 2);
        assert_eq!(report.files_failed(), 1);
        assert_eq!(session.lake().len(), 2);
        assert!(report.render().contains("quarantined"));

        // Re-ingesting the same directory records duplicate-name rejections
        // instead of failing the run.
        let again = session.ingest_dir(&dir, &IngestOptions::default()).unwrap();
        assert_eq!(again.datasets_added(), 0);
        assert!(matches!(
            again.files[1].error,
            Some(IngestError::Dataset(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
