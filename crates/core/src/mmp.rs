//! MMP — Min-Max Pruning (Algorithm 2 of the paper).
//!
//! For every candidate edge `parent → child` and every common column `c`,
//! containment requires `min(child.c) ≥ min(parent.c)` and
//! `max(child.c) ≤ max(parent.c)`. Violating either condition on any column
//! disproves containment, so the edge is removed. The min/max values come
//! from partition-level metadata (the lake keeps them per partition and
//! merged per table), so this stage never reads a row — a property the unit
//! tests assert via the meter.
//!
//! The **distinct-count gate** extends the same metadata-only reasoning to
//! cardinalities: if a sound lower bound on `distinct(child.c)` (largest
//! exact per-partition count, or the table sketch's popcount bound — see
//! [`r2d2_lake::PartitionedTable::column_distinct_lower_bound`]) exceeds an
//! upper bound on `distinct(parent.c)` (the table-level count, exact for
//! catalog-built tables), the child provably holds a value the parent
//! lacks, so containment is impossible and the edge is pruned — again
//! without reading a row. Gate prunes are counted separately (both in
//! [`MmpStats`] and on the meter's `distinct_prunes` counter).

use r2d2_graph::ContainmentGraph;
use r2d2_lake::{DataLake, DatasetId, LakeError, Meter, Result};
use serde::{Deserialize, Serialize};

/// Which metadata checks an MMP run applies. Named fields instead of two
/// adjacent positional bools, so call sites cannot silently transpose the
/// flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MmpOptions {
    /// Restrict the min/max check to columns whose declared type supports
    /// min/max statistics (numbers, timestamps, strings).
    pub typed_columns_only: bool,
    /// Apply the distinct-count gate (see the module docs).
    pub distinct_gate: bool,
}

impl MmpOptions {
    /// The options a [`crate::config::PipelineConfig`] asks for.
    pub fn from_config(config: &crate::config::PipelineConfig) -> Self {
        MmpOptions {
            typed_columns_only: config.mmp_typed_columns_only,
            distinct_gate: config.mmp_distinct_gate,
        }
    }
}

/// Statistics of one MMP run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MmpStats {
    /// Edges examined.
    pub edges_examined: usize,
    /// Edges removed because a column range was not nested.
    pub edges_pruned: usize,
    /// Edges removed by the distinct-count gate (a subset of
    /// `edges_pruned`): the child provably has more distinct values than
    /// the parent on some common column.
    pub edges_pruned_by_distinct: usize,
    /// Column min/max metadata lookups performed.
    pub columns_checked: usize,
}

/// Outcome of checking one edge, merged deterministically afterwards.
struct EdgeCheck {
    prune: bool,
    distinct_prune: bool,
    columns_checked: usize,
}

/// Check a single `parent → child` edge against column min/max metadata and
/// (when `options.distinct_gate` is set) the distinct-count bounds.
fn check_edge(
    lake: &DataLake,
    parent_id: u64,
    child_id: u64,
    options: MmpOptions,
    meter: &Meter,
) -> Result<EdgeCheck> {
    let parent = lake.dataset(DatasetId(parent_id))?;
    let child = lake.dataset(DatasetId(child_id))?;

    let parent_schema = parent.data.schema();
    let child_schema = child.data.schema();
    let common: Vec<String> = child_schema
        .schema_set()
        .intersection(&parent_schema.schema_set());

    let mut columns_checked = 0usize;
    let mut prune = false;
    let mut distinct_prune = false;
    for col in &common {
        let range_eligible =
            !options.typed_columns_only || child_schema.data_type(col)?.supports_min_max();
        if range_eligible {
            columns_checked += 1;
            let (cmin, cmax) = child.data.column_min_max(col, meter)?;
            let (pmin, pmax) = parent.data.column_min_max(col, meter)?;
            let violates = match (cmin, cmax, pmin, pmax) {
                (Some(cmin), Some(cmax), Some(pmin), Some(pmax)) => {
                    cmin.total_cmp(&pmin) == std::cmp::Ordering::Less
                        || cmax.total_cmp(&pmax) == std::cmp::Ordering::Greater
                }
                // Child has values in a column where the parent has none:
                // containment is impossible.
                (Some(_), Some(_), None, None) => true,
                // Child column all-null (or empty): cannot disprove.
                _ => false,
            };
            if violates {
                prune = true;
                break;
            }
        }
        // Distinct-count gate: child_lower > parent_upper means the child
        // provably holds a value the parent lacks in this column, so some
        // child row cannot be in the parent. Applies to every common column
        // (distinct counts exist regardless of min/max support).
        if options.distinct_gate
            && child.data.column_distinct_lower_bound(col, meter)
                > parent.data.column_distinct_upper_bound(col, meter)
        {
            prune = true;
            distinct_prune = true;
            meter.add_distinct_prunes(1);
            break;
        }
    }
    Ok(EdgeCheck {
        prune,
        distinct_prune,
        columns_checked,
    })
}

/// Whether the single edge `parent → child` survives Min-Max Pruning, using
/// only column metadata. This is the per-edge primitive behind
/// [`min_max_prune_threaded`], shared with the session's dynamic-update
/// verification path.
pub(crate) fn edge_passes(
    lake: &DataLake,
    parent_id: u64,
    child_id: u64,
    options: MmpOptions,
    meter: &Meter,
) -> Result<bool> {
    Ok(!check_edge(lake, parent_id, child_id, options, meter)?.prune)
}

/// Run Min-Max Pruning over `graph`, mutating it in place, single-threaded.
/// See [`min_max_prune_threaded`].
pub fn min_max_prune(
    lake: &DataLake,
    graph: &mut ContainmentGraph,
    options: MmpOptions,
    meter: &Meter,
) -> Result<MmpStats> {
    min_max_prune_threaded(lake, graph, options, 1, meter)
}

/// Run Min-Max Pruning over `graph` on up to `threads` workers (`0` = all
/// hardware threads), mutating the graph in place.
///
/// `options.typed_columns_only` restricts the min/max check to columns
/// whose declared type supports min/max semantics (numbers, timestamps,
/// strings), matching the paper's focus on numerical columns while still
/// exploiting what parquet metadata provides for byte arrays;
/// `options.distinct_gate` adds the distinct-count gate.
///
/// Each edge's check only reads the (immutable) lake and the shared atomic
/// meter, so edges fan out freely; prune decisions are applied to the graph
/// afterwards in edge order, making the resulting graph, stats and meter
/// totals identical for every thread count.
pub fn min_max_prune_threaded(
    lake: &DataLake,
    graph: &mut ContainmentGraph,
    options: MmpOptions,
    threads: usize,
    meter: &Meter,
) -> Result<MmpStats> {
    let edges = graph.edges();
    let checks: Vec<EdgeCheck> =
        crate::fanout::try_parallel_map(threads, &edges, |&(parent_id, child_id)| {
            check_edge(lake, parent_id, child_id, options, meter)
        })?;

    let mut stats = MmpStats::default();
    for (&(parent_id, child_id), check) in edges.iter().zip(checks) {
        stats.edges_examined += 1;
        stats.columns_checked += check.columns_checked;
        stats.edges_pruned_by_distinct += check.distinct_prune as usize;
        if check.prune {
            graph
                .remove_edge(parent_id, child_id)
                .ok_or_else(|| LakeError::InvalidArgument("edge disappeared".into()))?;
            stats.edges_pruned += 1;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_lake::{AccessProfile, Column, DataLake, DataType, PartitionedTable, Schema, Table};

    const GATED: MmpOptions = MmpOptions {
        typed_columns_only: true,
        distinct_gate: true,
    };
    const UNGATED: MmpOptions = MmpOptions {
        typed_columns_only: true,
        distinct_gate: false,
    };

    fn add_table(lake: &mut DataLake, name: &str, ids: Vec<i64>, amounts: Vec<f64>) -> u64 {
        let schema = Schema::flat(&[("id", DataType::Int), ("amount", DataType::Float)]).unwrap();
        let t = Table::new(
            schema,
            vec![Column::from_ints(ids), Column::from_floats(amounts)],
        )
        .unwrap();
        lake.add_dataset(
            name,
            PartitionedTable::single(t),
            AccessProfile::default(),
            None,
        )
        .unwrap()
        .0
    }

    #[test]
    fn prunes_edge_when_child_range_exceeds_parent() {
        let mut lake = DataLake::new();
        let parent = add_table(
            &mut lake,
            "parent",
            vec![0, 1, 2, 3],
            vec![1.0, 2.0, 3.0, 4.0],
        );
        let child_ok = add_table(&mut lake, "child_ok", vec![1, 2], vec![2.0, 3.0]);
        let child_bad = add_table(&mut lake, "child_bad", vec![1, 99], vec![2.0, 3.0]);

        let mut graph = ContainmentGraph::new();
        graph.add_edge(parent, child_ok);
        graph.add_edge(parent, child_bad);

        let meter = Meter::new();
        let stats = min_max_prune(&lake, &mut graph, GATED, &meter).unwrap();
        assert_eq!(stats.edges_examined, 2);
        assert_eq!(stats.edges_pruned, 1);
        assert!(graph.has_edge(parent, child_ok));
        assert!(!graph.has_edge(parent, child_bad));
    }

    #[test]
    fn never_reads_rows() {
        let mut lake = DataLake::new();
        let parent = add_table(
            &mut lake,
            "p",
            (0..100).collect(),
            (0..100).map(|i| i as f64).collect(),
        );
        let child = add_table(
            &mut lake,
            "c",
            (10..20).collect(),
            (10..20).map(|i| i as f64).collect(),
        );
        let mut graph = ContainmentGraph::new();
        graph.add_edge(parent, child);
        let meter = Meter::new();
        min_max_prune(&lake, &mut graph, GATED, &meter).unwrap();
        let s = meter.snapshot();
        assert_eq!(s.rows_scanned, 0, "MMP must be metadata-only");
        assert!(s.metadata_lookups > 0);
    }

    #[test]
    fn never_prunes_a_true_containment_edge() {
        // Child is a literal subset of the parent rows → ranges always nest.
        let mut lake = DataLake::new();
        let parent = add_table(
            &mut lake,
            "p",
            vec![5, 1, 9, 3, 7],
            vec![0.5, 0.1, 0.9, 0.3, 0.7],
        );
        let child = add_table(&mut lake, "c", vec![1, 9], vec![0.1, 0.9]);
        let mut graph = ContainmentGraph::new();
        graph.add_edge(parent, child);
        let stats = min_max_prune(&lake, &mut graph, GATED, &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 0);
        assert!(graph.has_edge(parent, child));
    }

    #[test]
    fn min_violation_alone_is_enough() {
        let mut lake = DataLake::new();
        let parent = add_table(&mut lake, "p", vec![10, 20], vec![1.0, 2.0]);
        // Child max (20) is fine but min (5) < parent min (10).
        let child = add_table(&mut lake, "c", vec![5, 20], vec![1.0, 2.0]);
        let mut graph = ContainmentGraph::new();
        graph.add_edge(parent, child);
        let stats = min_max_prune(&lake, &mut graph, GATED, &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 1);
    }

    #[test]
    fn all_null_child_column_cannot_disprove() {
        let mut lake = DataLake::new();
        let schema = Schema::flat(&[("x", DataType::Int)]).unwrap();
        let parent_t = Table::new(schema.clone(), vec![Column::from_ints([1, 2, 3])]).unwrap();
        let child_t = Table::new(
            schema,
            vec![Column::new(DataType::Int, vec![r2d2_lake::Value::Null]).unwrap()],
        )
        .unwrap();
        let p = lake
            .add_dataset(
                "p",
                PartitionedTable::single(parent_t),
                AccessProfile::default(),
                None,
            )
            .unwrap()
            .0;
        let c = lake
            .add_dataset(
                "c",
                PartitionedTable::single(child_t),
                AccessProfile::default(),
                None,
            )
            .unwrap()
            .0;
        let mut graph = ContainmentGraph::new();
        graph.add_edge(p, c);
        let stats = min_max_prune(&lake, &mut graph, GATED, &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 0);
    }

    #[test]
    fn child_values_in_empty_parent_column_prune() {
        let mut lake = DataLake::new();
        let schema = Schema::flat(&[("x", DataType::Int)]).unwrap();
        let parent_t = Table::new(
            schema.clone(),
            vec![Column::new(
                DataType::Int,
                vec![r2d2_lake::Value::Null, r2d2_lake::Value::Null],
            )
            .unwrap()],
        )
        .unwrap();
        let child_t = Table::new(schema, vec![Column::from_ints([4])]).unwrap();
        let p = lake
            .add_dataset(
                "p",
                PartitionedTable::single(parent_t),
                AccessProfile::default(),
                None,
            )
            .unwrap()
            .0;
        let c = lake
            .add_dataset(
                "c",
                PartitionedTable::single(child_t),
                AccessProfile::default(),
                None,
            )
            .unwrap()
            .0;
        let mut graph = ContainmentGraph::new();
        graph.add_edge(p, c);
        let stats = min_max_prune(&lake, &mut graph, GATED, &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 1);
    }

    #[test]
    fn distinct_gate_prunes_wider_child_within_nested_ranges() {
        let mut lake = DataLake::new();
        // Parent: 2 distinct ids spanning [0, 10]; child: 3 distinct ids
        // inside that range. Min/max cannot disprove, cardinality can.
        let parent = add_table(&mut lake, "p", vec![0, 10], vec![1.0, 2.0]);
        let child = add_table(&mut lake, "c", vec![0, 5, 10], vec![1.0, 1.5, 2.0]);
        let mut graph = ContainmentGraph::new();
        graph.add_edge(parent, child);
        let meter = Meter::new();
        let stats = min_max_prune(&lake, &mut graph, GATED, &meter).unwrap();
        assert_eq!(stats.edges_pruned, 1);
        assert_eq!(stats.edges_pruned_by_distinct, 1);
        assert!(!graph.has_edge(parent, child));
        let snap = meter.snapshot();
        assert_eq!(snap.distinct_prunes, 1, "gate prunes hit their counter");
        assert_eq!(snap.rows_scanned, 0, "the gate is metadata-only");

        // With the gate disabled the edge survives MMP (ranges nest).
        let mut ungated = ContainmentGraph::new();
        ungated.add_edge(parent, child);
        let stats = min_max_prune(&lake, &mut ungated, UNGATED, &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 0);
        assert_eq!(stats.edges_pruned_by_distinct, 0);
        assert!(ungated.has_edge(parent, child));
    }

    #[test]
    fn distinct_gate_never_prunes_a_true_containment_edge() {
        // Child is a literal subset of the parent rows: every sound bound
        // must keep the edge.
        let mut lake = DataLake::new();
        let parent = add_table(
            &mut lake,
            "p",
            (0..200).collect(),
            (0..200).map(|i| i as f64).collect(),
        );
        let child = add_table(
            &mut lake,
            "c",
            (20..180).collect(),
            (20..180).map(|i| i as f64).collect(),
        );
        let mut graph = ContainmentGraph::new();
        graph.add_edge(parent, child);
        let stats = min_max_prune(&lake, &mut graph, GATED, &Meter::new()).unwrap();
        assert_eq!(stats.edges_pruned, 0);
        assert!(graph.has_edge(parent, child));
    }

    #[test]
    fn threaded_mmp_matches_sequential() {
        let mut lake = DataLake::new();
        let parent = add_table(
            &mut lake,
            "p",
            (0..50).collect(),
            (0..50).map(|i| i as f64).collect(),
        );
        let ok = add_table(
            &mut lake,
            "ok",
            (5..15).collect(),
            (5..15).map(|i| i as f64).collect(),
        );
        let bad = add_table(&mut lake, "bad", vec![1, 999], vec![1.0, 2.0]);
        let bad2 = add_table(&mut lake, "bad2", vec![-7, 3], vec![1.0, 2.0]);

        let build = || {
            let mut g = ContainmentGraph::new();
            g.add_edge(parent, ok);
            g.add_edge(parent, bad);
            g.add_edge(parent, bad2);
            g
        };
        let seq_meter = Meter::new();
        let mut seq_graph = build();
        let seq = min_max_prune(&lake, &mut seq_graph, GATED, &seq_meter).unwrap();

        let par_meter = Meter::new();
        let mut par_graph = build();
        let par = min_max_prune_threaded(&lake, &mut par_graph, GATED, 4, &par_meter).unwrap();

        assert_eq!(seq_graph, par_graph);
        assert_eq!(seq, par);
        assert_eq!(seq_meter.snapshot(), par_meter.snapshot());
        assert_eq!(par.edges_pruned, 2);
    }

    #[test]
    fn missing_dataset_is_an_error() {
        let lake = DataLake::new();
        let mut graph = ContainmentGraph::new();
        graph.add_edge(0, 1);
        assert!(min_max_prune(&lake, &mut graph, GATED, &Meter::new()).is_err());
    }

    #[test]
    fn stats_count_columns_checked() {
        let mut lake = DataLake::new();
        let p = add_table(&mut lake, "p", vec![1, 2], vec![1.0, 2.0]);
        let c = add_table(&mut lake, "c", vec![1], vec![1.0]);
        let mut graph = ContainmentGraph::new();
        graph.add_edge(p, c);
        let stats = min_max_prune(&lake, &mut graph, GATED, &Meter::new()).unwrap();
        assert_eq!(stats.columns_checked, 2, "id and amount both checked");
    }
}
