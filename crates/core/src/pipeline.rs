//! Pipeline orchestration: SGB → MMP → CLP over a data lake.
//!
//! [`R2d2Pipeline`] runs the three stages in sequence, snapshotting wall
//! clock time, meter counters and edge counts around each stage. The
//! resulting [`PipelineReport`] is the raw material behind the paper's
//! Tables 1–3 and 5–6 and Figure 4.

use crate::approx::ContainmentEstimate;
use crate::clp::content_level_prune;
use crate::config::PipelineConfig;
use crate::mmp::{min_max_prune_threaded, MmpOptions};
use crate::sgb::SgbResult;
use crate::sgb::{build_schema_graph_threaded, build_schema_graph_with_source, ApproxCandidates};
use r2d2_graph::ContainmentGraph;
use r2d2_lake::{DataLake, DatasetId, Meter, OpCounts, Result, SchemaSet};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The three pipeline stages, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Stage {
    /// Schema Graph Builder (Algorithm 1).
    Sgb,
    /// Min-Max Pruning (Algorithm 2).
    Mmp,
    /// Content-Level Pruning (Algorithm 3).
    Clp,
}

impl Stage {
    /// All stages, in execution order.
    pub const ALL: [Stage; 3] = [Stage::Sgb, Stage::Mmp, Stage::Clp];

    /// The paper's name for the stage ("SGB" / "MMP" / "CLP").
    pub fn name(self) -> &'static str {
        match self {
            Stage::Sgb => "SGB",
            Stage::Mmp => "MMP",
            Stage::Clp => "CLP",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-stage measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageReport {
    /// Which stage was measured.
    pub stage: Stage,
    /// Wall-clock duration of the stage.
    pub duration: Duration,
    /// Operation counts attributable to the stage.
    pub ops: OpCounts,
    /// Number of edges in the graph after the stage.
    pub edges_after: usize,
}

/// Per-edge annotation produced by the §7.2.2 sampled containment estimator
/// when the approximate tier is enabled: for a surviving edge
/// `parent → child`, the estimated containment of the child in the parent
/// together with its Hoeffding confidence interval.
///
/// Since every edge in the final graph passed the exact CLP check, a healthy
/// report has [`ContainmentEstimate::could_be_exact`] true for every entry —
/// the estimate is a cheap cross-check, not a second verdict.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ApproxEdgeReport {
    /// Parent (containing) dataset id.
    pub parent: u64,
    /// Child (contained) dataset id.
    pub child: u64,
    /// Sampled containment estimate with its Hoeffding bound.
    pub estimate: ContainmentEstimate,
}

/// Full pipeline output: the final containment graph plus per-stage reports
/// and intermediate graphs (so experiments can evaluate each stage against
/// ground truth, as Tables 1 and 2 do).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Graph after SGB (schema containment only).
    pub after_sgb: ContainmentGraph,
    /// Graph after Min-Max Pruning.
    pub after_mmp: ContainmentGraph,
    /// Graph after Content-Level Pruning (the final containment graph).
    pub after_clp: ContainmentGraph,
    /// Per-stage measurements, in execution order.
    pub stages: Vec<StageReport>,
    /// Number of schema clusters SGB produced.
    pub sgb_clusters: usize,
    /// Total wall-clock duration.
    pub total_duration: Duration,
    /// §7.2.2 sampled containment estimates for the final graph's edges, in
    /// `(parent, child)` order. Empty unless the approximate tier is on with
    /// [`crate::config::ApproxConfig::report_samples`] `> 0`.
    pub approx_edges: Vec<ApproxEdgeReport>,
}

impl PipelineReport {
    /// The final containment graph.
    pub fn final_graph(&self) -> &ContainmentGraph {
        &self.after_clp
    }

    /// Stage report for `stage`, if present.
    pub fn stage(&self, stage: Stage) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.stage == stage)
    }
}

/// The R2D2 pipeline runner.
#[derive(Debug, Clone, Default)]
pub struct R2d2Pipeline {
    config: PipelineConfig,
}

impl R2d2Pipeline {
    /// Create a pipeline with the given configuration.
    pub fn new(config: PipelineConfig) -> Self {
        R2d2Pipeline { config }
    }

    /// Create a pipeline with the paper's default parameters.
    pub fn with_defaults() -> Self {
        Self::new(PipelineConfig::default())
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Collect `(dataset id, schema set)` pairs from the lake.
    pub fn schema_sets(lake: &DataLake) -> Vec<(u64, SchemaSet)> {
        lake.iter()
            .map(|e| (e.id.0, e.data.schema().schema_set()))
            .collect()
    }

    /// Run only the SGB stage (on `config.threads` workers).
    ///
    /// With [`PipelineConfig::approx`] set, candidate pairs are first gated
    /// through per-table MinHash signatures ([`ApproxCandidates`]); otherwise
    /// the exact inverted-index path runs unchanged.
    pub fn run_sgb(&self, lake: &DataLake, meter: &Meter) -> SgbResult {
        let schemas = Self::schema_sets(lake);
        match &self.config.approx {
            Some(approx) => {
                let source = ApproxCandidates::build(lake, approx, meter);
                build_schema_graph_with_source(&schemas, self.config.threads, meter, &source)
            }
            None => build_schema_graph_threaded(&schemas, self.config.threads, meter),
        }
    }

    /// Compute the §7.2.2 per-edge containment estimates for the final
    /// graph, in sorted `(parent, child)` order. Each edge draws from its
    /// own RNG stream (seeded from `config.seed` and the edge's endpoints,
    /// like CLP's per-edge streams but salted differently), so the report is
    /// bit-identical at any thread count.
    fn approx_edge_reports(
        &self,
        lake: &DataLake,
        graph: &ContainmentGraph,
        samples: usize,
        confidence: f64,
        meter: &Meter,
    ) -> Result<Vec<ApproxEdgeReport>> {
        let mut edges = graph.edges();
        edges.sort_unstable();
        crate::fanout::try_parallel_map(self.config.threads, &edges, |&(parent, child)| {
            let parent_table = lake.dataset(DatasetId(parent))?.data.clone();
            let child_table = lake.dataset(DatasetId(child))?.data.clone();
            let seed = report_seed(self.config.seed, parent, child);
            let estimate = crate::approx::estimate_containment(
                &child_table,
                &parent_table,
                samples,
                confidence,
                seed,
                meter,
            )?;
            Ok(ApproxEdgeReport {
                parent,
                child,
                estimate,
            })
        })
    }

    /// Run the full SGB → MMP → CLP pipeline over the lake.
    pub fn run(&self, lake: &DataLake) -> Result<PipelineReport> {
        let meter = lake.meter().clone();
        let start_all = Instant::now();
        let mut stages = Vec::with_capacity(3);

        // Stage 1: SGB.
        let before = meter.snapshot();
        let t0 = Instant::now();
        let sgb = self.run_sgb(lake, &meter);
        let after_sgb = sgb.graph.clone();
        stages.push(StageReport {
            stage: Stage::Sgb,
            duration: t0.elapsed(),
            ops: meter.snapshot().since(&before),
            edges_after: after_sgb.edge_count(),
        });

        // Stage 2: MMP.
        let mut graph = after_sgb.clone();
        let before = meter.snapshot();
        let t0 = Instant::now();
        min_max_prune_threaded(
            lake,
            &mut graph,
            MmpOptions::from_config(&self.config),
            self.config.threads,
            &meter,
        )?;
        let after_mmp = graph.clone();
        stages.push(StageReport {
            stage: Stage::Mmp,
            duration: t0.elapsed(),
            ops: meter.snapshot().since(&before),
            edges_after: after_mmp.edge_count(),
        });

        // Stage 3: CLP.
        let before = meter.snapshot();
        let t0 = Instant::now();
        content_level_prune(lake, &mut graph, &self.config, &meter)?;
        stages.push(StageReport {
            stage: Stage::Clp,
            duration: t0.elapsed(),
            ops: meter.snapshot().since(&before),
            edges_after: graph.edge_count(),
        });

        // Optional §7.2.2 estimate report over the surviving edges.
        let approx_edges = match &self.config.approx {
            Some(approx) if approx.report_samples > 0 => self.approx_edge_reports(
                lake,
                &graph,
                approx.report_samples,
                approx.report_confidence,
                &meter,
            )?,
            _ => Vec::new(),
        };

        Ok(PipelineReport {
            after_sgb,
            after_mmp,
            after_clp: graph,
            stages,
            sgb_clusters: sgb.cluster_count(),
            total_duration: start_all.elapsed(),
            approx_edges,
        })
    }
}

/// Mix an edge's endpoints into the pipeline seed for the §7.2.2 estimate
/// report (SplitMix64 finaliser, salted differently from CLP's
/// `edge_seed` so the two streams never alias).
fn report_seed(seed: u64, parent_id: u64, child_id: u64) -> u64 {
    let mut z = (seed ^ 0xA992_0E57)
        .wrapping_add(parent_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(child_id.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_lake::{
        AccessProfile, Column, DataType, PartitionSpec, PartitionedTable, Schema, Table,
    };

    /// A small lake with known containment structure:
    ///   base (60 rows) ⊇ subset (20 rows, same schema)
    ///   base ⊇ projected (30 rows, subset of columns)
    ///   unrelated (same schema as base but disjoint id range)
    fn small_lake() -> (DataLake, u64, u64, u64, u64) {
        let schema = Schema::flat(&[
            ("id", DataType::Int),
            ("kind", DataType::Utf8),
            ("score", DataType::Float),
        ])
        .unwrap();
        let base = Table::new(
            schema.clone(),
            vec![
                Column::from_ints(0..60),
                Column::from_strs((0..60).map(|i| format!("k{}", i % 3))),
                Column::from_floats((0..60).map(|i| i as f64)),
            ],
        )
        .unwrap();
        let subset = base.take(&(5..25).collect::<Vec<_>>()).unwrap();
        let projected = base
            .project(&["id", "kind"])
            .unwrap()
            .take(&(0..30).collect::<Vec<_>>())
            .unwrap();
        let unrelated = Table::new(
            schema,
            vec![
                Column::from_ints(1000..1060),
                Column::from_strs((0..60).map(|i| format!("k{}", i % 3))),
                Column::from_floats((0..60).map(|i| i as f64)),
            ],
        )
        .unwrap();

        let mut lake = DataLake::new();
        let part = |t: Table| {
            PartitionedTable::from_table(
                t,
                PartitionSpec::ByRowCount {
                    rows_per_partition: 16,
                },
            )
            .unwrap()
        };
        let b = lake
            .add_dataset("base", part(base), AccessProfile::default(), None)
            .unwrap()
            .0;
        let s = lake
            .add_dataset("subset", part(subset), AccessProfile::default(), None)
            .unwrap()
            .0;
        let p = lake
            .add_dataset("projected", part(projected), AccessProfile::default(), None)
            .unwrap()
            .0;
        let u = lake
            .add_dataset("unrelated", part(unrelated), AccessProfile::default(), None)
            .unwrap()
            .0;
        (lake, b, s, p, u)
    }

    #[test]
    fn full_pipeline_finds_true_edges_and_prunes_false_ones() {
        let (lake, base, subset, projected, unrelated) = small_lake();
        let report = R2d2Pipeline::with_defaults().run(&lake).unwrap();

        // True containment edges must survive every stage.
        for g in [&report.after_sgb, &report.after_mmp, &report.after_clp] {
            assert!(g.has_edge(base, subset));
            assert!(g.has_edge(base, projected));
        }
        // SGB adds the schema-compatible but content-disjoint edge...
        assert!(
            report.after_sgb.has_edge(base, unrelated)
                || report.after_sgb.has_edge(unrelated, base)
        );
        // ...which must be gone after MMP (disjoint id ranges) or CLP.
        assert!(!report.after_clp.has_edge(base, unrelated));
        assert!(!report.after_clp.has_edge(unrelated, base));

        // Stage reports are ordered and monotone in edge count.
        assert_eq!(report.stages.len(), 3);
        let order: Vec<Stage> = report.stages.iter().map(|s| s.stage).collect();
        assert_eq!(order, Stage::ALL);
        assert!(
            report.stage(Stage::Sgb).unwrap().edges_after
                >= report.stage(Stage::Mmp).unwrap().edges_after
        );
        assert!(
            report.stage(Stage::Mmp).unwrap().edges_after
                >= report.stage(Stage::Clp).unwrap().edges_after
        );
        assert!(report.sgb_clusters >= 1);
        assert!(report.total_duration >= report.stages[0].duration);
    }

    #[test]
    fn mmp_stage_uses_no_row_scans() {
        let (lake, ..) = small_lake();
        let report = R2d2Pipeline::with_defaults().run(&lake).unwrap();
        let mmp = report.stage(Stage::Mmp).unwrap();
        assert_eq!(mmp.ops.rows_scanned, 0);
        assert!(mmp.ops.metadata_lookups > 0);
    }

    #[test]
    fn final_graph_accessor() {
        let (lake, ..) = small_lake();
        let report = R2d2Pipeline::with_defaults().run(&lake).unwrap();
        assert_eq!(
            report.final_graph().edge_count(),
            report.after_clp.edge_count()
        );
    }

    #[test]
    fn empty_lake_runs() {
        let lake = DataLake::new();
        let report = R2d2Pipeline::with_defaults().run(&lake).unwrap();
        assert_eq!(report.after_clp.node_count(), 0);
        assert_eq!(report.after_clp.edge_count(), 0);
    }

    #[test]
    fn stage_names_match_the_paper() {
        assert_eq!(Stage::Sgb.to_string(), "SGB");
        assert_eq!(Stage::Mmp.to_string(), "MMP");
        assert_eq!(Stage::Clp.to_string(), "CLP");
        assert_eq!(Stage::ALL.len(), 3);
    }

    #[test]
    fn approx_tier_reproduces_the_exact_graph_and_reports_estimates() {
        use crate::config::ApproxConfig;

        let (lake, base, subset, projected, _) = small_lake();
        let exact = R2d2Pipeline::with_defaults().run(&lake).unwrap();
        assert!(
            exact.approx_edges.is_empty(),
            "no estimate report with the tier off"
        );

        let approx_cfg = PipelineConfig::default().with_approx(ApproxConfig::default());
        let approx = R2d2Pipeline::new(approx_cfg).run(&lake).unwrap();

        // The domination gate only prunes provably-false pairs, so the
        // final graph is identical to the exact run. Intermediate graphs may
        // be strictly smaller: content-disjoint pairs that exact SGB admits
        // on schema alone (and MMP/CLP later remove) are pruned up front.
        assert_eq!(approx.after_clp, exact.after_clp);
        let exact_sgb = {
            let mut e = exact.after_sgb.edges();
            e.sort_unstable();
            e
        };
        for edge in approx.after_sgb.edges() {
            assert!(
                exact_sgb.binary_search(&edge).is_ok(),
                "approx SGB admitted an edge the exact path did not: {edge:?}"
            );
        }
        assert!(approx.after_sgb.edge_count() <= exact.after_sgb.edge_count());
        for g in [&approx.after_sgb, &approx.after_mmp, &approx.after_clp] {
            assert!(g.has_edge(base, subset), "true edge must never be pruned");
            assert!(
                g.has_edge(base, projected),
                "true edge must never be pruned"
            );
        }

        // The §7.2.2 report covers exactly the final edges, sorted, and
        // every surviving (true) edge is consistent with exact containment.
        let mut expected = approx.after_clp.edges();
        expected.sort_unstable();
        let reported: Vec<(u64, u64)> = approx
            .approx_edges
            .iter()
            .map(|e| (e.parent, e.child))
            .collect();
        assert_eq!(reported, expected);
        assert!(reported.contains(&(base, subset)));
        assert!(reported.contains(&(base, projected)));
        for edge in &approx.approx_edges {
            assert!(
                edge.estimate.could_be_exact(),
                "true edge {}→{} estimated at {} with upper {}",
                edge.parent,
                edge.child,
                edge.estimate.estimate,
                edge.estimate.upper
            );
        }

        // The tier actually ran: signature probes were metered.
        let sgb_ops = &approx.stage(Stage::Sgb).unwrap().ops;
        assert!(sgb_ops.approx_probes > 0);
    }

    #[test]
    fn approx_report_is_deterministic_across_thread_counts() {
        use crate::config::ApproxConfig;

        let (lake, ..) = small_lake();
        let run = |threads: usize| {
            let cfg = PipelineConfig::default()
                .with_threads(threads)
                .with_approx(ApproxConfig::default());
            R2d2Pipeline::new(cfg).run(&lake).unwrap()
        };
        let one = run(1);
        let four = run(4);
        assert_eq!(one.approx_edges, four.approx_edges);
        assert_eq!(one.after_clp, four.after_clp);
    }

    #[test]
    fn approx_report_can_be_disabled_independently() {
        use crate::config::ApproxConfig;

        let (lake, ..) = small_lake();
        let cfg =
            PipelineConfig::default().with_approx(ApproxConfig::default().with_report(0, 0.95));
        let report = R2d2Pipeline::new(cfg).run(&lake).unwrap();
        assert!(report.approx_edges.is_empty());
        assert!(report.after_clp.edge_count() > 0);
    }

    #[test]
    fn schema_sets_extraction() {
        let (lake, ..) = small_lake();
        let sets = R2d2Pipeline::schema_sets(&lake);
        assert_eq!(sets.len(), 4);
        assert!(sets.iter().any(|(_, s)| s.len() == 2));
        assert!(sets.iter().any(|(_, s)| s.len() == 3));
    }
}
