//! Sampling theory for Content-Level Pruning (Theorem 4.2).
//!
//! Theorem 4.2 of the paper: given a pair of datasets whose containment
//! fraction is at most `1 − ε`, the number of uniformly random (with
//! replacement) samples needed to prune the edge with probability at least
//! `1 − δ` is
//!
//! ```text
//! n_s ≥ ln(1/δ) / ln(1/(1 − ε))
//! ```
//!
//! The paper's worked example: for δ = 0.05 and ε = 0.1 (containment at most
//! 90%), `n_s ≥ 29`.

/// Minimum number of samples needed to detect (and prune) a pair whose
/// containment fraction is at most `1 − epsilon`, with probability at least
/// `1 − delta` (Theorem 4.2). Both parameters must lie in `(0, 1)`.
pub fn required_samples(epsilon: f64, delta: f64) -> usize {
    assert!(
        epsilon > 0.0 && epsilon < 1.0,
        "epsilon must be in (0,1), got {epsilon}"
    );
    assert!(
        delta > 0.0 && delta < 1.0,
        "delta must be in (0,1), got {delta}"
    );
    let n = (1.0 / delta).ln() / (1.0 / (1.0 - epsilon)).ln();
    n.ceil() as usize
}

/// Probability of successfully pruning an edge whose true containment
/// fraction is `containment` (< 1), when `n_samples` independent uniform
/// samples of the child are checked against the parent:
/// `P(prune) = 1 − containment^n`.
pub fn prune_probability(containment: f64, n_samples: usize) -> f64 {
    assert!(
        (0.0..=1.0).contains(&containment),
        "containment must be in [0,1]"
    );
    1.0 - containment.powi(n_samples as i32)
}

/// The largest containment fraction that `n_samples` samples can rule out
/// with probability at least `1 − delta` — the inverse view of
/// [`required_samples`], useful for reporting the guarantee a given `t`
/// parameter provides.
pub fn detectable_containment(n_samples: usize, delta: f64) -> f64 {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    assert!(n_samples > 0, "need at least one sample");
    // containment^n ≤ delta  ⇒  containment ≤ delta^(1/n)
    delta.powf(1.0 / n_samples as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // δ = 0.05, ε = 0.1 → n_s ≥ 29 (the paper's example in §4.3).
        assert_eq!(required_samples(0.1, 0.05), 29);
    }

    #[test]
    fn more_confidence_needs_more_samples() {
        assert!(required_samples(0.1, 0.01) > required_samples(0.1, 0.1));
        assert!(required_samples(0.01, 0.05) > required_samples(0.5, 0.05));
    }

    #[test]
    fn tiny_epsilon_large_sample() {
        let n = required_samples(0.001, 0.05);
        assert!(n >= 2995, "got {n}");
    }

    #[test]
    fn prune_probability_monotone_in_samples() {
        let p1 = prune_probability(0.9, 1);
        let p10 = prune_probability(0.9, 10);
        let p29 = prune_probability(0.9, 29);
        assert!(p1 < p10 && p10 < p29);
        assert!((p1 - 0.1).abs() < 1e-12);
        assert!(p29 >= 0.95, "29 samples must reach the 95% guarantee");
    }

    #[test]
    fn prune_probability_edge_cases() {
        assert_eq!(prune_probability(0.0, 1), 1.0);
        assert_eq!(prune_probability(1.0, 1000), 0.0);
    }

    #[test]
    fn detectable_containment_inverse_of_required_samples() {
        for &(eps, delta) in &[(0.1, 0.05), (0.2, 0.01), (0.05, 0.1)] {
            let n = required_samples(eps, delta);
            let c = detectable_containment(n, delta);
            // With n samples we can rule out containment ≥ (1 - eps)... i.e.
            // the detectable containment bound must be at least 1 - eps.
            assert!(c >= 1.0 - eps - 1e-9, "eps={eps} delta={delta} n={n} c={c}");
        }
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn invalid_epsilon_panics() {
        required_samples(0.0, 0.05);
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn invalid_delta_panics() {
        required_samples(0.1, 1.0);
    }
}
