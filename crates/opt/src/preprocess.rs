//! Graph pre-processing for "safe deletion" (§5.1 of the paper).
//!
//! Before the optimizer may treat an edge `parent → child` as a
//! reconstruction option, §5.1 requires that
//!
//! 1. the transformation generating the child from the parent is **known**
//!    (in the paper: supplied by a human expert; here: taken from the
//!    catalog's lineage records or from an explicit edge annotation), and
//! 2. the estimated reconstruction latency `L_e ≈ r_ℓ·s_p + w_ℓ·s_q` is
//!    within the QoS threshold `T_h`.
//!
//! Edges failing either requirement are pruned; surviving edges are
//! annotated with their reconstruction cost and latency so the optimizer can
//! consume them directly.

use crate::costmodel::CostModel;
use r2d2_graph::ContainmentGraph;
use r2d2_lake::{DataLake, DatasetId, Result};
use serde::{Deserialize, Serialize};

/// How transformation knowledge is established for an edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TransformKnowledge {
    /// Require a lineage record (catalog) or an explicit `transform`
    /// annotation on the edge; prune edges without one. This mirrors the
    /// paper's human-in-the-loop policy.
    Required,
    /// Assume every containment edge's transformation is known (the child is
    /// an exact subset, so `SELECT` with the appropriate filter always
    /// works). Useful for synthetic sweeps.
    AssumeKnown,
}

/// Statistics of a pre-processing pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PreprocessStats {
    /// Edges examined.
    pub edges_examined: usize,
    /// Edges pruned because no transformation is known.
    pub pruned_unknown_transform: usize,
    /// Edges pruned because the reconstruction latency exceeds the threshold.
    pub pruned_latency: usize,
    /// Edges annotated and kept.
    pub kept: usize,
}

/// Pre-process `graph` in place: annotate every edge with reconstruction
/// cost and latency, pruning edges per §5.1.
pub fn preprocess_for_safe_deletion(
    graph: &mut ContainmentGraph,
    lake: &DataLake,
    model: &CostModel,
    knowledge: TransformKnowledge,
) -> Result<PreprocessStats> {
    let mut stats = PreprocessStats::default();
    for (parent, child) in graph.edges() {
        stats.edges_examined += 1;
        let parent_entry = lake.dataset(DatasetId(parent))?;
        let child_entry = lake.dataset(DatasetId(child))?;

        // Requirement 1: known transformation.
        let lineage_matches = child_entry
            .lineage
            .as_ref()
            .map(|l| l.parent.0 == parent)
            .unwrap_or(false);
        let edge_has_transform = graph
            .edge(parent, child)
            .map(|e| e.transform.is_some())
            .unwrap_or(false);
        let known = match knowledge {
            TransformKnowledge::AssumeKnown => true,
            TransformKnowledge::Required => lineage_matches || edge_has_transform,
        };
        if !known {
            graph.remove_edge(parent, child);
            stats.pruned_unknown_transform += 1;
            continue;
        }

        // Requirement 2: bounded latency.
        let p_bytes = parent_entry.byte_size() as u64;
        let c_bytes = child_entry.byte_size() as u64;
        if !model.latency_ok(p_bytes, c_bytes) {
            graph.remove_edge(parent, child);
            stats.pruned_latency += 1;
            continue;
        }

        // Annotate.
        let cost = model.reconstruction_cost(p_bytes, c_bytes);
        let latency = model.reconstruction_latency(p_bytes, c_bytes);
        let transform_desc = if lineage_matches {
            child_entry.lineage.as_ref().map(|l| l.transform.clone())
        } else {
            None
        };
        if let Some(edge) = graph.edge_mut(parent, child) {
            edge.reconstruction_cost = Some(cost);
            edge.reconstruction_latency = Some(latency);
            if edge.transform.is_none() {
                edge.transform = transform_desc
                    .or_else(|| Some("exact containment (SELECT subset)".to_string()));
            }
        }
        stats.kept += 1;
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_lake::{AccessProfile, Column, DataType, Lineage, PartitionedTable, Schema, Table};

    fn make_lake(with_lineage: bool) -> (DataLake, u64, u64) {
        let schema = Schema::flat(&[("x", DataType::Int)]).unwrap();
        let mk = |n: i64| {
            PartitionedTable::single(
                Table::new(schema.clone(), vec![Column::from_ints(0..n)]).unwrap(),
            )
        };
        let mut lake = DataLake::new();
        let parent = lake
            .add_dataset("parent", mk(100), AccessProfile::default(), None)
            .unwrap();
        let lineage = if with_lineage {
            Some(Lineage {
                parent,
                transform: "WHERE x < 50".to_string(),
            })
        } else {
            None
        };
        let child = lake
            .add_dataset("child", mk(50), AccessProfile::default(), lineage)
            .unwrap();
        (lake, parent.0, child.0)
    }

    #[test]
    fn keeps_and_annotates_edges_with_lineage() {
        let (lake, p, c) = make_lake(true);
        let mut graph = ContainmentGraph::new();
        graph.add_edge(p, c);
        let stats = preprocess_for_safe_deletion(
            &mut graph,
            &lake,
            &CostModel::default(),
            TransformKnowledge::Required,
        )
        .unwrap();
        assert_eq!(stats.kept, 1);
        let edge = graph.edge(p, c).unwrap();
        assert!(edge.reconstruction_cost.unwrap() > 0.0);
        assert!(edge.reconstruction_latency.unwrap() > 0.0);
        assert_eq!(edge.transform.as_deref(), Some("WHERE x < 50"));
    }

    #[test]
    fn prunes_edges_without_known_transform() {
        let (lake, p, c) = make_lake(false);
        let mut graph = ContainmentGraph::new();
        graph.add_edge(p, c);
        let stats = preprocess_for_safe_deletion(
            &mut graph,
            &lake,
            &CostModel::default(),
            TransformKnowledge::Required,
        )
        .unwrap();
        assert_eq!(stats.pruned_unknown_transform, 1);
        assert!(!graph.has_edge(p, c));
    }

    #[test]
    fn assume_known_keeps_edges_without_lineage() {
        let (lake, p, c) = make_lake(false);
        let mut graph = ContainmentGraph::new();
        graph.add_edge(p, c);
        let stats = preprocess_for_safe_deletion(
            &mut graph,
            &lake,
            &CostModel::default(),
            TransformKnowledge::AssumeKnown,
        )
        .unwrap();
        assert_eq!(stats.kept, 1);
        assert!(graph.edge(p, c).unwrap().transform.is_some());
    }

    #[test]
    fn explicit_edge_transform_counts_as_known() {
        let (lake, p, c) = make_lake(false);
        let mut graph = ContainmentGraph::new();
        graph.add_edge_with(
            p,
            c,
            r2d2_graph::ContainmentEdge {
                transform: Some("manual note".to_string()),
                ..Default::default()
            },
        );
        let stats = preprocess_for_safe_deletion(
            &mut graph,
            &lake,
            &CostModel::default(),
            TransformKnowledge::Required,
        )
        .unwrap();
        assert_eq!(stats.kept, 1);
        assert_eq!(
            graph.edge(p, c).unwrap().transform.as_deref(),
            Some("manual note")
        );
    }

    #[test]
    fn prunes_edges_exceeding_latency_threshold() {
        let (lake, p, c) = make_lake(true);
        let mut graph = ContainmentGraph::new();
        graph.add_edge(p, c);
        // Absurdly tight threshold: everything is too slow.
        let model = CostModel::default().with_latency_threshold(1e-12);
        let stats =
            preprocess_for_safe_deletion(&mut graph, &lake, &model, TransformKnowledge::Required)
                .unwrap();
        assert_eq!(stats.pruned_latency, 1);
        assert_eq!(graph.edge_count(), 0);
    }

    #[test]
    fn lineage_to_a_different_parent_does_not_count() {
        let schema = Schema::flat(&[("x", DataType::Int)]).unwrap();
        let mk = |n: i64| {
            PartitionedTable::single(
                Table::new(schema.clone(), vec![Column::from_ints(0..n)]).unwrap(),
            )
        };
        let mut lake = DataLake::new();
        let a = lake
            .add_dataset("a", mk(100), AccessProfile::default(), None)
            .unwrap();
        let b = lake
            .add_dataset("b", mk(100), AccessProfile::default(), None)
            .unwrap();
        let c = lake
            .add_dataset(
                "c",
                mk(10),
                AccessProfile::default(),
                Some(Lineage {
                    parent: a,
                    transform: "WHERE ...".to_string(),
                }),
            )
            .unwrap();
        let mut graph = ContainmentGraph::new();
        graph.add_edge(b.0, c.0); // edge from b, but lineage says a
        let stats = preprocess_for_safe_deletion(
            &mut graph,
            &lake,
            &CostModel::default(),
            TransformKnowledge::Required,
        )
        .unwrap();
        assert_eq!(stats.pruned_unknown_transform, 1);
    }
}
