//! Cloud cost and latency model.
//!
//! The paper evaluates Opt-Ret with "Azure Data Lake Gen2 public hot tier
//! storage and read costs" and notes that "the cloud costs for write
//! operations in the premium and hot tiers are an order of magnitude higher
//! than the read costs". The exact per-GB numbers are not printed in the
//! paper, so the defaults below encode the publicly documented *ratios*
//! (write ≈ 10× read, storage ≈ cents per GB-month); every field is
//! configurable so experiments can sweep them.

use serde::{Deserialize, Serialize};

/// Number of bytes per gigabyte used throughout the cost model.
pub const BYTES_PER_GB: f64 = 1_073_741_824.0;

/// Prices and latency estimates per unit of data.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Storage cost per GB per billing period (hot tier, USD).
    pub storage_per_gb_period: f64,
    /// Read cost per GB (USD).
    pub read_per_gb: f64,
    /// Write cost per GB (USD) — roughly an order of magnitude above reads.
    pub write_per_gb: f64,
    /// Compute cost of one maintenance operation (e.g. a privacy-initiated
    /// full scan) per GB (USD) — the `C_m` of Eq. 3.
    pub maintenance_per_gb_op: f64,
    /// Read latency per GB (seconds).
    pub read_latency_per_gb: f64,
    /// Write latency per GB (seconds).
    pub write_latency_per_gb: f64,
    /// Maximum tolerable reconstruction latency (seconds) — the QoS threshold
    /// `T_h` of §5.1.
    pub latency_threshold: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::azure_hot_tier()
    }
}

impl CostModel {
    /// Azure-hot-tier-like defaults (USD, GB, seconds).
    pub fn azure_hot_tier() -> Self {
        CostModel {
            storage_per_gb_period: 0.018,
            read_per_gb: 0.0005,
            write_per_gb: 0.0055,
            maintenance_per_gb_op: 0.0008,
            read_latency_per_gb: 4.0,
            write_latency_per_gb: 12.0,
            latency_threshold: 3600.0,
        }
    }

    /// A premium-tier-like variant: cheaper latency, pricier storage.
    pub fn azure_premium_tier() -> Self {
        CostModel {
            storage_per_gb_period: 0.15,
            read_per_gb: 0.00013,
            write_per_gb: 0.0013,
            maintenance_per_gb_op: 0.0004,
            read_latency_per_gb: 1.0,
            write_latency_per_gb: 3.0,
            latency_threshold: 3600.0,
        }
    }

    /// Override the latency threshold (builder style).
    pub fn with_latency_threshold(mut self, seconds: f64) -> Self {
        self.latency_threshold = seconds;
        self
    }

    /// Size in GB of a byte count.
    pub fn gb(bytes: u64) -> f64 {
        bytes as f64 / BYTES_PER_GB
    }

    /// Retention cost of a dataset for one billing period
    /// (`(C_s + C_m · f_v) · S_v` in Eq. 3).
    pub fn retention_cost(&self, size_bytes: u64, maintenance_per_period: f64) -> f64 {
        let gb = Self::gb(size_bytes);
        (self.storage_per_gb_period + self.maintenance_per_gb_op * maintenance_per_period) * gb
    }

    /// Monetary cost of reconstructing a child from a parent
    /// (`C_e ≈ r·s_p + w·s_q` in §5.1).
    pub fn reconstruction_cost(&self, parent_bytes: u64, child_bytes: u64) -> f64 {
        self.read_per_gb * Self::gb(parent_bytes) + self.write_per_gb * Self::gb(child_bytes)
    }

    /// Latency of reconstructing a child from a parent
    /// (`L_e ≈ r_ℓ·s_p + w_ℓ·s_q` in §5.1).
    pub fn reconstruction_latency(&self, parent_bytes: u64, child_bytes: u64) -> f64 {
        self.read_latency_per_gb * Self::gb(parent_bytes)
            + self.write_latency_per_gb * Self::gb(child_bytes)
    }

    /// Whether an edge satisfies the QoS latency constraint of §5.1.
    pub fn latency_ok(&self, parent_bytes: u64, child_bytes: u64) -> bool {
        self.reconstruction_latency(parent_bytes, child_bytes) <= self.latency_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = BYTES_PER_GB as u64;

    #[test]
    fn write_costs_dominate_reads() {
        let m = CostModel::azure_hot_tier();
        assert!(m.write_per_gb >= 10.0 * m.read_per_gb);
        let p = CostModel::azure_premium_tier();
        assert!(p.write_per_gb >= 9.0 * p.read_per_gb);
    }

    #[test]
    fn retention_cost_scales_with_size_and_maintenance() {
        let m = CostModel::default();
        let small = m.retention_cost(GB, 1.0);
        let large = m.retention_cost(10 * GB, 1.0);
        let busy = m.retention_cost(GB, 10.0);
        assert!((large / small - 10.0).abs() < 1e-9);
        assert!(busy > small);
        assert_eq!(m.retention_cost(0, 5.0), 0.0);
    }

    #[test]
    fn reconstruction_cost_mostly_write() {
        let m = CostModel::default();
        let cost = m.reconstruction_cost(GB, GB);
        let write_only = m.write_per_gb;
        assert!(cost > write_only, "includes the read part");
        assert!(
            cost < 2.0 * write_only,
            "write dominates when sizes are equal"
        );
    }

    #[test]
    fn latency_threshold_enforced() {
        let m = CostModel::azure_hot_tier().with_latency_threshold(10.0);
        assert!(m.latency_ok(GB / 10, GB / 10));
        assert!(!m.latency_ok(100 * GB, 100 * GB));
    }

    #[test]
    fn latency_is_linear_in_sizes() {
        let m = CostModel::default();
        let l1 = m.reconstruction_latency(GB, GB);
        let l2 = m.reconstruction_latency(2 * GB, 2 * GB);
        assert!((l2 / l1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn gb_conversion() {
        assert!((CostModel::gb(GB) - 1.0).abs() < 1e-9);
        assert_eq!(CostModel::gb(0), 0.0);
    }
}
