//! # r2d2-opt — cost optimization for the R2D2 reproduction
//!
//! Section 5 of the paper turns the containment graph into savings: it
//! pre-processes the graph for "safe deletion" (§5.1: every edge must have a
//! known transformation and a bounded reconstruction latency), then solves
//! the **Opt-Ret** integer program (Eq. 3) that chooses which datasets to
//! retain and which to delete so that the total of storage, maintenance and
//! expected reconstruction costs is minimised, subject to every deleted
//! dataset keeping at least one retained parent. §5.3 gives a linear-time
//! dynamic program, **Dyn-Lin**, for the special case of line graphs.
//!
//! This crate provides:
//!
//! * [`costmodel::CostModel`] — Azure-hot-tier-like storage / read / write /
//!   maintenance prices and latency estimates (all configurable);
//! * [`preprocess`] — §5.1 edge annotation and pruning (transformation
//!   knowledge from catalog lineage, latency thresholds);
//! * [`problem::OptRetProblem`] — the concrete optimization instance built
//!   from a containment graph, a lake and a cost model;
//! * [`solver`] — an exact branch & bound solver (used for the moderate
//!   instance sizes the pipeline produces and to validate the heuristic), a
//!   greedy heuristic for large random graphs (Fig. 6 scalability sweeps),
//!   and [`solver::solve`] which picks between them per connected component;
//! * [`dynlin`] — the Dyn-Lin dynamic program (Theorem 5.1);
//! * [`savings`] — GDPR row-scan savings (Table 7) and the 10 PB / 1-year
//!   horizon projection of Fig. 5;
//! * [`advisor`] — the **incremental** entry point: an
//!   [`advisor::AdvisorState`] keeps the pruned problem in sync with graph
//!   edge deltas and lake changes and re-solves only the dirtied components.
//!
//! ## Batch vs incremental
//!
//! One-shot analyses compose the batch pieces directly —
//! [`preprocess::preprocess_for_safe_deletion`], then
//! [`problem::OptRetProblem::from_graph`], then [`solver::solve`]. A
//! long-lived service (`r2d2_core::R2d2Session`) instead owns an
//! [`advisor::AdvisorState`] and feeds it every update's effect; both paths
//! produce *identical* solutions because they share the same canonical
//! problem layout and per-component solver dispatch
//! ([`advisor::from_scratch`] is the pinned oracle).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod advisor;
pub mod costmodel;
pub mod dynlin;
pub mod preprocess;
pub mod problem;
pub mod savings;
pub mod solver;

pub use advisor::{AdvisorConfig, AdvisorReport, AdvisorState, DatasetChange};
pub use costmodel::CostModel;
pub use problem::{AdjacencyIndex, NodeCosts, OptRetProblem, ReconstructionEdge};
pub use solver::{solve, solve_exact, solve_greedy, Solution};
