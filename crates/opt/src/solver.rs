//! Solvers for the Opt-Ret integer program (Eq. 3 of the paper).
//!
//! The decision variables are `x_v` (retain dataset `v`) and `y_e` (use edge
//! `e = (u, v)` to reconstruct a deleted `v` from a retained `u`). Because
//! the objective is separable in `y` — once the retained set is fixed, the
//! best choice for every deleted node is simply its cheapest retained parent
//! — a solution is fully described by the retained set, and solvers only
//! search over `x`.
//!
//! Two solvers are provided:
//!
//! * [`solve_exact`] — branch & bound over the retain/delete assignment,
//!   run independently per weakly connected component with an admissible
//!   lower bound. Exact, intended for the instance sizes the pipeline
//!   actually produces (the paper reports 100–300 candidate edges).
//! * [`solve_greedy`] — a feasibility-preserving greedy heuristic (delete the
//!   node with the largest positive saving until no saving remains), used
//!   for the large Erdős–Rényi instances of the Fig. 6 scalability sweep and
//!   cross-validated against the exact solver on small instances.
//!
//! [`solve`] picks per component: exact when the component is small enough,
//! greedy otherwise.

use crate::problem::OptRetProblem;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A (feasible) solution to an Opt-Ret instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Datasets to retain.
    pub retained: BTreeSet<u64>,
    /// Datasets recommended for deletion.
    pub deleted: BTreeSet<u64>,
    /// For each deleted dataset, the retained parent chosen for
    /// reconstruction (the `y_e = 1` edge).
    pub reconstruction_parent: BTreeMap<u64, u64>,
    /// Objective value (Eq. 3) of this solution.
    pub total_cost: f64,
}

impl Solution {
    /// Retain every dataset (the trivial feasible solution).
    pub fn retain_all(problem: &OptRetProblem) -> Self {
        let retained: BTreeSet<u64> = problem.nodes.keys().copied().collect();
        Solution {
            total_cost: problem.retain_all_cost(),
            retained,
            deleted: BTreeSet::new(),
            reconstruction_parent: BTreeMap::new(),
        }
    }

    /// Number of deleted datasets.
    pub fn deleted_count(&self) -> usize {
        self.deleted.len()
    }

    /// Total bytes of the deleted datasets.
    pub fn deleted_bytes(&self, problem: &OptRetProblem) -> u64 {
        self.deleted
            .iter()
            .filter_map(|d| problem.nodes.get(d))
            .map(|n| n.size_bytes)
            .sum()
    }

    /// Savings relative to retaining everything.
    pub fn savings(&self, problem: &OptRetProblem) -> f64 {
        problem.retain_all_cost() - self.total_cost
    }

    /// Verify that the solution satisfies Eq. 3's constraints: retained and
    /// deleted partition the nodes, every deleted node has a retained
    /// reconstruction parent connected by a real edge.
    pub fn is_feasible(&self, problem: &OptRetProblem) -> bool {
        let all: BTreeSet<u64> = problem.nodes.keys().copied().collect();
        let union: BTreeSet<u64> = self.retained.union(&self.deleted).copied().collect();
        if union != all || !self.retained.is_disjoint(&self.deleted) {
            return false;
        }
        for d in &self.deleted {
            match self.reconstruction_parent.get(d) {
                None => return false,
                Some(p) => {
                    if !self.retained.contains(p) {
                        return false;
                    }
                    if !problem
                        .edges
                        .iter()
                        .any(|e| e.parent == *p && e.child == *d)
                    {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Evaluate a retained-set choice: returns `None` if some deleted node has no
/// retained parent, otherwise the total cost and the chosen reconstruction
/// parents.
fn evaluate(
    problem: &OptRetProblem,
    retained: &BTreeSet<u64>,
) -> Option<(f64, BTreeMap<u64, u64>)> {
    let mut cost = 0.0;
    let mut recon = BTreeMap::new();
    for (id, node) in &problem.nodes {
        if retained.contains(id) {
            cost += node.retention_cost;
        } else {
            let best = problem
                .parents_of(*id)
                .into_iter()
                .filter(|e| retained.contains(&e.parent))
                .min_by(|a, b| {
                    a.cost
                        .partial_cmp(&b.cost)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })?;
            cost += node.accesses * best.cost;
            recon.insert(*id, best.parent);
        }
    }
    Some((cost, recon))
}

/// Build a solution from a retained set, if feasible.
fn solution_from_retained(problem: &OptRetProblem, retained: BTreeSet<u64>) -> Option<Solution> {
    let (total_cost, reconstruction_parent) = evaluate(problem, &retained)?;
    let deleted = problem
        .nodes
        .keys()
        .copied()
        .filter(|id| !retained.contains(id))
        .collect();
    Some(Solution {
        retained,
        deleted,
        reconstruction_parent,
        total_cost,
    })
}

/// Weakly connected components of the problem graph (isolated nodes form
/// singleton components).
fn components(problem: &OptRetProblem) -> Vec<Vec<u64>> {
    let ids: Vec<u64> = problem.nodes.keys().copied().collect();
    let mut comp: BTreeMap<u64, usize> = BTreeMap::new();
    let mut adjacency: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for e in &problem.edges {
        adjacency.entry(e.parent).or_default().push(e.child);
        adjacency.entry(e.child).or_default().push(e.parent);
    }
    let mut count = 0;
    for &start in &ids {
        if comp.contains_key(&start) {
            continue;
        }
        let mut stack = vec![start];
        comp.insert(start, count);
        while let Some(u) = stack.pop() {
            for &v in adjacency.get(&u).map(|v| v.as_slice()).unwrap_or(&[]) {
                if let std::collections::btree_map::Entry::Vacant(slot) = comp.entry(v) {
                    slot.insert(count);
                    stack.push(v);
                }
            }
        }
        count += 1;
    }
    let mut out = vec![Vec::new(); count];
    for (&id, &c) in &comp {
        out[c].push(id);
    }
    out
}

/// Restrict a problem to a subset of nodes (edges with both endpoints inside).
fn sub_problem(problem: &OptRetProblem, nodes: &[u64]) -> OptRetProblem {
    let set: BTreeSet<u64> = nodes.iter().copied().collect();
    OptRetProblem {
        nodes: problem
            .nodes
            .iter()
            .filter(|(id, _)| set.contains(id))
            .map(|(id, n)| (*id, *n))
            .collect(),
        edges: problem
            .edges
            .iter()
            .filter(|e| set.contains(&e.parent) && set.contains(&e.child))
            .copied()
            .collect(),
    }
}

/// Exact branch & bound over one (sub-)problem.
fn branch_and_bound(problem: &OptRetProblem) -> Solution {
    let ids: Vec<u64> = problem.nodes.keys().copied().collect();
    // Optimistic per-node lower bound: the cheaper of retaining and
    // reconstructing from the cheapest parent (regardless of its status).
    let optimistic: BTreeMap<u64, f64> = ids
        .iter()
        .map(|&id| {
            let node = &problem.nodes[&id];
            let best_parent = problem
                .cheapest_parent(id)
                .map(|e| node.accesses * e.cost)
                .unwrap_or(f64::INFINITY);
            (id, node.retention_cost.min(best_parent))
        })
        .collect();

    let mut best = Solution::retain_all(problem);

    // DFS over assignments. `retained`/`deleted` hold the partial assignment
    // for ids[0..depth].
    fn dfs(
        problem: &OptRetProblem,
        ids: &[u64],
        optimistic: &BTreeMap<u64, f64>,
        depth: usize,
        retained: &mut BTreeSet<u64>,
        deleted: &mut BTreeSet<u64>,
        best: &mut Solution,
    ) {
        // Lower bound: cost of decided retained nodes + optimistic bound for
        // everything else (decided-deleted nodes still use the optimistic
        // reconstruction estimate, which never overestimates).
        let mut bound = 0.0;
        for id in retained.iter() {
            bound += problem.nodes[id].retention_cost;
        }
        for id in deleted.iter() {
            let node = &problem.nodes[id];
            let opt_recon = problem
                .cheapest_parent(*id)
                .map(|e| node.accesses * e.cost)
                .unwrap_or(f64::INFINITY);
            bound += opt_recon;
        }
        for id in &ids[depth..] {
            bound += optimistic[id];
        }
        if bound >= best.total_cost - 1e-12 {
            return;
        }

        if depth == ids.len() {
            if let Some(sol) = solution_from_retained(problem, retained.clone()) {
                if sol.total_cost < best.total_cost {
                    *best = sol;
                }
            }
            return;
        }

        let id = ids[depth];
        // Branch 1: retain.
        retained.insert(id);
        dfs(problem, ids, optimistic, depth + 1, retained, deleted, best);
        retained.remove(&id);

        // Branch 2: delete — only worth trying if the node has any parent.
        if !problem.parents_of(id).is_empty() {
            deleted.insert(id);
            dfs(problem, ids, optimistic, depth + 1, retained, deleted, best);
            deleted.remove(&id);
        }
    }

    let mut retained = BTreeSet::new();
    let mut deleted = BTreeSet::new();
    dfs(
        problem,
        &ids,
        &optimistic,
        0,
        &mut retained,
        &mut deleted,
        &mut best,
    );
    best
}

/// Merge per-component solutions into one.
fn merge(parts: Vec<Solution>) -> Solution {
    let mut out = Solution {
        retained: BTreeSet::new(),
        deleted: BTreeSet::new(),
        reconstruction_parent: BTreeMap::new(),
        total_cost: 0.0,
    };
    for p in parts {
        out.retained.extend(p.retained);
        out.deleted.extend(p.deleted);
        out.reconstruction_parent.extend(p.reconstruction_parent);
        out.total_cost += p.total_cost;
    }
    out
}

/// Solve exactly with branch & bound (per connected component).
///
/// Worst-case exponential in the largest component; intended for the
/// moderate graphs the pipeline produces and for validating the heuristic.
pub fn solve_exact(problem: &OptRetProblem) -> Solution {
    let parts = components(problem)
        .iter()
        .map(|nodes| branch_and_bound(&sub_problem(problem, nodes)))
        .collect();
    merge(parts)
}

/// Greedy heuristic: repeatedly delete the dataset with the largest positive
/// saving while preserving feasibility.
///
/// Implementation note: adjacency lists and per-node "retained parent"
/// counters are maintained incrementally, so one deletion step costs O(E) in
/// the worst case and the whole heuristic O(V·E) — this is what keeps the
/// Fig. 6 sweeps (thousands of nodes, tens of thousands of edges) fast.
pub fn solve_greedy(problem: &OptRetProblem) -> Solution {
    let mut retained: BTreeSet<u64> = problem.nodes.keys().copied().collect();
    let mut deleted: BTreeSet<u64> = BTreeSet::new();

    // child → [(parent, cost)] and parent → [children] adjacency.
    let mut parents: BTreeMap<u64, Vec<(u64, f64)>> = BTreeMap::new();
    let mut children: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for e in &problem.edges {
        if e.parent == e.child {
            continue;
        }
        parents.entry(e.child).or_default().push((e.parent, e.cost));
        children.entry(e.parent).or_default().push(e.child);
    }
    // Number of *retained* parents per node (all parents are retained at start).
    let mut retained_parent_count: BTreeMap<u64, usize> = problem
        .nodes
        .keys()
        .map(|&v| (v, parents.get(&v).map(Vec::len).unwrap_or(0)))
        .collect();

    loop {
        // For each retained candidate, compute the saving of deleting it now.
        let mut best_choice: Option<(u64, f64)> = None;
        for &v in &retained {
            let node = &problem.nodes[&v];
            // v needs at least one retained parent to be deletable.
            let best_parent_cost = parents
                .get(&v)
                .map(|ps| {
                    ps.iter()
                        .filter(|(p, _)| retained.contains(p))
                        .map(|(_, c)| *c)
                        .fold(f64::INFINITY, f64::min)
                })
                .unwrap_or(f64::INFINITY);
            if !best_parent_cost.is_finite() {
                continue;
            }
            // v must not be the sole retained parent of an already-deleted node.
            let is_sole_support = children
                .get(&v)
                .map(|cs| {
                    cs.iter()
                        .any(|c| deleted.contains(c) && retained_parent_count[c] == 1)
                })
                .unwrap_or(false);
            if is_sole_support {
                continue;
            }
            let saving = node.retention_cost - node.accesses * best_parent_cost;
            if saving > 1e-12 {
                match best_choice {
                    Some((_, s)) if s >= saving => {}
                    _ => best_choice = Some((v, saving)),
                }
            }
        }
        match best_choice {
            Some((v, _)) => {
                retained.remove(&v);
                deleted.insert(v);
                if let Some(cs) = children.get(&v) {
                    for c in cs {
                        if let Some(count) = retained_parent_count.get_mut(c) {
                            *count = count.saturating_sub(1);
                        }
                    }
                }
            }
            None => break,
        }
    }

    solution_from_retained(problem, retained).expect("greedy maintains feasibility by construction")
}

/// Default component-size threshold below which [`solve`] uses the exact
/// branch & bound.
pub const EXACT_COMPONENT_LIMIT: usize = 22;

/// Solve the instance: exact branch & bound on components of at most
/// `EXACT_COMPONENT_LIMIT` nodes, greedy on larger components.
pub fn solve(problem: &OptRetProblem) -> Solution {
    solve_with_limit(problem, EXACT_COMPONENT_LIMIT)
}

/// [`solve`] with an explicit component-size threshold.
pub fn solve_with_limit(problem: &OptRetProblem, exact_limit: usize) -> Solution {
    let parts = components(problem)
        .iter()
        .map(|nodes| {
            let sub = sub_problem(problem, nodes);
            if nodes.len() <= exact_limit {
                branch_and_bound(&sub)
            } else {
                solve_greedy(&sub)
            }
        })
        .collect();
    merge(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::CostModel;
    use crate::problem::{NodeCosts, ReconstructionEdge};
    use r2d2_graph::random::{erdos_renyi, line_graph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Hand-built instance: parent P (big, must stay), child C (cheap to
    /// rebuild, rarely accessed) and child D (expensive to rebuild because it
    /// is accessed constantly).
    fn tiny_problem() -> OptRetProblem {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            0,
            NodeCosts {
                dataset: 0,
                size_bytes: 1 << 30,
                retention_cost: 10.0,
                accesses: 1.0,
            },
        );
        nodes.insert(
            1,
            NodeCosts {
                dataset: 1,
                size_bytes: 1 << 29,
                retention_cost: 5.0,
                accesses: 1.0,
            },
        );
        nodes.insert(
            2,
            NodeCosts {
                dataset: 2,
                size_bytes: 1 << 29,
                retention_cost: 5.0,
                accesses: 100.0,
            },
        );
        let edges = vec![
            ReconstructionEdge {
                parent: 0,
                child: 1,
                cost: 1.0,
            },
            ReconstructionEdge {
                parent: 0,
                child: 2,
                cost: 1.0,
            },
        ];
        OptRetProblem { nodes, edges }
    }

    #[test]
    fn exact_solver_picks_obvious_deletions() {
        let p = tiny_problem();
        let sol = solve_exact(&p);
        assert!(sol.is_feasible(&p));
        // Node 1: retention 5 vs reconstruction 1*1 = 1 → delete.
        assert!(sol.deleted.contains(&1));
        // Node 2: retention 5 vs reconstruction 100*1 = 100 → retain.
        assert!(sol.retained.contains(&2));
        // Root has no parent → must be retained.
        assert!(sol.retained.contains(&0));
        assert_eq!(sol.reconstruction_parent[&1], 0);
        assert!((sol.total_cost - (10.0 + 5.0 + 1.0)).abs() < 1e-9);
        assert!(sol.savings(&p) > 0.0);
        assert_eq!(sol.deleted_count(), 1);
        assert_eq!(sol.deleted_bytes(&p), 1 << 29);
    }

    #[test]
    fn greedy_matches_exact_on_tiny_instance() {
        let p = tiny_problem();
        let exact = solve_exact(&p);
        let greedy = solve_greedy(&p);
        assert!(greedy.is_feasible(&p));
        assert!((greedy.total_cost - exact.total_cost).abs() < 1e-9);
    }

    #[test]
    fn retain_all_is_feasible_baseline() {
        let p = tiny_problem();
        let sol = Solution::retain_all(&p);
        assert!(sol.is_feasible(&p));
        assert_eq!(sol.total_cost, 20.0);
    }

    #[test]
    fn deleted_node_always_keeps_a_retained_parent() {
        // Chain 0 → 1 → 2: deleting both 1 and 2 forces 2 to reconstruct
        // from 1 which would itself be deleted → only one of them can go
        // unless 2 can reconstruct from... it can't (its only parent is 1).
        let model = CostModel::default();
        let graph = line_graph(3);
        let p = OptRetProblem::synthetic(&graph, &model, |_| 10 << 30, |_| 0.1);
        let sol = solve_exact(&p);
        assert!(sol.is_feasible(&p));
        // Node 0 has no parent: retained. If 1 is deleted, 2 must be retained.
        assert!(sol.retained.contains(&0));
        assert!(sol.retained.contains(&1) || sol.retained.contains(&2));
    }

    #[test]
    fn exact_beats_or_matches_greedy_on_random_dags() {
        let model = CostModel::default();
        let mut rng = SmallRng::seed_from_u64(5);
        for n in [6usize, 10, 14] {
            for p_edge in [0.1, 0.3] {
                let graph = r2d2_graph::random::erdos_renyi_dag(n, p_edge, &mut rng);
                let prob = OptRetProblem::synthetic(
                    &graph,
                    &model,
                    |d| ((d % 7) + 1) << 28,
                    |d| (d % 5) as f64,
                );
                let exact = solve_exact(&prob);
                let greedy = solve_greedy(&prob);
                assert!(exact.is_feasible(&prob));
                assert!(greedy.is_feasible(&prob));
                assert!(
                    exact.total_cost <= greedy.total_cost + 1e-9,
                    "exact ({}) must not exceed greedy ({})",
                    exact.total_cost,
                    greedy.total_cost
                );
                assert!(exact.total_cost <= prob.retain_all_cost() + 1e-9);
            }
        }
    }

    #[test]
    fn greedy_scales_to_larger_random_graphs() {
        let model = CostModel::default();
        let mut rng = SmallRng::seed_from_u64(6);
        let graph = erdos_renyi(150, 0.05, &mut rng);
        let prob =
            OptRetProblem::synthetic(&graph, &model, |d| ((d % 11) + 1) << 27, |d| (d % 3) as f64);
        let sol = solve_greedy(&prob);
        assert!(sol.is_feasible(&prob));
        assert!(sol.total_cost <= prob.retain_all_cost() + 1e-9);
    }

    #[test]
    fn solve_dispatches_by_component_size() {
        let p = tiny_problem();
        let auto = solve(&p);
        let exact = solve_exact(&p);
        assert!((auto.total_cost - exact.total_cost).abs() < 1e-9);
        let forced_greedy = solve_with_limit(&p, 0);
        assert!(forced_greedy.is_feasible(&p));
    }

    #[test]
    fn empty_problem() {
        let p = OptRetProblem::default();
        let sol = solve(&p);
        assert!(sol.retained.is_empty());
        assert!(sol.deleted.is_empty());
        assert_eq!(sol.total_cost, 0.0);
        assert!(sol.is_feasible(&p));
    }

    #[test]
    fn isolated_nodes_are_retained() {
        let model = CostModel::default();
        let graph = r2d2_graph::ContainmentGraph::with_datasets(0..5);
        let p = OptRetProblem::synthetic(&graph, &model, |_| 1 << 30, |_| 1.0);
        let sol = solve(&p);
        assert_eq!(sol.retained.len(), 5);
        assert_eq!(sol.deleted_count(), 0);
    }

    #[test]
    fn infeasible_marker_detected() {
        // A solution claiming to delete a node with no retained parent is
        // reported as infeasible.
        let p = tiny_problem();
        let bad = Solution {
            retained: BTreeSet::from([1, 2]),
            deleted: BTreeSet::from([0]),
            reconstruction_parent: BTreeMap::from([(0, 1)]),
            total_cost: 0.0,
        };
        assert!(!bad.is_feasible(&p), "edge 1→0 does not exist");
    }
}
