//! Solvers for the Opt-Ret integer program (Eq. 3 of the paper).
//!
//! The decision variables are `x_v` (retain dataset `v`) and `y_e` (use edge
//! `e = (u, v)` to reconstruct a deleted `v` from a retained `u`). Because
//! the objective is separable in `y` — once the retained set is fixed, the
//! best choice for every deleted node is simply its cheapest retained parent
//! — a solution is fully described by the retained set, and solvers only
//! search over `x`.
//!
//! Two solvers are provided:
//!
//! * [`solve_exact`] — branch & bound over the retain/delete assignment,
//!   run independently per weakly connected component with an admissible
//!   lower bound. Exact, intended for the instance sizes the pipeline
//!   actually produces (the paper reports 100–300 candidate edges).
//! * [`solve_greedy`] — a feasibility-preserving greedy heuristic (delete the
//!   node with the largest positive saving until no saving remains), used
//!   for the large Erdős–Rényi instances of the Fig. 6 scalability sweep and
//!   cross-validated against the exact solver on small instances.
//!
//! [`solve`] picks per component: exact when the component is small enough,
//! greedy otherwise.

use crate::problem::{AdjacencyIndex, OptRetProblem};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// A (feasible) solution to an Opt-Ret instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Solution {
    /// Datasets to retain.
    pub retained: BTreeSet<u64>,
    /// Datasets recommended for deletion.
    pub deleted: BTreeSet<u64>,
    /// For each deleted dataset, the retained parent chosen for
    /// reconstruction (the `y_e = 1` edge).
    pub reconstruction_parent: BTreeMap<u64, u64>,
    /// Objective value (Eq. 3) of this solution.
    pub total_cost: f64,
}

impl Solution {
    /// Retain every dataset (the trivial feasible solution).
    pub fn retain_all(problem: &OptRetProblem) -> Self {
        let retained: BTreeSet<u64> = problem.nodes.keys().copied().collect();
        Solution {
            total_cost: problem.retain_all_cost(),
            retained,
            deleted: BTreeSet::new(),
            reconstruction_parent: BTreeMap::new(),
        }
    }

    /// Number of deleted datasets.
    pub fn deleted_count(&self) -> usize {
        self.deleted.len()
    }

    /// Total bytes of the deleted datasets.
    pub fn deleted_bytes(&self, problem: &OptRetProblem) -> u64 {
        self.deleted
            .iter()
            .filter_map(|d| problem.nodes.get(d))
            .map(|n| n.size_bytes)
            .sum()
    }

    /// Savings relative to retaining everything.
    pub fn savings(&self, problem: &OptRetProblem) -> f64 {
        problem.retain_all_cost() - self.total_cost
    }

    /// Verify that the solution satisfies Eq. 3's constraints: retained and
    /// deleted partition the nodes, every deleted node has a retained
    /// reconstruction parent connected by a real edge.
    pub fn is_feasible(&self, problem: &OptRetProblem) -> bool {
        self.is_feasible_indexed(problem, &problem.adjacency())
    }

    /// [`Solution::is_feasible`] against a prebuilt adjacency index (one
    /// O(E) index build instead of one O(E) edge scan per deleted node).
    pub fn is_feasible_indexed(&self, problem: &OptRetProblem, index: &AdjacencyIndex) -> bool {
        let all: BTreeSet<u64> = problem.nodes.keys().copied().collect();
        let union: BTreeSet<u64> = self.retained.union(&self.deleted).copied().collect();
        if union != all || !self.retained.is_disjoint(&self.deleted) {
            return false;
        }
        for d in &self.deleted {
            match self.reconstruction_parent.get(d) {
                None => return false,
                Some(p) => {
                    if !self.retained.contains(p) || !index.has_edge(*p, *d) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

/// Evaluate a retained-set choice: returns `None` if some deleted node has no
/// retained parent, otherwise the total cost and the chosen reconstruction
/// parents. Ties between equally cheap retained parents resolve to the first
/// one in edge order, matching the linear-scan `min_by` this replaced.
fn evaluate(
    problem: &OptRetProblem,
    index: &AdjacencyIndex,
    retained: &BTreeSet<u64>,
) -> Option<(f64, BTreeMap<u64, u64>)> {
    let mut cost = 0.0;
    let mut recon = BTreeMap::new();
    for (id, node) in &problem.nodes {
        if retained.contains(id) {
            cost += node.retention_cost;
        } else {
            let mut best: Option<(u64, f64)> = None;
            for &(p, c) in index.parents_of(*id) {
                if !retained.contains(&p) {
                    continue;
                }
                match best {
                    Some((_, bc)) if bc <= c => {}
                    _ => best = Some((p, c)),
                }
            }
            let (parent, edge_cost) = best?;
            cost += node.accesses * edge_cost;
            recon.insert(*id, parent);
        }
    }
    Some((cost, recon))
}

/// Build a solution from a retained set, if feasible.
fn solution_from_retained(
    problem: &OptRetProblem,
    index: &AdjacencyIndex,
    retained: BTreeSet<u64>,
) -> Option<Solution> {
    let (total_cost, reconstruction_parent) = evaluate(problem, index, &retained)?;
    let deleted = problem
        .nodes
        .keys()
        .copied()
        .filter(|id| !retained.contains(id))
        .collect();
    Some(Solution {
        retained,
        deleted,
        reconstruction_parent,
        total_cost,
    })
}

/// Weakly connected components of the problem graph (isolated nodes form
/// singleton components). Each component's node list is sorted; components
/// are ordered by their smallest node id. Shared with the incremental
/// advisor so both paths enumerate (and hence merge) components identically.
pub(crate) fn components(problem: &OptRetProblem) -> Vec<Vec<u64>> {
    let ids: Vec<u64> = problem.nodes.keys().copied().collect();
    let mut comp: BTreeMap<u64, usize> = BTreeMap::new();
    let mut adjacency: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for e in &problem.edges {
        adjacency.entry(e.parent).or_default().push(e.child);
        adjacency.entry(e.child).or_default().push(e.parent);
    }
    let mut count = 0;
    for &start in &ids {
        if comp.contains_key(&start) {
            continue;
        }
        let mut stack = vec![start];
        comp.insert(start, count);
        while let Some(u) = stack.pop() {
            for &v in adjacency.get(&u).map(|v| v.as_slice()).unwrap_or(&[]) {
                if let std::collections::btree_map::Entry::Vacant(slot) = comp.entry(v) {
                    slot.insert(count);
                    stack.push(v);
                }
            }
        }
        count += 1;
    }
    let mut out = vec![Vec::new(); count];
    for (&id, &c) in &comp {
        out[c].push(id);
    }
    out
}

/// Restrict a problem to a subset of nodes (edges with both endpoints
/// inside, original edge order preserved).
pub(crate) fn sub_problem(problem: &OptRetProblem, nodes: &[u64]) -> OptRetProblem {
    let set: BTreeSet<u64> = nodes.iter().copied().collect();
    OptRetProblem {
        nodes: problem
            .nodes
            .iter()
            .filter(|(id, _)| set.contains(id))
            .map(|(id, n)| (*id, *n))
            .collect(),
        edges: problem
            .edges
            .iter()
            .filter(|e| set.contains(&e.parent) && set.contains(&e.child))
            .copied()
            .collect(),
    }
}

/// Exact branch & bound over one (sub-)problem.
///
/// All neighbourhood lookups go through a prebuilt [`AdjacencyIndex`]:
/// the previous implementation called the O(E) `parents_of` /
/// `cheapest_parent` scans inside the bound loop of every DFS node,
/// making the search accidentally quadratic in the edge count.
fn branch_and_bound(problem: &OptRetProblem) -> Solution {
    let index = problem.adjacency();
    let ids: Vec<u64> = problem.nodes.keys().copied().collect();
    // Optimistic per-node reconstruction cost (cheapest parent regardless of
    // its status; infinite for roots) and lower bound (the cheaper of
    // retaining and that optimistic reconstruction). Both are fixed for the
    // whole search, so they are computed once instead of per DFS node.
    let opt_recon: BTreeMap<u64, f64> = ids
        .iter()
        .map(|&id| {
            let node = &problem.nodes[&id];
            let best_parent = index
                .cheapest_parent(id)
                .map(|(_, c)| node.accesses * c)
                .unwrap_or(f64::INFINITY);
            (id, best_parent)
        })
        .collect();
    let optimistic: BTreeMap<u64, f64> = ids
        .iter()
        .map(|&id| (id, problem.nodes[&id].retention_cost.min(opt_recon[&id])))
        .collect();

    let mut best = Solution::retain_all(problem);

    // DFS over assignments. `retained`/`deleted` hold the partial assignment
    // for ids[0..depth].
    #[allow(clippy::too_many_arguments)]
    fn dfs(
        problem: &OptRetProblem,
        index: &AdjacencyIndex,
        ids: &[u64],
        opt_recon: &BTreeMap<u64, f64>,
        optimistic: &BTreeMap<u64, f64>,
        depth: usize,
        retained: &mut BTreeSet<u64>,
        deleted: &mut BTreeSet<u64>,
        best: &mut Solution,
    ) {
        // Lower bound: cost of decided retained nodes + optimistic bound for
        // everything else (decided-deleted nodes still use the optimistic
        // reconstruction estimate, which never overestimates).
        let mut bound = 0.0;
        for id in retained.iter() {
            bound += problem.nodes[id].retention_cost;
        }
        for id in deleted.iter() {
            bound += opt_recon[id];
        }
        for id in &ids[depth..] {
            bound += optimistic[id];
        }
        if bound >= best.total_cost - 1e-12 {
            return;
        }

        if depth == ids.len() {
            if let Some(sol) = solution_from_retained(problem, index, retained.clone()) {
                if sol.total_cost < best.total_cost {
                    *best = sol;
                }
            }
            return;
        }

        let id = ids[depth];
        // Branch 1: retain.
        retained.insert(id);
        dfs(
            problem,
            index,
            ids,
            opt_recon,
            optimistic,
            depth + 1,
            retained,
            deleted,
            best,
        );
        retained.remove(&id);

        // Branch 2: delete — only worth trying if the node has any parent.
        if index.has_parents(id) {
            deleted.insert(id);
            dfs(
                problem,
                index,
                ids,
                opt_recon,
                optimistic,
                depth + 1,
                retained,
                deleted,
                best,
            );
            deleted.remove(&id);
        }
    }

    let mut retained = BTreeSet::new();
    let mut deleted = BTreeSet::new();
    dfs(
        problem,
        &index,
        &ids,
        &opt_recon,
        &optimistic,
        0,
        &mut retained,
        &mut deleted,
        &mut best,
    );
    best
}

/// Merge per-component solutions into one.
fn merge(parts: Vec<Solution>) -> Solution {
    let mut out = Solution {
        retained: BTreeSet::new(),
        deleted: BTreeSet::new(),
        reconstruction_parent: BTreeMap::new(),
        total_cost: 0.0,
    };
    for p in parts {
        out.retained.extend(p.retained);
        out.deleted.extend(p.deleted);
        out.reconstruction_parent.extend(p.reconstruction_parent);
        out.total_cost += p.total_cost;
    }
    out
}

/// Solve exactly with branch & bound (per connected component).
///
/// Worst-case exponential in the largest component; intended for the
/// moderate graphs the pipeline produces and for validating the heuristic.
pub fn solve_exact(problem: &OptRetProblem) -> Solution {
    let parts = components(problem)
        .iter()
        .map(|nodes| branch_and_bound(&sub_problem(problem, nodes)))
        .collect();
    merge(parts)
}

/// Greedy heuristic: repeatedly delete the dataset with the largest positive
/// saving while preserving feasibility.
///
/// The saving of deleting a retained `v` is the **exact** change of the
/// objective:
///
/// ```text
/// saving(v) = retention_v − A_v·cheapest_retained_parent(v)
///           − Σ_{deleted c: v is c's cheapest retained parent}
///                 A_c·(next_cheapest_retained_parent(c) − current(c))
/// ```
///
/// The third term is what an earlier version dropped: already-deleted
/// children reconstructing *via* `v` get bumped to a strictly more expensive
/// retained parent when `v` goes, so ignoring it let the heuristic take
/// net-cost-increasing steps and end worse than retaining everything (see
/// `greedy_regression_old_saving_loses_money`). Because every accepted step
/// now has a provably positive exact saving, the greedy result is always
/// ≤ the retain-all baseline.
///
/// Implementation note: each round recomputes, in one O(V+E) sweep over the
/// adjacency index, every node's cheapest retained parent and its cheapest
/// retained parent *excluding that one*; at most V rounds keeps the whole
/// heuristic O(V·(V+E)) ⊆ O(V·E) for the connected instances of the Fig. 6
/// sweeps.
pub fn solve_greedy(problem: &OptRetProblem) -> Solution {
    let index = problem.adjacency();
    let mut retained: BTreeSet<u64> = problem.nodes.keys().copied().collect();
    let mut deleted: BTreeSet<u64> = BTreeSet::new();

    // Per-node support summary for the current retained set.
    #[derive(Clone, Copy)]
    struct Support {
        /// Cheapest retained parent (first minimum in edge order) and cost.
        best: Option<(u64, f64)>,
        /// Cheapest retained parent cost among parents ≠ `best.0`.
        runner_up: f64,
    }

    loop {
        // Sweep 1: support summary of every node under the current
        // assignment. `runner_up` excludes the best *parent* (not just the
        // best edge), so it is exactly what a deleted child would pay if
        // that parent disappeared.
        let mut support: BTreeMap<u64, Support> = BTreeMap::new();
        for &v in problem.nodes.keys() {
            let mut best: Option<(u64, f64)> = None;
            for &(p, c) in index.parents_of(v) {
                if p == v || !retained.contains(&p) {
                    continue;
                }
                match best {
                    Some((_, bc)) if bc <= c => {}
                    _ => best = Some((p, c)),
                }
            }
            let mut runner_up = f64::INFINITY;
            if let Some((bp, _)) = best {
                for &(p, c) in index.parents_of(v) {
                    if p == v || p == bp || !retained.contains(&p) {
                        continue;
                    }
                    runner_up = runner_up.min(c);
                }
            }
            support.insert(v, Support { best, runner_up });
        }

        // Sweep 2: the exact saving of deleting each retained candidate.
        let mut best_choice: Option<(u64, f64)> = None;
        'candidates: for &v in &retained {
            let node = &problem.nodes[&v];
            // v needs at least one retained parent to be deletable.
            let Some((_, best_parent_cost)) = support[&v].best else {
                continue;
            };
            let mut saving = node.retention_cost - node.accesses * best_parent_cost;
            // Charge the children already deleted that reconstruct via v.
            // Parallel edges to one child must charge once — tracked with a
            // set because edge order is only sorted for instances built by
            // `from_graph`/`synthetic` (the pub fields allow any order).
            let mut charged: BTreeSet<u64> = BTreeSet::new();
            for &(c, _) in index.children_of(v) {
                if c == v || !charged.insert(c) {
                    continue;
                }
                if !deleted.contains(&c) {
                    continue;
                }
                let sup = support[&c];
                match sup.best {
                    Some((bp, bc)) if bp == v => {
                        if !sup.runner_up.is_finite() {
                            // v is c's sole retained parent: not deletable.
                            continue 'candidates;
                        }
                        saving -= problem.nodes[&c].accesses * (sup.runner_up - bc);
                    }
                    // c reconstructs through a different retained parent at
                    // the same-or-cheaper cost; deleting v changes nothing.
                    _ => {}
                }
            }
            if saving > 1e-12 {
                match best_choice {
                    Some((_, s)) if s >= saving => {}
                    _ => best_choice = Some((v, saving)),
                }
            }
        }
        match best_choice {
            Some((v, _)) => {
                retained.remove(&v);
                deleted.insert(v);
            }
            None => break,
        }
    }

    solution_from_retained(problem, &index, retained)
        .expect("greedy maintains feasibility by construction")
}

/// Default component-size threshold below which [`solve`] uses the exact
/// branch & bound.
pub const EXACT_COMPONENT_LIMIT: usize = 22;

/// Solve one connected (sub-)problem with the per-component dispatch used by
/// [`solve_with_limit`] and the incremental advisor: the Dyn-Lin dynamic
/// program when the component is a directed chain (exact in O(N)), exact
/// branch & bound up to `exact_limit` nodes, the greedy heuristic above.
///
/// The incremental [`crate::advisor::AdvisorState`] calls this on exactly
/// the components a delta dirtied; routing both the batch and the
/// incremental path through one dispatch is what makes their solutions
/// bit-identical.
pub(crate) fn solve_component(sub: &OptRetProblem, exact_limit: usize) -> Solution {
    if let Some(sol) = crate::dynlin::solve_line(sub) {
        return sol;
    }
    if sub.node_count() <= exact_limit {
        branch_and_bound(sub)
    } else {
        solve_greedy(sub)
    }
}

/// Solve the instance: per weakly connected component, Dyn-Lin on chains,
/// exact branch & bound on components of at most `EXACT_COMPONENT_LIMIT`
/// nodes, greedy on larger components.
pub fn solve(problem: &OptRetProblem) -> Solution {
    solve_with_limit(problem, EXACT_COMPONENT_LIMIT)
}

/// [`solve`] with an explicit component-size threshold.
pub fn solve_with_limit(problem: &OptRetProblem, exact_limit: usize) -> Solution {
    let parts = components(problem)
        .iter()
        .map(|nodes| solve_component(&sub_problem(problem, nodes), exact_limit))
        .collect();
    merge(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::CostModel;
    use crate::problem::{NodeCosts, ReconstructionEdge};
    use r2d2_graph::random::{erdos_renyi, line_graph};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Hand-built instance: parent P (big, must stay), child C (cheap to
    /// rebuild, rarely accessed) and child D (expensive to rebuild because it
    /// is accessed constantly).
    fn tiny_problem() -> OptRetProblem {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            0,
            NodeCosts {
                dataset: 0,
                size_bytes: 1 << 30,
                retention_cost: 10.0,
                accesses: 1.0,
            },
        );
        nodes.insert(
            1,
            NodeCosts {
                dataset: 1,
                size_bytes: 1 << 29,
                retention_cost: 5.0,
                accesses: 1.0,
            },
        );
        nodes.insert(
            2,
            NodeCosts {
                dataset: 2,
                size_bytes: 1 << 29,
                retention_cost: 5.0,
                accesses: 100.0,
            },
        );
        let edges = vec![
            ReconstructionEdge {
                parent: 0,
                child: 1,
                cost: 1.0,
            },
            ReconstructionEdge {
                parent: 0,
                child: 2,
                cost: 1.0,
            },
        ];
        OptRetProblem { nodes, edges }
    }

    #[test]
    fn exact_solver_picks_obvious_deletions() {
        let p = tiny_problem();
        let sol = solve_exact(&p);
        assert!(sol.is_feasible(&p));
        // Node 1: retention 5 vs reconstruction 1*1 = 1 → delete.
        assert!(sol.deleted.contains(&1));
        // Node 2: retention 5 vs reconstruction 100*1 = 100 → retain.
        assert!(sol.retained.contains(&2));
        // Root has no parent → must be retained.
        assert!(sol.retained.contains(&0));
        assert_eq!(sol.reconstruction_parent[&1], 0);
        assert!((sol.total_cost - (10.0 + 5.0 + 1.0)).abs() < 1e-9);
        assert!(sol.savings(&p) > 0.0);
        assert_eq!(sol.deleted_count(), 1);
        assert_eq!(sol.deleted_bytes(&p), 1 << 29);
    }

    #[test]
    fn greedy_matches_exact_on_tiny_instance() {
        let p = tiny_problem();
        let exact = solve_exact(&p);
        let greedy = solve_greedy(&p);
        assert!(greedy.is_feasible(&p));
        assert!((greedy.total_cost - exact.total_cost).abs() < 1e-9);
    }

    #[test]
    fn retain_all_is_feasible_baseline() {
        let p = tiny_problem();
        let sol = Solution::retain_all(&p);
        assert!(sol.is_feasible(&p));
        assert_eq!(sol.total_cost, 20.0);
    }

    #[test]
    fn deleted_node_always_keeps_a_retained_parent() {
        // Chain 0 → 1 → 2: deleting both 1 and 2 forces 2 to reconstruct
        // from 1 which would itself be deleted → only one of them can go
        // unless 2 can reconstruct from... it can't (its only parent is 1).
        let model = CostModel::default();
        let graph = line_graph(3);
        let p = OptRetProblem::synthetic(&graph, &model, |_| 10 << 30, |_| 0.1);
        let sol = solve_exact(&p);
        assert!(sol.is_feasible(&p));
        // Node 0 has no parent: retained. If 1 is deleted, 2 must be retained.
        assert!(sol.retained.contains(&0));
        assert!(sol.retained.contains(&1) || sol.retained.contains(&2));
    }

    #[test]
    fn exact_beats_or_matches_greedy_on_random_dags() {
        let model = CostModel::default();
        let mut rng = SmallRng::seed_from_u64(5);
        for n in [6usize, 10, 14] {
            for p_edge in [0.1, 0.3] {
                let graph = r2d2_graph::random::erdos_renyi_dag(n, p_edge, &mut rng);
                let prob = OptRetProblem::synthetic(
                    &graph,
                    &model,
                    |d| ((d % 7) + 1) << 28,
                    |d| (d % 5) as f64,
                );
                let exact = solve_exact(&prob);
                let greedy = solve_greedy(&prob);
                assert!(exact.is_feasible(&prob));
                assert!(greedy.is_feasible(&prob));
                assert!(
                    exact.total_cost <= greedy.total_cost + 1e-9,
                    "exact ({}) must not exceed greedy ({})",
                    exact.total_cost,
                    greedy.total_cost
                );
                assert!(exact.total_cost <= prob.retain_all_cost() + 1e-9);
                assert!(
                    greedy.total_cost <= prob.retain_all_cost() + 1e-9,
                    "greedy ({}) must never lose money vs retain-all ({})",
                    greedy.total_cost,
                    prob.retain_all_cost()
                );
            }
        }
    }

    /// Regression instance for the greedy saving formula. Layout:
    ///
    /// ```text
    ///   R(0) ──0.5──> v(1)
    ///   R(0) ──10──>  c(2)
    ///   v(1) ──0.1──> c(2)
    /// ```
    ///
    /// The profitable first move deletes `c` (saving 5 − 0.1 = 4.9 via `v`).
    /// The *old* saving formula then valued deleting `v` at
    /// `retention − A_v·0.5 = +0.5`, ignoring that `c` — already deleted and
    /// reconstructing via `v` — gets bumped from the 0.1 edge to the 10 edge.
    /// The true delta is `0.5 − 1·(10 − 0.1) = −9.4`: the old greedy ended at
    /// cost 110.5, *above* the retain-all baseline of 106.
    fn regression_problem() -> OptRetProblem {
        let mut nodes = BTreeMap::new();
        let mk = |dataset: u64, retention_cost: f64, accesses: f64| NodeCosts {
            dataset,
            size_bytes: 1 << 20,
            retention_cost,
            accesses,
        };
        nodes.insert(0, mk(0, 100.0, 1.0));
        nodes.insert(1, mk(1, 1.0, 1.0));
        nodes.insert(2, mk(2, 5.0, 1.0));
        let edges = vec![
            ReconstructionEdge {
                parent: 0,
                child: 1,
                cost: 0.5,
            },
            ReconstructionEdge {
                parent: 0,
                child: 2,
                cost: 10.0,
            },
            ReconstructionEdge {
                parent: 1,
                child: 2,
                cost: 0.1,
            },
        ];
        OptRetProblem { nodes, edges }
    }

    #[test]
    fn greedy_regression_old_saving_loses_money() {
        let p = regression_problem();
        let retain_all = p.retain_all_cost();
        assert!((retain_all - 106.0).abs() < 1e-9);

        // The end state of the old greedy (delete c, then delete v because
        // the per-node saving formula said +0.5) really is worse than doing
        // nothing — this is the money-losing outcome the fix prevents.
        let old_end =
            solution_from_retained(&p, &p.adjacency(), BTreeSet::from([0])).expect("feasible");
        assert!((old_end.total_cost - 110.5).abs() < 1e-9);
        assert!(
            old_end.total_cost > retain_all,
            "the crafted instance must make the old move sequence lose money"
        );

        // The fixed greedy charges the true delta, stops after deleting c,
        // and stays below retain-all.
        let greedy = solve_greedy(&p);
        assert!(greedy.is_feasible(&p));
        assert_eq!(greedy.deleted, BTreeSet::from([2]));
        assert!((greedy.total_cost - 101.1).abs() < 1e-9);
        assert!(greedy.total_cost <= retain_all + 1e-9);

        // And it matches the exact optimum here.
        let exact = solve_exact(&p);
        assert!((greedy.total_cost - exact.total_cost).abs() < 1e-9);
    }

    #[test]
    fn greedy_respects_sole_support_of_deleted_children() {
        // v is the ONLY parent of c. After c is deleted, v must never be
        // deleted even though its own saving looks positive.
        let mut nodes = BTreeMap::new();
        let mk = |dataset: u64, retention_cost: f64, accesses: f64| NodeCosts {
            dataset,
            size_bytes: 1 << 20,
            retention_cost,
            accesses,
        };
        nodes.insert(0, mk(0, 100.0, 1.0));
        nodes.insert(1, mk(1, 2.0, 1.0));
        nodes.insert(2, mk(2, 5.0, 1.0));
        let edges = vec![
            ReconstructionEdge {
                parent: 0,
                child: 1,
                cost: 0.5,
            },
            ReconstructionEdge {
                parent: 1,
                child: 2,
                cost: 0.1,
            },
        ];
        let p = OptRetProblem { nodes, edges };
        let greedy = solve_greedy(&p);
        assert!(greedy.is_feasible(&p));
        assert!(
            !(greedy.deleted.contains(&1) && greedy.deleted.contains(&2)),
            "deleting both v and its dependent child is infeasible"
        );
    }

    #[test]
    fn greedy_scales_to_larger_random_graphs() {
        let model = CostModel::default();
        let mut rng = SmallRng::seed_from_u64(6);
        let graph = erdos_renyi(150, 0.05, &mut rng);
        let prob =
            OptRetProblem::synthetic(&graph, &model, |d| ((d % 11) + 1) << 27, |d| (d % 3) as f64);
        let sol = solve_greedy(&prob);
        assert!(sol.is_feasible(&prob));
        assert!(sol.total_cost <= prob.retain_all_cost() + 1e-9);
    }

    #[test]
    fn solve_dispatches_by_component_size() {
        let p = tiny_problem();
        let auto = solve(&p);
        let exact = solve_exact(&p);
        assert!((auto.total_cost - exact.total_cost).abs() < 1e-9);
        let forced_greedy = solve_with_limit(&p, 0);
        assert!(forced_greedy.is_feasible(&p));
    }

    #[test]
    fn empty_problem() {
        let p = OptRetProblem::default();
        let sol = solve(&p);
        assert!(sol.retained.is_empty());
        assert!(sol.deleted.is_empty());
        assert_eq!(sol.total_cost, 0.0);
        assert!(sol.is_feasible(&p));
    }

    #[test]
    fn isolated_nodes_are_retained() {
        let model = CostModel::default();
        let graph = r2d2_graph::ContainmentGraph::with_datasets(0..5);
        let p = OptRetProblem::synthetic(&graph, &model, |_| 1 << 30, |_| 1.0);
        let sol = solve(&p);
        assert_eq!(sol.retained.len(), 5);
        assert_eq!(sol.deleted_count(), 0);
    }

    #[test]
    fn infeasible_marker_detected() {
        // A solution claiming to delete a node with no retained parent is
        // reported as infeasible.
        let p = tiny_problem();
        let bad = Solution {
            retained: BTreeSet::from([1, 2]),
            deleted: BTreeSet::from([0]),
            reconstruction_parent: BTreeMap::from([(0, 1)]),
            total_cost: 0.0,
        };
        assert!(!bad.is_feasible(&p), "edge 1→0 does not exist");
    }
}
