//! Incremental storage advisor: Opt-Ret kept live under lake updates.
//!
//! The batch entry points of this crate ([`crate::preprocess`] +
//! [`OptRetProblem::from_graph`] + [`crate::solver::solve`]) rebuild and
//! re-solve the whole instance from scratch. A long-lived service instead
//! keeps an [`AdvisorState`]: the §5.1-pruned problem held in sync with the
//! containment graph's [`EdgeDelta`]s and the lake's dataset changes, plus a
//! per-weakly-connected-component solution cache. A delta only *dirties* the
//! components it touches; [`AdvisorState::advise`] re-solves exactly those —
//! through the same per-component dispatch the batch
//! [`crate::solver::solve_with_limit`] uses (Dyn-Lin on chains, exact branch
//! & bound up to the component limit, greedy above) — and reuses every clean
//! component's cached solution.
//!
//! **Oracle guarantee.** After any update sequence the incremental solution
//! is *identical* (same retained/deleted sets, same reconstruction parents,
//! same total cost) to [`from_scratch`] over the mutated lake and graph:
//! both paths build canonically ordered problems from the same cost model
//! and route every component through the same solver dispatch.
//! `tests/integration_advisor.rs` pins this with a randomized oracle driven
//! through `r2d2_core::R2d2Session`.

use crate::costmodel::CostModel;
use crate::preprocess::TransformKnowledge;
use crate::problem::{NodeCosts, OptRetProblem, ReconstructionEdge};
use crate::savings::{gdpr_savings, table7_row, GdprSavings, Table7Row};
use crate::solver::{self, Solution, EXACT_COMPONENT_LIMIT};
use r2d2_graph::diff::EdgeDelta;
use r2d2_graph::ContainmentGraph;
use r2d2_lake::{DataLake, DatasetId, Result};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of an [`AdvisorState`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdvisorConfig {
    /// Component-size threshold below which dirty components are re-solved
    /// exactly (see [`EXACT_COMPONENT_LIMIT`]).
    pub exact_component_limit: usize,
    /// §5.1 transformation-knowledge policy for admitting reconstruction
    /// edges.
    pub knowledge: TransformKnowledge,
    /// Privacy-initiated full scans per dataset per week assumed by the
    /// GDPR / Table-7 savings of [`AdvisorState::report`].
    pub scans_per_week: f64,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            exact_component_limit: EXACT_COMPONENT_LIMIT,
            knowledge: TransformKnowledge::Required,
            scans_per_week: 1.0,
        }
    }
}

impl AdvisorConfig {
    /// Override the transformation-knowledge policy (builder style).
    pub fn with_knowledge(mut self, knowledge: TransformKnowledge) -> Self {
        self.knowledge = knowledge;
        self
    }

    /// Override the exact-component limit (builder style).
    pub fn with_exact_component_limit(mut self, limit: usize) -> Self {
        self.exact_component_limit = limit;
        self
    }
}

/// How one dataset changed in a batch of lake updates, from the advisor's
/// point of view (the coalesced per-dataset effect of
/// `r2d2_core::R2d2Session::apply_batch`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetChange {
    /// The dataset was created.
    Added,
    /// The dataset's rows (and hence size / costs) changed.
    ContentChanged,
    /// The dataset was removed from the lake.
    Dropped,
}

/// What the last [`AdvisorState::advise`] pass did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResolveStats {
    /// Weakly connected components of the current pruned problem.
    pub components_total: usize,
    /// Components whose cached solution was reused untouched.
    pub components_reused: usize,
    /// Components re-solved because a delta dirtied them.
    pub components_resolved: usize,
}

/// Savings summary returned by [`AdvisorState::report`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdvisorReport {
    /// The current Opt-Ret solution.
    pub solution: Solution,
    /// Eq. 3 objective of the solution.
    pub total_cost: f64,
    /// Cost of retaining everything (the do-nothing baseline).
    pub retain_all_cost: f64,
    /// `retain_all_cost − total_cost`.
    pub savings: f64,
    /// Table-7-style deletion/retention counters.
    pub table7: Table7Row,
    /// GDPR row-scan savings of the recommended deletions.
    pub gdpr: GdprSavings,
    /// What the advise pass backing this report re-solved vs reused.
    pub stats: ResolveStats,
}

/// One cached component solution.
#[derive(Debug, Clone)]
struct CachedComponent {
    /// Sorted member node ids.
    nodes: Vec<u64>,
    solution: Solution,
}

/// The incremental Opt-Ret state: pruned problem + per-component solutions.
#[derive(Debug, Clone)]
pub struct AdvisorState {
    model: CostModel,
    config: AdvisorConfig,
    /// Current per-node costs, one entry per live lake dataset.
    nodes: BTreeMap<u64, NodeCosts>,
    /// Current §5.1-admissible reconstruction edges, canonically keyed.
    edges: BTreeMap<(u64, u64), f64>,
    /// Nodes whose component must be re-solved on the next advise pass.
    dirty: BTreeSet<u64>,
    /// Whether the problem changed at all since the last advise pass
    /// (covers structural changes `dirty` alone cannot express, e.g.
    /// dropping an isolated node). When false, [`AdvisorState::advise`]
    /// returns the stored solution without touching the components.
    stale: bool,
    /// Cached component solutions keyed by the component's smallest node id.
    cache: BTreeMap<u64, CachedComponent>,
    /// Last merged solution.
    solution: Solution,
    stats: ResolveStats,
}

impl AdvisorState {
    /// Build the advisor from the current lake and containment graph: prune
    /// edges per §5.1 (without mutating `graph`), price every node, and mark
    /// everything dirty so the first [`AdvisorState::advise`] solves from
    /// scratch.
    ///
    /// Nodes are the *live lake datasets*; graph nodes without a catalog
    /// entry (e.g. the stable isolated nodes a session keeps for dropped
    /// datasets) are ignored, as are edges touching them.
    pub fn build(
        lake: &DataLake,
        graph: &ContainmentGraph,
        model: CostModel,
        config: AdvisorConfig,
    ) -> Result<Self> {
        let mut state = AdvisorState {
            model,
            config,
            nodes: BTreeMap::new(),
            edges: BTreeMap::new(),
            dirty: BTreeSet::new(),
            stale: true,
            cache: BTreeMap::new(),
            solution: Solution {
                retained: BTreeSet::new(),
                deleted: BTreeSet::new(),
                reconstruction_parent: BTreeMap::new(),
                total_cost: 0.0,
            },
            stats: ResolveStats::default(),
        };
        for entry in lake.iter() {
            state.nodes.insert(entry.id.0, state.node_costs(entry));
            state.dirty.insert(entry.id.0);
        }
        for (parent, child) in graph.edges() {
            state.refresh_edge(lake, graph, parent, child)?;
        }
        Ok(state)
    }

    /// The advisor's configuration.
    pub fn config(&self) -> &AdvisorConfig {
        &self.config
    }

    /// The advisor's cost model.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Whether any component is waiting to be re-solved.
    pub fn is_dirty(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// What the last [`AdvisorState::advise`] pass re-solved vs reused.
    pub fn last_resolve_stats(&self) -> ResolveStats {
        self.stats
    }

    fn node_costs(&self, entry: &r2d2_lake::DatasetEntry) -> NodeCosts {
        let size = entry.byte_size() as u64;
        NodeCosts {
            dataset: entry.id.0,
            size_bytes: size,
            retention_cost: self
                .model
                .retention_cost(size, entry.access.maintenance_per_period),
            accesses: entry.access.accesses_per_period,
        }
    }

    /// §5.1 admission of one graph edge: `Some(cost)` when the
    /// transformation is known under `config.knowledge` and the
    /// reconstruction latency is within the QoS threshold. Mirrors
    /// [`crate::preprocess::preprocess_for_safe_deletion`] exactly (which
    /// recomputes and overwrites any cost annotation), so the incremental
    /// problem matches a from-scratch preprocess bit-for-bit.
    fn admissible_cost(
        &self,
        lake: &DataLake,
        graph: &ContainmentGraph,
        parent: u64,
        child: u64,
    ) -> Result<Option<f64>> {
        let parent_entry = lake.dataset(DatasetId(parent))?;
        let child_entry = lake.dataset(DatasetId(child))?;
        let known = match self.config.knowledge {
            TransformKnowledge::AssumeKnown => true,
            TransformKnowledge::Required => {
                child_entry
                    .lineage
                    .as_ref()
                    .map(|l| l.parent.0 == parent)
                    .unwrap_or(false)
                    || graph
                        .edge(parent, child)
                        .map(|e| e.transform.is_some())
                        .unwrap_or(false)
            }
        };
        if !known {
            return Ok(None);
        }
        let p_bytes = parent_entry.byte_size() as u64;
        let c_bytes = child_entry.byte_size() as u64;
        if !self.model.latency_ok(p_bytes, c_bytes) {
            return Ok(None);
        }
        Ok(Some(self.model.reconstruction_cost(p_bytes, c_bytes)))
    }

    /// Re-evaluate one graph edge's admission and cost, updating the pruned
    /// problem and dirtying both endpoints when anything changed. Edges
    /// touching nodes the advisor does not track are ignored.
    fn refresh_edge(
        &mut self,
        lake: &DataLake,
        graph: &ContainmentGraph,
        parent: u64,
        child: u64,
    ) -> Result<()> {
        if !self.nodes.contains_key(&parent) || !self.nodes.contains_key(&child) {
            return Ok(());
        }
        let new = self.admissible_cost(lake, graph, parent, child)?;
        let old = self.edges.get(&(parent, child)).copied();
        if new != old {
            match new {
                Some(cost) => self.edges.insert((parent, child), cost),
                None => self.edges.remove(&(parent, child)),
            };
            self.dirty.insert(parent);
            self.dirty.insert(child);
            self.stale = true;
        }
        Ok(())
    }

    /// Remove one problem edge (graph edge gone), dirtying both endpoints.
    fn drop_edge(&mut self, parent: u64, child: u64) {
        if self.edges.remove(&(parent, child)).is_some() {
            self.dirty.insert(parent);
            self.dirty.insert(child);
            self.stale = true;
        }
    }

    /// Sync the pruned problem with one applied update batch: `changes` is
    /// the coalesced per-dataset effect, `delta` the containment-graph edge
    /// diff the batch produced. `lake` and `graph` must already reflect the
    /// batch (post-mutation state).
    pub fn apply(
        &mut self,
        lake: &DataLake,
        graph: &ContainmentGraph,
        changes: &[(u64, DatasetChange)],
        delta: &EdgeDelta,
    ) -> Result<()> {
        // 1. Edges the batch removed from the graph leave the problem.
        for &(parent, child) in &delta.removed {
            self.drop_edge(parent, child);
        }

        // 2. Node-level changes.
        for &(d, change) in changes {
            match change {
                DatasetChange::Dropped => {
                    // Even an isolated node disappearing changes the
                    // component partition, so the drop always marks the
                    // state stale.
                    self.stale = self.nodes.remove(&d).is_some() || self.stale;
                    self.dirty.remove(&d);
                    let incident: Vec<(u64, u64)> = self
                        .edges
                        .keys()
                        .copied()
                        .filter(|&(p, c)| p == d || c == d)
                        .collect();
                    for (p, c) in incident {
                        self.edges.remove(&(p, c));
                        let other = if p == d { c } else { p };
                        self.dirty.insert(other);
                    }
                }
                DatasetChange::Added => {
                    let entry = lake.dataset(DatasetId(d))?;
                    self.nodes.insert(d, self.node_costs(entry));
                    self.dirty.insert(d);
                    self.stale = true;
                }
                DatasetChange::ContentChanged => {
                    let entry = lake.dataset(DatasetId(d))?;
                    self.nodes.insert(d, self.node_costs(entry));
                    self.dirty.insert(d);
                    self.stale = true;
                    // Size changes move every incident edge's reconstruction
                    // cost and can flip its latency admission, so the whole
                    // neighbourhood is re-evaluated.
                    for parent in graph.parents(d) {
                        self.refresh_edge(lake, graph, parent, d)?;
                    }
                    for child in graph.children(d) {
                        self.refresh_edge(lake, graph, d, child)?;
                    }
                }
            }
        }

        // 3. Edges the batch added to the graph are admitted (or not) fresh.
        for &(parent, child) in &delta.added {
            self.refresh_edge(lake, graph, parent, child)?;
        }
        Ok(())
    }

    /// Re-read one dataset's costs from the lake (access-profile drift, e.g.
    /// after metered query traffic refreshed `accesses_per_period`) and mark
    /// it dirty if anything moved. Returns whether the costs changed.
    pub fn note_cost_drift(&mut self, lake: &DataLake, dataset: u64) -> Result<bool> {
        if !self.nodes.contains_key(&dataset) {
            return Ok(false);
        }
        let entry = lake.dataset(DatasetId(dataset))?;
        let fresh = self.node_costs(entry);
        if self.nodes.get(&dataset) != Some(&fresh) {
            self.nodes.insert(dataset, fresh);
            self.dirty.insert(dataset);
            self.stale = true;
            return Ok(true);
        }
        Ok(false)
    }

    /// Materialize the current pruned problem (canonical node and edge
    /// order) — what [`from_scratch`] would build over the same lake state.
    pub fn problem(&self) -> OptRetProblem {
        OptRetProblem {
            nodes: self.nodes.clone(),
            edges: self
                .edges
                .iter()
                .map(|(&(parent, child), &cost)| ReconstructionEdge {
                    parent,
                    child,
                    cost,
                })
                .collect(),
        }
    }

    /// Bring the solution up to date: re-solve every component a delta
    /// dirtied (Dyn-Lin on chains, exact up to the component limit, greedy
    /// above) and reuse the cached solution of every clean component, then
    /// merge in component order. When nothing changed since the last pass,
    /// returns the stored solution without touching the components at all.
    pub fn advise(&mut self) -> &Solution {
        if !self.stale {
            self.stats = ResolveStats {
                components_total: self.cache.len(),
                components_reused: self.cache.len(),
                components_resolved: 0,
            };
            return &self.solution;
        }
        // Component enumeration and restriction go through the same solver
        // helpers `solve_with_limit` uses, so the advisor's merge order (and
        // hence float summation order) matches a from-scratch solve exactly.
        let problem = self.problem();
        let components = solver::components(&problem);
        let mut cache: BTreeMap<u64, CachedComponent> = BTreeMap::new();
        let mut stats = ResolveStats {
            components_total: components.len(),
            ..ResolveStats::default()
        };
        for members in components {
            let key = members[0];
            // Move (not clone) reusable entries out of the old cache — it is
            // replaced wholesale below, so anything left behind is dropped.
            let reusable = self
                .cache
                .remove(&key)
                .filter(|c| c.nodes == members && members.iter().all(|n| !self.dirty.contains(n)));
            let entry = match reusable {
                Some(entry) => {
                    stats.components_reused += 1;
                    entry
                }
                None => {
                    stats.components_resolved += 1;
                    CachedComponent {
                        solution: solver::solve_component(
                            &solver::sub_problem(&problem, &members),
                            self.config.exact_component_limit,
                        ),
                        nodes: members,
                    }
                }
            };
            cache.insert(key, entry);
        }
        self.cache = cache;
        self.dirty.clear();
        self.stale = false;
        self.stats = stats;

        let mut merged = Solution {
            retained: BTreeSet::new(),
            deleted: BTreeSet::new(),
            reconstruction_parent: BTreeMap::new(),
            total_cost: 0.0,
        };
        for entry in self.cache.values() {
            merged.retained.extend(entry.solution.retained.iter());
            merged.deleted.extend(entry.solution.deleted.iter());
            merged
                .reconstruction_parent
                .extend(entry.solution.reconstruction_parent.iter());
            merged.total_cost += entry.solution.total_cost;
        }
        self.solution = merged;
        &self.solution
    }

    /// [`AdvisorState::advise`] plus Table-7-style and GDPR savings against
    /// the lake.
    pub fn report(&mut self, lake: &DataLake) -> Result<AdvisorReport> {
        let scans_per_week = self.config.scans_per_week;
        let solution = self.advise().clone();
        let problem = self.problem();
        let table7 = table7_row(&solution, &problem, lake, scans_per_week)?;
        let gdpr = gdpr_savings(&solution, lake, scans_per_week)?;
        Ok(AdvisorReport {
            total_cost: solution.total_cost,
            retain_all_cost: problem.retain_all_cost(),
            savings: solution.savings(&problem),
            table7,
            gdpr,
            stats: self.stats,
            solution,
        })
    }
}

// ---------------------------------------------------------------------------
// Binary serialization (durable session snapshots)
// ---------------------------------------------------------------------------

use bytes::{Buf, BufMut, Bytes, BytesMut};
use r2d2_lake::snapshot::{
    expect_len, get_bool, get_f64, get_tag, get_u64, get_usize, put_bool, put_usize,
};

fn put_solution(buf: &mut BytesMut, s: &Solution) {
    buf.put_u32_le(s.retained.len() as u32);
    for &d in &s.retained {
        buf.put_u64_le(d);
    }
    buf.put_u32_le(s.deleted.len() as u32);
    for &d in &s.deleted {
        buf.put_u64_le(d);
    }
    buf.put_u32_le(s.reconstruction_parent.len() as u32);
    for (&child, &parent) in &s.reconstruction_parent {
        buf.put_u64_le(child);
        buf.put_u64_le(parent);
    }
    buf.put_f64_le(s.total_cost);
}

fn get_solution(buf: &mut Bytes) -> Result<Solution> {
    expect_len(buf, 4, "solution retained length")?;
    let retained_len = buf.get_u32_le() as usize;
    let mut retained = BTreeSet::new();
    for _ in 0..retained_len {
        retained.insert(get_u64(buf)?);
    }
    expect_len(buf, 4, "solution deleted length")?;
    let deleted_len = buf.get_u32_le() as usize;
    let mut deleted = BTreeSet::new();
    for _ in 0..deleted_len {
        deleted.insert(get_u64(buf)?);
    }
    expect_len(buf, 4, "solution parent map length")?;
    let parent_len = buf.get_u32_le() as usize;
    let mut reconstruction_parent = BTreeMap::new();
    for _ in 0..parent_len {
        let child = get_u64(buf)?;
        let parent = get_u64(buf)?;
        reconstruction_parent.insert(child, parent);
    }
    Ok(Solution {
        retained,
        deleted,
        reconstruction_parent,
        total_cost: get_f64(buf)?,
    })
}

impl AdvisorState {
    /// Serialize the complete advisor state — cost model, configuration,
    /// pruned problem, dirty set, per-component solution cache and the last
    /// merged solution — so a restored session re-advises without re-solving
    /// clean components. The encoding is canonical: maps are walked in key
    /// order, so equal states produce equal bytes.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::new();
        // Cost model (seven f64 fields).
        for v in [
            self.model.storage_per_gb_period,
            self.model.read_per_gb,
            self.model.write_per_gb,
            self.model.maintenance_per_gb_op,
            self.model.read_latency_per_gb,
            self.model.write_latency_per_gb,
            self.model.latency_threshold,
        ] {
            buf.put_f64_le(v);
        }
        // Config.
        put_usize(&mut buf, self.config.exact_component_limit);
        buf.put_u8(match self.config.knowledge {
            TransformKnowledge::Required => 0,
            TransformKnowledge::AssumeKnown => 1,
        });
        buf.put_f64_le(self.config.scans_per_week);
        // Nodes.
        buf.put_u32_le(self.nodes.len() as u32);
        for node in self.nodes.values() {
            buf.put_u64_le(node.dataset);
            buf.put_u64_le(node.size_bytes);
            buf.put_f64_le(node.retention_cost);
            buf.put_f64_le(node.accesses);
        }
        // Edges.
        buf.put_u32_le(self.edges.len() as u32);
        for (&(parent, child), &cost) in &self.edges {
            buf.put_u64_le(parent);
            buf.put_u64_le(child);
            buf.put_f64_le(cost);
        }
        // Dirty set + staleness.
        buf.put_u32_le(self.dirty.len() as u32);
        for &d in &self.dirty {
            buf.put_u64_le(d);
        }
        put_bool(&mut buf, self.stale);
        // Component cache.
        buf.put_u32_le(self.cache.len() as u32);
        for (&key, component) in &self.cache {
            buf.put_u64_le(key);
            buf.put_u32_le(component.nodes.len() as u32);
            for &n in &component.nodes {
                buf.put_u64_le(n);
            }
            put_solution(&mut buf, &component.solution);
        }
        // Merged solution + resolve stats.
        put_solution(&mut buf, &self.solution);
        put_usize(&mut buf, self.stats.components_total);
        put_usize(&mut buf, self.stats.components_reused);
        put_usize(&mut buf, self.stats.components_resolved);
        buf.freeze()
    }

    /// Decode a state produced by [`AdvisorState::encode`], consuming from
    /// the front of `buf`.
    pub fn decode(buf: &mut Bytes) -> Result<Self> {
        expect_len(buf, 56, "advisor cost model")?;
        let model = CostModel {
            storage_per_gb_period: buf.get_f64_le(),
            read_per_gb: buf.get_f64_le(),
            write_per_gb: buf.get_f64_le(),
            maintenance_per_gb_op: buf.get_f64_le(),
            read_latency_per_gb: buf.get_f64_le(),
            write_latency_per_gb: buf.get_f64_le(),
            latency_threshold: buf.get_f64_le(),
        };
        let exact_component_limit = get_usize(buf)?;
        let knowledge = match get_tag(buf, "advisor knowledge tag")? {
            0 => TransformKnowledge::Required,
            1 => TransformKnowledge::AssumeKnown,
            other => {
                return Err(r2d2_lake::LakeError::Corrupt(format!(
                    "unknown knowledge tag {other}"
                )))
            }
        };
        let config = AdvisorConfig {
            exact_component_limit,
            knowledge,
            scans_per_week: get_f64(buf)?,
        };
        expect_len(buf, 4, "advisor node count")?;
        let node_count = buf.get_u32_le() as usize;
        let mut nodes = BTreeMap::new();
        for _ in 0..node_count {
            expect_len(buf, 32, "advisor node")?;
            let node = NodeCosts {
                dataset: buf.get_u64_le(),
                size_bytes: buf.get_u64_le(),
                retention_cost: buf.get_f64_le(),
                accesses: buf.get_f64_le(),
            };
            nodes.insert(node.dataset, node);
        }
        expect_len(buf, 4, "advisor edge count")?;
        let edge_count = buf.get_u32_le() as usize;
        let mut edges = BTreeMap::new();
        for _ in 0..edge_count {
            expect_len(buf, 24, "advisor edge")?;
            let parent = buf.get_u64_le();
            let child = buf.get_u64_le();
            edges.insert((parent, child), buf.get_f64_le());
        }
        expect_len(buf, 4, "advisor dirty count")?;
        let dirty_count = buf.get_u32_le() as usize;
        let mut dirty = BTreeSet::new();
        for _ in 0..dirty_count {
            dirty.insert(get_u64(buf)?);
        }
        let stale = get_bool(buf)?;
        expect_len(buf, 4, "advisor cache count")?;
        let cache_count = buf.get_u32_le() as usize;
        let mut cache = BTreeMap::new();
        for _ in 0..cache_count {
            let key = get_u64(buf)?;
            expect_len(buf, 4, "advisor component size")?;
            let members = buf.get_u32_le() as usize;
            let mut component_nodes = Vec::with_capacity(members.min(4096));
            for _ in 0..members {
                component_nodes.push(get_u64(buf)?);
            }
            let solution = get_solution(buf)?;
            cache.insert(
                key,
                CachedComponent {
                    nodes: component_nodes,
                    solution,
                },
            );
        }
        let solution = get_solution(buf)?;
        let stats = ResolveStats {
            components_total: get_usize(buf)?,
            components_reused: get_usize(buf)?,
            components_resolved: get_usize(buf)?,
        };
        Ok(AdvisorState {
            model,
            config,
            nodes,
            edges,
            dirty,
            stale,
            cache,
            solution,
            stats,
        })
    }
}

// ---------------------------------------------------------------------------
// Delta serialization (delta snapshot generations)
// ---------------------------------------------------------------------------

/// Fingerprint of an [`AdvisorState`] that a later [`AdvisorState::encode_delta`]
/// diffs against: an identity checksum over the cost model + config, per-node
/// and per-edge value bits (f64s compared via `to_bits`, so NaN-safe and
/// bit-exact), and a checksum per cached component.
#[derive(Debug, Clone)]
pub struct AdvisorCapture {
    identity: u64,
    nodes: BTreeMap<u64, (u64, u64, u64)>,
    edges: BTreeMap<(u64, u64), u64>,
    cache: BTreeMap<u64, u64>,
}

fn put_component(buf: &mut BytesMut, component: &CachedComponent) {
    buf.put_u32_le(component.nodes.len() as u32);
    for &n in &component.nodes {
        buf.put_u64_le(n);
    }
    put_solution(buf, &component.solution);
}

fn get_component(buf: &mut Bytes) -> Result<CachedComponent> {
    expect_len(buf, 4, "advisor component size")?;
    let members = buf.get_u32_le() as usize;
    let mut nodes = Vec::with_capacity(members.min(4096));
    for _ in 0..members {
        nodes.push(get_u64(buf)?);
    }
    let solution = get_solution(buf)?;
    Ok(CachedComponent { nodes, solution })
}

fn component_checksum(component: &CachedComponent) -> u64 {
    let mut buf = BytesMut::new();
    put_component(&mut buf, component);
    r2d2_lake::wal::checksum(&buf.freeze())
}

impl AdvisorState {
    fn identity_checksum(&self) -> u64 {
        let mut buf = BytesMut::new();
        for v in [
            self.model.storage_per_gb_period,
            self.model.read_per_gb,
            self.model.write_per_gb,
            self.model.maintenance_per_gb_op,
            self.model.read_latency_per_gb,
            self.model.write_latency_per_gb,
            self.model.latency_threshold,
        ] {
            buf.put_u64_le(v.to_bits());
        }
        put_usize(&mut buf, self.config.exact_component_limit);
        buf.put_u8(match self.config.knowledge {
            TransformKnowledge::Required => 0,
            TransformKnowledge::AssumeKnown => 1,
        });
        buf.put_u64_le(self.config.scans_per_week.to_bits());
        r2d2_lake::wal::checksum(&buf.freeze())
    }

    /// Capture the fingerprint a later [`AdvisorState::encode_delta`] diffs
    /// against.
    pub fn capture(&self) -> AdvisorCapture {
        AdvisorCapture {
            identity: self.identity_checksum(),
            nodes: self
                .nodes
                .iter()
                .map(|(&d, n)| {
                    (
                        d,
                        (
                            n.size_bytes,
                            n.retention_cost.to_bits(),
                            n.accesses.to_bits(),
                        ),
                    )
                })
                .collect(),
            edges: self
                .edges
                .iter()
                .map(|(&k, &cost)| (k, cost.to_bits()))
                .collect(),
            cache: self
                .cache
                .iter()
                .map(|(&k, c)| (k, component_checksum(c)))
                .collect(),
        }
    }

    /// Serialize only what changed since `base` was [captured](Self::capture):
    /// removed + upserted nodes, edges and cached components, plus the small
    /// always-rewritten tail (dirty set, staleness, merged solution, resolve
    /// stats). Returns `None` when the cost model or config changed — those
    /// invalidate everything, so the caller should write a full encoding
    /// instead. Like [`AdvisorState::encode`], the delta is canonical.
    pub fn encode_delta(&self, base: &AdvisorCapture) -> Option<Bytes> {
        if self.identity_checksum() != base.identity {
            return None;
        }
        let mut buf = BytesMut::new();
        buf.put_u64_le(base.identity);
        let removed_nodes: Vec<u64> = base
            .nodes
            .keys()
            .filter(|d| !self.nodes.contains_key(d))
            .copied()
            .collect();
        buf.put_u32_le(removed_nodes.len() as u32);
        for d in removed_nodes {
            buf.put_u64_le(d);
        }
        let upserted_nodes: Vec<&NodeCosts> = self
            .nodes
            .iter()
            .filter(|(d, n)| {
                base.nodes.get(d)
                    != Some(&(
                        n.size_bytes,
                        n.retention_cost.to_bits(),
                        n.accesses.to_bits(),
                    ))
            })
            .map(|(_, n)| n)
            .collect();
        buf.put_u32_le(upserted_nodes.len() as u32);
        for node in upserted_nodes {
            buf.put_u64_le(node.dataset);
            buf.put_u64_le(node.size_bytes);
            buf.put_f64_le(node.retention_cost);
            buf.put_f64_le(node.accesses);
        }
        let removed_edges: Vec<(u64, u64)> = base
            .edges
            .keys()
            .filter(|k| !self.edges.contains_key(k))
            .copied()
            .collect();
        buf.put_u32_le(removed_edges.len() as u32);
        for (parent, child) in removed_edges {
            buf.put_u64_le(parent);
            buf.put_u64_le(child);
        }
        let upserted_edges: Vec<((u64, u64), f64)> = self
            .edges
            .iter()
            .filter(|(k, cost)| base.edges.get(k) != Some(&cost.to_bits()))
            .map(|(&k, &cost)| (k, cost))
            .collect();
        buf.put_u32_le(upserted_edges.len() as u32);
        for ((parent, child), cost) in upserted_edges {
            buf.put_u64_le(parent);
            buf.put_u64_le(child);
            buf.put_f64_le(cost);
        }
        // Dirty set + staleness: small, always rewritten whole.
        buf.put_u32_le(self.dirty.len() as u32);
        for &d in &self.dirty {
            buf.put_u64_le(d);
        }
        put_bool(&mut buf, self.stale);
        // Component cache diff.
        let removed_cache: Vec<u64> = base
            .cache
            .keys()
            .filter(|k| !self.cache.contains_key(k))
            .copied()
            .collect();
        buf.put_u32_le(removed_cache.len() as u32);
        for k in removed_cache {
            buf.put_u64_le(k);
        }
        let upserted_cache: Vec<(u64, &CachedComponent)> = self
            .cache
            .iter()
            .filter(|(k, c)| base.cache.get(k) != Some(&component_checksum(c)))
            .map(|(&k, c)| (k, c))
            .collect();
        buf.put_u32_le(upserted_cache.len() as u32);
        for (key, component) in upserted_cache {
            buf.put_u64_le(key);
            put_component(&mut buf, component);
        }
        // Merged solution + resolve stats: small, always rewritten whole.
        put_solution(&mut buf, &self.solution);
        put_usize(&mut buf, self.stats.components_total);
        put_usize(&mut buf, self.stats.components_reused);
        put_usize(&mut buf, self.stats.components_resolved);
        Some(buf.freeze())
    }

    /// Patch this state — the decoded *base generation's* advisor — with an
    /// [`AdvisorState::encode_delta`] section. The delta's identity checksum
    /// must match this state's model + config (deltas never change them);
    /// removing an absent node, edge or cached component is a corruption
    /// error, never a panic.
    pub fn apply_delta(&mut self, buf: &mut Bytes) -> Result<()> {
        let identity = get_u64(buf)?;
        if identity != self.identity_checksum() {
            return Err(r2d2_lake::LakeError::Corrupt(
                "advisor delta identity does not match base generation".into(),
            ));
        }
        expect_len(buf, 4, "advisor removed node count")?;
        let removed_nodes = buf.get_u32_le() as usize;
        for _ in 0..removed_nodes {
            let d = get_u64(buf)?;
            if self.nodes.remove(&d).is_none() {
                return Err(r2d2_lake::LakeError::Corrupt(
                    "advisor delta removes an absent node".into(),
                ));
            }
        }
        expect_len(buf, 4, "advisor upserted node count")?;
        let upserted_nodes = buf.get_u32_le() as usize;
        for _ in 0..upserted_nodes {
            expect_len(buf, 32, "advisor upserted node")?;
            let node = NodeCosts {
                dataset: buf.get_u64_le(),
                size_bytes: buf.get_u64_le(),
                retention_cost: buf.get_f64_le(),
                accesses: buf.get_f64_le(),
            };
            self.nodes.insert(node.dataset, node);
        }
        expect_len(buf, 4, "advisor removed edge count")?;
        let removed_edges = buf.get_u32_le() as usize;
        for _ in 0..removed_edges {
            let parent = get_u64(buf)?;
            let child = get_u64(buf)?;
            if self.edges.remove(&(parent, child)).is_none() {
                return Err(r2d2_lake::LakeError::Corrupt(
                    "advisor delta removes an absent edge".into(),
                ));
            }
        }
        expect_len(buf, 4, "advisor upserted edge count")?;
        let upserted_edges = buf.get_u32_le() as usize;
        for _ in 0..upserted_edges {
            expect_len(buf, 24, "advisor upserted edge")?;
            let parent = buf.get_u64_le();
            let child = buf.get_u64_le();
            self.edges.insert((parent, child), buf.get_f64_le());
        }
        expect_len(buf, 4, "advisor dirty count")?;
        let dirty_count = buf.get_u32_le() as usize;
        let mut dirty = BTreeSet::new();
        for _ in 0..dirty_count {
            dirty.insert(get_u64(buf)?);
        }
        self.dirty = dirty;
        self.stale = get_bool(buf)?;
        expect_len(buf, 4, "advisor removed cache count")?;
        let removed_cache = buf.get_u32_le() as usize;
        for _ in 0..removed_cache {
            let k = get_u64(buf)?;
            if self.cache.remove(&k).is_none() {
                return Err(r2d2_lake::LakeError::Corrupt(
                    "advisor delta removes an absent cached component".into(),
                ));
            }
        }
        expect_len(buf, 4, "advisor upserted cache count")?;
        let upserted_cache = buf.get_u32_le() as usize;
        for _ in 0..upserted_cache {
            let key = get_u64(buf)?;
            let component = get_component(buf)?;
            self.cache.insert(key, component);
        }
        self.solution = get_solution(buf)?;
        self.stats = ResolveStats {
            components_total: get_usize(buf)?,
            components_reused: get_usize(buf)?,
            components_resolved: get_usize(buf)?,
        };
        Ok(())
    }
}

/// The from-scratch oracle the incremental advisor is pinned against: build
/// a live-dataset copy of `graph` (annotations preserved, nodes and edges of
/// dropped datasets excluded), run the §5.1 preprocessing, price the
/// problem, and solve with the standard per-component dispatch.
pub fn from_scratch(
    lake: &DataLake,
    graph: &ContainmentGraph,
    model: &CostModel,
    config: &AdvisorConfig,
) -> Result<Solution> {
    let mut live = ContainmentGraph::with_datasets(lake.ids().iter().map(|id| id.0));
    for (parent, child) in graph.edges() {
        if lake.contains(DatasetId(parent)) && lake.contains(DatasetId(child)) {
            if let Some(edge) = graph.edge(parent, child) {
                live.add_edge_with(parent, child, edge.clone());
            }
        }
    }
    crate::preprocess::preprocess_for_safe_deletion(&mut live, lake, model, config.knowledge)?;
    let problem = OptRetProblem::from_graph(&live, lake, model)?;
    Ok(solver::solve_with_limit(
        &problem,
        config.exact_component_limit,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_lake::{AccessProfile, Column, DataType, Lineage, PartitionedTable, Schema, Table};

    fn dataset(n: i64) -> PartitionedTable {
        let schema = Schema::flat(&[("x", DataType::Int)]).unwrap();
        PartitionedTable::single(Table::new(schema, vec![Column::from_ints(0..n)]).unwrap())
    }

    /// Lake with two chains sharing no edges: 0 → 1 and 2 → 3 (lineage
    /// recorded), plus an isolated dataset 4.
    fn two_chain_lake() -> (DataLake, ContainmentGraph) {
        let mut lake = DataLake::new();
        let access = AccessProfile {
            accesses_per_period: 0.2,
            maintenance_per_period: 4.0,
        };
        let a = lake
            .add_dataset("a", dataset(60_000), access, None)
            .unwrap();
        lake.add_dataset(
            "a_sub",
            dataset(30_000),
            access,
            Some(Lineage {
                parent: a,
                transform: "WHERE x < 30000".into(),
            }),
        )
        .unwrap();
        let b = lake
            .add_dataset("b", dataset(50_000), access, None)
            .unwrap();
        lake.add_dataset(
            "b_sub",
            dataset(20_000),
            access,
            Some(Lineage {
                parent: b,
                transform: "WHERE x < 20000".into(),
            }),
        )
        .unwrap();
        lake.add_dataset("lonely", dataset(1_000), access, None)
            .unwrap();
        let mut graph = ContainmentGraph::with_datasets(0..5);
        graph.add_edge(0, 1);
        graph.add_edge(2, 3);
        (lake, graph)
    }

    fn advisor(lake: &DataLake, graph: &ContainmentGraph) -> AdvisorState {
        AdvisorState::build(lake, graph, CostModel::default(), AdvisorConfig::default()).unwrap()
    }

    #[test]
    fn build_then_advise_matches_from_scratch() {
        let (lake, graph) = two_chain_lake();
        let mut state = advisor(&lake, &graph);
        assert!(state.is_dirty());
        let incremental = state.advise().clone();
        let fresh = from_scratch(&lake, &graph, state.model(), state.config()).unwrap();
        assert_eq!(incremental, fresh);
        assert!(incremental.is_feasible(&state.problem()));
        let stats = state.last_resolve_stats();
        assert_eq!(stats.components_total, 3);
        assert_eq!(stats.components_resolved, 3);
        assert_eq!(stats.components_reused, 0);

        // A second advise with nothing dirty short-circuits: same solution,
        // every component counted as reused.
        assert!(!state.is_dirty());
        let again = state.advise().clone();
        assert_eq!(again, incremental);
        let stats = state.last_resolve_stats();
        assert_eq!(stats.components_resolved, 0);
        assert_eq!(stats.components_reused, stats.components_total);
    }

    #[test]
    fn clean_components_are_reused() {
        let (mut lake, graph) = two_chain_lake();
        let mut state = advisor(&lake, &graph);
        state.advise();

        // Grow dataset 3: only the {2, 3} component is dirtied.
        lake.append_rows(DatasetId(3), {
            let schema = Schema::flat(&[("x", DataType::Int)]).unwrap();
            Table::new(schema, vec![Column::from_ints(20_000..21_000)]).unwrap()
        })
        .unwrap();
        state
            .apply(
                &lake,
                &graph,
                &[(3, DatasetChange::ContentChanged)],
                &EdgeDelta::default(),
            )
            .unwrap();
        let incremental = state.advise().clone();
        let stats = state.last_resolve_stats();
        assert_eq!(stats.components_total, 3);
        assert_eq!(
            stats.components_resolved, 1,
            "only the dirty chain re-solves"
        );
        assert_eq!(stats.components_reused, 2);
        let fresh = from_scratch(&lake, &graph, state.model(), state.config()).unwrap();
        assert_eq!(incremental, fresh);
    }

    #[test]
    fn drops_and_edge_removals_stay_in_sync() {
        let (mut lake, mut graph) = two_chain_lake();
        let mut state = advisor(&lake, &graph);
        state.advise();

        // Drop dataset 1; its edge disappears from the graph.
        lake.remove_dataset(DatasetId(1)).unwrap();
        graph.clear_dataset(1);
        state
            .apply(
                &lake,
                &graph,
                &[(1, DatasetChange::Dropped)],
                &EdgeDelta {
                    added: vec![],
                    removed: vec![(0, 1)],
                },
            )
            .unwrap();
        let incremental = state.advise().clone();
        assert!(!incremental.retained.contains(&1));
        assert!(!incremental.deleted.contains(&1));
        let fresh = from_scratch(&lake, &graph, state.model(), state.config()).unwrap();
        assert_eq!(incremental, fresh);
    }

    #[test]
    fn access_drift_flips_a_deletion() {
        let (lake, graph) = two_chain_lake();
        let mut state = AdvisorState::build(
            &lake,
            &graph,
            CostModel::default(),
            AdvisorConfig::default(),
        )
        .unwrap();
        let before = state.advise().clone();
        assert!(
            before.deleted.contains(&1),
            "rarely accessed subset starts out deletable"
        );

        // Dataset 1 suddenly becomes hot: reconstruction per access now
        // dwarfs retention.
        let mut lake = lake;
        lake.set_access_profile(
            DatasetId(1),
            AccessProfile {
                accesses_per_period: 1e7,
                maintenance_per_period: 4.0,
            },
        )
        .unwrap();
        assert!(state.note_cost_drift(&lake, 1).unwrap());
        let after = state.advise().clone();
        assert!(
            after.retained.contains(&1),
            "a hot dataset must not be deleted"
        );
        let fresh = from_scratch(&lake, &graph, state.model(), state.config()).unwrap();
        assert_eq!(after, fresh);
        assert!(
            !state.note_cost_drift(&lake, 1).unwrap(),
            "no further drift"
        );
        assert!(
            !state.note_cost_drift(&lake, 99).unwrap(),
            "unknown id is a no-op"
        );
    }

    #[test]
    fn report_carries_savings() {
        let (lake, graph) = two_chain_lake();
        let mut state = advisor(&lake, &graph);
        let report = state.report(&lake).unwrap();
        assert_eq!(
            report.table7.deleted_nodes + report.table7.retained_nodes,
            lake.len()
        );
        assert!(report.total_cost <= report.retain_all_cost + 1e-9);
        assert!((report.savings - (report.retain_all_cost - report.total_cost)).abs() < 1e-9);
        assert_eq!(report.gdpr.datasets_deleted, report.solution.deleted.len());
    }

    #[test]
    fn encode_decode_round_trips_full_state() {
        let (mut lake, graph) = two_chain_lake();
        let mut state = advisor(&lake, &graph);
        state.advise();
        // Leave something dirty so the dirty set / staleness round-trips too.
        lake.append_rows(DatasetId(3), {
            let schema = Schema::flat(&[("x", DataType::Int)]).unwrap();
            Table::new(schema, vec![Column::from_ints(20_000..20_500)]).unwrap()
        })
        .unwrap();
        state
            .apply(
                &lake,
                &graph,
                &[(3, DatasetChange::ContentChanged)],
                &EdgeDelta::default(),
            )
            .unwrap();

        let bytes = state.encode();
        let mut cursor = bytes.clone();
        let mut back = AdvisorState::decode(&mut cursor).unwrap();
        assert_eq!(cursor.remaining(), 0, "decode must consume exactly");
        assert_eq!(back.model(), state.model());
        assert_eq!(back.config(), state.config());
        assert_eq!(back.problem(), state.problem());
        assert_eq!(back.is_dirty(), state.is_dirty());
        assert_eq!(back.encode(), bytes, "canonical bytes");

        // The restored advisor advises identically — including reusing the
        // clean components its cache carried across the round trip.
        let expected = state.advise().clone();
        assert_eq!(back.advise().clone(), expected);
        assert_eq!(back.last_resolve_stats(), state.last_resolve_stats());
        assert!(
            back.last_resolve_stats().components_reused > 0,
            "restored cache must spare clean components"
        );
    }

    #[test]
    fn delta_round_trip_matches_full_encode_bit_for_bit() {
        let (mut lake, graph) = two_chain_lake();
        let mut state = advisor(&lake, &graph);
        state.advise();
        let base = state.capture();
        let base_copy = state.clone();

        // Dirty one chain since the capture.
        lake.append_rows(DatasetId(3), {
            let schema = Schema::flat(&[("x", DataType::Int)]).unwrap();
            Table::new(schema, vec![Column::from_ints(20_000..20_500)]).unwrap()
        })
        .unwrap();
        state
            .apply(
                &lake,
                &graph,
                &[(3, DatasetChange::ContentChanged)],
                &EdgeDelta::default(),
            )
            .unwrap();
        state.advise();

        let delta = state.encode_delta(&base).expect("identity unchanged");
        assert!(
            delta.len() < state.encode().len(),
            "delta must be smaller than the full encoding"
        );
        let mut patched = base_copy.clone();
        let mut cursor = delta.clone();
        patched.apply_delta(&mut cursor).unwrap();
        assert_eq!(cursor.remaining(), 0, "apply must consume exactly");
        assert_eq!(patched.encode(), state.encode(), "bit-identical state");
        // Canonical: the same (base, state) pair re-encodes identically.
        assert_eq!(state.encode_delta(&base).unwrap(), delta);
    }

    #[test]
    fn delta_refuses_model_or_config_changes() {
        let (lake, graph) = two_chain_lake();
        let state = advisor(&lake, &graph);
        let base = state.capture();
        let mut retuned = CostModel::default();
        retuned.storage_per_gb_period += 1.0;
        let rebuilt = AdvisorState::build(&lake, &graph, retuned, *state.config()).unwrap();
        assert!(
            rebuilt.encode_delta(&base).is_none(),
            "model change must force a full encoding"
        );
        // And a delta from the original state refuses to patch the retuned one.
        let delta = state.encode_delta(&base).unwrap();
        let mut wrong_base = rebuilt;
        assert!(wrong_base.apply_delta(&mut delta.clone()).is_err());
    }

    #[test]
    fn corrupt_delta_blobs_are_clean_errors() {
        let (mut lake, graph) = two_chain_lake();
        let mut state = advisor(&lake, &graph);
        state.advise();
        let base = state.capture();
        let base_copy = state.clone();
        lake.remove_dataset(DatasetId(4)).unwrap();
        state
            .apply(
                &lake,
                &graph,
                &[(4, DatasetChange::Dropped)],
                &EdgeDelta::default(),
            )
            .unwrap();
        state.advise();
        let delta = state.encode_delta(&base).unwrap();
        for cut in 0..delta.len() {
            let mut patched = base_copy.clone();
            let mut cursor = delta.slice(0..cut);
            let _ = patched.apply_delta(&mut cursor); // must not panic
        }
    }

    #[test]
    fn decode_rejects_truncated_state() {
        let (lake, graph) = two_chain_lake();
        let bytes = advisor(&lake, &graph).encode();
        for cut in 0..bytes.len() {
            let mut cursor = bytes.slice(0..cut);
            assert!(
                AdvisorState::decode(&mut cursor).is_err(),
                "truncation at {cut} must error, not panic"
            );
        }
    }

    #[test]
    fn assume_known_admits_edges_without_lineage() {
        let mut lake = DataLake::new();
        let access = AccessProfile::default();
        lake.add_dataset("p", dataset(40_000), access, None)
            .unwrap();
        lake.add_dataset("c", dataset(10_000), access, None)
            .unwrap();
        let mut graph = ContainmentGraph::with_datasets(0..2);
        graph.add_edge(0, 1);

        let required = AdvisorState::build(
            &lake,
            &graph,
            CostModel::default(),
            AdvisorConfig::default(),
        )
        .unwrap();
        assert_eq!(required.problem().edge_count(), 0, "no lineage → pruned");

        let assumed = AdvisorState::build(
            &lake,
            &graph,
            CostModel::default(),
            AdvisorConfig::default().with_knowledge(TransformKnowledge::AssumeKnown),
        )
        .unwrap();
        assert_eq!(assumed.problem().edge_count(), 1);
    }
}
