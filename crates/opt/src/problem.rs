//! The Opt-Ret optimization problem instance (Eq. 3 of the paper).
//!
//! An [`OptRetProblem`] is a self-contained description of one optimization
//! run: per-node retention costs and expected access counts, and per-edge
//! reconstruction costs. It can be built from a pre-processed containment
//! graph and a data lake ([`OptRetProblem::from_graph`]) or constructed
//! directly (the Fig. 6 scalability experiments build synthetic instances on
//! Erdős–Rényi graphs).

use crate::costmodel::CostModel;
use r2d2_graph::ContainmentGraph;
use r2d2_lake::{DataLake, DatasetId, Result};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Per-node inputs of Eq. 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeCosts {
    /// Dataset id of the node.
    pub dataset: u64,
    /// Size `S_v` in bytes.
    pub size_bytes: u64,
    /// Retention cost for the billing period: `(C_s + C_m · f_v) · S_v`.
    pub retention_cost: f64,
    /// Expected customer-initiated accesses `A_v` over the billing period.
    pub accesses: f64,
}

/// Per-edge inputs of Eq. 3 (one reconstruction option).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReconstructionEdge {
    /// Parent dataset (the reconstruction source).
    pub parent: u64,
    /// Child dataset (the candidate for deletion).
    pub child: u64,
    /// Reconstruction cost `C_e` (per access).
    pub cost: f64,
}

/// A complete Opt-Ret instance.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OptRetProblem {
    /// Nodes, keyed by dataset id.
    pub nodes: BTreeMap<u64, NodeCosts>,
    /// Edges (parent → child reconstruction options).
    pub edges: Vec<ReconstructionEdge>,
}

impl OptRetProblem {
    /// Build an instance from a (pre-processed) containment graph, reading
    /// sizes and access profiles from the lake and prices from the cost
    /// model. Edges whose annotation carries a `reconstruction_cost` use it;
    /// otherwise the cost is computed from the parent/child sizes.
    pub fn from_graph(
        graph: &ContainmentGraph,
        lake: &DataLake,
        model: &CostModel,
    ) -> Result<Self> {
        let mut nodes = BTreeMap::new();
        for &ds in graph.datasets() {
            let entry = lake.dataset(DatasetId(ds))?;
            let size = entry.byte_size() as u64;
            nodes.insert(
                ds,
                NodeCosts {
                    dataset: ds,
                    size_bytes: size,
                    retention_cost: model.retention_cost(size, entry.access.maintenance_per_period),
                    accesses: entry.access.accesses_per_period,
                },
            );
        }
        let mut edges = Vec::new();
        for (parent, child) in graph.edges() {
            let p = lake.dataset(DatasetId(parent))?.byte_size() as u64;
            let c = lake.dataset(DatasetId(child))?.byte_size() as u64;
            let cost = graph
                .edge(parent, child)
                .and_then(|e| e.reconstruction_cost)
                .unwrap_or_else(|| model.reconstruction_cost(p, c));
            edges.push(ReconstructionEdge {
                parent,
                child,
                cost,
            });
        }
        // Canonical (parent, child) order: solvers break cost ties by edge
        // order, so a deterministic layout makes solutions independent of
        // the graph's internal edge ordering (and lets the incremental
        // advisor reproduce a from-scratch build bit-for-bit).
        edges.sort_by_key(|e| (e.parent, e.child));
        Ok(OptRetProblem { nodes, edges })
    }

    /// Build a synthetic instance over an arbitrary graph (used by the
    /// Fig. 6 scalability sweeps): node sizes, accesses and edge costs are
    /// supplied by closures over the dataset id.
    pub fn synthetic<FS, FA>(
        graph: &ContainmentGraph,
        model: &CostModel,
        size_bytes: FS,
        accesses: FA,
    ) -> Self
    where
        FS: Fn(u64) -> u64,
        FA: Fn(u64) -> f64,
    {
        let mut nodes = BTreeMap::new();
        for &ds in graph.datasets() {
            let size = size_bytes(ds);
            nodes.insert(
                ds,
                NodeCosts {
                    dataset: ds,
                    size_bytes: size,
                    retention_cost: model.retention_cost(size, 4.0),
                    accesses: accesses(ds),
                },
            );
        }
        let mut edges: Vec<ReconstructionEdge> = graph
            .edges()
            .into_iter()
            .map(|(parent, child)| ReconstructionEdge {
                parent,
                child,
                cost: model.reconstruction_cost(size_bytes(parent), size_bytes(child)),
            })
            .collect();
        edges.sort_by_key(|e| (e.parent, e.child));
        OptRetProblem { nodes, edges }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Parents of a node (reconstruction options), with edge costs.
    pub fn parents_of(&self, child: u64) -> Vec<&ReconstructionEdge> {
        self.edges.iter().filter(|e| e.child == child).collect()
    }

    /// Children of a node.
    pub fn children_of(&self, parent: u64) -> Vec<&ReconstructionEdge> {
        self.edges.iter().filter(|e| e.parent == parent).collect()
    }

    /// Total retention cost if every dataset is kept (the "do nothing"
    /// baseline the savings are measured against).
    pub fn retain_all_cost(&self) -> f64 {
        self.nodes.values().map(|n| n.retention_cost).sum()
    }

    /// The cheapest reconstruction cost (per access) available for a node,
    /// if it has any parent.
    pub fn cheapest_parent(&self, child: u64) -> Option<&ReconstructionEdge> {
        self.parents_of(child).into_iter().min_by(|a, b| {
            a.cost
                .partial_cmp(&b.cost)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Build an [`AdjacencyIndex`] over the current edge list.
    ///
    /// [`parents_of`](Self::parents_of) / [`children_of`](Self::children_of)
    /// / [`cheapest_parent`](Self::cheapest_parent) are O(E) linear scans;
    /// the solvers build this index once per (sub-)problem so their hot
    /// loops touch only a node's actual neighbourhood.
    pub fn adjacency(&self) -> AdjacencyIndex {
        AdjacencyIndex::new(self)
    }
}

/// Precomputed adjacency over an [`OptRetProblem`]'s edges.
///
/// Lists preserve the problem's edge order (ascending `(parent, child)` for
/// instances built by [`OptRetProblem::from_graph`] / `synthetic`), so
/// "first minimum" tie-breaks match the linear-scan accessors exactly.
#[derive(Debug, Clone, Default)]
pub struct AdjacencyIndex {
    parents: BTreeMap<u64, Vec<(u64, f64)>>,
    children: BTreeMap<u64, Vec<(u64, f64)>>,
    pairs: BTreeSet<(u64, u64)>,
}

impl AdjacencyIndex {
    /// Index the edges of `problem`.
    pub fn new(problem: &OptRetProblem) -> Self {
        let mut index = AdjacencyIndex::default();
        for e in &problem.edges {
            index
                .parents
                .entry(e.child)
                .or_default()
                .push((e.parent, e.cost));
            index
                .children
                .entry(e.parent)
                .or_default()
                .push((e.child, e.cost));
            index.pairs.insert((e.parent, e.child));
        }
        index
    }

    /// Reconstruction options of `child` as `(parent, cost)`, in edge order.
    pub fn parents_of(&self, child: u64) -> &[(u64, f64)] {
        self.parents.get(&child).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Outgoing edges of `parent` as `(child, cost)`, in edge order.
    pub fn children_of(&self, parent: u64) -> &[(u64, f64)] {
        self.children.get(&parent).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `child` has any reconstruction option.
    pub fn has_parents(&self, child: u64) -> bool {
        !self.parents_of(child).is_empty()
    }

    /// The cheapest `(parent, cost)` option of `child` (first minimum in
    /// edge order, matching [`OptRetProblem::cheapest_parent`]).
    pub fn cheapest_parent(&self, child: u64) -> Option<(u64, f64)> {
        let mut best: Option<(u64, f64)> = None;
        for &(p, c) in self.parents_of(child) {
            match best {
                Some((_, bc)) if bc <= c => {}
                _ => best = Some((p, c)),
            }
        }
        best
    }

    /// Whether the edge `parent → child` exists.
    pub fn has_edge(&self, parent: u64, child: u64) -> bool {
        self.pairs.contains(&(parent, child))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use r2d2_lake::{AccessProfile, Column, DataType, PartitionedTable, Schema, Table};

    fn lake_and_graph() -> (DataLake, ContainmentGraph) {
        let schema = Schema::flat(&[("x", DataType::Int)]).unwrap();
        let mut lake = DataLake::new();
        let mk = |n: i64| {
            PartitionedTable::single(
                Table::new(schema.clone(), vec![Column::from_ints(0..n)]).unwrap(),
            )
        };
        let a = lake
            .add_dataset(
                "a",
                mk(1000),
                AccessProfile {
                    accesses_per_period: 2.0,
                    maintenance_per_period: 4.0,
                },
                None,
            )
            .unwrap()
            .0;
        let b = lake
            .add_dataset(
                "b",
                mk(500),
                AccessProfile {
                    accesses_per_period: 1.0,
                    maintenance_per_period: 4.0,
                },
                None,
            )
            .unwrap()
            .0;
        let mut g = ContainmentGraph::new();
        g.add_edge(a, b);
        (lake, g)
    }

    #[test]
    fn from_graph_builds_costs() {
        let (lake, graph) = lake_and_graph();
        let p = OptRetProblem::from_graph(&graph, &lake, &CostModel::default()).unwrap();
        assert_eq!(p.node_count(), 2);
        assert_eq!(p.edge_count(), 1);
        assert!(p.retain_all_cost() > 0.0);
        let edge = &p.edges[0];
        assert!(edge.cost > 0.0);
        assert_eq!(p.parents_of(edge.child).len(), 1);
        assert_eq!(p.children_of(edge.parent).len(), 1);
        assert!(p.cheapest_parent(edge.child).is_some());
        assert!(p.cheapest_parent(edge.parent).is_none());
    }

    #[test]
    fn annotated_edge_cost_is_respected() {
        let (lake, mut graph) = lake_and_graph();
        let (parent, child) = graph.edges()[0];
        graph.edge_mut(parent, child).unwrap().reconstruction_cost = Some(123.0);
        let p = OptRetProblem::from_graph(&graph, &lake, &CostModel::default()).unwrap();
        assert_eq!(p.edges[0].cost, 123.0);
    }

    #[test]
    fn missing_dataset_errors() {
        let lake = DataLake::new();
        let mut graph = ContainmentGraph::new();
        graph.add_edge(5, 6);
        assert!(OptRetProblem::from_graph(&graph, &lake, &CostModel::default()).is_err());
    }

    #[test]
    fn synthetic_instance() {
        let graph = r2d2_graph::random::line_graph(4);
        let p = OptRetProblem::synthetic(&graph, &CostModel::default(), |_| 1 << 30, |d| d as f64);
        assert_eq!(p.node_count(), 4);
        assert_eq!(p.edge_count(), 3);
        assert_eq!(p.nodes[&2].accesses, 2.0);
    }

    #[test]
    fn edges_are_canonically_ordered() {
        let mut graph = ContainmentGraph::new();
        graph.add_edge(3, 1);
        graph.add_edge(0, 2);
        graph.add_edge(0, 1);
        let p = OptRetProblem::synthetic(&graph, &CostModel::default(), |_| 1 << 28, |_| 1.0);
        let pairs: Vec<(u64, u64)> = p.edges.iter().map(|e| (e.parent, e.child)).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (3, 1)]);
    }

    #[test]
    fn adjacency_index_matches_linear_scans() {
        use r2d2_graph::random::erdos_renyi_dag;
        use rand::rngs::SmallRng;
        use rand::SeedableRng;

        let mut rng = SmallRng::seed_from_u64(12);
        for n in [5usize, 12, 20] {
            let graph = erdos_renyi_dag(n, 0.3, &mut rng);
            let p = OptRetProblem::synthetic(
                &graph,
                &CostModel::default(),
                |d| ((d % 5) + 1) << 27,
                |d| (d % 4) as f64,
            );
            let index = p.adjacency();
            for &id in p.nodes.keys() {
                let scan_parents: Vec<(u64, f64)> = p
                    .parents_of(id)
                    .into_iter()
                    .map(|e| (e.parent, e.cost))
                    .collect();
                let scan_children: Vec<(u64, f64)> = p
                    .children_of(id)
                    .into_iter()
                    .map(|e| (e.child, e.cost))
                    .collect();
                assert_eq!(index.parents_of(id), scan_parents.as_slice());
                assert_eq!(index.children_of(id), scan_children.as_slice());
                assert_eq!(
                    index.cheapest_parent(id),
                    p.cheapest_parent(id).map(|e| (e.parent, e.cost)),
                    "cheapest-parent tie-breaks must match the linear scan"
                );
                assert_eq!(index.has_parents(id), !scan_parents.is_empty());
            }
            for e in &p.edges {
                assert!(index.has_edge(e.parent, e.child));
            }
            assert!(!index.has_edge(u64::MAX, 0));
        }
    }
}
