//! Savings accounting: GDPR row-scan savings (Table 7) and the storage /
//! compute projection for a large lake over a time horizon (Fig. 5).
//!
//! Table 7 reports, per customer, how many privacy-initiated row scans per
//! month are avoided by deleting the recommended datasets (the paper assumes
//! one privacy-initiated access per dataset per week, i.e. a full scan of
//! every retained copy). Fig. 5 projects the net benefit of deleting a given
//! fraction of a 10 PB data lake over a one-year horizon under 1 or 5
//! privacy-initiated accesses per week, subtracting the read/write costs of
//! any reconstructions triggered by accesses after deletion.

use crate::costmodel::{CostModel, BYTES_PER_GB};
use crate::problem::OptRetProblem;
use crate::solver::Solution;
use r2d2_lake::{DataLake, DatasetId, Result};
use serde::{Deserialize, Serialize};

/// GDPR / privacy-scan savings of a deletion recommendation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GdprSavings {
    /// Number of datasets recommended for deletion.
    pub datasets_deleted: usize,
    /// Total bytes deleted.
    pub bytes_deleted: u64,
    /// Row scans avoided per month (deleted rows × scans per month).
    pub row_scans_saved_per_month: f64,
}

/// Compute the GDPR row-scan savings of a solution against the lake.
///
/// `scans_per_week` is the assumed number of privacy-initiated full scans per
/// dataset per week (the paper uses 1 in Table 7).
pub fn gdpr_savings(
    solution: &Solution,
    lake: &DataLake,
    scans_per_week: f64,
) -> Result<GdprSavings> {
    let mut rows: u64 = 0;
    let mut bytes: u64 = 0;
    for &d in &solution.deleted {
        let entry = lake.dataset(DatasetId(d))?;
        rows += entry.num_rows() as u64;
        bytes += entry.byte_size() as u64;
    }
    Ok(GdprSavings {
        datasets_deleted: solution.deleted.len(),
        bytes_deleted: bytes,
        row_scans_saved_per_month: rows as f64 * scans_per_week * 52.0 / 12.0,
    })
}

/// Inputs of the Fig. 5 horizon projection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HorizonScenario {
    /// Total lake size in bytes (the paper uses 10 PB).
    pub lake_bytes: f64,
    /// Fraction of the lake that is exactly contained (and hence deletable).
    pub contained_fraction: f64,
    /// Privacy-initiated accesses per dataset per week (1 or 5 in Fig. 5).
    pub accesses_per_week: f64,
    /// Fraction of accesses that hit a *deleted* dataset and therefore
    /// trigger a reconstruction (read parent + write child).
    pub access_after_deletion_fraction: f64,
    /// Horizon length in months (12 in Fig. 5).
    pub horizon_months: f64,
}

impl HorizonScenario {
    /// The 10 PB / 1-year scenario of Fig. 5.
    pub fn figure5(contained_fraction: f64, accesses_per_week: f64) -> Self {
        HorizonScenario {
            lake_bytes: 10.0 * 1024.0 * 1024.0 * BYTES_PER_GB, // 10 PB
            contained_fraction,
            accesses_per_week,
            access_after_deletion_fraction: 0.05,
            horizon_months: 12.0,
        }
    }
}

/// Output of the horizon projection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HorizonSavings {
    /// Storage cost avoided over the horizon (USD).
    pub storage_savings: f64,
    /// Maintenance (privacy-scan compute) cost avoided over the horizon (USD).
    pub maintenance_savings: f64,
    /// Reconstruction cost paid for accesses after deletion (USD).
    pub reconstruction_cost: f64,
}

impl HorizonSavings {
    /// Net savings (storage + maintenance − reconstruction).
    pub fn net(&self) -> f64 {
        self.storage_savings + self.maintenance_savings - self.reconstruction_cost
    }
}

/// Project the savings of deleting the contained fraction of a lake over a
/// horizon (Fig. 5). The deleted data stops incurring storage and
/// privacy-scan costs; accesses that arrive after deletion pay the
/// reconstruction read+write cost for the affected data.
pub fn horizon_projection(scenario: &HorizonScenario, model: &CostModel) -> HorizonSavings {
    let deleted_gb = scenario.lake_bytes * scenario.contained_fraction / BYTES_PER_GB;
    let scans_per_month = scenario.accesses_per_week * 52.0 / 12.0;

    let storage_savings = deleted_gb * model.storage_per_gb_period * scenario.horizon_months;
    let maintenance_savings =
        deleted_gb * model.maintenance_per_gb_op * scans_per_month * scenario.horizon_months;

    // Accesses after deletion: a fraction of the scans over deleted data
    // triggers reconstruction (read the parent ≈ same size, write the child).
    let reconstructions_gb = deleted_gb
        * scans_per_month
        * scenario.horizon_months
        * scenario.access_after_deletion_fraction;
    let reconstruction_cost = reconstructions_gb * (model.read_per_gb + model.write_per_gb);

    HorizonSavings {
        storage_savings,
        maintenance_savings,
        reconstruction_cost,
    }
}

/// Sweep the contained fraction (x axis of Fig. 5) and return
/// `(fraction, net savings)` pairs for a given access rate.
pub fn figure5_series(
    fractions: &[f64],
    accesses_per_week: f64,
    model: &CostModel,
) -> Vec<(f64, f64)> {
    fractions
        .iter()
        .map(|&f| {
            let s = horizon_projection(&HorizonScenario::figure5(f, accesses_per_week), model);
            (f, s.net())
        })
        .collect()
}

/// Quantify an Opt-Ret solution the way Table 7 does: deletion/retention node
/// and edge counts plus GDPR savings.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Table7Row {
    /// Nodes recommended for deletion.
    pub deleted_nodes: usize,
    /// Edges used for reconstruction (one per deleted node).
    pub deletion_edges: usize,
    /// Nodes retained.
    pub retained_nodes: usize,
    /// Edges between retained nodes remaining in the graph.
    pub retained_edges: usize,
    /// Row scans saved per month by the deletions.
    pub gdpr_row_scans_saved_per_month: f64,
}

/// Build a Table 7 row from a solution, the problem and the lake.
pub fn table7_row(
    solution: &Solution,
    problem: &OptRetProblem,
    lake: &DataLake,
    scans_per_week: f64,
) -> Result<Table7Row> {
    let gdpr = gdpr_savings(solution, lake, scans_per_week)?;
    let retained_edges = problem
        .edges
        .iter()
        .filter(|e| solution.retained.contains(&e.parent) && solution.retained.contains(&e.child))
        .count();
    Ok(Table7Row {
        deleted_nodes: solution.deleted.len(),
        deletion_edges: solution.reconstruction_parent.len(),
        retained_nodes: solution.retained.len(),
        retained_edges,
        gdpr_row_scans_saved_per_month: gdpr.row_scans_saved_per_month,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve;
    use r2d2_lake::{AccessProfile, Column, DataType, PartitionedTable, Schema, Table};

    fn lake_with_chain() -> (DataLake, r2d2_graph::ContainmentGraph) {
        let schema = Schema::flat(&[("x", DataType::Int)]).unwrap();
        let mk = |n: i64| {
            PartitionedTable::single(
                Table::new(schema.clone(), vec![Column::from_ints(0..n)]).unwrap(),
            )
        };
        let mut lake = DataLake::new();
        let a = lake
            .add_dataset(
                "a",
                mk(100_000),
                AccessProfile {
                    accesses_per_period: 0.1,
                    maintenance_per_period: 4.0,
                },
                None,
            )
            .unwrap()
            .0;
        let b = lake
            .add_dataset(
                "b",
                mk(50_000),
                AccessProfile {
                    accesses_per_period: 0.1,
                    maintenance_per_period: 4.0,
                },
                None,
            )
            .unwrap()
            .0;
        let mut g = r2d2_graph::ContainmentGraph::new();
        g.add_edge(a, b);
        (lake, g)
    }

    #[test]
    fn gdpr_savings_count_deleted_rows() {
        let (lake, graph) = lake_with_chain();
        let problem = OptRetProblem::from_graph(&graph, &lake, &CostModel::default()).unwrap();
        let solution = solve(&problem);
        let savings = gdpr_savings(&solution, &lake, 1.0).unwrap();
        if solution.deleted.is_empty() {
            assert_eq!(savings.row_scans_saved_per_month, 0.0);
        } else {
            assert!(savings.row_scans_saved_per_month > 0.0);
            assert!(savings.bytes_deleted > 0);
            assert_eq!(savings.datasets_deleted, solution.deleted.len());
        }
    }

    #[test]
    fn table7_row_counts_are_consistent() {
        let (lake, graph) = lake_with_chain();
        let problem = OptRetProblem::from_graph(&graph, &lake, &CostModel::default()).unwrap();
        let solution = solve(&problem);
        let row = table7_row(&solution, &problem, &lake, 1.0).unwrap();
        assert_eq!(row.deleted_nodes + row.retained_nodes, 2);
        assert_eq!(row.deletion_edges, row.deleted_nodes);
    }

    #[test]
    fn horizon_projection_scales_with_fraction() {
        let model = CostModel::default();
        let low = horizon_projection(&HorizonScenario::figure5(0.1, 1.0), &model);
        let high = horizon_projection(&HorizonScenario::figure5(0.4, 1.0), &model);
        assert!(high.net() > low.net());
        assert!(low.net() > 0.0, "fig 5 savings should be positive");
        assert!((high.storage_savings / low.storage_savings - 4.0).abs() < 1e-9);
    }

    #[test]
    fn more_accesses_increase_maintenance_savings_and_reconstruction() {
        let model = CostModel::default();
        let one = horizon_projection(&HorizonScenario::figure5(0.2, 1.0), &model);
        let five = horizon_projection(&HorizonScenario::figure5(0.2, 5.0), &model);
        assert!(five.maintenance_savings > one.maintenance_savings);
        assert!(five.reconstruction_cost > one.reconstruction_cost);
        assert_eq!(five.storage_savings, one.storage_savings);
        // In the paper's Fig. 5 both curves are net-positive and the
        // 5-access curve saves more overall (maintenance dominates).
        assert!(five.net() > one.net());
    }

    #[test]
    fn figure5_series_is_monotone() {
        let model = CostModel::default();
        let series = figure5_series(&[0.0, 0.1, 0.2, 0.3, 0.5], 1.0, &model);
        assert_eq!(series.len(), 5);
        assert!(series.windows(2).all(|w| w[1].1 >= w[0].1));
        assert_eq!(series[0].1, 0.0, "no contained data → no savings");
    }

    #[test]
    fn zero_scans_zero_gdpr_savings() {
        let (lake, graph) = lake_with_chain();
        let problem = OptRetProblem::from_graph(&graph, &lake, &CostModel::default()).unwrap();
        let solution = solve(&problem);
        let savings = gdpr_savings(&solution, &lake, 0.0).unwrap();
        assert_eq!(savings.row_scans_saved_per_month, 0.0);
    }
}
