//! Dyn-Lin: linear-time dynamic program for line graphs (§5.3, Theorem 5.1).
//!
//! When the pruned containment graph is a collection of directed chains
//! (every parent has one child and every child one parent — the typical
//! shape when a sequence of edits is saved step by step), Opt-Ret can be
//! solved exactly in `O(N)` per chain with the recursion of §5.3:
//!
//! ```text
//! ALG[0] = (C_s + C_m·f_0)·S_0
//! ALG[1] = min(retain_1, A_1·C_{0,1}) + ALG[0]
//! ALG[i] = min(retain_i + ALG[i−1],
//!              A_i·C_{i−1,i} + retain_{i−1} + ALG[i−2])
//! ```
//!
//! The second branch deletes node `i`, which forces its only parent `i−1` to
//! be retained. Backtracking over the chosen branches recovers the retained
//! set.

use crate::problem::{AdjacencyIndex, OptRetProblem};
use crate::solver::Solution;
use std::collections::{BTreeMap, BTreeSet};

/// Check that the problem's edge set forms a forest of directed chains and
/// return the chains (each ordered root → leaf). Returns `None` when any
/// node has more than one parent or more than one child.
///
/// An edge whose endpoint is absent from `problem.nodes` is a **malformed
/// instance** (a caller bug — [`OptRetProblem::from_graph`] and `synthetic`
/// can never produce one), not a legitimate "not a line forest" shape: debug
/// builds panic on it via `debug_assert!`, release builds conservatively
/// return `None` so the general solver handles the instance instead.
pub fn extract_chains(problem: &OptRetProblem) -> Option<Vec<Vec<u64>>> {
    let mut out_deg: BTreeMap<u64, usize> = BTreeMap::new();
    let mut in_deg: BTreeMap<u64, usize> = BTreeMap::new();
    let mut next: BTreeMap<u64, u64> = BTreeMap::new();
    for id in problem.nodes.keys() {
        out_deg.insert(*id, 0);
        in_deg.insert(*id, 0);
    }
    for e in &problem.edges {
        let (Some(out), Some(inc)) = (out_deg.get_mut(&e.parent), in_deg.get_mut(&e.child)) else {
            debug_assert!(
                false,
                "malformed OptRetProblem: edge {} → {} references a node absent from problem.nodes",
                e.parent, e.child
            );
            return None;
        };
        *out += 1;
        *inc += 1;
        next.insert(e.parent, e.child);
    }
    if out_deg.values().any(|&d| d > 1) || in_deg.values().any(|&d| d > 1) {
        return None;
    }
    // Roots are nodes with in-degree 0; walk each chain. Cycles (no root)
    // are rejected.
    let mut visited: BTreeSet<u64> = BTreeSet::new();
    let mut chains = Vec::new();
    for (&id, &deg) in &in_deg {
        if deg != 0 {
            continue;
        }
        let mut chain = vec![id];
        visited.insert(id);
        let mut cur = id;
        while let Some(&n) = next.get(&cur) {
            if !visited.insert(n) {
                return None;
            }
            chain.push(n);
            cur = n;
        }
        chains.push(chain);
    }
    if visited.len() != problem.nodes.len() {
        // Some node was never reached from a root → there is a cycle.
        return None;
    }
    Some(chains)
}

/// Solve one chain with the Dyn-Lin recursion, returning (cost, retained set).
fn solve_chain(
    problem: &OptRetProblem,
    index: &AdjacencyIndex,
    chain: &[u64],
) -> (f64, BTreeSet<u64>, BTreeMap<u64, u64>) {
    let n = chain.len();
    let retain_cost = |i: usize| problem.nodes[&chain[i]].retention_cost;
    let recon_cost = |i: usize| -> f64 {
        // Cost of deleting chain[i], reconstructing from chain[i-1]. In a
        // chain every node has exactly one incoming edge, so the adjacency
        // lookup replaces what used to be an O(E) edge-list scan per node.
        let &(parent, cost) = index
            .parents_of(chain[i])
            .first()
            .expect("chain node has exactly one parent");
        debug_assert_eq!(parent, chain[i - 1]);
        problem.nodes[&chain[i]].accesses * cost
    };

    if n == 0 {
        return (0.0, BTreeSet::new(), BTreeMap::new());
    }
    if n == 1 {
        return (retain_cost(0), BTreeSet::from([chain[0]]), BTreeMap::new());
    }

    // alg[i] = optimal cost for nodes 0..=i; keep[i] = whether node i was
    // retained in the optimal solution for the prefix.
    let mut alg = vec![0.0f64; n];
    // choice[i] = true → node i retained in the optimum of prefix i.
    let mut choice = vec![true; n];
    alg[0] = retain_cost(0);
    choice[0] = true;
    {
        let keep1 = retain_cost(1);
        let del1 = recon_cost(1);
        alg[1] = keep1.min(del1) + alg[0];
        choice[1] = keep1 <= del1;
    }
    for i in 2..n {
        let keep = retain_cost(i) + alg[i - 1];
        let delete = recon_cost(i) + retain_cost(i - 1) + alg[i - 2];
        if keep <= delete {
            alg[i] = keep;
            choice[i] = true;
        } else {
            alg[i] = delete;
            choice[i] = false;
        }
    }

    // Backtrack.
    let mut retained: BTreeSet<u64> = BTreeSet::new();
    let mut recon: BTreeMap<u64, u64> = BTreeMap::new();
    let mut i = n as isize - 1;
    while i >= 0 {
        let idx = i as usize;
        if choice[idx] || idx == 0 {
            retained.insert(chain[idx]);
            i -= 1;
        } else {
            // Node idx deleted; its parent idx-1 must be retained.
            recon.insert(chain[idx], chain[idx - 1]);
            retained.insert(chain[idx - 1]);
            i -= 2;
        }
    }
    (alg[n - 1], retained, recon)
}

/// Solve an Opt-Ret instance whose graph is a forest of directed chains with
/// the Dyn-Lin dynamic program. Returns `None` when the graph is not a line
/// forest (use the general solver then).
pub fn solve_line(problem: &OptRetProblem) -> Option<Solution> {
    let chains = extract_chains(problem)?;
    let index = problem.adjacency();
    let mut retained = BTreeSet::new();
    let mut recon = BTreeMap::new();
    let mut total = 0.0;
    for chain in &chains {
        let (cost, r, m) = solve_chain(problem, &index, chain);
        total += cost;
        retained.extend(r);
        recon.extend(m);
    }
    let deleted: BTreeSet<u64> = problem
        .nodes
        .keys()
        .copied()
        .filter(|id| !retained.contains(id))
        .collect();
    Some(Solution {
        retained,
        deleted,
        reconstruction_parent: recon,
        total_cost: total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::costmodel::CostModel;
    use crate::solver::solve_exact;
    use r2d2_graph::random::{erdos_renyi_dag, line_forest, line_graph};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn line_problem(n: usize, seed: u64) -> OptRetProblem {
        let mut rng = SmallRng::seed_from_u64(seed);
        let sizes: Vec<u64> = (0..n).map(|_| rng.gen_range(1..50u64) << 26).collect();
        let accesses: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..20.0)).collect();
        let graph = line_graph(n);
        OptRetProblem::synthetic(
            &graph,
            &CostModel::default(),
            |d| sizes[d as usize],
            |d| accesses[d as usize],
        )
    }

    #[test]
    fn dyn_lin_matches_exact_on_random_chains() {
        for seed in 0..10u64 {
            for n in [1usize, 2, 3, 5, 9, 14] {
                let p = line_problem(n, seed * 31 + n as u64);
                let dp = solve_line(&p).expect("line graph");
                let exact = solve_exact(&p);
                assert!(dp.is_feasible(&p), "n={n} seed={seed}");
                assert!(
                    (dp.total_cost - exact.total_cost).abs() < 1e-6,
                    "n={n} seed={seed}: dp={} exact={}",
                    dp.total_cost,
                    exact.total_cost
                );
            }
        }
    }

    #[test]
    fn root_is_always_retained() {
        let p = line_problem(8, 3);
        let dp = solve_line(&p).unwrap();
        assert!(dp.retained.contains(&0));
    }

    #[test]
    fn no_two_adjacent_deletions() {
        let p = line_problem(20, 7);
        let dp = solve_line(&p).unwrap();
        for w in (0..20u64).collect::<Vec<_>>().windows(2) {
            assert!(
                !(dp.deleted.contains(&w[0]) && dp.deleted.contains(&w[1])),
                "adjacent nodes {} and {} both deleted",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn forest_of_chains_is_solved_per_chain() {
        let graph = line_forest(&[3, 4, 2]);
        let p = OptRetProblem::synthetic(&graph, &CostModel::default(), |_| 5 << 30, |_| 0.1);
        let dp = solve_line(&p).unwrap();
        let exact = solve_exact(&p);
        assert!((dp.total_cost - exact.total_cost).abs() < 1e-6);
        assert!(dp.is_feasible(&p));
    }

    #[test]
    fn non_line_graphs_are_rejected() {
        let mut rng = SmallRng::seed_from_u64(2);
        // A dense DAG almost surely has a node with 2 parents or 2 children.
        let graph = erdos_renyi_dag(8, 0.8, &mut rng);
        let p = OptRetProblem::synthetic(&graph, &CostModel::default(), |_| 1 << 30, |_| 1.0);
        assert!(solve_line(&p).is_none());
    }

    fn malformed_problem() -> OptRetProblem {
        // Edge 0 → 7 references node 7, which is absent from `nodes`.
        let mut p = line_problem(3, 0);
        p.edges.push(crate::problem::ReconstructionEdge {
            parent: 0,
            child: 7,
            cost: 1.0,
        });
        p
    }

    /// Malformed input (edge endpoint missing from `nodes`) is a caller bug:
    /// debug builds panic via `debug_assert!` rather than silently treating
    /// the instance as "not a line forest".
    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "malformed OptRetProblem"))]
    fn malformed_edges_are_a_debug_panic() {
        // Debug builds panic inside extract_chains; release builds fall
        // through to the documented conservative `None`.
        assert!(extract_chains(&malformed_problem()).is_none());
    }

    /// The legitimate not-a-chain shapes (branching, cycles) keep returning
    /// `None` without tripping the malformed-input assertion.
    #[test]
    fn branching_is_not_malformed() {
        let mut graph = r2d2_graph::ContainmentGraph::new();
        graph.add_edge(0, 1);
        graph.add_edge(0, 2);
        let p = OptRetProblem::synthetic(&graph, &CostModel::default(), |_| 1 << 30, |_| 1.0);
        assert!(extract_chains(&p).is_none(), "a fork is not a line forest");
    }

    #[test]
    fn cycles_are_rejected() {
        let mut graph = r2d2_graph::ContainmentGraph::new();
        graph.add_edge(0, 1);
        graph.add_edge(1, 2);
        graph.add_edge(2, 0);
        let p = OptRetProblem::synthetic(&graph, &CostModel::default(), |_| 1 << 30, |_| 1.0);
        assert!(solve_line(&p).is_none(), "cycle is not a line forest");
    }

    #[test]
    fn single_node_chain() {
        let p = line_problem(1, 0);
        let dp = solve_line(&p).unwrap();
        assert_eq!(dp.retained.len(), 1);
        assert_eq!(dp.deleted.len(), 0);
    }

    #[test]
    fn deletion_actually_happens_when_cheap() {
        // Large, rarely-accessed datasets in a chain: interior nodes should
        // alternate towards deletion.
        let graph = line_graph(6);
        let p = OptRetProblem::synthetic(&graph, &CostModel::default(), |_| 100 << 30, |_| 0.01);
        let dp = solve_line(&p).unwrap();
        assert!(
            dp.deleted_count() >= 2,
            "expected several deletions, got {}",
            dp.deleted_count()
        );
    }
}
