//! Scalar values and their canonical ordering / hashing.
//!
//! Containment in R2D2 is defined on *row tuples*: a table `A` is contained
//! in `B` when every row of `A` (projected onto `A`'s schema) appears in `B`.
//! That requires a canonical, type-aware notion of value equality and
//! hashing, including for floating point numbers (NaN is canonicalised,
//! `-0.0 == 0.0`) so that the same logical value hashes identically whether
//! it was produced by a transformation or read back from storage.

use crate::datatype::DataType;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::hash::{Hash, Hasher};

/// A single scalar value in a table cell.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Microseconds since the Unix epoch.
    Timestamp(i64),
}

impl Value {
    /// The logical type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Null,
            Value::Bool(_) => DataType::Bool,
            Value::Int(_) => DataType::Int,
            Value::Float(_) => DataType::Float,
            Value::Str(_) => DataType::Utf8,
            Value::Timestamp(_) => DataType::Timestamp,
        }
    }

    /// Returns `true` if the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the value as an `f64` if it is numeric (int, float, timestamp).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Timestamp(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the value as an `i64` if it is an integer or timestamp.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) | Value::Timestamp(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Canonicalised float bits: all NaNs collapse to one pattern, and
    /// negative zero collapses to positive zero. Used for hashing/equality.
    fn canonical_f64_bits(v: f64) -> u64 {
        if v.is_nan() {
            f64::NAN.to_bits()
        } else if v == 0.0 {
            0f64.to_bits()
        } else {
            v.to_bits()
        }
    }

    /// Approximate in-memory / on-wire size of the value in bytes. Used by the
    /// catalog to estimate dataset sizes for the cost model.
    pub fn byte_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Timestamp(_) | Value::Float(_) => 8,
            Value::Str(s) => s.len() + 4,
        }
    }

    /// Total order used for min/max statistics and sorting.
    ///
    /// Values of different types order by type tag first (NULL smallest);
    /// within a type the natural order is used, with NaN greater than any
    /// other float. Integers and timestamps compare with floats numerically
    /// so that min/max pruning works across int/float column pairs that hold
    /// the same logical quantity.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => {
                    // NaN sorts above everything, mirroring parquet's
                    // "nan_as_max" statistics behaviour.
                    match (x.is_nan(), y.is_nan()) {
                        (true, true) => Ordering::Equal,
                        (true, false) => Ordering::Greater,
                        (false, true) => Ordering::Less,
                        (false, false) => x.partial_cmp(&y).unwrap_or(Ordering::Equal),
                    }
                }
                // Different, non-numeric-compatible types: order by type tag.
                _ => a.data_type().tag().cmp(&b.data_type().tag()),
            },
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Timestamp(a), Timestamp(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (Float(a), Float(b)) => Self::canonical_f64_bits(*a) == Self::canonical_f64_bits(*b),
            // Int/Float cross-type equality is intentional: a derived table
            // that casts an int column to float still holds "the same" data.
            (Int(a), Float(b)) | (Float(b), Int(a)) => (*a as f64) == *b && b.fract() == 0.0,
            _ => false,
        }
    }
}

impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            Value::Bool(b) => {
                state.write_u8(1);
                state.write_u8(*b as u8);
            }
            Value::Int(v) => {
                // Integers that are exactly representable as floats hash the
                // same as the equivalent float, to keep Eq/Hash consistent
                // with the cross-type equality above.
                state.write_u8(3);
                state.write_u64(Self::canonical_f64_bits(*v as f64));
                state.write_i64(*v);
            }
            Value::Float(v) => {
                state.write_u8(3);
                state.write_u64(Self::canonical_f64_bits(*v));
                if v.fract() == 0.0 && v.abs() < (i64::MAX as f64) {
                    state.write_i64(*v as i64);
                } else {
                    state.write_i64(0x7fff_ffff_ffff_fffe);
                }
            }
            Value::Str(s) => {
                state.write_u8(4);
                state.write(s.as_bytes());
                state.write_u8(0xff);
            }
            Value::Timestamp(v) => {
                state.write_u8(5);
                state.write_i64(*v);
            }
        }
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Timestamp(v) => write!(f, "ts({v})"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn null_equality_and_ordering() {
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::Null.total_cmp(&Value::Int(1)), Ordering::Less);
        assert_eq!(Value::Int(1).total_cmp(&Value::Null), Ordering::Greater);
    }

    #[test]
    fn float_nan_and_negative_zero_canonicalised() {
        assert_eq!(Value::Float(f64::NAN), Value::Float(f64::NAN));
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
        assert_eq!(
            hash_of(&Value::Float(f64::NAN)),
            hash_of(&Value::Float(f64::NAN))
        );
    }

    #[test]
    fn int_float_cross_equality_hash_consistent() {
        assert_eq!(Value::Int(42), Value::Float(42.0));
        assert_eq!(hash_of(&Value::Int(42)), hash_of(&Value::Float(42.0)));
        assert_ne!(Value::Int(42), Value::Float(42.5));
    }

    #[test]
    fn ordering_numeric_cross_type() {
        assert_eq!(Value::Int(3).total_cmp(&Value::Float(3.5)), Ordering::Less);
        assert_eq!(
            Value::Float(10.0).total_cmp(&Value::Int(2)),
            Ordering::Greater
        );
        assert_eq!(
            Value::Float(f64::NAN).total_cmp(&Value::Float(1e300)),
            Ordering::Greater
        );
    }

    #[test]
    fn string_ordering() {
        assert_eq!(
            Value::Str("apple".into()).total_cmp(&Value::Str("banana".into())),
            Ordering::Less
        );
    }

    #[test]
    fn as_accessors() {
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Timestamp(99).as_i64(), Some(99));
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Bool(true).as_f64(), None);
    }

    #[test]
    fn byte_sizes() {
        assert_eq!(Value::Int(0).byte_size(), 8);
        assert_eq!(Value::Str("abcd".into()).byte_size(), 8);
        assert_eq!(Value::Null.byte_size(), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Timestamp(5).to_string(), "ts(5)");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from("a"), Value::Str("a".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
