//! Minimal CSV ingestion / export with type inference.
//!
//! The open-data corpora used by the paper (Table Union Benchmark, Kaggle
//! tables) are CSV files; this module lets the examples and synthetic-data
//! tooling move small tables in and out of the lake without any external
//! dependency. It intentionally supports only the simple dialect those files
//! use: comma separator, optional double-quote quoting, first row is the
//! header.

use crate::builder::TableBuilder;
use crate::datatype::DataType;
use crate::error::{LakeError, Result};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;

/// Split one CSV line into fields, honouring double quotes.
fn split_line(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                if in_quotes && chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = !in_quotes;
                }
            }
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            other => cur.push(other),
        }
    }
    fields.push(cur);
    fields
}

/// Infer the narrowest [`DataType`] that can represent every non-empty cell
/// of a column (Int ⊂ Float ⊂ Utf8; "true"/"false" → Bool).
fn infer_type(cells: &[&str]) -> DataType {
    let mut all_int = true;
    let mut all_float = true;
    let mut all_bool = true;
    let mut saw_value = false;
    for c in cells {
        if c.is_empty() {
            continue;
        }
        saw_value = true;
        if c.parse::<i64>().is_err() {
            all_int = false;
        }
        if c.parse::<f64>().is_err() {
            all_float = false;
        }
        let lower = c.to_ascii_lowercase();
        if lower != "true" && lower != "false" {
            all_bool = false;
        }
    }
    if !saw_value {
        DataType::Utf8
    } else if all_bool {
        DataType::Bool
    } else if all_int {
        DataType::Int
    } else if all_float {
        DataType::Float
    } else {
        DataType::Utf8
    }
}

fn parse_cell(cell: &str, dt: DataType) -> Value {
    if cell.is_empty() {
        return Value::Null;
    }
    match dt {
        DataType::Int => cell
            .parse::<i64>()
            .map(Value::Int)
            .unwrap_or_else(|_| Value::Str(cell.to_string())),
        DataType::Float => cell
            .parse::<f64>()
            .map(Value::Float)
            .unwrap_or_else(|_| Value::Str(cell.to_string())),
        DataType::Bool => Value::Bool(cell.eq_ignore_ascii_case("true")),
        DataType::Timestamp => cell
            .parse::<i64>()
            .map(Value::Timestamp)
            .unwrap_or_else(|_| Value::Str(cell.to_string())),
        _ => Value::Str(cell.to_string()),
    }
}

/// Parse CSV text (header row + data rows) into a [`Table`], inferring types.
pub fn parse_csv(text: &str) -> Result<Table> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines
        .next()
        .ok_or_else(|| LakeError::InvalidArgument("empty CSV".to_string()))?;
    let names = split_line(header);
    let rows: Vec<Vec<String>> = lines.map(split_line).collect();
    for (i, r) in rows.iter().enumerate() {
        if r.len() != names.len() {
            return Err(LakeError::InvalidArgument(format!(
                "row {} has {} fields, expected {}",
                i + 1,
                r.len(),
                names.len()
            )));
        }
    }
    let mut fields = Vec::with_capacity(names.len());
    for (ci, name) in names.iter().enumerate() {
        let cells: Vec<&str> = rows.iter().map(|r| r[ci].as_str()).collect();
        fields.push(crate::schema::Field::new(name.trim(), infer_type(&cells)));
    }
    let schema = Schema::new(fields)?;
    let mut builder = TableBuilder::new(schema.clone());
    for r in &rows {
        let values = schema
            .fields()
            .iter()
            .zip(r)
            .map(|(f, cell)| parse_cell(cell.trim(), f.data_type))
            .collect();
        builder.push_row(values)?;
    }
    builder.build()
}

fn escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// Render a table as CSV text (header + rows).
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let names: Vec<String> = table.schema().names().iter().map(|n| escape(n)).collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for row in table.iter_rows() {
        let cells: Vec<String> = row
            .values()
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Str(s) => escape(s),
                other => other.to_string(),
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_csv_with_inference() {
        let csv = "id,name,score,active\n1,alice,3.5,true\n2,bob,4.0,false\n";
        let t = parse_csv(csv).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.schema().data_type("id").unwrap(), DataType::Int);
        assert_eq!(t.schema().data_type("score").unwrap(), DataType::Float);
        assert_eq!(t.schema().data_type("name").unwrap(), DataType::Utf8);
        assert_eq!(t.schema().data_type("active").unwrap(), DataType::Bool);
    }

    #[test]
    fn quoted_fields_and_embedded_commas() {
        let csv = "a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n";
        let t = parse_csv(csv).unwrap();
        assert_eq!(
            t.column("a").unwrap().values()[0],
            Value::Str("hello, world".into())
        );
        assert_eq!(
            t.column("b").unwrap().values()[0],
            Value::Str("say \"hi\"".into())
        );
    }

    #[test]
    fn empty_cells_become_null() {
        let csv = "x,y\n1,\n,2\n";
        let t = parse_csv(csv).unwrap();
        assert_eq!(t.column("x").unwrap().stats().null_count, 1);
        assert_eq!(t.column("y").unwrap().stats().null_count, 1);
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(parse_csv("a,b\n1\n").is_err());
        assert!(parse_csv("").is_err());
    }

    #[test]
    fn round_trip_csv() {
        let csv = "id,name\n1,alice\n2,\"b,ob\"\n";
        let t = parse_csv(csv).unwrap();
        let rendered = to_csv(&t);
        let t2 = parse_csv(&rendered).unwrap();
        assert_eq!(t.num_rows(), t2.num_rows());
        assert_eq!(
            t.column("name").unwrap().values(),
            t2.column("name").unwrap().values()
        );
    }

    #[test]
    fn mixed_int_float_column_inferred_as_float() {
        let csv = "v\n1\n2.5\n";
        let t = parse_csv(csv).unwrap();
        assert_eq!(t.schema().data_type("v").unwrap(), DataType::Float);
    }

    #[test]
    fn all_empty_column_is_utf8() {
        let csv = "v\n\n\n";
        let t = parse_csv(csv).unwrap();
        assert_eq!(t.schema().data_type("v").unwrap(), DataType::Utf8);
        assert_eq!(t.num_rows(), 0, "blank lines are skipped");
    }
}
