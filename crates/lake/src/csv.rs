//! CSV ingestion / export with type inference and row quarantine.
//!
//! The open-data corpora used by the paper (Table Union Benchmark, Kaggle
//! tables) are CSV files, and real ones are messy: ragged rows, dangling
//! quotes, mixed int/float columns, unicode, null floods. This module is the
//! hostile-input boundary of the lake — [`read_csv`] parses a file under a
//! [`CsvOptions`] policy and *quarantines* malformed rows into typed
//! [`IngestError`]s instead of aborting or panicking, so one bad row never
//! costs a whole file and one bad file never costs an ingest run
//! (`r2d2_core::R2d2Session::ingest_dir` builds on this).
//!
//! Dialect: configurable single-character delimiter (default comma),
//! optional double-quote quoting with `""` escapes, first row is the header.
//! **Multi-line quoted fields are unsupported** — a quote left open at
//! end-of-line is a typed [`IngestError::UnterminatedQuote`], not a silent
//! field terminator. Header names are trimmed; empty header names become
//! `column_<i>` and duplicate header names get a `_<n>` suffix, so a hostile
//! header can never abort a file on schema construction.
//!
//! Type inference is quorum-based (see [`CsvOptions::type_quorum`]): a
//! column adopts `Bool`/`Int`/`Float` when at least that fraction of its
//! non-null cells parse, and the rows whose cells then fail under the
//! adopted type are quarantined as [`IngestError::UnparseableCell`]. At the
//! default quorum of `1.0` a single non-conforming cell widens the column to
//! `Utf8` instead (the legacy behaviour — nothing is quarantined on type).
//! Mixed int/float columns infer `Float` and keep integer-looking cells as
//! `Value::Int` (exercising the storage layer's tagged-page fallback) unless
//! [`CsvOptions::widen_int_to_float`] is off. `Timestamp` columns are not
//! inferred; [`to_csv`] renders them as `ts(<micros>)` text, so they
//! round-trip as strings, not timestamps. Non-finite floats (`NaN`, `inf`)
//! are never inferred as `Float`.

use crate::builder::TableBuilder;
use crate::datatype::DataType;
use crate::error::{LakeError, Result};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;

/// Parsing policy for [`read_csv`]: the dialect knob plus the tolerance and
/// type-inference widening rules applied to malformed input.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvOptions {
    /// Field delimiter (default `,`). Quoting is always double-quote.
    pub delimiter: char,
    /// Maximum number of rows a single file may quarantine before the whole
    /// file is rejected with [`IngestError::TooManyBadRows`]. The default
    /// (`usize::MAX`) never rejects a file for bad rows; `0` restores
    /// strict all-or-nothing parsing (see [`CsvOptions::strict`]).
    pub max_quarantined_rows: usize,
    /// Fraction of a column's non-null cells that must parse as a narrow
    /// type (`Bool`/`Int`/`Float`) for the column to adopt it, in `(0, 1]`.
    /// At the default `1.0` a single non-conforming cell widens the column
    /// to `Utf8`; below `1.0` the column keeps the narrow type and the
    /// non-conforming rows are quarantined as
    /// [`IngestError::UnparseableCell`].
    pub type_quorum: f64,
    /// When `true` (default), a column mixing integer- and float-looking
    /// cells infers `Float`, and integer-looking cells are kept as
    /// [`Value::Int`] inside the `Float` column — the mixed-variant shape
    /// the storage layer's tagged page layout exists for. When `false`,
    /// such mixed columns fall back to `Utf8`.
    pub widen_int_to_float: bool,
    /// When `true` (default), a quoted cell never narrows a column (it
    /// counts as text for inference) and a quoted empty cell is the empty
    /// string rather than NULL — the convention [`to_csv`] relies on to
    /// round-trip `Str` cells that look numeric. Set to `false` for
    /// external exports that quote every field including numbers.
    pub quoted_is_text: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        CsvOptions {
            delimiter: ',',
            max_quarantined_rows: usize::MAX,
            type_quorum: 1.0,
            widen_int_to_float: true,
            quoted_is_text: true,
        }
    }
}

impl CsvOptions {
    /// Zero-tolerance options: the first malformed row rejects the file
    /// (the policy [`parse_csv`] uses).
    pub fn strict() -> Self {
        CsvOptions {
            max_quarantined_rows: 0,
            ..CsvOptions::default()
        }
    }
}

/// A typed reason a row (or a whole file) was rejected by the ingest path.
#[derive(Debug, Clone, PartialEq)]
pub enum IngestError {
    /// A double quote was still open at end-of-line. Multi-line quoted
    /// fields are not supported by this dialect.
    UnterminatedQuote {
        /// 1-based line number in the file.
        line: usize,
    },
    /// The row's field count does not match the header's.
    ArityMismatch {
        /// 1-based line number in the file.
        line: usize,
        /// Fields found on this line.
        got: usize,
        /// Fields declared by the header.
        expected: usize,
    },
    /// A cell failed to parse under the type the column adopted.
    UnparseableCell {
        /// 1-based line number in the file.
        line: usize,
        /// Column (header) name.
        column: String,
        /// The type the column adopted during inference.
        expected: DataType,
        /// The offending cell text.
        cell: String,
    },
    /// The file has no header row (empty or all-blank input).
    EmptyFile,
    /// More rows were quarantined than [`CsvOptions::max_quarantined_rows`]
    /// allows; the whole file is rejected.
    TooManyBadRows {
        /// Rows quarantined when the limit was hit.
        quarantined: usize,
        /// The configured limit.
        limit: usize,
        /// The first row-level error, for diagnostics.
        first: Box<IngestError>,
    },
    /// Table construction failed after parsing (wraps a [`LakeError`]).
    Table(String),
    /// The lake/session rejected the parsed dataset (e.g. a duplicate
    /// dataset name on re-ingest); used by the directory ingest path.
    Dataset(String),
    /// Reading a file from disk failed (used by the directory ingest path).
    Io {
        /// The offending path.
        path: String,
        /// The underlying I/O error, rendered.
        error: String,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::UnterminatedQuote { line } => write!(
                f,
                "line {line}: unterminated quote (multi-line quoted fields are unsupported)"
            ),
            IngestError::ArityMismatch {
                line,
                got,
                expected,
            } => write!(f, "line {line}: row has {got} fields, expected {expected}"),
            IngestError::UnparseableCell {
                line,
                column,
                expected,
                cell,
            } => write!(
                f,
                "line {line}: cell {cell:?} in column {column:?} does not parse as {}",
                expected.name()
            ),
            IngestError::EmptyFile => write!(f, "empty CSV: no header row"),
            IngestError::TooManyBadRows {
                quarantined,
                limit,
                first,
            } => write!(
                f,
                "{quarantined} rows quarantined (limit {limit}); first: {first}"
            ),
            IngestError::Table(msg) => write!(f, "table construction failed: {msg}"),
            IngestError::Dataset(msg) => write!(f, "dataset rejected: {msg}"),
            IngestError::Io { path, error } => write!(f, "reading {path}: {error}"),
        }
    }
}

impl std::error::Error for IngestError {}

/// One quarantined row: where it was, what it said, and why it was rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedRow {
    /// 1-based line number in the file.
    pub line: usize,
    /// The raw line text, verbatim.
    pub raw: String,
    /// The typed rejection reason.
    pub error: IngestError,
}

/// The result of a tolerant parse: the table built from the surviving rows
/// plus every row that was quarantined on the way.
#[derive(Debug, Clone)]
pub struct CsvRead {
    /// Table over the rows that survived quarantine (may be empty).
    pub table: Table,
    /// Rows rejected with their typed reasons, in file order.
    pub quarantined: Vec<QuarantinedRow>,
}

/// One split field: its unquoted text and whether any part of it was quoted.
struct CsvField {
    text: String,
    quoted: bool,
}

/// Split one line into fields, honouring double quotes (`""` escapes a
/// quote inside a quoted section). Returns `None` when a quote is still
/// open at end-of-line — the caller turns that into
/// [`IngestError::UnterminatedQuote`]; the old behaviour of silently ending
/// the field hid truncated rows from the arity check.
fn split_line(line: &str, delimiter: char) -> Option<Vec<CsvField>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut cur_quoted = false;
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                if in_quotes && chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = !in_quotes;
                    cur_quoted = true;
                }
            }
            c if c == delimiter && !in_quotes => {
                fields.push(CsvField {
                    text: std::mem::take(&mut cur),
                    quoted: std::mem::take(&mut cur_quoted),
                });
            }
            other => cur.push(other),
        }
    }
    if in_quotes {
        return None;
    }
    fields.push(CsvField {
        text: cur,
        quoted: cur_quoted,
    });
    Some(fields)
}

/// Whether a field is NULL under the options: empty and (when quoted cells
/// are text) unquoted — a quoted empty field is the empty string.
fn is_null_field(field: &CsvField, options: &CsvOptions) -> bool {
    field.text.is_empty() && !(field.quoted && options.quoted_is_text)
}

fn parses_as_int(cell: &str) -> bool {
    cell.trim().parse::<i64>().is_ok()
}

fn parses_as_finite_float(cell: &str) -> bool {
    cell.trim().parse::<f64>().is_ok_and(f64::is_finite)
}

fn parses_as_bool(cell: &str) -> bool {
    let t = cell.trim();
    t.eq_ignore_ascii_case("true") || t.eq_ignore_ascii_case("false")
}

/// Infer one column's type from its surviving cells under the quorum and
/// widening rules (see module docs).
fn infer_column_type(cells: &[&CsvField], options: &CsvOptions) -> DataType {
    let mut nonnull = 0usize;
    let mut ints = 0usize;
    let mut floats = 0usize;
    let mut bools = 0usize;
    for field in cells {
        if is_null_field(field, options) {
            continue;
        }
        nonnull += 1;
        if field.quoted && options.quoted_is_text {
            continue; // text-forcing: counts against every narrow quorum
        }
        if parses_as_int(&field.text) {
            ints += 1;
        }
        if parses_as_finite_float(&field.text) {
            floats += 1;
        }
        if parses_as_bool(&field.text) {
            bools += 1;
        }
    }
    if nonnull == 0 {
        return DataType::Utf8;
    }
    let quorum = options.type_quorum.clamp(f64::MIN_POSITIVE, 1.0);
    let adopts = |n: usize| n > 0 && n as f64 >= quorum * nonnull as f64;
    if adopts(bools) {
        DataType::Bool
    } else if adopts(ints) {
        DataType::Int
    } else if adopts(floats) {
        // Every int parses as a float, so a Float quorum with ints present
        // is exactly the mixed int/float case the widening knob governs.
        if ints > 0 && !options.widen_int_to_float {
            DataType::Utf8
        } else {
            DataType::Float
        }
    } else {
        DataType::Utf8
    }
}

/// Parse one field under the column's adopted type. `Err(())` means the
/// cell does not conform — the caller quarantines the row.
fn parse_field(
    field: &CsvField,
    dt: DataType,
    options: &CsvOptions,
) -> std::result::Result<Value, ()> {
    if is_null_field(field, options) {
        return Ok(Value::Null);
    }
    if field.quoted && options.quoted_is_text && dt != DataType::Utf8 {
        return Err(()); // a text-forced cell in a narrow column (quorum < 1)
    }
    let trimmed = field.text.trim();
    match dt {
        DataType::Int => trimmed.parse::<i64>().map(Value::Int).map_err(|_| ()),
        DataType::Float => {
            if let Ok(i) = trimmed.parse::<i64>() {
                // Integer-looking cell in a Float column: keep the Int
                // variant (tagged-page shape) under the widening rule.
                if options.widen_int_to_float {
                    return Ok(Value::Int(i));
                }
                return Ok(Value::Float(i as f64));
            }
            match trimmed.parse::<f64>() {
                Ok(v) if v.is_finite() => Ok(Value::Float(v)),
                _ => Err(()),
            }
        }
        DataType::Bool => {
            if trimmed.eq_ignore_ascii_case("true") {
                Ok(Value::Bool(true))
            } else if trimmed.eq_ignore_ascii_case("false") {
                Ok(Value::Bool(false))
            } else {
                Err(())
            }
        }
        DataType::Timestamp => trimmed.parse::<i64>().map(Value::Timestamp).map_err(|_| ()),
        _ => Ok(Value::Str(field.text.clone())),
    }
}

/// Header names: trimmed, empty names filled as `column_<i>`, duplicates
/// deduplicated with a `_<n>` suffix (hostile headers never abort a file).
fn header_names(fields: &[CsvField]) -> Vec<String> {
    let mut names: Vec<String> = Vec::with_capacity(fields.len());
    for (i, f) in fields.iter().enumerate() {
        let mut name = f.text.trim().to_string();
        if name.is_empty() {
            name = format!("column_{i}");
        }
        if names.contains(&name) {
            let mut n = 2;
            while names.contains(&format!("{name}_{n}")) {
                n += 1;
            }
            name = format!("{name}_{n}");
        }
        names.push(name);
    }
    names
}

/// Parse CSV text under `options`, quarantining malformed rows instead of
/// failing the file. Structural problems (unterminated quote, arity
/// mismatch) and — when the quorum adopted a narrow type — unparseable
/// cells each quarantine their row; the file itself is only rejected when
/// it has no header or the quarantine limit is exceeded.
pub fn read_csv(text: &str, options: &CsvOptions) -> std::result::Result<CsvRead, IngestError> {
    let mut lines = text
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .filter(|(_, l)| !l.trim().is_empty());
    let (header_line, header_raw) = lines.next().ok_or(IngestError::EmptyFile)?;
    let header = split_line(header_raw, options.delimiter)
        .ok_or(IngestError::UnterminatedQuote { line: header_line })?;
    let names = header_names(&header);

    let mut quarantined: Vec<QuarantinedRow> = Vec::new();
    let mut rows: Vec<(usize, Vec<CsvField>)> = Vec::new();
    for (line, raw) in lines {
        match split_line(raw, options.delimiter) {
            None => quarantined.push(QuarantinedRow {
                line,
                raw: raw.to_string(),
                error: IngestError::UnterminatedQuote { line },
            }),
            Some(fields) if fields.len() != names.len() => quarantined.push(QuarantinedRow {
                line,
                raw: raw.to_string(),
                error: IngestError::ArityMismatch {
                    line,
                    got: fields.len(),
                    expected: names.len(),
                },
            }),
            Some(fields) => rows.push((line, fields)),
        }
    }
    check_tolerance(&quarantined, options)?;

    let mut fields = Vec::with_capacity(names.len());
    for (ci, name) in names.iter().enumerate() {
        let cells: Vec<&CsvField> = rows.iter().map(|(_, r)| &r[ci]).collect();
        fields.push(crate::schema::Field::new(
            name.clone(),
            infer_column_type(&cells, options),
        ));
    }
    let schema = Schema::new(fields).map_err(|e| IngestError::Table(e.to_string()))?;

    let mut builder = TableBuilder::new(schema.clone());
    'row: for (line, row) in &rows {
        let mut values = Vec::with_capacity(row.len());
        for (f, field) in schema.fields().iter().zip(row) {
            match parse_field(field, f.data_type, options) {
                Ok(v) => values.push(v),
                Err(()) => {
                    quarantined.push(QuarantinedRow {
                        line: *line,
                        raw: row_text(row, options.delimiter),
                        error: IngestError::UnparseableCell {
                            line: *line,
                            column: f.name.clone(),
                            expected: f.data_type,
                            cell: field.text.clone(),
                        },
                    });
                    check_tolerance(&quarantined, options)?;
                    continue 'row;
                }
            }
        }
        builder
            .push_row(values)
            .map_err(|e| IngestError::Table(e.to_string()))?;
    }
    quarantined.sort_by_key(|q| q.line);
    let table = builder
        .build()
        .map_err(|e| IngestError::Table(e.to_string()))?;
    Ok(CsvRead { table, quarantined })
}

fn check_tolerance(
    quarantined: &[QuarantinedRow],
    options: &CsvOptions,
) -> std::result::Result<(), IngestError> {
    if quarantined.len() > options.max_quarantined_rows {
        return Err(IngestError::TooManyBadRows {
            quarantined: quarantined.len(),
            limit: options.max_quarantined_rows,
            first: Box::new(quarantined[0].error.clone()),
        });
    }
    Ok(())
}

/// Reassemble a split row for the quarantine record (the structural cases
/// keep the raw line; this is only used once fields are already split).
fn row_text(row: &[CsvField], delimiter: char) -> String {
    row.iter()
        .map(|f| f.text.as_str())
        .collect::<Vec<_>>()
        .join(&delimiter.to_string())
}

/// Parse CSV text (header row + data rows) into a [`Table`], inferring
/// types. Strict: the first malformed row fails the parse (tolerant,
/// quarantining parses go through [`read_csv`]).
pub fn parse_csv(text: &str) -> Result<Table> {
    read_csv(text, &CsvOptions::strict())
        .map(|r| r.table)
        .map_err(|e| LakeError::InvalidArgument(e.to_string()))
}

/// Whether a string cell must be quoted so that [`read_csv`] reads it back
/// as text (empty, whitespace-sensitive, or masquerading as a number/bool).
fn needs_text_quoting(cell: &str) -> bool {
    let trimmed = cell.trim();
    cell.is_empty()
        || trimmed != cell
        || trimmed.parse::<f64>().is_ok() // superset of i64; covers NaN/inf
        || parses_as_bool(cell)
}

fn escape(cell: &str, force: bool) -> String {
    if force || cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

/// A float rendering that parses back as `Float`, never `Int`: integral
/// values keep an explicit `.0` (`1` would re-infer as an integer).
fn float_repr(v: f64) -> String {
    let s = format!("{v}");
    if v.is_finite() && !s.contains('.') && !s.contains('e') && !s.contains('E') {
        format!("{s}.0")
    } else {
        s
    }
}

/// Render a table as CSV text (header + rows). String cells that would
/// read back as numbers, booleans or NULL are quoted so a
/// [`read_csv`]/[`to_csv`] round trip preserves cell types (under the
/// default [`CsvOptions`]; see `quoted_is_text`).
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let names: Vec<String> = table
        .schema()
        .names()
        .into_iter()
        .map(|n| escape(n, false))
        .collect();
    out.push_str(&names.join(","));
    out.push('\n');
    for row in table.iter_rows() {
        let cells: Vec<String> = row
            .values()
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Str(s) => escape(s, needs_text_quoting(s)),
                Value::Float(x) => float_repr(*x),
                other => other.to_string(),
            })
            .collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_csv_with_inference() {
        let csv = "id,name,score,active\n1,alice,3.5,true\n2,bob,4.0,false\n";
        let t = parse_csv(csv).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.schema().data_type("id").unwrap(), DataType::Int);
        assert_eq!(t.schema().data_type("score").unwrap(), DataType::Float);
        assert_eq!(t.schema().data_type("name").unwrap(), DataType::Utf8);
        assert_eq!(t.schema().data_type("active").unwrap(), DataType::Bool);
    }

    #[test]
    fn quoted_fields_and_embedded_commas() {
        let csv = "a,b\n\"hello, world\",\"say \"\"hi\"\"\"\n";
        let t = parse_csv(csv).unwrap();
        assert_eq!(
            t.column("a").unwrap().values()[0],
            Value::Str("hello, world".into())
        );
        assert_eq!(
            t.column("b").unwrap().values()[0],
            Value::Str("say \"hi\"".into())
        );
    }

    #[test]
    fn empty_cells_become_null() {
        let csv = "x,y\n1,\n,2\n";
        let t = parse_csv(csv).unwrap();
        assert_eq!(t.column("x").unwrap().stats().null_count, 1);
        assert_eq!(t.column("y").unwrap().stats().null_count, 1);
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(parse_csv("a,b\n1\n").is_err());
        assert!(parse_csv("").is_err());
    }

    #[test]
    fn round_trip_csv() {
        let csv = "id,name\n1,alice\n2,\"b,ob\"\n";
        let t = parse_csv(csv).unwrap();
        let rendered = to_csv(&t);
        let t2 = parse_csv(&rendered).unwrap();
        assert_eq!(t.num_rows(), t2.num_rows());
        assert_eq!(
            t.column("name").unwrap().values(),
            t2.column("name").unwrap().values()
        );
    }

    #[test]
    fn mixed_int_float_column_inferred_as_float() {
        let csv = "v\n1\n2.5\n";
        let t = parse_csv(csv).unwrap();
        assert_eq!(t.schema().data_type("v").unwrap(), DataType::Float);
        // The integer-looking cell keeps its Int variant (tagged-page shape).
        assert_eq!(t.column("v").unwrap().values()[0], Value::Int(1));
        assert_eq!(t.column("v").unwrap().values()[1], Value::Float(2.5));
    }

    #[test]
    fn widening_off_sends_mixed_numeric_to_utf8() {
        let options = CsvOptions {
            widen_int_to_float: false,
            ..CsvOptions::default()
        };
        let r = read_csv("v\n1\n2.5\n", &options).unwrap();
        assert_eq!(r.table.schema().data_type("v").unwrap(), DataType::Utf8);
    }

    #[test]
    fn all_empty_column_is_utf8() {
        let csv = "v\n\n\n";
        let t = parse_csv(csv).unwrap();
        assert_eq!(t.schema().data_type("v").unwrap(), DataType::Utf8);
        assert_eq!(t.num_rows(), 0, "blank lines are skipped");
    }

    #[test]
    fn unterminated_quote_is_a_typed_error() {
        // Strict parse: the dangling quote rejects the file...
        assert!(parse_csv("a,b\n1,\"oops\n2,ok\n").is_err());
        // ...tolerant parse quarantines exactly that row with line info.
        let r = read_csv("a,b\n1,\"oops\n2,ok\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.table.num_rows(), 1);
        assert_eq!(r.quarantined.len(), 1);
        assert_eq!(
            r.quarantined[0].error,
            IngestError::UnterminatedQuote { line: 2 }
        );
        assert_eq!(r.quarantined[0].raw, "1,\"oops");
        // A dangling quote in the header is file-fatal (no schema to build).
        assert_eq!(
            read_csv("a,\"b\n1,2\n", &CsvOptions::default()).unwrap_err(),
            IngestError::UnterminatedQuote { line: 1 }
        );
    }

    #[test]
    fn ragged_rows_are_quarantined_with_arity() {
        let r = read_csv("a,b\n1,2\n3\n4,5,6\n7,8\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.table.num_rows(), 2);
        assert_eq!(r.quarantined.len(), 2);
        assert_eq!(
            r.quarantined[0].error,
            IngestError::ArityMismatch {
                line: 3,
                got: 1,
                expected: 2
            }
        );
        assert_eq!(
            r.quarantined[1].error,
            IngestError::ArityMismatch {
                line: 4,
                got: 3,
                expected: 2
            }
        );
    }

    #[test]
    fn quarantine_limit_rejects_the_file() {
        let options = CsvOptions {
            max_quarantined_rows: 1,
            ..CsvOptions::default()
        };
        let err = read_csv("a,b\n1\n2\n3,4\n", &options).unwrap_err();
        match err {
            IngestError::TooManyBadRows {
                quarantined, limit, ..
            } => {
                assert_eq!(quarantined, 2);
                assert_eq!(limit, 1);
            }
            other => panic!("expected TooManyBadRows, got {other}"),
        }
    }

    #[test]
    fn quorum_below_one_quarantines_unparseable_cells() {
        let options = CsvOptions {
            type_quorum: 0.75,
            ..CsvOptions::default()
        };
        let r = read_csv("n\n1\n2\n3\njunk\n", &options).unwrap();
        assert_eq!(r.table.schema().data_type("n").unwrap(), DataType::Int);
        assert_eq!(r.table.num_rows(), 3);
        assert_eq!(r.quarantined.len(), 1);
        assert!(matches!(
            &r.quarantined[0].error,
            IngestError::UnparseableCell { line: 5, column, expected: DataType::Int, cell }
                if column == "n" && cell == "junk"
        ));
    }

    #[test]
    fn custom_delimiter() {
        let options = CsvOptions {
            delimiter: ';',
            ..CsvOptions::default()
        };
        let r = read_csv("a;b\n1;x,y\n", &options).unwrap();
        assert_eq!(r.table.column("a").unwrap().values()[0], Value::Int(1));
        assert_eq!(
            r.table.column("b").unwrap().values()[0],
            Value::Str("x,y".into())
        );
    }

    #[test]
    fn hostile_headers_are_repaired_not_fatal() {
        let r = read_csv("a,,a,a\n1,2,3,4\n", &CsvOptions::default()).unwrap();
        assert_eq!(
            r.table.schema().names(),
            vec!["a", "column_1", "a_2", "a_3"]
        );
    }

    #[test]
    fn quoted_cells_preserve_textness_and_empty_strings() {
        let r = read_csv("s,t\n\"1\",\"\"\n\"true\",x\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.table.schema().data_type("s").unwrap(), DataType::Utf8);
        assert_eq!(
            r.table.column("s").unwrap().values()[0],
            Value::Str("1".into())
        );
        assert_eq!(
            r.table.column("t").unwrap().values()[0],
            Value::Str("".into())
        );
        // Unquoted empty is still NULL.
        let r2 = read_csv("x,y\n1,\n", &CsvOptions::default()).unwrap();
        assert_eq!(r2.table.column("y").unwrap().values()[0], Value::Null);
    }

    #[test]
    fn to_csv_quotes_masquerading_strings_and_keeps_float_points() {
        use crate::column::Column;
        let schema = Schema::flat(&[("s", DataType::Utf8), ("f", DataType::Float)]).unwrap();
        let t = Table::new(
            schema,
            vec![
                Column::new(
                    DataType::Utf8,
                    vec![
                        Value::Str("17".into()),
                        Value::Str("".into()),
                        Value::Str(" pad ".into()),
                        Value::Str("true".into()),
                    ],
                )
                .unwrap(),
                Column::new(
                    DataType::Float,
                    vec![
                        Value::Float(1.0),
                        Value::Float(2.5),
                        Value::Int(3),
                        Value::Null,
                    ],
                )
                .unwrap(),
            ],
        )
        .unwrap();
        let rendered = to_csv(&t);
        let r = read_csv(&rendered, &CsvOptions::default()).unwrap();
        assert!(r.quarantined.is_empty());
        assert_eq!(r.table.schema().data_type("s").unwrap(), DataType::Utf8);
        assert_eq!(r.table.schema().data_type("f").unwrap(), DataType::Float);
        assert_eq!(
            r.table.column("s").unwrap().values(),
            t.column("s").unwrap().values()
        );
        assert_eq!(
            r.table.column("f").unwrap().values(),
            t.column("f").unwrap().values()
        );
    }

    #[test]
    fn infer_excludes_non_finite_floats() {
        let r = read_csv("v\n1.5\nNaN\n", &CsvOptions::default()).unwrap();
        assert_eq!(r.table.schema().data_type("v").unwrap(), DataType::Utf8);
    }
}
