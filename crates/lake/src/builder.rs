//! Row-oriented table builder.
//!
//! Synthetic corpora, CSV ingestion and tests often produce data row by row;
//! [`TableBuilder`] accumulates rows against a declared schema and pivots
//! them into the column-major [`Table`] representation.

use crate::column::Column;
use crate::error::{LakeError, Result};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::Value;

/// Accumulates rows and builds an immutable [`Table`].
#[derive(Debug, Clone)]
pub struct TableBuilder {
    schema: Schema,
    columns: Vec<Vec<Value>>,
    rows: usize,
}

impl TableBuilder {
    /// Start building a table with the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = vec![Vec::new(); schema.len()];
        TableBuilder {
            schema,
            columns,
            rows: 0,
        }
    }

    /// The declared schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows added so far.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Append one row (values positionally aligned with the schema).
    pub fn push_row(&mut self, values: Vec<Value>) -> Result<()> {
        if values.len() != self.schema.len() {
            return Err(LakeError::LengthMismatch {
                expected: self.schema.len(),
                actual: values.len(),
            });
        }
        for (i, v) in values.into_iter().enumerate() {
            self.columns[i].push(v);
        }
        self.rows += 1;
        Ok(())
    }

    /// Append many rows.
    pub fn push_rows<I>(&mut self, rows: I) -> Result<()>
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        for row in rows {
            self.push_row(row)?;
        }
        Ok(())
    }

    /// Finish, producing the table. Fails if any value violates its column's
    /// declared type.
    pub fn build(self) -> Result<Table> {
        let columns = self
            .schema
            .fields()
            .iter()
            .zip(self.columns)
            .map(|(f, values)| {
                Column::new(f.data_type, values).map_err(|e| match e {
                    LakeError::TypeMismatch {
                        expected, actual, ..
                    } => LakeError::TypeMismatch {
                        column: f.name.clone(),
                        expected,
                        actual,
                    },
                    other => other,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Table::new(self.schema, columns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;

    fn schema() -> Schema {
        Schema::flat(&[("id", DataType::Int), ("name", DataType::Utf8)]).unwrap()
    }

    #[test]
    fn build_simple_table() {
        let mut b = TableBuilder::new(schema());
        assert!(b.is_empty());
        b.push_row(vec![Value::Int(1), Value::Str("a".into())])
            .unwrap();
        b.push_row(vec![Value::Int(2), Value::Str("b".into())])
            .unwrap();
        assert_eq!(b.len(), 2);
        let t = b.build().unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(
            t.column("name").unwrap().values()[1],
            Value::Str("b".into())
        );
    }

    #[test]
    fn wrong_arity_rejected() {
        let mut b = TableBuilder::new(schema());
        assert!(b.push_row(vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn type_violation_reported_with_column_name() {
        let mut b = TableBuilder::new(schema());
        b.push_row(vec![Value::Str("oops".into()), Value::Str("a".into())])
            .unwrap();
        let err = b.build().unwrap_err();
        match err {
            LakeError::TypeMismatch { column, .. } => assert_eq!(column, "id"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn push_rows_bulk() {
        let mut b = TableBuilder::new(schema());
        b.push_rows((0..5).map(|i| vec![Value::Int(i), Value::Str(format!("n{i}"))]))
            .unwrap();
        assert_eq!(b.build().unwrap().num_rows(), 5);
    }

    #[test]
    fn empty_build_produces_empty_table() {
        let t = TableBuilder::new(schema()).build().unwrap();
        assert!(t.is_empty());
    }

    #[test]
    fn nulls_allowed_anywhere() {
        let mut b = TableBuilder::new(schema());
        b.push_row(vec![Value::Null, Value::Null]).unwrap();
        let t = b.build().unwrap();
        assert_eq!(t.column("id").unwrap().stats().null_count, 1);
    }
}
