//! Typed lake mutations: the [`LakeUpdate`] event vocabulary and the catalog
//! entry points that execute them.
//!
//! §7.1 of the paper studies four kinds of lake change — a dataset is added,
//! rows are appended, rows are removed, a dataset is deleted. [`LakeUpdate`]
//! is the typed event for those four cases; [`DataLake::apply_update`]
//! executes one against the catalog and reports what actually changed as an
//! [`AppliedUpdate`]. Content mutations rebuild the dataset's
//! [`PartitionedTable`] under its original [`PartitionSpec`], so partition
//! and table-level min/max statistics are re-derived from the new rows —
//! stale statistics never survive a mutation. Every content mutation also
//! bumps the entry's `generation` counter, so derived state keyed by
//! `(dataset, generation)` — e.g. a `HashJoinCache` of build-side hash
//! multisets — is invalidated by construction: stale entries stop being
//! addressable and only need an occasional prune
//! (`HashJoinCache::retain_generations`), which `r2d2_core`'s session runs
//! after each update batch.
//!
//! [`PartitionSpec`]: crate::partition::PartitionSpec

use crate::catalog::{AccessProfile, DataLake, DatasetId, Lineage};
use crate::error::{LakeError, Result};
use crate::partition::PartitionedTable;
use crate::query::Predicate;
use crate::table::Table;
use serde::{Deserialize, Serialize};

/// One typed mutation of the data lake (the §7.1 update vocabulary).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LakeUpdate {
    /// Register a brand-new dataset under a fresh id.
    AddDataset {
        /// Dataset name (must be unique within the lake).
        name: String,
        /// The dataset's data, already partitioned.
        data: PartitionedTable,
        /// Expected access behaviour for the cost model.
        access: AccessProfile,
        /// Known derivation lineage, if any.
        lineage: Option<Lineage>,
    },
    /// Append rows to an existing dataset (schema must match).
    AppendRows {
        /// Target dataset.
        id: DatasetId,
        /// Rows to append.
        rows: Table,
    },
    /// Delete every row matching a predicate from an existing dataset.
    DeleteRows {
        /// Target dataset.
        id: DatasetId,
        /// Rows matching this predicate are removed.
        predicate: Predicate,
    },
    /// Remove a dataset from the lake entirely.
    DropDataset {
        /// Target dataset.
        id: DatasetId,
    },
}

impl LakeUpdate {
    /// The dataset the update targets, when it is known up front
    /// (`AddDataset` only receives its id once applied).
    pub fn target(&self) -> Option<DatasetId> {
        match self {
            LakeUpdate::AddDataset { .. } => None,
            LakeUpdate::AppendRows { id, .. }
            | LakeUpdate::DeleteRows { id, .. }
            | LakeUpdate::DropDataset { id } => Some(*id),
        }
    }
}

/// What a [`LakeUpdate`] actually did to the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppliedUpdate {
    /// A new dataset was registered under `id`.
    Added {
        /// The freshly assigned dataset id.
        id: DatasetId,
    },
    /// `rows` rows were appended to dataset `id` (`rows == 0` is a no-op).
    Appended {
        /// The mutated dataset.
        id: DatasetId,
        /// Number of rows appended.
        rows: usize,
    },
    /// `rows` rows were deleted from dataset `id` (`rows == 0` is a no-op).
    Deleted {
        /// The mutated dataset.
        id: DatasetId,
        /// Number of rows removed.
        rows: usize,
    },
    /// Dataset `id` was removed from the lake.
    Dropped {
        /// The removed dataset.
        id: DatasetId,
    },
}

impl AppliedUpdate {
    /// The dataset the update touched.
    pub fn dataset(&self) -> DatasetId {
        match self {
            AppliedUpdate::Added { id }
            | AppliedUpdate::Appended { id, .. }
            | AppliedUpdate::Deleted { id, .. }
            | AppliedUpdate::Dropped { id } => *id,
        }
    }

    /// Whether the update left the dataset's content unchanged
    /// (zero-row appends and zero-match deletes).
    pub fn is_noop(&self) -> bool {
        matches!(
            self,
            AppliedUpdate::Appended { rows: 0, .. } | AppliedUpdate::Deleted { rows: 0, .. }
        )
    }
}

impl DataLake {
    /// Append `rows` to dataset `id`, rebuilding its partitions (and hence
    /// all partition/table statistics) under the dataset's original
    /// [`PartitionSpec`](crate::partition::PartitionSpec). Returns the number
    /// of appended rows; an empty `rows` table is a metered-free no-op.
    ///
    /// The rebuild materialises the existing partitions once (metered as a
    /// full scan on the lake meter, like any maintenance rewrite would be).
    pub fn append_rows(&mut self, id: DatasetId, rows: Table) -> Result<usize> {
        let appended = rows.num_rows();
        let entry = self.dataset(id)?;
        if entry.data.schema() != rows.schema() {
            return Err(LakeError::InvalidArgument(format!(
                "appended rows do not match the schema of dataset {id}"
            )));
        }
        if appended == 0 {
            return Ok(0);
        }
        let meter = self.meter().clone();
        let spec = entry.data.spec().clone();
        let combined = entry.data.to_table(&meter)?.concat(&rows)?;
        self.replace_data(id, PartitionedTable::from_table(combined, spec)?)?;
        Ok(appended)
    }

    /// Delete every row of dataset `id` matching `predicate`, rebuilding the
    /// partitions (and statistics) under the dataset's original spec.
    /// Returns the number of removed rows; zero matches is a no-op (after
    /// the metered scan that established it).
    pub fn delete_rows(&mut self, id: DatasetId, predicate: &Predicate) -> Result<usize> {
        let entry = self.dataset(id)?;
        for c in predicate.columns() {
            if entry.data.schema().index_of(c).is_none() {
                return Err(LakeError::ColumnNotFound(c.to_string()));
            }
        }
        let meter = self.meter().clone();
        let spec = entry.data.spec().clone();
        let full = entry.data.to_table(&meter)?;
        let mut keep = Vec::with_capacity(full.num_rows());
        for i in 0..full.num_rows() {
            if !predicate.matches(&full, i)? {
                keep.push(i);
            }
        }
        let removed = full.num_rows() - keep.len();
        if removed == 0 {
            return Ok(0);
        }
        let kept = full.take(&keep)?;
        self.replace_data(id, PartitionedTable::from_table(kept, spec)?)?;
        Ok(removed)
    }

    /// Execute one [`LakeUpdate`] against the catalog, returning what
    /// changed. `AddDataset` assigns the next free dataset id exactly as
    /// [`DataLake::add_dataset`] does, so replaying the same update sequence
    /// against equal lakes yields equal ids.
    pub fn apply_update(&mut self, update: &LakeUpdate) -> Result<AppliedUpdate> {
        match update {
            LakeUpdate::AddDataset {
                name,
                data,
                access,
                lineage,
            } => {
                let id = self.add_dataset(name.clone(), data.clone(), *access, lineage.clone())?;
                Ok(AppliedUpdate::Added { id })
            }
            LakeUpdate::AppendRows { id, rows } => Ok(AppliedUpdate::Appended {
                id: *id,
                rows: self.append_rows(*id, rows.clone())?,
            }),
            LakeUpdate::DeleteRows { id, predicate } => Ok(AppliedUpdate::Deleted {
                id: *id,
                rows: self.delete_rows(*id, predicate)?,
            }),
            LakeUpdate::DropDataset { id } => {
                self.remove_dataset(*id)?;
                Ok(AppliedUpdate::Dropped { id: *id })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::datatype::DataType;
    use crate::partition::PartitionSpec;
    use crate::schema::Schema;
    use crate::value::Value;

    fn table(ids: std::ops::Range<i64>) -> Table {
        let schema = Schema::flat(&[("id", DataType::Int), ("v", DataType::Float)]).unwrap();
        Table::new(
            schema,
            vec![
                Column::from_ints(ids.clone()),
                Column::from_floats(ids.map(|i| i as f64 * 0.5)),
            ],
        )
        .unwrap()
    }

    fn lake_with(ids: std::ops::Range<i64>, rows_per_partition: usize) -> (DataLake, DatasetId) {
        let mut lake = DataLake::new();
        let id = lake
            .add_dataset(
                "d",
                PartitionedTable::from_table(
                    table(ids),
                    PartitionSpec::ByRowCount { rows_per_partition },
                )
                .unwrap(),
                AccessProfile::default(),
                None,
            )
            .unwrap();
        (lake, id)
    }

    #[test]
    fn append_rows_grows_and_refreshes_stats() {
        let (mut lake, id) = lake_with(0..20, 8);
        let appended = lake.append_rows(id, table(20..30)).unwrap();
        assert_eq!(appended, 10);
        let entry = lake.dataset(id).unwrap();
        assert_eq!(entry.num_rows(), 30);
        // Statistics cover the appended rows and the spec is preserved.
        let (_, max) = entry
            .data
            .column_min_max("id", &crate::meter::Meter::new())
            .unwrap();
        assert_eq!(max, Some(Value::Int(29)));
        assert_eq!(
            entry.data.spec(),
            &PartitionSpec::ByRowCount {
                rows_per_partition: 8
            }
        );
        assert_eq!(entry.data.num_partitions(), 4);
    }

    #[test]
    fn append_empty_is_noop_and_schema_mismatch_errors() {
        let (mut lake, id) = lake_with(0..5, 8);
        assert_eq!(lake.append_rows(id, table(0..0)).unwrap(), 0);
        assert_eq!(lake.dataset(id).unwrap().num_rows(), 5);

        let other = Table::new(
            Schema::flat(&[("x", DataType::Int)]).unwrap(),
            vec![Column::from_ints(0..3)],
        )
        .unwrap();
        assert!(lake.append_rows(id, other).is_err());
        assert!(lake.append_rows(DatasetId(99), table(0..1)).is_err());
    }

    #[test]
    fn delete_rows_shrinks_and_refreshes_stats() {
        let (mut lake, id) = lake_with(0..20, 8);
        let removed = lake
            .delete_rows(
                id,
                &Predicate::between("id", Value::Int(10), Value::Int(19)),
            )
            .unwrap();
        assert_eq!(removed, 10);
        let entry = lake.dataset(id).unwrap();
        assert_eq!(entry.num_rows(), 10);
        let (_, max) = entry
            .data
            .column_min_max("id", &crate::meter::Meter::new())
            .unwrap();
        assert_eq!(max, Some(Value::Int(9)), "stats must reflect the deletion");
    }

    #[test]
    fn delete_rows_no_match_is_noop_and_unknown_column_errors() {
        let (mut lake, id) = lake_with(0..5, 8);
        assert_eq!(
            lake.delete_rows(id, &Predicate::eq("id", Value::Int(77)))
                .unwrap(),
            0
        );
        assert!(lake
            .delete_rows(id, &Predicate::eq("nope", Value::Int(1)))
            .is_err());
    }

    #[test]
    fn delete_all_rows_leaves_an_empty_dataset() {
        let (mut lake, id) = lake_with(0..4, 2);
        let removed = lake.delete_rows(id, &Predicate::True).unwrap();
        assert_eq!(removed, 4);
        assert_eq!(lake.dataset(id).unwrap().num_rows(), 0);
    }

    #[test]
    fn apply_update_covers_all_four_kinds() {
        let (mut lake, id) = lake_with(0..10, 8);
        let added = lake
            .apply_update(&LakeUpdate::AddDataset {
                name: "e".into(),
                data: PartitionedTable::single(table(0..3)),
                access: AccessProfile::default(),
                lineage: None,
            })
            .unwrap();
        let new_id = added.dataset();
        assert!(matches!(added, AppliedUpdate::Added { .. }));
        assert!(lake.contains(new_id));

        let appended = lake
            .apply_update(&LakeUpdate::AppendRows {
                id,
                rows: table(10..12),
            })
            .unwrap();
        assert_eq!(appended, AppliedUpdate::Appended { id, rows: 2 });
        assert!(!appended.is_noop());

        let deleted = lake
            .apply_update(&LakeUpdate::DeleteRows {
                id,
                predicate: Predicate::eq("id", Value::Int(0)),
            })
            .unwrap();
        assert_eq!(deleted, AppliedUpdate::Deleted { id, rows: 1 });

        let dropped = lake
            .apply_update(&LakeUpdate::DropDataset { id: new_id })
            .unwrap();
        assert_eq!(dropped, AppliedUpdate::Dropped { id: new_id });
        assert!(!lake.contains(new_id));
    }

    #[test]
    fn replayed_updates_assign_equal_ids() {
        let updates = [
            LakeUpdate::AddDataset {
                name: "a".into(),
                data: PartitionedTable::single(table(0..4)),
                access: AccessProfile::default(),
                lineage: None,
            },
            LakeUpdate::AddDataset {
                name: "b".into(),
                data: PartitionedTable::single(table(0..2)),
                access: AccessProfile::default(),
                lineage: None,
            },
        ];
        assert_eq!(updates[0].target(), None);
        let run = || {
            let mut lake = DataLake::new();
            updates
                .iter()
                .map(|u| lake.apply_update(u).unwrap().dataset())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
