//! Error types for the lake substrate.

use std::fmt;

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, LakeError>;

/// Errors raised by the data lake substrate.
#[derive(Debug)]
pub enum LakeError {
    /// A column referenced by name does not exist in the schema.
    ColumnNotFound(String),
    /// A dataset id is not present in the catalog.
    DatasetNotFound(String),
    /// The value's type does not match the column's declared type.
    TypeMismatch {
        /// Column whose type was violated.
        column: String,
        /// Expected data type.
        expected: crate::datatype::DataType,
        /// Actual data type of the offending value.
        actual: crate::datatype::DataType,
    },
    /// Columns of a table have inconsistent lengths.
    LengthMismatch {
        /// Expected number of rows.
        expected: usize,
        /// Observed number of rows.
        actual: usize,
    },
    /// A schema was declared with duplicate flattened column names.
    DuplicateColumn(String),
    /// The on-disk file is corrupt or has an unexpected layout.
    Corrupt(String),
    /// Wrapper for I/O failures from the storage layer.
    Io(std::io::Error),
    /// Catch-all for invalid arguments.
    InvalidArgument(String),
}

impl fmt::Display for LakeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LakeError::ColumnNotFound(c) => write!(f, "column not found: {c}"),
            LakeError::DatasetNotFound(d) => write!(f, "dataset not found: {d}"),
            LakeError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch in column {column}: expected {expected:?}, got {actual:?}"
            ),
            LakeError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: expected {expected}, got {actual}")
            }
            LakeError::DuplicateColumn(c) => write!(f, "duplicate column: {c}"),
            LakeError::Corrupt(msg) => write!(f, "corrupt storage: {msg}"),
            LakeError::Io(e) => write!(f, "io error: {e}"),
            LakeError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for LakeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LakeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for LakeError {
    fn from(e: std::io::Error) -> Self {
        LakeError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;

    #[test]
    fn display_column_not_found() {
        let e = LakeError::ColumnNotFound("user.id".into());
        assert_eq!(e.to_string(), "column not found: user.id");
    }

    #[test]
    fn display_type_mismatch() {
        let e = LakeError::TypeMismatch {
            column: "price".into(),
            expected: DataType::Float,
            actual: DataType::Utf8,
        };
        assert!(e.to_string().contains("price"));
        assert!(e.to_string().contains("Float"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e = LakeError::from(io);
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn length_mismatch_display() {
        let e = LakeError::LengthMismatch {
            expected: 10,
            actual: 3,
        };
        assert_eq!(e.to_string(), "length mismatch: expected 10, got 3");
    }
}
