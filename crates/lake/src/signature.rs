//! MinHash signatures and LSH banding — the metadata behind the optional
//! approximate candidate tier.
//!
//! A [`MinHashSignature`] stores, for `k` independent permutations of the
//! 64-bit value-hash space, the minimum permuted hash over a set of values.
//! Signatures support the classic estimators (Jaccard as the fraction of
//! matching minima, containment via the LSH-Ensemble conversion) plus a
//! **domination-based containment estimator**
//! ([`MinHashSignature::containment_estimate_in`]) with a one-sided
//! guarantee the pipeline's approximate tier relies on: if set `A` really is
//! a subset of `B`, the estimate is *exactly* `1.0`, so a threshold gate can
//! never prune a true containment pair. Only provably-false pairs (those
//! with a coordinate where `A`'s minimum beats `B`'s — a witness element of
//! `A` that cannot be in `B`) are ever rejected.
//!
//! Two structural properties make signatures free to maintain as column
//! statistics:
//!
//! * **Union fold** — the element-wise minimum of two signatures is the
//!   signature of the union of their value sets
//!   ([`MinHashSignature::merge_with`]), so per-column signatures built in
//!   the same pass as the bloom sketch combine into partition- and
//!   table-level signatures without re-hashing a value.
//! * **Prefix** — the first `k'` of `k` permutations form a valid smaller
//!   signature ([`MinHashSignature::prefix`]), so one persisted size
//!   ([`SIGNATURE_K`]) serves any configured `k ≤ SIGNATURE_K`.
//!
//! [`LshIndex`] adds the standard bands × rows bucketing over signatures for
//! sub-quadratic candidate generation: two sets land in the same bucket of
//! some band with probability `1 − (1 − J^rows)^bands`.

use crate::row::RowHash;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Number of permutations per-column signatures are built (and persisted)
/// with. Configured signature sizes larger than this are clamped; smaller
/// sizes use a [`MinHashSignature::prefix`] of the stored signature.
pub const SIGNATURE_K: usize = 64;

/// Fold a 128-bit row/value hash to the 64-bit domain signatures permute.
#[inline]
fn fold(hash: RowHash) -> u64 {
    (hash.0 as u64) ^ ((hash.0 >> 64) as u64)
}

/// The `i`-th hash permutation: xor-multiply-shift (splitmix-derived
/// constants), distinct per permutation index.
#[inline]
fn permute(hash: u64, i: u64) -> u64 {
    let mut x = hash ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i + 1));
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A MinHash signature: the minimum hash value under `k` independent hash
/// functions (implemented as xor-multiply-shift permutations of the 128-bit
/// row hash folded to 64 bits).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinHashSignature {
    mins: Vec<u64>,
    /// Number of distinct elements the signature was built from. For merged
    /// (union-folded) signatures this is the *sum* of the inputs'
    /// cardinalities — an upper bound on the union's true cardinality, the
    /// conservative direction for the containment estimators.
    pub cardinality: usize,
}

impl MinHashSignature {
    /// Build a signature with `k` permutations from an iterator of row hashes.
    pub fn build<I: IntoIterator<Item = RowHash>>(hashes: I, k: usize) -> Self {
        assert!(k > 0, "need at least one permutation");
        let mut mins = vec![u64::MAX; k];
        let mut seen = std::collections::HashSet::new();
        for h in hashes {
            let folded = fold(h);
            seen.insert(folded);
            for (i, slot) in mins.iter_mut().enumerate() {
                let p = permute(folded, i as u64);
                if p < *slot {
                    *slot = p;
                }
            }
        }
        MinHashSignature {
            mins,
            cardinality: seen.len(),
        }
    }

    /// The empty-set signature with `k` permutations (all minima at
    /// `u64::MAX`, cardinality 0).
    pub fn empty(k: usize) -> Self {
        assert!(k > 0, "need at least one permutation");
        MinHashSignature {
            mins: vec![u64::MAX; k],
            cardinality: 0,
        }
    }

    /// Reassemble a signature from its stored parts (the storage footer
    /// codec's decode hook). `mins` must be non-empty.
    pub fn from_parts(mins: Vec<u64>, cardinality: usize) -> Self {
        assert!(!mins.is_empty(), "need at least one permutation");
        MinHashSignature { mins, cardinality }
    }

    /// The per-permutation minima (the storage footer codec's encode hook).
    pub fn mins(&self) -> &[u64] {
        &self.mins
    }

    /// Fold one **previously unseen** value hash into the signature,
    /// incrementing the cardinality. The caller is responsible for
    /// deduplication (the stats pass gates on its exact distinct set);
    /// inserting a duplicate would leave the minima correct but inflate
    /// `cardinality`.
    pub fn insert_value_hash(&mut self, hash: RowHash) {
        let folded = fold(hash);
        for (i, slot) in self.mins.iter_mut().enumerate() {
            let p = permute(folded, i as u64);
            if p < *slot {
                *slot = p;
            }
        }
        self.cardinality += 1;
    }

    /// Union-fold `other` into `self`: element-wise minimum of the minima
    /// (exactly the signature of the union of the two value sets) and the
    /// sum of the cardinalities (an upper bound on the union's cardinality).
    /// Panics when the signature sizes differ.
    pub fn merge_with(&mut self, other: &MinHashSignature) {
        assert_eq!(self.len(), other.len(), "signatures must use the same k");
        for (slot, &m) in self.mins.iter_mut().zip(&other.mins) {
            if m < *slot {
                *slot = m;
            }
        }
        self.cardinality += other.cardinality;
    }

    /// The first `k` permutations as a standalone signature (a valid MinHash
    /// signature of the same set, because each permutation is independent of
    /// the total count). `k` is clamped to `1..=len`.
    pub fn prefix(&self, k: usize) -> MinHashSignature {
        let k = k.clamp(1, self.len());
        MinHashSignature {
            mins: self.mins[..k].to_vec(),
            cardinality: self.cardinality,
        }
    }

    /// Number of permutations.
    pub fn len(&self) -> usize {
        self.mins.len()
    }

    /// Whether the signature is empty (zero elements hashed).
    pub fn is_empty(&self) -> bool {
        self.cardinality == 0
    }

    /// Estimated Jaccard similarity with another signature (fraction of
    /// matching minima).
    pub fn jaccard(&self, other: &MinHashSignature) -> f64 {
        assert_eq!(self.len(), other.len(), "signatures must use the same k");
        if self.is_empty() && other.is_empty() {
            return 1.0;
        }
        let matches = self
            .mins
            .iter()
            .zip(&other.mins)
            .filter(|(a, b)| a == b)
            .count();
        matches as f64 / self.len() as f64
    }

    /// Estimated containment of `self`'s set in `other`'s set, via the
    /// Jaccard-to-containment conversion LSH-Ensemble uses:
    /// `C ≈ J·(|A| + |B|) / (|A|·(1 + J))`.
    pub fn containment_in(&self, other: &MinHashSignature) -> f64 {
        if self.cardinality == 0 {
            return 1.0;
        }
        let j = self.jaccard(other);
        let a = self.cardinality as f64;
        let b = other.cardinality as f64;
        (j * (a + b) / (a * (1.0 + j))).clamp(0.0, 1.0)
    }

    /// Domination-based containment estimate of `self`'s set `A` in
    /// `other`'s set `B`, with a one-sided guarantee: **if `A ⊆ B` the
    /// result is exactly `1.0`** (so thresholding at any value ≤ 1 never
    /// rejects a true containment pair).
    ///
    /// A coordinate where `A`'s minimum is *strictly below* `B`'s proves the
    /// element attaining it is in `A` but not `B` — a containment
    /// counterexample. The fraction `f` of such coordinates estimates
    /// `|A \ B| / |A ∪ B|`; solving with `|A ∪ B| = |A \ B| + |B|` gives
    /// `|A \ B| ≈ f·|B| / (1 − f)` and the estimate `1 − |A \ B| / |A|`,
    /// clamped to `[0, 1]`. Panics when the signature sizes differ.
    pub fn containment_estimate_in(&self, other: &MinHashSignature) -> f64 {
        assert_eq!(self.len(), other.len(), "signatures must use the same k");
        if self.cardinality == 0 {
            return 1.0;
        }
        let dominated = self
            .mins
            .iter()
            .zip(&other.mins)
            .filter(|(a, b)| a < b)
            .count();
        if dominated == 0 {
            return 1.0;
        }
        let f = dominated as f64 / self.len() as f64;
        if f >= 1.0 {
            return 0.0;
        }
        let a = self.cardinality as f64;
        let b = other.cardinality as f64;
        let a_minus_b = f * b / (1.0 - f);
        (1.0 - a_minus_b / a).clamp(0.0, 1.0)
    }

    /// One bucket hash per band: band `b` hashes minima
    /// `[b·rows, (b+1)·rows)` together (FNV-style fold seeded by the band
    /// index). Two sets whose signatures agree on every row of some band get
    /// equal hashes for that band. Requires `bands·rows ≤ len`.
    pub fn band_hashes(&self, bands: usize, rows: usize) -> Vec<u64> {
        assert!(bands > 0 && rows > 0, "bands and rows must be positive");
        assert!(
            bands * rows <= self.len(),
            "bands*rows ({}) exceeds signature size ({})",
            bands * rows,
            self.len()
        );
        (0..bands)
            .map(|b| {
                let mut h =
                    0xcbf2_9ce4_8422_2325u64 ^ (b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                for &m in &self.mins[b * rows..(b + 1) * rows] {
                    h = (h ^ m).wrapping_mul(0x0000_0100_0000_01B3);
                }
                h
            })
            .collect()
    }
}

/// An LSH-banded index over MinHash signatures: `bands` buckets maps, each
/// keyed by the hash of `rows` consecutive signature minima. Two inserted
/// sets become candidates of each other iff they collide in at least one
/// band — probability `1 − (1 − J^rows)^bands` for Jaccard similarity `J`.
#[derive(Debug, Clone)]
pub struct LshIndex {
    bands: usize,
    rows: usize,
    buckets: Vec<HashMap<u64, Vec<u64>>>,
}

impl LshIndex {
    /// An empty index with the given banding scheme.
    pub fn new(bands: usize, rows: usize) -> Self {
        assert!(bands > 0 && rows > 0, "bands and rows must be positive");
        LshIndex {
            bands,
            rows,
            buckets: vec![HashMap::new(); bands],
        }
    }

    /// The banding scheme as `(bands, rows)`.
    pub fn scheme(&self) -> (usize, usize) {
        (self.bands, self.rows)
    }

    /// Insert `id` under its signature's band hashes. The signature must
    /// have at least `bands·rows` permutations.
    pub fn insert(&mut self, id: u64, signature: &MinHashSignature) {
        for (band, h) in signature
            .band_hashes(self.bands, self.rows)
            .into_iter()
            .enumerate()
        {
            self.buckets[band].entry(h).or_default().push(id);
        }
    }

    /// Every inserted id sharing at least one band bucket with `signature`,
    /// deduplicated and sorted (deterministic across insert orders).
    pub fn candidates(&self, signature: &MinHashSignature) -> Vec<u64> {
        let mut out: Vec<u64> = signature
            .band_hashes(self.bands, self.rows)
            .into_iter()
            .enumerate()
            .filter_map(|(band, h)| self.buckets[band].get(&h))
            .flatten()
            .copied()
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(vals: impl IntoIterator<Item = u128>, k: usize) -> MinHashSignature {
        MinHashSignature::build(vals.into_iter().map(RowHash), k)
    }

    #[test]
    fn incremental_insert_matches_batch_build() {
        let values: Vec<u128> = (0..200).map(|i| i * 7 + 3).collect();
        let batch = sig(values.clone(), SIGNATURE_K);
        let mut incremental = MinHashSignature::empty(SIGNATURE_K);
        for &v in &values {
            incremental.insert_value_hash(RowHash(v));
        }
        assert_eq!(batch, incremental);
    }

    #[test]
    fn merge_is_the_union_signature() {
        let a: Vec<u128> = (0..100).collect();
        let b: Vec<u128> = (50..180).collect();
        let mut merged = sig(a.clone(), 32);
        merged.merge_with(&sig(b.clone(), 32));
        let union = sig(a.into_iter().chain(b), 32);
        assert_eq!(merged.mins(), union.mins(), "minima fold exactly");
        assert_eq!(merged.cardinality, 230, "cardinality sums (upper bound)");
    }

    #[test]
    fn prefix_is_the_smaller_signature() {
        let values: Vec<u128> = (0..150).collect();
        let big = sig(values.clone(), 64);
        let small = sig(values, 16);
        assert_eq!(big.prefix(16), small);
        assert_eq!(big.prefix(0).len(), 1, "clamped to at least one");
        assert_eq!(big.prefix(99).len(), 64, "clamped to len");
    }

    #[test]
    fn true_containment_estimates_exactly_one() {
        for (child, parent) in [
            ((0..50u128), (0..500u128)),
            ((10..11), (0..1000)),
            ((0..300), (0..300)),
        ] {
            let c = sig(child, SIGNATURE_K);
            let p = sig(parent, SIGNATURE_K);
            assert_eq!(
                c.containment_estimate_in(&p),
                1.0,
                "a subset's minima never dominate the superset's"
            );
        }
    }

    #[test]
    fn empty_child_estimates_one_and_disjoint_sets_estimate_low() {
        let empty = MinHashSignature::empty(SIGNATURE_K);
        let p = sig(0..100u128, SIGNATURE_K);
        assert_eq!(empty.containment_estimate_in(&p), 1.0);
        let c = sig(10_000..10_200u128, SIGNATURE_K);
        let est = c.containment_estimate_in(&p);
        assert!(est < 0.35, "disjoint sets should estimate low, got {est}");
        // Non-empty child vs empty parent: every coordinate dominates.
        assert_eq!(c.containment_estimate_in(&empty), 0.0);
    }

    #[test]
    fn partial_overlap_estimate_is_intermediate() {
        let c = sig(0..200u128, 64);
        let p = sig(100..900u128, 64);
        let est = c.containment_estimate_in(&p);
        assert!(
            est > 0.1 && est < 0.95,
            "true containment 0.5, estimate {est}"
        );
    }

    #[test]
    fn from_parts_round_trips() {
        let s = sig(0..40u128, 16);
        let back = MinHashSignature::from_parts(s.mins().to_vec(), s.cardinality);
        assert_eq!(s, back);
    }

    #[test]
    fn band_hashes_are_deterministic_and_band_distinct() {
        let s = sig(0..80u128, 64);
        let h1 = s.band_hashes(8, 4);
        let h2 = s.band_hashes(8, 4);
        assert_eq!(h1, h2);
        assert_eq!(h1.len(), 8);
        // Different bands over the same minima should (essentially always)
        // hash differently thanks to the band-index seed.
        let constant = MinHashSignature::from_parts(vec![7u64; 64], 1);
        let hc = constant.band_hashes(4, 4);
        assert!(hc.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    #[should_panic(expected = "exceeds signature size")]
    fn oversized_banding_panics() {
        sig(0..10u128, 8).band_hashes(4, 4);
    }

    #[test]
    fn lsh_index_finds_similar_sets() {
        let mut index = LshIndex::new(8, 4);
        let a = sig(0..300u128, 64);
        let near = sig(0..290u128, 64); // Jaccard ~0.97
        let far = sig(50_000..50_300u128, 64); // disjoint
        index.insert(1, &a);
        index.insert(2, &near);
        index.insert(3, &far);
        let cands = index.candidates(&a);
        assert!(cands.contains(&1), "identical set always collides");
        assert!(
            cands.contains(&2),
            "J≈0.97 collides with overwhelming probability at 8x4"
        );
        assert!(!cands.contains(&3), "disjoint set shares no band");
        assert_eq!(index.scheme(), (8, 4));
    }
}
