//! Logical data types supported by the lake substrate.
//!
//! Enterprise data lakes in the R2D2 paper hold tabular datasets (digital
//! transactions, clickstream event logs) whose leaf columns are integers,
//! floating point numbers, strings, booleans and timestamps. The pipeline
//! treats timestamps and identifiers specially (they are good sampling keys
//! for Content-Level Pruning), so the type is carried explicitly.

use serde::{Deserialize, Serialize};

/// Logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Absence of a value; only used as the type of an all-null column.
    Null,
    /// Boolean column.
    Bool,
    /// 64-bit signed integer column.
    Int,
    /// 64-bit IEEE-754 floating point column.
    Float,
    /// UTF-8 string column.
    Utf8,
    /// Timestamp expressed as microseconds since the Unix epoch.
    Timestamp,
}

impl DataType {
    /// Returns `true` for types on which min/max pruning is meaningful.
    ///
    /// The paper's Min-Max Pruning step (§4.2) compares the minimum and
    /// maximum values of *numerical* columns; we additionally allow
    /// timestamps (stored as integers in partition metadata, exactly like
    /// parquet does) and strings (parquet also stores min/max for byte
    /// arrays). Booleans and nulls carry no useful range information.
    pub fn supports_min_max(&self) -> bool {
        matches!(
            self,
            DataType::Int | DataType::Float | DataType::Utf8 | DataType::Timestamp
        )
    }

    /// Returns `true` if the type is numeric (int, float or timestamp).
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int | DataType::Float | DataType::Timestamp)
    }

    /// A short lowercase name used in schema dumps and the storage footer.
    pub fn name(&self) -> &'static str {
        match self {
            DataType::Null => "null",
            DataType::Bool => "bool",
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Utf8 => "utf8",
            DataType::Timestamp => "timestamp",
        }
    }

    /// Parse a type from its [`name`](Self::name).
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "null" => DataType::Null,
            "bool" => DataType::Bool,
            "int" => DataType::Int,
            "float" => DataType::Float,
            "utf8" => DataType::Utf8,
            "timestamp" => DataType::Timestamp,
            _ => return None,
        })
    }

    /// Stable one-byte tag used by the binary storage format.
    pub(crate) fn tag(&self) -> u8 {
        match self {
            DataType::Null => 0,
            DataType::Bool => 1,
            DataType::Int => 2,
            DataType::Float => 3,
            DataType::Utf8 => 4,
            DataType::Timestamp => 5,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => DataType::Null,
            1 => DataType::Bool,
            2 => DataType::Int,
            3 => DataType::Float,
            4 => DataType::Utf8,
            5 => DataType::Timestamp,
            _ => return None,
        })
    }
}

impl std::fmt::Display for DataType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [DataType; 6] = [
        DataType::Null,
        DataType::Bool,
        DataType::Int,
        DataType::Float,
        DataType::Utf8,
        DataType::Timestamp,
    ];

    #[test]
    fn name_round_trips() {
        for dt in ALL {
            assert_eq!(DataType::from_name(dt.name()), Some(dt));
        }
        assert_eq!(DataType::from_name("decimal"), None);
    }

    #[test]
    fn tag_round_trips() {
        for dt in ALL {
            assert_eq!(DataType::from_tag(dt.tag()), Some(dt));
        }
        assert_eq!(DataType::from_tag(200), None);
    }

    #[test]
    fn min_max_support() {
        assert!(DataType::Int.supports_min_max());
        assert!(DataType::Float.supports_min_max());
        assert!(DataType::Timestamp.supports_min_max());
        assert!(DataType::Utf8.supports_min_max());
        assert!(!DataType::Bool.supports_min_max());
        assert!(!DataType::Null.supports_min_max());
    }

    #[test]
    fn numeric_classification() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Timestamp.is_numeric());
        assert!(!DataType::Utf8.is_numeric());
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(DataType::Timestamp.to_string(), "timestamp");
    }
}
