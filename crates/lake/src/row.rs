//! Rows and row hashing.
//!
//! R2D2 defines containment over *row tuples* (footnote 6 of the paper makes
//! the point that column-wise set containment is not enough: the tuples
//! `(June, 20), (May, 12)` are not contained in `(June, 12), (May, 20)` even
//! though every column is). To compare row tuples across tables cheaply we
//! hash the canonicalised value tuple of a row — projected onto a chosen
//! column subset in a fixed (lexicographic by column name) order — into a
//! 128-bit [`RowHash`]. The brute-force ground-truth builder also uses these
//! hashes, mirroring the paper's "compare hashes of all possible row pairs".

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::hash::{Hash, Hasher};

/// A single row: an owned tuple of values, positionally aligned with a
/// table's schema.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Construct a row from values.
    pub fn new(values: Vec<Value>) -> Self {
        Row { values }
    }

    /// The values of the row.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of cells in the row.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the row has no cells.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at position `i`.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// Consume the row, returning its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Approximate byte size of the row (sum of its values' sizes).
    pub fn byte_size(&self) -> usize {
        self.values.iter().map(Value::byte_size).sum()
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::new(values)
    }
}

/// A 128-bit content hash of a row tuple (projected onto some column subset).
///
/// Two rows with equal hashes are treated as equal rows by the containment
/// machinery; 128 bits keeps the collision probability negligible even for
/// billions of rows (birthday bound ≈ 2^-64 per pair).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RowHash(pub u128);

/// Map hasher for [`RowHash`] keys: the key *is already* a uniform 128-bit
/// content hash, so re-scrambling it through SipHash on every map operation
/// (the `std` default) is pure overhead — and it shows up on hot paths that
/// insert or probe millions of hashes (multiset builds, CLP anti-joins,
/// join-cache restore). Folding the two halves with one multiply keeps both
/// the low bits (bucket index) and high bits (hashbrown control byte)
/// well-mixed at a fraction of the cost.
///
/// Only sound for keys that are themselves hashes; the generic `write` path
/// exists to satisfy the trait but nothing in this crate routes other key
/// types through it.
#[derive(Debug, Default, Clone)]
pub struct RowHashMapHasher(u64);

impl Hasher for RowHashMapHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(MULT);
        }
    }

    fn write_u128(&mut self, v: u128) {
        let folded = (v as u64) ^ ((v >> 64) as u64).rotate_left(31);
        let mixed = folded.wrapping_mul(SEED0);
        self.0 = mixed ^ (mixed >> 29);
    }
}

/// A `HashMap` keyed by [`RowHash`] with the cheap fold-the-key hasher.
///
/// Iteration order still depends on the map, so canonical encodings (e.g.
/// [`crate::snapshot`]'s join-cache section) must keep sorting entries
/// before writing — they already do.
pub type RowHashMap<V> =
    std::collections::HashMap<RowHash, V, std::hash::BuildHasherDefault<RowHashMapHasher>>;

/// A simple, fast, deterministic 128-bit hasher (two independent FxHash-style
/// 64-bit lanes seeded differently). Deterministic across runs and platforms
/// so that stored fingerprints remain valid.
#[derive(Debug, Clone)]
pub struct RowHasher {
    lane0: u64,
    lane1: u64,
}

const SEED0: u64 = 0x9e37_79b9_7f4a_7c15;
const SEED1: u64 = 0xc2b2_ae3d_27d4_eb4f;
const MULT: u64 = 0x100_0000_01b3;

impl Default for RowHasher {
    fn default() -> Self {
        RowHasher {
            lane0: SEED0,
            lane1: SEED1,
        }
    }
}

impl RowHasher {
    /// Create a fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish and produce the 128-bit hash.
    pub fn finish128(&self) -> RowHash {
        // Final avalanche (splitmix-style) on each lane.
        fn mix(mut x: u64) -> u64 {
            x ^= x >> 30;
            x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x ^= x >> 27;
            x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^ (x >> 31)
        }
        RowHash(((mix(self.lane0) as u128) << 64) | mix(self.lane1) as u128)
    }
}

impl Hasher for RowHasher {
    fn finish(&self) -> u64 {
        self.finish128().0 as u64
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.lane0 = (self.lane0 ^ b as u64).wrapping_mul(MULT);
            self.lane1 = (self.lane1 ^ b as u64).wrapping_mul(MULT).rotate_left(17);
        }
    }

    fn write_u8(&mut self, i: u8) {
        self.write(&[i]);
    }
    fn write_u64(&mut self, i: u64) {
        self.write(&i.to_le_bytes());
    }
    fn write_i64(&mut self, i: i64) {
        self.write(&i.to_le_bytes());
    }
}

/// Hash a single value into a [`RowHash`].
///
/// This is the canonical per-cell hash: bloom sketches are built from it
/// (`ColumnStats::compute`), CLP probes against those sketches with it, and
/// [`combine_hashes`] folds per-cell hashes into row-tuple hashes. Hashing a
/// value once and combining is exactly equivalent to hashing the whole tuple
/// — which is what lets dictionary-style dedup hash each distinct string
/// once per column instead of once per row.
pub fn hash_single(value: &Value) -> RowHash {
    let mut h = RowHasher::new();
    value.hash(&mut h);
    // Terminator after the cell so that ("ab", "c") != ("a", "bc") once
    // hashes are combined (each cell's bytes end at a fixed boundary).
    h.write_u8(0x1f);
    h.finish128()
}

/// Fold per-cell hashes (in tuple order) into one row hash.
///
/// Order-sensitive: `combine([a, b]) != combine([b, a])`. A single hash
/// combines to itself, so a one-column row tuple hashes identically to
/// [`hash_single`] of its cell — the invariant that keeps sketch builds and
/// sketch probes interchangeable between the tuple and single-value APIs.
pub fn combine_hashes<I: IntoIterator<Item = RowHash>>(hashes: I) -> RowHash {
    let mut iter = hashes.into_iter();
    let Some(first) = iter.next() else {
        return RowHasher::new().finish128();
    };
    let mut acc = first;
    for h in iter {
        let mut mixer = RowHasher::new();
        mixer.write(&acc.0.to_le_bytes());
        mixer.write(&h.0.to_le_bytes());
        acc = mixer.finish128();
    }
    acc
}

/// Hash a tuple of values (in the given order) into a [`RowHash`].
///
/// Defined as [`combine_hashes`] over [`hash_single`] of each cell, so
/// callers may precompute (and reuse) per-cell hashes and combine them
/// without changing the result.
pub fn hash_values(values: &[&Value]) -> RowHash {
    combine_hashes(values.iter().map(|v| hash_single(v)))
}

/// Hash an owned row (all of its cells, in order).
pub fn hash_row(row: &Row) -> RowHash {
    let refs: Vec<&Value> = row.values().iter().collect();
    hash_values(&refs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_rows_hash_equal() {
        let a = Row::new(vec![Value::Int(1), Value::Str("x".into())]);
        let b = Row::new(vec![Value::Int(1), Value::Str("x".into())]);
        assert_eq!(hash_row(&a), hash_row(&b));
    }

    #[test]
    fn different_rows_hash_differently() {
        let a = Row::new(vec![Value::Int(1), Value::Str("x".into())]);
        let b = Row::new(vec![Value::Int(2), Value::Str("x".into())]);
        let c = Row::new(vec![Value::Str("x".into()), Value::Int(1)]);
        assert_ne!(hash_row(&a), hash_row(&b));
        assert_ne!(hash_row(&a), hash_row(&c), "order must matter");
    }

    #[test]
    fn cell_boundaries_matter() {
        let a = Row::new(vec![Value::Str("ab".into()), Value::Str("c".into())]);
        let b = Row::new(vec![Value::Str("a".into()), Value::Str("bc".into())]);
        assert_ne!(hash_row(&a), hash_row(&b));
    }

    #[test]
    fn int_float_equivalence_carries_to_hash() {
        let a = Row::new(vec![Value::Int(5)]);
        let b = Row::new(vec![Value::Float(5.0)]);
        assert_eq!(hash_row(&a), hash_row(&b));
    }

    #[test]
    fn hash_is_deterministic_across_hashers() {
        let row = Row::new(vec![Value::Int(123), Value::Str("abc".into()), Value::Null]);
        assert_eq!(hash_row(&row), hash_row(&row));
    }

    #[test]
    fn row_accessors() {
        let r = Row::new(vec![Value::Int(1), Value::Null]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.get(1), Some(&Value::Null));
        assert_eq!(r.get(5), None);
        assert_eq!(r.byte_size(), 9);
        assert_eq!(r.clone().into_values().len(), 2);
    }

    #[test]
    fn empty_tuple_hash_is_stable() {
        assert_eq!(hash_values(&[]), hash_values(&[]));
    }

    #[test]
    fn single_value_tuple_equals_hash_single() {
        for v in [
            Value::Int(42),
            Value::Str("abc".into()),
            Value::Null,
            Value::Float(1.5),
        ] {
            assert_eq!(hash_values(&[&v]), hash_single(&v));
        }
    }

    #[test]
    fn combining_precomputed_hashes_matches_hash_values() {
        let vals = [
            Value::Int(1),
            Value::Str("x".into()),
            Value::Null,
            Value::Float(2.5),
        ];
        let refs: Vec<&Value> = vals.iter().collect();
        let combined = combine_hashes(vals.iter().map(hash_single));
        assert_eq!(combined, hash_values(&refs));
        let swapped = combine_hashes([hash_single(&vals[1]), hash_single(&vals[0])]);
        assert_ne!(
            swapped,
            combine_hashes([hash_single(&vals[0]), hash_single(&vals[1])])
        );
    }
}
