//! Column statistics: min / max / null count / distinct estimates / quantiles.
//!
//! Min-Max Pruning (Algorithm 2 of the paper) relies on the columnar minimum
//! and maximum that parquet keeps in partition-level metadata; §1.2 also uses
//! column quantiles (at fractions 0, 0.5, 0.8, 0.95, 1) to show that equal
//! schemas do not imply similar content. Both are provided here and are
//! computed once when a table or partition is built, then served from
//! metadata without touching rows — the meter in [`crate::meter`] verifies
//! that pruning stages really only read metadata.

use crate::signature::{MinHashSignature, SIGNATURE_K};
use crate::sketch::ColumnSketch;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// Per-column statistics kept as table / partition metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnStats {
    /// Minimum non-null value, if any non-null value exists.
    pub min: Option<Value>,
    /// Maximum non-null value, if any non-null value exists.
    pub max: Option<Value>,
    /// Number of NULL cells.
    pub null_count: usize,
    /// Total number of cells (rows).
    pub row_count: usize,
    /// Exact number of distinct non-null values (the substrate is in-memory,
    /// so exact counting is affordable; a real lake would store an estimate).
    pub distinct_count: usize,
    /// Bloom sketch over the hashes of the non-null values (no false
    /// negatives), built in the same pass that counts distinct values.
    pub sketch: ColumnSketch,
    /// MinHash signature ([`SIGNATURE_K`] permutations) over the distinct
    /// non-null value hashes, built in the same pass as the sketch. Folds
    /// into partition- and table-level signatures via
    /// [`MinHashSignature::merge_with`] — the metadata behind the optional
    /// approximate candidate tier.
    pub signature: MinHashSignature,
}

impl ColumnStats {
    /// Compute statistics over a slice of values.
    pub fn compute(values: &[Value]) -> Self {
        let mut min: Option<Value> = None;
        let mut max: Option<Value> = None;
        let mut null_count = 0usize;
        let mut distinct = std::collections::HashSet::new();
        let mut sketch = ColumnSketch::new();
        let mut signature = MinHashSignature::empty(SIGNATURE_K);
        for v in values {
            if v.is_null() {
                null_count += 1;
                continue;
            }
            let hash = crate::row::hash_values(&[v]);
            // Sketch and signature only change on first sight of a value, so
            // gating them on the exact distinct set skips the (idempotent)
            // re-inserts and keeps the signature's cardinality exact.
            if distinct.insert(hash) {
                sketch.insert(hash);
                signature.insert_value_hash(hash);
            }
            min = Some(match min.take() {
                None => v.clone(),
                Some(m) => {
                    if v.total_cmp(&m) == std::cmp::Ordering::Less {
                        v.clone()
                    } else {
                        m
                    }
                }
            });
            max = Some(match max.take() {
                None => v.clone(),
                Some(m) => {
                    if v.total_cmp(&m) == std::cmp::Ordering::Greater {
                        v.clone()
                    } else {
                        m
                    }
                }
            });
        }
        ColumnStats {
            min,
            max,
            null_count,
            row_count: values.len(),
            distinct_count: distinct.len(),
            sketch,
            signature,
        }
    }

    /// Merge statistics of two chunks of the same column (used when merging
    /// partition metadata into table-level metadata).
    pub fn merge(&self, other: &ColumnStats) -> ColumnStats {
        let pick_min = |a: &Option<Value>, b: &Option<Value>| match (a, b) {
            (None, x) | (x, None) => x.clone(),
            (Some(x), Some(y)) => Some(if x.total_cmp(y) == std::cmp::Ordering::Less {
                x.clone()
            } else {
                y.clone()
            }),
        };
        let pick_max = |a: &Option<Value>, b: &Option<Value>| match (a, b) {
            (None, x) | (x, None) => x.clone(),
            (Some(x), Some(y)) => Some(if x.total_cmp(y) == std::cmp::Ordering::Greater {
                x.clone()
            } else {
                y.clone()
            }),
        };
        let mut sketch = self.sketch.clone();
        sketch.union_with(&other.sketch);
        let mut signature = self.signature.clone();
        signature.merge_with(&other.signature);
        ColumnStats {
            min: pick_min(&self.min, &other.min),
            max: pick_max(&self.max, &other.max),
            null_count: self.null_count + other.null_count,
            row_count: self.row_count + other.row_count,
            // Distinct counts are not mergeable exactly without the values;
            // the merged figure is an upper bound, which is what metadata
            // stores in real systems too. (The sketch, by contrast, merges
            // exactly: the OR of two bloom filters is the bloom filter of
            // the union.)
            distinct_count: self.distinct_count + other.distinct_count,
            sketch,
            signature,
        }
    }

    /// Returns `true` when the min-max range of `child` could possibly be
    /// contained in the range of `parent` — the necessary condition checked
    /// by Min-Max Pruning. When either side lacks statistics (all-null
    /// column) the check is inconclusive and returns `true` (no pruning).
    pub fn range_could_be_contained(child: &ColumnStats, parent: &ColumnStats) -> bool {
        match (&child.min, &child.max, &parent.min, &parent.max) {
            (Some(cmin), Some(cmax), Some(pmin), Some(pmax)) => {
                cmin.total_cmp(pmin) != std::cmp::Ordering::Less
                    && cmax.total_cmp(pmax) != std::cmp::Ordering::Greater
            }
            _ => true,
        }
    }
}

/// Quantiles of a numeric column at the fractions used in §1.2 of the paper
/// (0, 0.5, 0.8, 0.95, 1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Quantiles {
    /// The quantile fractions, in ascending order.
    pub fractions: Vec<f64>,
    /// The quantile values (same length as `fractions`); `None` when the
    /// column has no non-null numeric values.
    pub values: Vec<Option<f64>>,
}

/// Standard fractions from §1.2 of the paper.
pub const PAPER_QUANTILE_FRACTIONS: [f64; 5] = [0.0, 0.5, 0.8, 0.95, 1.0];

/// Compute quantiles of the numeric interpretation of a column at the given
/// fractions (nearest-rank method). Non-numeric and NULL cells are skipped.
pub fn numeric_quantiles(values: &[Value], fractions: &[f64]) -> Quantiles {
    let mut nums: Vec<f64> = values.iter().filter_map(Value::as_f64).collect();
    nums.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let values = fractions
        .iter()
        .map(|&q| {
            if nums.is_empty() {
                None
            } else {
                let idx = ((q * (nums.len() - 1) as f64).round() as usize).min(nums.len() - 1);
                Some(nums[idx])
            }
        })
        .collect();
    Quantiles {
        fractions: fractions.to_vec(),
        values,
    }
}

/// Normalised L1 distance between two quantile vectors, the measure used in
/// §1.2 ("over 20% of table pairs have normalized quantiles that are at least
/// 50% different"). Returns `None` when either side has no numeric values.
pub fn normalized_quantile_distance(a: &Quantiles, b: &Quantiles) -> Option<f64> {
    if a.values.len() != b.values.len() {
        return None;
    }
    let mut total = 0.0;
    let mut n = 0usize;
    for (x, y) in a.values.iter().zip(&b.values) {
        match (x, y) {
            (Some(x), Some(y)) => {
                let denom = x.abs().max(y.abs()).max(1e-12);
                total += (x - y).abs() / denom;
                n += 1;
            }
            _ => return None,
        }
    }
    if n == 0 {
        None
    } else {
        Some(total / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|v| Value::Int(*v)).collect()
    }

    #[test]
    fn compute_basic_stats() {
        let vals = vec![
            Value::Int(5),
            Value::Null,
            Value::Int(-2),
            Value::Int(5),
            Value::Int(9),
        ];
        let s = ColumnStats::compute(&vals);
        assert_eq!(s.min, Some(Value::Int(-2)));
        assert_eq!(s.max, Some(Value::Int(9)));
        assert_eq!(s.null_count, 1);
        assert_eq!(s.row_count, 5);
        assert_eq!(s.distinct_count, 3);
    }

    #[test]
    fn all_null_column_has_no_range() {
        let s = ColumnStats::compute(&[Value::Null, Value::Null]);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
        assert_eq!(s.null_count, 2);
    }

    #[test]
    fn compute_builds_the_value_sketch() {
        let s = ColumnStats::compute(&ints(&[1, 2, 3]));
        for v in [1i64, 2, 3] {
            assert!(s
                .sketch
                .contains(crate::row::hash_values(&[&Value::Int(v)])));
        }
        assert!(s.sketch.min_distinct() >= 1);
        assert!(s.sketch.min_distinct() <= 3, "lower bound stays sound");
        // Nulls are not inserted.
        let empty = ColumnStats::compute(&[Value::Null, Value::Null]);
        assert!(empty.sketch.is_empty());
    }

    #[test]
    fn merge_unions_sketches() {
        let a = ColumnStats::compute(&ints(&[1, 2]));
        let b = ColumnStats::compute(&ints(&[3]));
        let m = a.merge(&b);
        let full = ColumnStats::compute(&ints(&[1, 2, 3]));
        assert_eq!(m.sketch, full.sketch, "merged sketch == single-pass sketch");
    }

    #[test]
    fn compute_builds_the_signature_over_distinct_values() {
        let s = ColumnStats::compute(&ints(&[1, 2, 3, 2, 1]));
        let direct = MinHashSignature::build(
            [1i64, 2, 3]
                .iter()
                .map(|v| crate::row::hash_values(&[&Value::Int(*v)])),
            SIGNATURE_K,
        );
        assert_eq!(s.signature, direct, "duplicates do not perturb it");
        assert_eq!(s.signature.cardinality, 3);
        let empty = ColumnStats::compute(&[Value::Null]);
        assert!(empty.signature.is_empty(), "nulls are not inserted");
    }

    #[test]
    fn merge_folds_signatures_into_the_union_signature() {
        let a = ColumnStats::compute(&ints(&[1, 2]));
        let b = ColumnStats::compute(&ints(&[3]));
        let m = a.merge(&b);
        let full = ColumnStats::compute(&ints(&[1, 2, 3]));
        assert_eq!(
            m.signature.mins(),
            full.signature.mins(),
            "merged minima == single-pass minima"
        );
        assert_eq!(m.signature.cardinality, 3);
    }

    #[test]
    fn merge_combines_ranges() {
        let a = ColumnStats::compute(&ints(&[1, 2, 3]));
        let b = ColumnStats::compute(&ints(&[-5, 10]));
        let m = a.merge(&b);
        assert_eq!(m.min, Some(Value::Int(-5)));
        assert_eq!(m.max, Some(Value::Int(10)));
        assert_eq!(m.row_count, 5);
    }

    #[test]
    fn merge_with_empty_side() {
        let a = ColumnStats::compute(&ints(&[1, 2]));
        let e = ColumnStats::compute(&[Value::Null]);
        let m = a.merge(&e);
        assert_eq!(m.min, Some(Value::Int(1)));
        assert_eq!(m.null_count, 1);
    }

    #[test]
    fn range_containment_check() {
        let child = ColumnStats::compute(&ints(&[2, 3, 4]));
        let parent = ColumnStats::compute(&ints(&[0, 10]));
        let narrow = ColumnStats::compute(&ints(&[3]));
        assert!(ColumnStats::range_could_be_contained(&child, &parent));
        assert!(!ColumnStats::range_could_be_contained(&parent, &child));
        assert!(ColumnStats::range_could_be_contained(&narrow, &child));
    }

    #[test]
    fn range_check_inconclusive_when_stats_missing() {
        let child = ColumnStats::compute(&[Value::Null]);
        let parent = ColumnStats::compute(&ints(&[1, 2]));
        assert!(ColumnStats::range_could_be_contained(&child, &parent));
        assert!(ColumnStats::range_could_be_contained(&parent, &child));
    }

    #[test]
    fn string_min_max() {
        let vals = vec![
            Value::Str("pear".into()),
            Value::Str("apple".into()),
            Value::Str("zebra".into()),
        ];
        let s = ColumnStats::compute(&vals);
        assert_eq!(s.min, Some(Value::Str("apple".into())));
        assert_eq!(s.max, Some(Value::Str("zebra".into())));
    }

    #[test]
    fn quantiles_nearest_rank() {
        let q = numeric_quantiles(
            &ints(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10]),
            &PAPER_QUANTILE_FRACTIONS,
        );
        assert_eq!(q.values[0], Some(1.0));
        assert_eq!(q.values[4], Some(10.0));
        assert_eq!(q.values[1], Some(6.0)); // round(0.5*9)=5 -> value 6
    }

    #[test]
    fn quantiles_empty_column() {
        let q = numeric_quantiles(&[Value::Str("x".into())], &PAPER_QUANTILE_FRACTIONS);
        assert!(q.values.iter().all(Option::is_none));
    }

    #[test]
    fn quantile_distance_zero_for_identical() {
        let a = numeric_quantiles(&ints(&[1, 2, 3]), &PAPER_QUANTILE_FRACTIONS);
        let d = normalized_quantile_distance(&a, &a).unwrap();
        assert!(d.abs() < 1e-12);
    }

    #[test]
    fn quantile_distance_large_for_shifted() {
        let a = numeric_quantiles(&ints(&[1, 2, 3]), &PAPER_QUANTILE_FRACTIONS);
        let b = numeric_quantiles(&ints(&[100, 200, 300]), &PAPER_QUANTILE_FRACTIONS);
        let d = normalized_quantile_distance(&a, &b).unwrap();
        assert!(d > 0.5);
    }

    #[test]
    fn quantile_distance_none_when_missing() {
        let a = numeric_quantiles(&ints(&[1]), &PAPER_QUANTILE_FRACTIONS);
        let b = numeric_quantiles(&[Value::Str("x".into())], &PAPER_QUANTILE_FRACTIONS);
        assert!(normalized_quantile_distance(&a, &b).is_none());
    }
}
