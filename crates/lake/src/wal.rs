//! Write-ahead log framing: length + checksum framed records in bounded,
//! headered segments on disk.
//!
//! The enterprise lakes of the paper persist in ADLS-style storage; a
//! long-lived containment service must survive a process restart without
//! paying a full re-bootstrap. The snapshot + WAL design splits durability
//! into two layers: a *snapshot* captures the whole session state at one
//! point in time, and a *write-ahead log* records every mutation applied
//! since, so restart = load snapshot + replay tail. This module provides the
//! log layer only — a payload-agnostic, append-only record file with
//! per-record corruption detection. What goes *into* a record (update
//! batches, access-profile refreshes) is the caller's business
//! (`r2d2_core`'s session persistence).
//!
//! A generation's log is a sequence of **segments**: bounded files that the
//! owner rotates when the active one exceeds its byte budget, so one
//! long-lived generation never grows a single unbounded file and compaction
//! can drop whole segments once a newer snapshot covers them. Each segment
//! header names the snapshot generation it extends and its position in that
//! generation's segment sequence, so a reader can verify it is stitching the
//! right files back together in the right order.
//!
//! On-disk layout of one segment (all integers little-endian):
//!
//! ```text
//! magic "R2D2WAL\0" | version u32 | generation u64 | segment u32
//! per record: payload_len u32 | checksum(payload) u64 | payload bytes
//! ```
//!
//! A crash can leave a partially written record at the end of a segment;
//! [`read_records`] detects it (short header, short payload, or checksum
//! mismatch) and **cleanly drops the tail from the first bad record on**,
//! returning every intact record before it. A record that was never fully
//! written was, by the write-ahead contract, never applied — dropping it
//! loses nothing that was acknowledged.

use crate::error::{LakeError, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// Leading magic of a WAL segment file.
pub const WAL_MAGIC: &[u8; 8] = b"R2D2WAL\0";

/// Current WAL format version. Version bumps track framing or record-payload
/// changes so a log written by an older build fails with an explicit version
/// error instead of a misleading payload-decode error: version 3 rode along
/// with the lazy-storage work (tables inside update records became
/// `R2D2LAKE` v4, `OpCounts` grew page/string counters, and the 4-lane
/// word-parallel checksum below replaced byte-wise FNV-1a); version 4
/// followed the approximate-tier work (`R2D2LAKE` v5 tables, the
/// `approx_probes`/`approx_prunes` counters); version 5 introduces
/// **segments** — the file header grew a `generation u64 | segment u32`
/// pair naming the snapshot generation this segment extends and its index
/// in that generation's segment sequence, so v4 files (and v4 readers) are
/// rejected with an explicit error rather than misparsed.
pub const WAL_VERSION: u32 = 5;

/// Segment header size: magic + version + generation + segment index.
pub const SEGMENT_HEADER: usize = 8 + 4 + 8 + 4;

/// Per-record header size: `payload_len u32` + `checksum u64`.
const RECORD_HEADER: usize = 4 + 8;

/// 64-bit checksum: four independent FNV-1a-style lanes over 8-byte words,
/// folded together with the payload length.
///
/// Not cryptographic; it only needs to catch torn writes and bit rot in a
/// record, which 64 bits of FNV-style mixing do with overwhelming
/// probability. The byte-at-a-time FNV-1a this replaces serialized one
/// xor+multiply per *byte*; snapshot restores checksum megabytes on the hot
/// path, so the lanes process one word each per step and only the sub-32-byte
/// tail falls back to byte-wise mixing.
pub fn checksum(payload: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    const SEED: u64 = 0xcbf2_9ce4_8422_2325;
    let mut lanes = [
        SEED,
        SEED ^ 0x9E37_79B9_7F4A_7C15,
        SEED.rotate_left(17),
        SEED.rotate_left(31),
    ];
    let mut chunks = payload.chunks_exact(32);
    for chunk in &mut chunks {
        for (lane, word) in lanes.iter_mut().zip(chunk.chunks_exact(8)) {
            let w = u64::from_le_bytes(word.try_into().expect("8-byte word"));
            *lane = (*lane ^ w).wrapping_mul(PRIME);
        }
    }
    let mut tail = lanes[0];
    for &b in chunks.remainder() {
        tail = (tail ^ b as u64).wrapping_mul(PRIME);
    }
    lanes[0] = tail;
    let mut hash = payload.len() as u64;
    for lane in lanes {
        hash = (hash ^ lane).wrapping_mul(PRIME);
        hash ^= hash >> 29;
    }
    hash
}

/// Append handle to one WAL segment file.
///
/// Every [`WalWriter::append`] writes one framed record and flushes it to
/// the OS, then `fsync`s, so an acknowledged append survives a process
/// crash. Callers append the record *before* applying the mutation it
/// describes (write-ahead), which makes the failure mode one-sided: the log
/// may describe a mutation that never ran (harmless — replay re-runs it),
/// but never the reverse.
///
/// Segment *rotation* is the owner's job: [`WalWriter::bytes_written`]
/// reports the segment's current size so the owner can create the next
/// segment (same generation, index + 1) once the active one exceeds its
/// budget.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    stats: WalStats,
    bytes: u64,
}

/// Durability-cost counters of one [`WalWriter`] (and, summed across
/// rotations, of a whole session — `r2d2_core`'s session accumulates them
/// over WAL segments and generations). `fsyncs / records` is the
/// group-commit amortization ratio the `serve-bench` experiment reports:
/// one-fsync-per-batch writes one record per batch, while a group commit
/// folds many queued batches into one record and one fsync. `segments` and
/// `segments_compacted` track the segment lifecycle: files created by
/// rotation against files deleted because a newer snapshot generation
/// wholly covers them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended ([`WalWriter::append`] calls).
    pub records: u64,
    /// `fsync` system calls issued (one per append, plus one at creation).
    pub fsyncs: u64,
    /// Segment files created ([`WalWriter::create`] calls; reopening an
    /// existing segment for append does not count).
    pub segments: u64,
    /// Segment files deleted by compaction because a newer snapshot
    /// generation wholly covers their records. Incremented by the owner
    /// (the session's generation pruning), not by the writer itself.
    pub segments_compacted: u64,
}

impl WalStats {
    /// Element-wise sum.
    pub fn plus(&self, other: &WalStats) -> WalStats {
        WalStats {
            records: self.records + other.records,
            fsyncs: self.fsyncs + other.fsyncs,
            segments: self.segments + other.segments,
            segments_compacted: self.segments_compacted + other.segments_compacted,
        }
    }
}

impl WalWriter {
    /// Create a fresh WAL segment at `path` (truncating any existing file)
    /// and write the segment header naming the snapshot `generation` it
    /// extends and its `segment` index within that generation.
    pub fn create(path: &Path, generation: u64, segment: u32) -> Result<Self> {
        let mut file = File::create(path)?;
        let mut header = [0u8; SEGMENT_HEADER];
        header[..8].copy_from_slice(WAL_MAGIC);
        header[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
        header[12..20].copy_from_slice(&generation.to_le_bytes());
        header[20..24].copy_from_slice(&segment.to_le_bytes());
        file.write_all(&header)?;
        file.sync_all()?;
        Ok(WalWriter {
            file,
            stats: WalStats {
                records: 0,
                fsyncs: 1,
                segments: 1,
                segments_compacted: 0,
            },
            bytes: SEGMENT_HEADER as u64,
        })
    }

    /// Open an existing WAL segment for appending, after validating its
    /// header (magic, version, and — when `expect` is given — the
    /// generation/segment pair it must belong to).
    ///
    /// The crash-recovery contract is append-only: a torn tail record is
    /// *not* truncated here — [`read_records`] skips it on every read, and
    /// the next snapshot rotation retires the file. New records appended
    /// after a torn tail would be unreachable behind it, so callers restoring
    /// from a WAL with a detected torn tail should rotate to a fresh log
    /// (which `r2d2_core`'s restore does) rather than keep appending.
    pub fn open_append(path: &Path, expect: Option<(u64, u32)>) -> Result<Self> {
        let mut file = OpenOptions::new().read(true).append(true).open(path)?;
        let mut header = [0u8; SEGMENT_HEADER];
        file.read_exact(&mut header)
            .map_err(|_| LakeError::Corrupt("WAL header too short".into()))?;
        let (generation, segment) = validate_header(&header)?;
        if let Some((want_gen, want_seg)) = expect {
            if (generation, segment) != (want_gen, want_seg) {
                return Err(LakeError::Corrupt(format!(
                    "WAL segment header names generation {generation} segment {segment}, \
                     expected generation {want_gen} segment {want_seg}"
                )));
            }
        }
        let bytes = file.metadata()?.len();
        Ok(WalWriter {
            file,
            stats: WalStats::default(),
            bytes,
        })
    }

    /// Append one framed record and make it durable (flush + fsync).
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        let mut frame = Vec::with_capacity(RECORD_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&checksum(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.stats.records += 1;
        self.stats.fsyncs += 1;
        self.bytes += frame.len() as u64;
        Ok(())
    }

    /// Durability-cost counters accumulated by this writer since it was
    /// opened.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Size in bytes of the segment this writer appends to (header
    /// included) — the owner's rotation trigger.
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }
}

fn validate_header(header: &[u8]) -> Result<(u64, u32)> {
    if &header[..8] != WAL_MAGIC {
        return Err(LakeError::Corrupt("bad WAL magic".into()));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        return Err(LakeError::Corrupt(format!(
            "unsupported WAL version {version}"
        )));
    }
    let generation = u64::from_le_bytes(header[12..20].try_into().expect("8 bytes"));
    let segment = u32::from_le_bytes(header[20..24].try_into().expect("4 bytes"));
    Ok((generation, segment))
}

/// Everything [`read_records`] recovered from one WAL segment file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalContents {
    /// The snapshot generation this segment extends (from the header).
    pub generation: u64,
    /// This segment's index within the generation's sequence (from the
    /// header).
    pub segment: u32,
    /// Intact record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Whether a torn or corrupt tail was detected and dropped. When true,
    /// `records` holds exactly the intact prefix.
    pub dropped_tail: bool,
}

/// Read every intact record of the WAL segment at `path`.
///
/// A missing length header, a payload shorter than its declared length, or a
/// checksum mismatch all mark the start of an unrecoverable tail: reading
/// stops there, the tail is dropped, and `dropped_tail` is set. A corrupt
/// *file header* is an error — that is not a torn append but a wrong or
/// destroyed file.
pub fn read_records(path: &Path) -> Result<WalContents> {
    let raw = std::fs::read(path)?;
    if raw.len() < SEGMENT_HEADER {
        return Err(LakeError::Corrupt("WAL header too short".into()));
    }
    let (generation, segment) = validate_header(&raw[..SEGMENT_HEADER])?;
    let mut records = Vec::new();
    let mut pos = SEGMENT_HEADER;
    let mut dropped_tail = false;
    while pos < raw.len() {
        if raw.len() - pos < RECORD_HEADER {
            dropped_tail = true; // torn mid-header
            break;
        }
        let len = u32::from_le_bytes(raw[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let sum = u64::from_le_bytes(raw[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let body_start = pos + RECORD_HEADER;
        if raw.len() - body_start < len {
            dropped_tail = true; // torn mid-payload
            break;
        }
        let payload = &raw[body_start..body_start + len];
        if checksum(payload) != sum {
            dropped_tail = true; // bit rot / torn overwrite
            break;
        }
        records.push(payload.to_vec());
        pos = body_start + len;
    }
    Ok(WalContents {
        generation,
        segment,
        records,
        dropped_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("r2d2_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_and_read_round_trip() {
        let path = temp_path("round_trip.r2d2wal");
        let mut wal = WalWriter::create(&path, 7, 2).unwrap();
        wal.append(b"first").unwrap();
        wal.append(b"").unwrap();
        wal.append(&[0xAB; 1000]).unwrap();
        let contents = read_records(&path).unwrap();
        assert!(!contents.dropped_tail);
        assert_eq!(contents.generation, 7);
        assert_eq!(contents.segment, 2);
        assert_eq!(
            contents.records,
            vec![b"first".to_vec(), Vec::new(), vec![0xAB; 1000]]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let path = temp_path("reopen.r2d2wal");
        WalWriter::create(&path, 1, 0)
            .unwrap()
            .append(b"one")
            .unwrap();
        WalWriter::open_append(&path, Some((1, 0)))
            .unwrap()
            .append(b"two")
            .unwrap();
        let contents = read_records(&path).unwrap();
        assert_eq!(contents.records, vec![b"one".to_vec(), b"two".to_vec()]);
        // Reopening as the wrong generation/segment is rejected: the caller
        // would be appending acknowledged records into a file a restore
        // will never stitch into that generation's sequence.
        assert!(WalWriter::open_append(&path, Some((1, 1))).is_err());
        assert!(WalWriter::open_append(&path, Some((2, 0))).is_err());
        assert!(WalWriter::open_append(&path, None).is_ok());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bytes_written_tracks_the_file_size() {
        let path = temp_path("bytes.r2d2wal");
        let mut wal = WalWriter::create(&path, 3, 0).unwrap();
        assert_eq!(wal.bytes_written(), SEGMENT_HEADER as u64);
        wal.append(b"12345").unwrap();
        let expected = (SEGMENT_HEADER + RECORD_HEADER + 5) as u64;
        assert_eq!(wal.bytes_written(), expected);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), expected);
        drop(wal);
        let reopened = WalWriter::open_append(&path, Some((3, 0))).unwrap();
        assert_eq!(
            reopened.bytes_written(),
            expected,
            "reopen seeds the rotation trigger from the real file size"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_dropped() {
        let path = temp_path("truncated.r2d2wal");
        let mut wal = WalWriter::create(&path, 1, 0).unwrap();
        wal.append(b"keep me").unwrap();
        wal.append(b"torn record").unwrap();
        drop(wal);
        // Simulate a crash mid-append: chop bytes off the final record.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 4]).unwrap();
        let contents = read_records(&path).unwrap();
        assert!(contents.dropped_tail);
        assert_eq!(contents.records, vec![b"keep me".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_mismatch_drops_the_tail_from_the_bad_record() {
        let path = temp_path("corrupt.r2d2wal");
        let mut wal = WalWriter::create(&path, 1, 0).unwrap();
        wal.append(b"good").unwrap();
        wal.append(b"flipped").unwrap();
        wal.append(b"unreachable").unwrap();
        drop(wal);
        // Flip one payload byte of the middle record.
        let mut raw = std::fs::read(&path).unwrap();
        let middle_payload = SEGMENT_HEADER + (12 + 4) + 12; // header + rec1 + rec2 header
        raw[middle_payload] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let contents = read_records(&path).unwrap();
        assert!(contents.dropped_tail);
        assert_eq!(contents.records, vec![b"good".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_and_version_are_errors() {
        let path = temp_path("badmagic.r2d2wal");
        let mut bad = b"NOTAWAL!".to_vec();
        bad.extend_from_slice(&1u32.to_le_bytes());
        bad.extend_from_slice(&[0u8; 12]);
        std::fs::write(&path, &bad).unwrap();
        assert!(read_records(&path).is_err());
        assert!(WalWriter::open_append(&path, None).is_err());

        // Every pre-segment version (and any future one) is rejected with an
        // explicit version error, never misparsed: a v4 file's first record
        // bytes would otherwise be consumed as the v5 generation/segment
        // header fields.
        for version in [1u32, 2, 3, 4, 99] {
            let mut versioned = WAL_MAGIC.to_vec();
            versioned.extend_from_slice(&version.to_le_bytes());
            versioned.extend_from_slice(&[0u8; 12]);
            std::fs::write(&path, &versioned).unwrap();
            let err = read_records(&path).unwrap_err().to_string();
            assert!(
                err.contains(&format!("unsupported WAL version {version}")),
                "version {version} must fail explicitly, got: {err}"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_count_records_fsyncs_and_segments() {
        let path = temp_path("stats.r2d2wal");
        let mut wal = WalWriter::create(&path, 1, 0).unwrap();
        assert_eq!(
            wal.stats(),
            WalStats {
                records: 0,
                fsyncs: 1,
                segments: 1,
                segments_compacted: 0
            }
        );
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        assert_eq!(
            wal.stats(),
            WalStats {
                records: 2,
                fsyncs: 3,
                segments: 1,
                segments_compacted: 0
            }
        );
        drop(wal);
        let mut reopened = WalWriter::open_append(&path, Some((1, 0))).unwrap();
        assert_eq!(reopened.stats(), WalStats::default());
        reopened.append(b"c").unwrap();
        let total = WalStats {
            records: 2,
            fsyncs: 3,
            segments: 1,
            segments_compacted: 0,
        }
        .plus(&reopened.stats());
        assert_eq!(
            total,
            WalStats {
                records: 3,
                fsyncs: 4,
                segments: 1,
                segments_compacted: 0
            }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_wal_reads_zero_records() {
        let path = temp_path("empty.r2d2wal");
        WalWriter::create(&path, 4, 1).unwrap();
        let contents = read_records(&path).unwrap();
        assert!(contents.records.is_empty());
        assert!(!contents.dropped_tail);
        assert_eq!((contents.generation, contents.segment), (4, 1));
        std::fs::remove_file(&path).ok();
    }
}
