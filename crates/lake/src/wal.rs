//! Write-ahead log framing: length + checksum framed records on disk.
//!
//! The enterprise lakes of the paper persist in ADLS-style storage; a
//! long-lived containment service must survive a process restart without
//! paying a full re-bootstrap. The snapshot + WAL design splits durability
//! into two layers: a *snapshot* captures the whole session state at one
//! point in time, and a *write-ahead log* records every mutation applied
//! since, so restart = load snapshot + replay tail. This module provides the
//! log layer only — a payload-agnostic, append-only record file with
//! per-record corruption detection. What goes *into* a record (update
//! batches, access-profile refreshes) is the caller's business
//! (`r2d2_core`'s session persistence).
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! magic "R2D2WAL\0" | version u32
//! per record: payload_len u32 | checksum(payload) u64 | payload bytes
//! ```
//!
//! A crash can leave a partially written record at the end of the file;
//! [`read_records`] detects it (short header, short payload, or checksum
//! mismatch) and **cleanly drops the tail from the first bad record on**,
//! returning every intact record before it. A record that was never fully
//! written was, by the write-ahead contract, never applied — dropping it
//! loses nothing that was acknowledged.

use crate::error::{LakeError, Result};
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// Leading magic of a WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"R2D2WAL\0";

/// Current WAL format version. Version bumps track record-payload changes
/// so a log written by an older build fails with an explicit version error
/// instead of a misleading payload-decode error: version 3 rode along with
/// the lazy-storage work (tables inside update records became `R2D2LAKE`
/// v4, `OpCounts` grew page/string counters, and the 4-lane word-parallel
/// checksum below replaced byte-wise FNV-1a); version 4 follows the
/// approximate-tier work (tables are `R2D2LAKE` v5 with footer MinHash
/// signatures, `OpCounts` grew the `approx_probes`/`approx_prunes`
/// counters).
pub const WAL_VERSION: u32 = 4;

/// Per-record header size: `payload_len u32` + `checksum u64`.
const RECORD_HEADER: usize = 4 + 8;

/// 64-bit checksum: four independent FNV-1a-style lanes over 8-byte words,
/// folded together with the payload length.
///
/// Not cryptographic; it only needs to catch torn writes and bit rot in a
/// record, which 64 bits of FNV-style mixing do with overwhelming
/// probability. The byte-at-a-time FNV-1a this replaces serialized one
/// xor+multiply per *byte*; snapshot restores checksum megabytes on the hot
/// path, so the lanes process one word each per step and only the sub-32-byte
/// tail falls back to byte-wise mixing.
pub fn checksum(payload: &[u8]) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    const SEED: u64 = 0xcbf2_9ce4_8422_2325;
    let mut lanes = [
        SEED,
        SEED ^ 0x9E37_79B9_7F4A_7C15,
        SEED.rotate_left(17),
        SEED.rotate_left(31),
    ];
    let mut chunks = payload.chunks_exact(32);
    for chunk in &mut chunks {
        for (lane, word) in lanes.iter_mut().zip(chunk.chunks_exact(8)) {
            let w = u64::from_le_bytes(word.try_into().expect("8-byte word"));
            *lane = (*lane ^ w).wrapping_mul(PRIME);
        }
    }
    let mut tail = lanes[0];
    for &b in chunks.remainder() {
        tail = (tail ^ b as u64).wrapping_mul(PRIME);
    }
    lanes[0] = tail;
    let mut hash = payload.len() as u64;
    for lane in lanes {
        hash = (hash ^ lane).wrapping_mul(PRIME);
        hash ^= hash >> 29;
    }
    hash
}

/// Append handle to one WAL file.
///
/// Every [`WalWriter::append`] writes one framed record and flushes it to
/// the OS, then `fsync`s, so an acknowledged append survives a process
/// crash. Callers append the record *before* applying the mutation it
/// describes (write-ahead), which makes the failure mode one-sided: the log
/// may describe a mutation that never ran (harmless — replay re-runs it),
/// but never the reverse.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    stats: WalStats,
}

/// Durability-cost counters of one [`WalWriter`] (and, summed across
/// rotations, of a whole session — `r2d2_core`'s session accumulates them
/// over WAL generations). `fsyncs / records` is the group-commit
/// amortization ratio the `serve-bench` experiment reports: one-fsync-per-
/// batch writes one record per batch, while a group commit folds many
/// queued batches into one record and one fsync.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended ([`WalWriter::append`] calls).
    pub records: u64,
    /// `fsync` system calls issued (one per append, plus one at creation).
    pub fsyncs: u64,
}

impl WalStats {
    /// Element-wise sum.
    pub fn plus(&self, other: &WalStats) -> WalStats {
        WalStats {
            records: self.records + other.records,
            fsyncs: self.fsyncs + other.fsyncs,
        }
    }
}

impl WalWriter {
    /// Create a fresh WAL at `path` (truncating any existing file) and write
    /// the file header.
    pub fn create(path: &Path) -> Result<Self> {
        let mut file = File::create(path)?;
        file.write_all(WAL_MAGIC)?;
        file.write_all(&WAL_VERSION.to_le_bytes())?;
        file.sync_all()?;
        Ok(WalWriter {
            file,
            stats: WalStats {
                records: 0,
                fsyncs: 1,
            },
        })
    }

    /// Open an existing WAL for appending, after validating its header.
    ///
    /// The crash-recovery contract is append-only: a torn tail record is
    /// *not* truncated here — [`read_records`] skips it on every read, and
    /// the next snapshot rotation retires the file. New records appended
    /// after a torn tail would be unreachable behind it, so callers restoring
    /// from a WAL with a detected torn tail should rotate to a fresh log
    /// (which `r2d2_core`'s restore does) rather than keep appending.
    pub fn open_append(path: &Path) -> Result<Self> {
        let mut file = OpenOptions::new().read(true).append(true).open(path)?;
        let mut header = [0u8; 12];
        file.read_exact(&mut header)
            .map_err(|_| LakeError::Corrupt("WAL header too short".into()))?;
        validate_header(&header)?;
        Ok(WalWriter {
            file,
            stats: WalStats::default(),
        })
    }

    /// Append one framed record and make it durable (flush + fsync).
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        let mut frame = Vec::with_capacity(RECORD_HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&checksum(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.file.sync_data()?;
        self.stats.records += 1;
        self.stats.fsyncs += 1;
        Ok(())
    }

    /// Durability-cost counters accumulated by this writer since it was
    /// opened.
    pub fn stats(&self) -> WalStats {
        self.stats
    }
}

fn validate_header(header: &[u8]) -> Result<()> {
    if &header[..8] != WAL_MAGIC {
        return Err(LakeError::Corrupt("bad WAL magic".into()));
    }
    let version = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        return Err(LakeError::Corrupt(format!(
            "unsupported WAL version {version}"
        )));
    }
    Ok(())
}

/// Everything [`read_records`] recovered from one WAL file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalContents {
    /// Intact record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Whether a torn or corrupt tail was detected and dropped. When true,
    /// `records` holds exactly the intact prefix.
    pub dropped_tail: bool,
}

/// Read every intact record of the WAL at `path`.
///
/// A missing length header, a payload shorter than its declared length, or a
/// checksum mismatch all mark the start of an unrecoverable tail: reading
/// stops there, the tail is dropped, and `dropped_tail` is set. A corrupt
/// *file header* is an error — that is not a torn append but a wrong or
/// destroyed file.
pub fn read_records(path: &Path) -> Result<WalContents> {
    let raw = std::fs::read(path)?;
    if raw.len() < 12 {
        return Err(LakeError::Corrupt("WAL header too short".into()));
    }
    validate_header(&raw[..12])?;
    let mut records = Vec::new();
    let mut pos = 12usize;
    let mut dropped_tail = false;
    while pos < raw.len() {
        if raw.len() - pos < RECORD_HEADER {
            dropped_tail = true; // torn mid-header
            break;
        }
        let len = u32::from_le_bytes(raw[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let sum = u64::from_le_bytes(raw[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let body_start = pos + RECORD_HEADER;
        if raw.len() - body_start < len {
            dropped_tail = true; // torn mid-payload
            break;
        }
        let payload = &raw[body_start..body_start + len];
        if checksum(payload) != sum {
            dropped_tail = true; // bit rot / torn overwrite
            break;
        }
        records.push(payload.to_vec());
        pos = body_start + len;
    }
    Ok(WalContents {
        records,
        dropped_tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("r2d2_wal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_and_read_round_trip() {
        let path = temp_path("round_trip.r2d2wal");
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(b"first").unwrap();
        wal.append(b"").unwrap();
        wal.append(&[0xAB; 1000]).unwrap();
        let contents = read_records(&path).unwrap();
        assert!(!contents.dropped_tail);
        assert_eq!(
            contents.records,
            vec![b"first".to_vec(), Vec::new(), vec![0xAB; 1000]]
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopen_appends_after_existing_records() {
        let path = temp_path("reopen.r2d2wal");
        WalWriter::create(&path).unwrap().append(b"one").unwrap();
        WalWriter::open_append(&path)
            .unwrap()
            .append(b"two")
            .unwrap();
        let contents = read_records(&path).unwrap();
        assert_eq!(contents.records, vec![b"one".to_vec(), b"two".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_dropped() {
        let path = temp_path("truncated.r2d2wal");
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(b"keep me").unwrap();
        wal.append(b"torn record").unwrap();
        drop(wal);
        // Simulate a crash mid-append: chop bytes off the final record.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 4]).unwrap();
        let contents = read_records(&path).unwrap();
        assert!(contents.dropped_tail);
        assert_eq!(contents.records, vec![b"keep me".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checksum_mismatch_drops_the_tail_from_the_bad_record() {
        let path = temp_path("corrupt.r2d2wal");
        let mut wal = WalWriter::create(&path).unwrap();
        wal.append(b"good").unwrap();
        wal.append(b"flipped").unwrap();
        wal.append(b"unreachable").unwrap();
        drop(wal);
        // Flip one payload byte of the middle record.
        let mut raw = std::fs::read(&path).unwrap();
        let middle_payload = 12 + (12 + 4) + 12; // header + rec1 + rec2 header
        raw[middle_payload] ^= 0xFF;
        std::fs::write(&path, &raw).unwrap();
        let contents = read_records(&path).unwrap();
        assert!(contents.dropped_tail);
        assert_eq!(contents.records, vec![b"good".to_vec()]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_magic_and_version_are_errors() {
        let path = temp_path("badmagic.r2d2wal");
        std::fs::write(&path, b"NOTAWAL!\x01\x00\x00\x00").unwrap();
        assert!(read_records(&path).is_err());
        assert!(WalWriter::open_append(&path).is_err());

        let mut versioned = WAL_MAGIC.to_vec();
        versioned.extend_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &versioned).unwrap();
        assert!(read_records(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_count_records_and_fsyncs() {
        let path = temp_path("stats.r2d2wal");
        let mut wal = WalWriter::create(&path).unwrap();
        assert_eq!(
            wal.stats(),
            WalStats {
                records: 0,
                fsyncs: 1
            }
        );
        wal.append(b"a").unwrap();
        wal.append(b"b").unwrap();
        assert_eq!(
            wal.stats(),
            WalStats {
                records: 2,
                fsyncs: 3
            }
        );
        drop(wal);
        let mut reopened = WalWriter::open_append(&path).unwrap();
        assert_eq!(reopened.stats(), WalStats::default());
        reopened.append(b"c").unwrap();
        let total = WalStats {
            records: 2,
            fsyncs: 3,
        }
        .plus(&reopened.stats());
        assert_eq!(
            total,
            WalStats {
                records: 3,
                fsyncs: 4
            }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_wal_reads_zero_records() {
        let path = temp_path("empty.r2d2wal");
        WalWriter::create(&path).unwrap();
        let contents = read_records(&path).unwrap();
        assert!(contents.records.is_empty());
        assert!(!contents.dropped_tail);
        std::fs::remove_file(&path).ok();
    }
}
