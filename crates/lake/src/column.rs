//! Columns: typed, in-memory value vectors with cached statistics.
//!
//! The substrate stores tables column-major, like parquet / Spark's columnar
//! cache, so that statistics can be maintained per column and predicate
//! evaluation touches only the referenced columns.

use crate::datatype::DataType;
use crate::error::{LakeError, Result};
use crate::stats::ColumnStats;
use crate::value::Value;
use serde::{Deserialize, Serialize};

/// A single column of a table: a name-less typed vector of values.
///
/// The name lives in the table's [`crate::schema::Schema`]; a `Column` is
/// purely the data plus cached [`ColumnStats`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Column {
    data_type: DataType,
    values: Vec<Value>,
    stats: ColumnStats,
}

impl Column {
    /// Build a column from values, validating that every non-null value has
    /// the declared type (ints are accepted into float columns, mirroring the
    /// widening Spark applies when unioning frames).
    pub fn new(data_type: DataType, values: Vec<Value>) -> Result<Self> {
        for v in &values {
            if v.is_null() {
                continue;
            }
            let vt = v.data_type();
            let compatible = vt == data_type
                || (data_type == DataType::Float && vt == DataType::Int)
                || (data_type == DataType::Timestamp && vt == DataType::Int);
            if !compatible {
                return Err(LakeError::TypeMismatch {
                    column: String::new(),
                    expected: data_type,
                    actual: vt,
                });
            }
        }
        let stats = ColumnStats::compute(&values);
        Ok(Column {
            data_type,
            values,
            stats,
        })
    }

    /// Assemble a column from values and *already-known* statistics, without
    /// re-validating types or re-hashing for the distinct count. Reserved
    /// for the storage layer, whose packed pages are type-pure by
    /// construction and whose footer carries the exact statistics the
    /// column was encoded with.
    pub(crate) fn from_parts(data_type: DataType, values: Vec<Value>, stats: ColumnStats) -> Self {
        Column {
            data_type,
            values,
            stats,
        }
    }

    /// Build an integer column.
    pub fn from_ints(values: impl IntoIterator<Item = i64>) -> Self {
        let values: Vec<Value> = values.into_iter().map(Value::Int).collect();
        Column::new(DataType::Int, values).expect("ints are always valid")
    }

    /// Build a float column.
    pub fn from_floats(values: impl IntoIterator<Item = f64>) -> Self {
        let values: Vec<Value> = values.into_iter().map(Value::Float).collect();
        Column::new(DataType::Float, values).expect("floats are always valid")
    }

    /// Build a string column.
    pub fn from_strs<S: Into<String>>(values: impl IntoIterator<Item = S>) -> Self {
        let values: Vec<Value> = values.into_iter().map(|s| Value::Str(s.into())).collect();
        Column::new(DataType::Utf8, values).expect("strings are always valid")
    }

    /// Build a timestamp column from microsecond epoch values.
    pub fn from_timestamps(values: impl IntoIterator<Item = i64>) -> Self {
        let values: Vec<Value> = values.into_iter().map(Value::Timestamp).collect();
        Column::new(DataType::Timestamp, values).expect("timestamps are always valid")
    }

    /// Declared data type.
    pub fn data_type(&self) -> DataType {
        self.data_type
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Value at row `i`.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// Cached statistics (computed at construction time).
    pub fn stats(&self) -> &ColumnStats {
        &self.stats
    }

    /// Take the rows at the given indices, producing a new column.
    pub fn take(&self, indices: &[usize]) -> Column {
        let values: Vec<Value> = indices.iter().map(|&i| self.values[i].clone()).collect();
        let stats = ColumnStats::compute(&values);
        Column {
            data_type: self.data_type,
            values,
            stats,
        }
    }

    /// Append another column of the same type (used by the synthetic
    /// "add rows" transformation and by partition concatenation).
    pub fn concat(&self, other: &Column) -> Result<Column> {
        if other.data_type != self.data_type
            && !(self.data_type == DataType::Float && other.data_type == DataType::Int)
        {
            return Err(LakeError::TypeMismatch {
                column: String::new(),
                expected: self.data_type,
                actual: other.data_type,
            });
        }
        let mut values = self.values.clone();
        values.extend(other.values.iter().cloned());
        Column::new(self.data_type, values)
    }

    /// Approximate byte size of the column data.
    pub fn byte_size(&self) -> usize {
        self.values.iter().map(Value::byte_size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_constructors() {
        assert_eq!(Column::from_ints([1, 2, 3]).data_type(), DataType::Int);
        assert_eq!(Column::from_floats([1.0]).data_type(), DataType::Float);
        assert_eq!(Column::from_strs(["a"]).data_type(), DataType::Utf8);
        assert_eq!(
            Column::from_timestamps([10]).data_type(),
            DataType::Timestamp
        );
    }

    #[test]
    fn type_validation_rejects_mismatch() {
        let err = Column::new(DataType::Int, vec![Value::Str("x".into())]);
        assert!(matches!(err, Err(LakeError::TypeMismatch { .. })));
    }

    #[test]
    fn int_accepted_in_float_column() {
        let c = Column::new(DataType::Float, vec![Value::Int(1), Value::Float(2.5)]).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn nulls_always_accepted() {
        let c = Column::new(DataType::Utf8, vec![Value::Null, Value::Str("a".into())]).unwrap();
        assert_eq!(c.stats().null_count, 1);
    }

    #[test]
    fn stats_cached_at_construction() {
        let c = Column::from_ints([3, 1, 8]);
        assert_eq!(c.stats().min, Some(Value::Int(1)));
        assert_eq!(c.stats().max, Some(Value::Int(8)));
    }

    #[test]
    fn take_reorders_and_recomputes_stats() {
        let c = Column::from_ints([10, 20, 30, 40]);
        let t = c.take(&[3, 0]);
        assert_eq!(t.values(), &[Value::Int(40), Value::Int(10)]);
        assert_eq!(t.stats().min, Some(Value::Int(10)));
        assert_eq!(t.stats().max, Some(Value::Int(40)));
    }

    #[test]
    fn concat_columns() {
        let a = Column::from_ints([1, 2]);
        let b = Column::from_ints([3]);
        let c = a.concat(&b).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().max, Some(Value::Int(3)));
        let s = Column::from_strs(["x"]);
        assert!(a.concat(&s).is_err());
    }

    #[test]
    fn byte_size_sums_values() {
        let c = Column::from_ints([1, 2, 3]);
        assert_eq!(c.byte_size(), 24);
    }
}
