//! Columns: typed value vectors with cached statistics, either in memory or
//! as an undecoded storage page that materializes on first touch.
//!
//! The substrate stores tables column-major, like parquet / Spark's columnar
//! cache, so that statistics can be maintained per column and predicate
//! evaluation touches only the referenced columns. Since R2D2LAKE v4 a
//! column read back from storage stays *lazy*: the encoded page bytes are
//! retained verbatim and only decoded when some caller actually needs the
//! values (statistics, sketches and sizes are served from the footer without
//! touching the page). A materialization is metered as `pages_decoded`; the
//! decode that skipped the page charged `pages_skipped`.

use crate::datatype::DataType;
use crate::error::{LakeError, Result};
use crate::meter::Meter;
use crate::stats::ColumnStats;
use crate::value::Value;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use std::sync::OnceLock;

/// A single column of a table: a name-less typed vector of values.
///
/// The name lives in the table's [`crate::schema::Schema`]; a `Column` is
/// purely the data plus cached [`ColumnStats`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Column {
    data_type: DataType,
    repr: ColumnRepr,
    stats: ColumnStats,
}

/// How the column's values are held.
#[derive(Debug, Clone)]
enum ColumnRepr {
    /// Values decoded in memory.
    Eager(Vec<Value>),
    /// An undecoded storage page; decoded into the cell on first touch.
    Lazy(LazyColumn),
}

/// An undecoded column page plus everything needed to serve metadata
/// queries (row count, byte size) without decoding it.
#[derive(Debug)]
struct LazyColumn {
    /// The encoded page, exactly as stored (layout tag + payload). Retained
    /// even after materialization so re-encoding reproduces the original
    /// bytes bit-for-bit.
    page: Bytes,
    /// Number of rows in the page.
    rows: usize,
    /// In-memory byte size of the decoded values (from the footer).
    byte_size: usize,
    /// Meter charged with `pages_decoded` when the page materializes.
    meter: Meter,
    /// Decoded values, filled by the first successful materialization.
    cell: OnceLock<Vec<Value>>,
}

impl Clone for LazyColumn {
    fn clone(&self) -> Self {
        let cell = OnceLock::new();
        if let Some(values) = self.cell.get() {
            let _ = cell.set(values.clone());
        }
        LazyColumn {
            page: self.page.clone(),
            rows: self.rows,
            byte_size: self.byte_size,
            meter: self.meter.clone(),
            cell,
        }
    }
}

impl LazyColumn {
    /// Decode the page if it has not been decoded yet. Only the thread that
    /// wins the race charges `pages_decoded`; a decode error leaves the cell
    /// empty (the same error is returned deterministically on every retry).
    fn materialize(&self, data_type: DataType) -> Result<&[Value]> {
        if let Some(values) = self.cell.get() {
            return Ok(values);
        }
        let values = crate::storage::decode_page(&self.page, data_type, self.rows)?;
        if self.cell.set(values).is_ok() {
            self.meter.add_pages_decoded(1);
        }
        Ok(self.cell.get().expect("cell was just filled"))
    }
}

impl Column {
    /// Build a column from values, validating that every non-null value has
    /// the declared type (ints are accepted into float columns, mirroring the
    /// widening Spark applies when unioning frames).
    pub fn new(data_type: DataType, values: Vec<Value>) -> Result<Self> {
        for v in &values {
            if v.is_null() {
                continue;
            }
            let vt = v.data_type();
            let compatible = vt == data_type
                || (data_type == DataType::Float && vt == DataType::Int)
                || (data_type == DataType::Timestamp && vt == DataType::Int);
            if !compatible {
                return Err(LakeError::TypeMismatch {
                    column: String::new(),
                    expected: data_type,
                    actual: vt,
                });
            }
        }
        let stats = ColumnStats::compute(&values);
        Ok(Column {
            data_type,
            repr: ColumnRepr::Eager(values),
            stats,
        })
    }

    /// Assemble a lazy column over an undecoded storage page. `byte_size`
    /// and `stats` come from the file footer; the page only decodes when
    /// the values are first touched, charging `pages_decoded` on `meter`.
    pub(crate) fn from_lazy_page(
        data_type: DataType,
        page: Bytes,
        rows: usize,
        byte_size: usize,
        stats: ColumnStats,
        meter: &Meter,
    ) -> Self {
        Column {
            data_type,
            repr: ColumnRepr::Lazy(LazyColumn {
                page,
                rows,
                byte_size,
                meter: meter.clone(),
                cell: OnceLock::new(),
            }),
            stats,
        }
    }

    /// Build an integer column.
    pub fn from_ints(values: impl IntoIterator<Item = i64>) -> Self {
        let values: Vec<Value> = values.into_iter().map(Value::Int).collect();
        Column::new(DataType::Int, values).expect("ints are always valid")
    }

    /// Build a float column.
    pub fn from_floats(values: impl IntoIterator<Item = f64>) -> Self {
        let values: Vec<Value> = values.into_iter().map(Value::Float).collect();
        Column::new(DataType::Float, values).expect("floats are always valid")
    }

    /// Build a string column.
    pub fn from_strs<S: Into<String>>(values: impl IntoIterator<Item = S>) -> Self {
        let values: Vec<Value> = values.into_iter().map(|s| Value::Str(s.into())).collect();
        Column::new(DataType::Utf8, values).expect("strings are always valid")
    }

    /// Build a timestamp column from microsecond epoch values.
    pub fn from_timestamps(values: impl IntoIterator<Item = i64>) -> Self {
        let values: Vec<Value> = values.into_iter().map(Value::Timestamp).collect();
        Column::new(DataType::Timestamp, values).expect("timestamps are always valid")
    }

    /// Declared data type.
    pub fn data_type(&self) -> DataType {
        self.data_type
    }

    /// Number of rows (metadata-only; never decodes a lazy page).
    pub fn len(&self) -> usize {
        match &self.repr {
            ColumnRepr::Eager(values) => values.len(),
            ColumnRepr::Lazy(lazy) => lazy.rows,
        }
    }

    /// Whether the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The values, materializing a lazy page on first touch.
    ///
    /// # Panics
    ///
    /// Panics if the column is lazy and its page fails to decode. Read
    /// paths that can encounter corrupt storage go through
    /// [`Column::try_values`] instead; this accessor serves the many
    /// call sites working on columns that were validated at construction.
    pub fn values(&self) -> &[Value] {
        self.try_values().expect("column page corrupt")
    }

    /// The values, materializing a lazy page on first touch. Returns a
    /// [`LakeError::Corrupt`] if the page bytes fail to decode (and will
    /// keep returning the same error on every retry — a failed decode is
    /// never cached as data).
    pub fn try_values(&self) -> Result<&[Value]> {
        match &self.repr {
            ColumnRepr::Eager(values) => Ok(values),
            ColumnRepr::Lazy(lazy) => lazy.materialize(self.data_type),
        }
    }

    /// Value at row `i`, or `None` when out of range *or* when a lazy page
    /// fails to decode (point reads surface corruption as a missing value;
    /// bulk readers use [`Column::try_values`] for the precise error).
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.try_values().ok()?.get(i)
    }

    /// Cached statistics (computed at construction time, or reattached from
    /// the file footer for lazy columns — never requires decoding).
    pub fn stats(&self) -> &ColumnStats {
        &self.stats
    }

    /// The encoded page bytes backing a lazy column, if any. The storage
    /// encoder re-emits these verbatim so a decode → encode round trip is
    /// bit-identical without materializing anything.
    pub(crate) fn lazy_page(&self) -> Option<&Bytes> {
        match &self.repr {
            ColumnRepr::Lazy(lazy) => Some(&lazy.page),
            ColumnRepr::Eager(_) => None,
        }
    }

    /// Whether the column's values are currently decoded in memory (always
    /// true for eagerly built columns).
    pub fn is_materialized(&self) -> bool {
        match &self.repr {
            ColumnRepr::Eager(_) => true,
            ColumnRepr::Lazy(lazy) => lazy.cell.get().is_some(),
        }
    }

    /// Take the rows at the given indices, producing a new column.
    pub fn take(&self, indices: &[usize]) -> Column {
        let values = self.values();
        let values: Vec<Value> = indices.iter().map(|&i| values[i].clone()).collect();
        let stats = ColumnStats::compute(&values);
        Column {
            data_type: self.data_type,
            repr: ColumnRepr::Eager(values),
            stats,
        }
    }

    /// Append another column of the same type (used by the synthetic
    /// "add rows" transformation and by partition concatenation).
    pub fn concat(&self, other: &Column) -> Result<Column> {
        if other.data_type != self.data_type
            && !(self.data_type == DataType::Float && other.data_type == DataType::Int)
        {
            return Err(LakeError::TypeMismatch {
                column: String::new(),
                expected: self.data_type,
                actual: other.data_type,
            });
        }
        let mut values = self.try_values()?.to_vec();
        values.extend(other.try_values()?.iter().cloned());
        Column::new(self.data_type, values)
    }

    /// Approximate byte size of the column data (metadata-only for lazy
    /// columns: the footer records the decoded size, so the answer is
    /// identical whether or not the page has materialized).
    pub fn byte_size(&self) -> usize {
        match &self.repr {
            ColumnRepr::Eager(values) => values.iter().map(Value::byte_size).sum(),
            ColumnRepr::Lazy(lazy) => lazy.byte_size,
        }
    }
}

impl PartialEq for Column {
    /// Content equality: same type, same values. A lazy column equals the
    /// eager column it decodes to (statistics are a pure function of the
    /// values, so they are not compared separately); a column whose page
    /// fails to decode equals nothing.
    fn eq(&self, other: &Self) -> bool {
        if self.data_type != other.data_type {
            return false;
        }
        match (self.try_values(), other.try_values()) {
            (Ok(a), Ok(b)) => a == b,
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_constructors() {
        assert_eq!(Column::from_ints([1, 2, 3]).data_type(), DataType::Int);
        assert_eq!(Column::from_floats([1.0]).data_type(), DataType::Float);
        assert_eq!(Column::from_strs(["a"]).data_type(), DataType::Utf8);
        assert_eq!(
            Column::from_timestamps([10]).data_type(),
            DataType::Timestamp
        );
    }

    #[test]
    fn type_validation_rejects_mismatch() {
        let err = Column::new(DataType::Int, vec![Value::Str("x".into())]);
        assert!(matches!(err, Err(LakeError::TypeMismatch { .. })));
    }

    #[test]
    fn int_accepted_in_float_column() {
        let c = Column::new(DataType::Float, vec![Value::Int(1), Value::Float(2.5)]).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn nulls_always_accepted() {
        let c = Column::new(DataType::Utf8, vec![Value::Null, Value::Str("a".into())]).unwrap();
        assert_eq!(c.stats().null_count, 1);
    }

    #[test]
    fn stats_cached_at_construction() {
        let c = Column::from_ints([3, 1, 8]);
        assert_eq!(c.stats().min, Some(Value::Int(1)));
        assert_eq!(c.stats().max, Some(Value::Int(8)));
    }

    #[test]
    fn take_reorders_and_recomputes_stats() {
        let c = Column::from_ints([10, 20, 30, 40]);
        let t = c.take(&[3, 0]);
        assert_eq!(t.values(), &[Value::Int(40), Value::Int(10)]);
        assert_eq!(t.stats().min, Some(Value::Int(10)));
        assert_eq!(t.stats().max, Some(Value::Int(40)));
    }

    #[test]
    fn concat_columns() {
        let a = Column::from_ints([1, 2]);
        let b = Column::from_ints([3]);
        let c = a.concat(&b).unwrap();
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().max, Some(Value::Int(3)));
        let s = Column::from_strs(["x"]);
        assert!(a.concat(&s).is_err());
    }

    #[test]
    fn byte_size_sums_values() {
        let c = Column::from_ints([1, 2, 3]);
        assert_eq!(c.byte_size(), 24);
    }

    #[test]
    fn eager_columns_are_materialized_and_pageless() {
        let c = Column::from_ints([1, 2]);
        assert!(c.is_materialized());
        assert!(c.lazy_page().is_none());
        assert_eq!(c.try_values().unwrap().len(), 2);
    }
}
