//! The data lake catalog: named datasets with sizes, access profiles and
//! lineage.
//!
//! The R2D2 pipeline operates on a *data lake*: a collection of datasets
//! (tables) belonging to customer orgs, each with a size, an expected number
//! of customer-initiated accesses per billing period (`A_v` in §5.2), a
//! maintenance frequency (`f_v`), and — where known through human input —
//! the transformation lineage used for "safe deletion" reconstruction
//! (§5.1). [`DataLake`] is the catalog of such datasets; it shares one
//! [`Meter`] across all data accesses so experiments can attribute row/byte
//! scans end-to-end.

use crate::error::{LakeError, Result};
use crate::meter::Meter;
use crate::partition::PartitionedTable;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Opaque identifier of a dataset within a [`DataLake`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DatasetId(pub u64);

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ds{}", self.0)
    }
}

/// Expected access behaviour of a dataset over one billing period — the
/// inputs `A_v` (customer-initiated accesses) and `f_v` (maintenance
/// operations such as GDPR scans) of the Opt-Ret objective (Eq. 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessProfile {
    /// Expected number of customer-initiated accesses per billing period.
    pub accesses_per_period: f64,
    /// Expected number of maintenance operations (e.g. privacy-initiated
    /// full scans) per billing period.
    pub maintenance_per_period: f64,
}

impl Default for AccessProfile {
    fn default() -> Self {
        // The paper observes "at least one GDPR or privacy request-initiated
        // access per customer dataset per week", i.e. ~4 per monthly billing
        // period, and uses that as the default maintenance frequency.
        AccessProfile {
            accesses_per_period: 0.0,
            maintenance_per_period: 4.0,
        }
    }
}

/// A record of how a dataset was derived from another dataset.
///
/// §5.1 requires the transformation between parent and child to be known
/// (through human input) before an edge can be used for reconstruction; the
/// synthetic corpora populate this from their generation recipe, playing the
/// role of that human input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lineage {
    /// The dataset this one was derived from.
    pub parent: DatasetId,
    /// Human-readable description of the transformation (e.g. the WHERE
    /// clause or "sorted by timestamp").
    pub transform: String,
}

/// A catalog entry: the dataset's data plus its bookkeeping metadata.
#[derive(Debug, Clone)]
pub struct DatasetEntry {
    /// Identifier within the lake.
    pub id: DatasetId,
    /// Human-readable dataset name (unique within the lake).
    pub name: String,
    /// The data, partitioned with per-partition statistics.
    pub data: Arc<PartitionedTable>,
    /// Content generation: 0 when the dataset is added, bumped on every
    /// [`DataLake::replace_data`]. Content-addressed caches (the CLP
    /// [`crate::query::HashJoinCache`]) key by `(id, generation)`, so a
    /// mutation invalidates naturally while restored or untouched entries
    /// stay hot.
    pub generation: u64,
    /// Expected access behaviour for the cost model.
    pub access: AccessProfile,
    /// Known derivation lineage, if any.
    pub lineage: Option<Lineage>,
}

impl DatasetEntry {
    /// Approximate size of the dataset in bytes (the `S_v` of Eq. 3).
    pub fn byte_size(&self) -> usize {
        self.data.byte_size()
    }

    /// Number of rows in the dataset.
    pub fn num_rows(&self) -> usize {
        self.data.num_rows()
    }
}

/// Shared per-dataset access tally: how many customer-initiated accesses each
/// dataset served since the log was last drained.
///
/// The lake [`Meter`] counts rows and bytes without attributing them to a
/// dataset; the access log is its per-dataset companion for the `A_v` input
/// of Eq. 3. Like the meter it is cheaply cloneable (an `Arc` of the
/// counters) and shared by every clone of the lake, so metered query entry
/// points ([`DataLake::query_dataset`]) can tally through a `&DataLake`.
/// `r2d2_core::R2d2Session::refresh_access_profiles` drains it to refresh
/// [`AccessProfile::accesses_per_period`] and trigger re-advice when the
/// observed traffic drifts from the recorded profile.
///
/// Tallies are atomic counters behind a read-write lock: the hot path
/// ([`AccessLog::record`] on a dataset that has been seen before) takes the
/// shared read lock and does one `fetch_add`, so any number of concurrent
/// readers tally in parallel without serializing on an exclusive lock. Only
/// the first access of a previously unseen dataset — and the window
/// operations [`AccessLog::drain`] / [`AccessLog::merge`] — take the lock
/// exclusively. The drain is lossless under concurrent recording: it swaps
/// the whole window out under the exclusive lock, so every tally lands in
/// exactly one window, never between two.
#[derive(Debug, Clone, Default)]
pub struct AccessLog {
    counts: Arc<RwLock<BTreeMap<u64, AtomicU64>>>,
}

impl AccessLog {
    /// Create an empty access log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tally one access of `id`. Concurrent calls on known datasets proceed
    /// in parallel (shared lock + atomic increment).
    pub fn record(&self, id: DatasetId) {
        {
            let counts = self.counts.read().expect("access log poisoned");
            if let Some(tally) = counts.get(&id.0) {
                tally.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
        // First sighting of this dataset: take the exclusive lock to insert
        // its counter. Another recorder may have won the race in between, so
        // increment through the entry either way.
        let mut counts = self.counts.write().expect("access log poisoned");
        counts
            .entry(id.0)
            .or_insert_with(|| AtomicU64::new(0))
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the per-dataset tallies without clearing them. Datasets
    /// whose counter is currently zero (drained, nothing since) are omitted.
    pub fn counts(&self) -> BTreeMap<u64, u64> {
        self.counts
            .read()
            .expect("access log poisoned")
            .iter()
            .filter_map(|(&id, tally)| {
                let n = tally.load(Ordering::Relaxed);
                (n > 0).then_some((id, n))
            })
            .collect()
    }

    /// Take the tallies, resetting the log (one observation window ends).
    ///
    /// Lossless under concurrent [`AccessLog::record`] calls: the swap
    /// happens under the exclusive lock, so a concurrent tally either
    /// landed before it (drained now) or lands after it (next window) —
    /// never in neither.
    pub fn drain(&self) -> BTreeMap<u64, u64> {
        let mut counts = self.counts.write().expect("access log poisoned");
        std::mem::take(&mut *counts)
            .into_iter()
            .filter_map(|(id, tally)| {
                let n = tally.into_inner();
                (n > 0).then_some((id, n))
            })
            .collect()
    }

    /// Add tallies back into the log (e.g. a drained window whose
    /// processing failed must not lose its counts). Merges with whatever
    /// accumulated in the meantime.
    pub fn merge(&self, counts: &BTreeMap<u64, u64>) {
        let live = self.counts.read().expect("access log poisoned");
        if counts.keys().all(|id| live.contains_key(id)) {
            for (id, &n) in counts {
                live[id].fetch_add(n, Ordering::Relaxed);
            }
            return;
        }
        drop(live);
        let mut live = self.counts.write().expect("access log poisoned");
        for (&id, &n) in counts {
            live.entry(id)
                .or_insert_with(|| AtomicU64::new(0))
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Replace the whole window (snapshot-restore hook).
    pub(crate) fn replace(&self, counts: BTreeMap<u64, u64>) {
        *self.counts.write().expect("access log poisoned") = counts
            .into_iter()
            .map(|(id, n)| (id, AtomicU64::new(n)))
            .collect();
    }
}

/// The data lake catalog: a set of datasets sharing one operation meter.
#[derive(Debug, Clone, Default)]
pub struct DataLake {
    datasets: BTreeMap<DatasetId, DatasetEntry>,
    by_name: BTreeMap<String, DatasetId>,
    next_id: u64,
    meter: Meter,
    access_log: AccessLog,
}

impl DataLake {
    /// Create an empty data lake.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared operation meter.
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// The shared per-dataset access log.
    pub fn access_log(&self) -> &AccessLog {
        &self.access_log
    }

    /// Tally one customer-initiated access of `id` (no existence check — the
    /// log is a statistic, not an index; unknown ids are simply ignored by
    /// consumers).
    pub fn record_access(&self, id: DatasetId) {
        self.access_log.record(id);
    }

    /// Take the per-dataset access tallies accumulated since the last drain.
    pub fn drain_access_counts(&self) -> BTreeMap<u64, u64> {
        self.access_log.drain()
    }

    /// Register a dataset and return its id. Names must be unique.
    pub fn add_dataset(
        &mut self,
        name: impl Into<String>,
        data: PartitionedTable,
        access: AccessProfile,
        lineage: Option<Lineage>,
    ) -> Result<DatasetId> {
        let name = name.into();
        if self.by_name.contains_key(&name) {
            return Err(LakeError::InvalidArgument(format!(
                "dataset name already exists: {name}"
            )));
        }
        if let Some(l) = &lineage {
            if !self.datasets.contains_key(&l.parent) {
                return Err(LakeError::DatasetNotFound(l.parent.to_string()));
            }
        }
        let id = DatasetId(self.next_id);
        self.next_id += 1;
        self.by_name.insert(name.clone(), id);
        self.datasets.insert(
            id,
            DatasetEntry {
                id,
                name,
                data: Arc::new(data),
                generation: 0,
                access,
                lineage,
            },
        );
        Ok(id)
    }

    /// Remove a dataset (e.g. after the optimizer recommends deletion).
    pub fn remove_dataset(&mut self, id: DatasetId) -> Result<DatasetEntry> {
        let entry = self
            .datasets
            .remove(&id)
            .ok_or_else(|| LakeError::DatasetNotFound(id.to_string()))?;
        self.by_name.remove(&entry.name);
        Ok(entry)
    }

    /// Look up a dataset by id.
    pub fn dataset(&self, id: DatasetId) -> Result<&DatasetEntry> {
        self.datasets
            .get(&id)
            .ok_or_else(|| LakeError::DatasetNotFound(id.to_string()))
    }

    /// Look up a dataset id by name.
    pub fn dataset_by_name(&self, name: &str) -> Option<&DatasetEntry> {
        self.by_name.get(name).and_then(|id| self.datasets.get(id))
    }

    /// Whether a dataset id exists.
    pub fn contains(&self, id: DatasetId) -> bool {
        self.datasets.contains_key(&id)
    }

    /// Number of datasets in the lake.
    pub fn len(&self) -> usize {
        self.datasets.len()
    }

    /// Whether the lake is empty.
    pub fn is_empty(&self) -> bool {
        self.datasets.is_empty()
    }

    /// Iterate over datasets in id order.
    pub fn iter(&self) -> impl Iterator<Item = &DatasetEntry> {
        self.datasets.values()
    }

    /// Dataset ids in id order.
    pub fn ids(&self) -> Vec<DatasetId> {
        self.datasets.keys().copied().collect()
    }

    /// Total approximate size of the lake in bytes.
    pub fn total_bytes(&self) -> usize {
        self.datasets.values().map(DatasetEntry::byte_size).sum()
    }

    /// Total number of rows across all datasets.
    pub fn total_rows(&self) -> usize {
        self.datasets.values().map(DatasetEntry::num_rows).sum()
    }

    /// Update the access profile of a dataset.
    pub fn set_access_profile(&mut self, id: DatasetId, access: AccessProfile) -> Result<()> {
        let entry = self
            .datasets
            .get_mut(&id)
            .ok_or_else(|| LakeError::DatasetNotFound(id.to_string()))?;
        entry.access = access;
        Ok(())
    }

    /// The id the next [`DataLake::add_dataset`] will assign. Snapshots
    /// persist it so ids keep advancing monotonically across restarts even
    /// when the highest-numbered dataset was dropped.
    pub(crate) fn next_id(&self) -> u64 {
        self.next_id
    }

    /// Restore hook for [`crate::snapshot`]: re-insert a catalog entry under
    /// its original id without assigning a fresh one.
    pub(crate) fn restore_entry(&mut self, entry: DatasetEntry) {
        self.by_name.insert(entry.name.clone(), entry.id);
        self.datasets.insert(entry.id, entry);
    }

    /// Restore hook for [`crate::snapshot`]: pin the id counter.
    pub(crate) fn set_next_id(&mut self, next_id: u64) {
        self.next_id = next_id;
    }

    /// Restore hook for [`crate::snapshot`]: seed the access log with saved
    /// (undrained) tallies.
    pub(crate) fn restore_access_counts(&self, counts: BTreeMap<u64, u64>) {
        self.access_log.replace(counts);
    }

    /// A read-only shareable view of the catalog at this instant: every
    /// dataset entry (sharing the `Arc`'d tables — no data is copied) and
    /// the live [`AccessLog`], but a **detached, fresh [`Meter`]**.
    ///
    /// This is the snapshot handed to concurrent readers by the serve
    /// layer: queries through the view still tally into the shared access
    /// log (so observed traffic keeps feeding the Eq. 3 access profiles),
    /// but their row/byte scans land on the view's own meter instead of
    /// perturbing the owning session's deterministic, replayable op counts.
    /// Later catalog mutations on `self` are invisible to the view
    /// ([`DataLake::replace_data`] installs a fresh `Arc`).
    pub fn reader_view(&self) -> DataLake {
        DataLake {
            datasets: self.datasets.clone(),
            by_name: self.by_name.clone(),
            next_id: self.next_id,
            meter: Meter::new(),
            access_log: self.access_log.clone(),
        }
    }

    /// Replace the data of an existing dataset (used by the dynamic-update
    /// scenarios of §7.1: rows/columns added or removed in place).
    pub fn replace_data(&mut self, id: DatasetId, data: PartitionedTable) -> Result<()> {
        let entry = self
            .datasets
            .get_mut(&id)
            .ok_or_else(|| LakeError::DatasetNotFound(id.to_string()))?;
        entry.data = Arc::new(data);
        entry.generation += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::datatype::DataType;
    use crate::schema::Schema;
    use crate::table::Table;

    fn tiny_table(n: i64) -> PartitionedTable {
        let schema = Schema::flat(&[("id", DataType::Int)]).unwrap();
        PartitionedTable::single(Table::new(schema, vec![Column::from_ints(0..n)]).unwrap())
    }

    #[test]
    fn add_and_lookup() {
        let mut lake = DataLake::new();
        let id = lake
            .add_dataset("orders", tiny_table(10), AccessProfile::default(), None)
            .unwrap();
        assert!(lake.contains(id));
        assert_eq!(lake.len(), 1);
        assert_eq!(lake.dataset(id).unwrap().name, "orders");
        assert_eq!(lake.dataset_by_name("orders").unwrap().id, id);
        assert!(lake.dataset_by_name("nope").is_none());
        assert_eq!(lake.total_rows(), 10);
        assert!(lake.total_bytes() > 0);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut lake = DataLake::new();
        lake.add_dataset("a", tiny_table(1), AccessProfile::default(), None)
            .unwrap();
        assert!(lake
            .add_dataset("a", tiny_table(1), AccessProfile::default(), None)
            .is_err());
    }

    #[test]
    fn lineage_parent_must_exist() {
        let mut lake = DataLake::new();
        let bad = Lineage {
            parent: DatasetId(99),
            transform: "select".into(),
        };
        assert!(lake
            .add_dataset("x", tiny_table(1), AccessProfile::default(), Some(bad))
            .is_err());

        let p = lake
            .add_dataset("parent", tiny_table(5), AccessProfile::default(), None)
            .unwrap();
        let ok = Lineage {
            parent: p,
            transform: "WHERE id < 3".into(),
        };
        let c = lake
            .add_dataset("child", tiny_table(3), AccessProfile::default(), Some(ok))
            .unwrap();
        assert_eq!(lake.dataset(c).unwrap().lineage.as_ref().unwrap().parent, p);
    }

    #[test]
    fn remove_dataset() {
        let mut lake = DataLake::new();
        let id = lake
            .add_dataset("a", tiny_table(1), AccessProfile::default(), None)
            .unwrap();
        let entry = lake.remove_dataset(id).unwrap();
        assert_eq!(entry.name, "a");
        assert!(lake.is_empty());
        assert!(lake.remove_dataset(id).is_err());
        assert!(lake.dataset(id).is_err());
    }

    #[test]
    fn update_access_profile_and_data() {
        let mut lake = DataLake::new();
        let id = lake
            .add_dataset("a", tiny_table(2), AccessProfile::default(), None)
            .unwrap();
        lake.set_access_profile(
            id,
            AccessProfile {
                accesses_per_period: 3.0,
                maintenance_per_period: 1.0,
            },
        )
        .unwrap();
        assert_eq!(lake.dataset(id).unwrap().access.accesses_per_period, 3.0);
        assert_eq!(lake.dataset(id).unwrap().generation, 0);
        lake.replace_data(id, tiny_table(20)).unwrap();
        assert_eq!(lake.dataset(id).unwrap().num_rows(), 20);
        assert_eq!(
            lake.dataset(id).unwrap().generation,
            1,
            "replacing data must bump the content generation"
        );
        assert!(lake
            .set_access_profile(DatasetId(5), AccessProfile::default())
            .is_err());
    }

    #[test]
    fn access_log_tallies_and_drains() {
        let mut lake = DataLake::new();
        let a = lake
            .add_dataset("a", tiny_table(4), AccessProfile::default(), None)
            .unwrap();
        let b = lake
            .add_dataset("b", tiny_table(4), AccessProfile::default(), None)
            .unwrap();
        lake.record_access(a);
        lake.record_access(a);
        lake.record_access(b);
        // Clones share the log, like they share the meter.
        lake.clone().record_access(a);
        assert_eq!(
            lake.access_log().counts(),
            BTreeMap::from([(a.0, 3), (b.0, 1)])
        );
        let drained = lake.drain_access_counts();
        assert_eq!(drained, BTreeMap::from([(a.0, 3), (b.0, 1)]));
        assert!(
            lake.access_log().counts().is_empty(),
            "drain resets the log"
        );

        // A drained window whose processing failed can be merged back,
        // combining with traffic that arrived in the meantime.
        lake.record_access(b);
        lake.access_log().merge(&drained);
        assert_eq!(
            lake.access_log().counts(),
            BTreeMap::from([(a.0, 3), (b.0, 2)])
        );
    }

    #[test]
    fn access_log_is_lossless_under_concurrent_records_and_drains() {
        let log = AccessLog::new();
        let threads = 4;
        let per_thread = 2_000u64;
        let drained = std::sync::Arc::new(std::sync::Mutex::new(BTreeMap::<u64, u64>::new()));
        std::thread::scope(|scope| {
            for t in 0..threads {
                let log = log.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        log.record(DatasetId(t % 2));
                        if i % 64 == 0 {
                            // Interleave snapshots with records to shake the
                            // shared-lock fast path.
                            let _ = log.counts();
                        }
                    }
                });
            }
            // A concurrent drainer takes windows while recorders run.
            let log2 = log.clone();
            let drained2 = drained.clone();
            scope.spawn(move || {
                for _ in 0..50 {
                    let window = log2.drain();
                    let mut total = drained2.lock().unwrap();
                    for (id, n) in window {
                        *total.entry(id).or_insert(0) += n;
                    }
                }
            });
        });
        let mut total = drained.lock().unwrap().clone();
        for (id, n) in log.drain() {
            *total.entry(id).or_insert(0) += n;
        }
        let expected = threads * per_thread / 2;
        assert_eq!(
            total,
            BTreeMap::from([(0, expected), (1, expected)]),
            "every tally must land in exactly one drained window"
        );
    }

    #[test]
    fn reader_view_shares_tables_and_access_log_but_not_the_meter() {
        use crate::query::Predicate;

        let mut lake = DataLake::new();
        let id = lake
            .add_dataset("a", tiny_table(10), AccessProfile::default(), None)
            .unwrap();
        let view = lake.reader_view();
        // Shared table storage: both catalogs point at the same Arc.
        assert!(std::sync::Arc::ptr_eq(
            &lake.dataset(id).unwrap().data,
            &view.dataset(id).unwrap().data
        ));
        // Queries through the view meter into the VIEW's meter only...
        view.query_dataset(id, &Predicate::True, Some(2)).unwrap();
        assert_eq!(lake.meter().snapshot().rows_scanned, 0);
        assert!(view.meter().snapshot().rows_scanned > 0);
        // ...but tally into the SHARED access log.
        assert_eq!(lake.access_log().counts(), BTreeMap::from([(id.0, 1)]));
        // Later mutations of the owning lake are invisible to the view.
        lake.replace_data(id, tiny_table(20)).unwrap();
        assert_eq!(view.dataset(id).unwrap().num_rows(), 10);
        assert_eq!(lake.dataset(id).unwrap().num_rows(), 20);
    }

    #[test]
    fn query_dataset_meters_and_records_the_access() {
        use crate::query::Predicate;

        let mut lake = DataLake::new();
        let id = lake
            .add_dataset("a", tiny_table(10), AccessProfile::default(), None)
            .unwrap();
        let rows_before = lake.meter().snapshot().rows_scanned;
        let result = lake.query_dataset(id, &Predicate::True, Some(3)).unwrap();
        assert_eq!(result.num_rows(), 3);
        assert!(lake.meter().snapshot().rows_scanned > rows_before);
        assert_eq!(lake.access_log().counts(), BTreeMap::from([(id.0, 1)]));
        assert!(lake
            .query_dataset(DatasetId(99), &Predicate::True, None)
            .is_err());
        // Failed queries (unknown dataset or column) don't tally an access.
        assert!(lake
            .query_dataset(
                id,
                &Predicate::eq("nope", crate::value::Value::Int(1)),
                None
            )
            .is_err());
        assert_eq!(lake.access_log().counts(), BTreeMap::from([(id.0, 1)]));
    }

    #[test]
    fn ids_are_stable_and_ordered() {
        let mut lake = DataLake::new();
        let a = lake
            .add_dataset("a", tiny_table(1), AccessProfile::default(), None)
            .unwrap();
        let b = lake
            .add_dataset("b", tiny_table(1), AccessProfile::default(), None)
            .unwrap();
        assert!(a < b);
        assert_eq!(lake.ids(), vec![a, b]);
        assert_eq!(lake.iter().count(), 2);
    }
}
